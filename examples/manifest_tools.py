#!/usr/bin/env python3
"""Manifest tooling: package, serialize, parse, and mine bitrates.

Walks through the Section-4.1 server-side practices:

1. package the title as DASH (per-track bandwidths) and as HLS with the
   *curated* H_sub variant subset (not all combinations);
2. embed the allowed-combinations extension in the MPD;
3. show the client-side recovery of per-track bitrates from HLS media
   playlists (byte ranges / EXT-X-BITRATE) — the information a player
   needs for sane demuxed adaptation but which the top-level master
   playlist does not carry.
"""

from repro import drama_show
from repro.core import hsub_combinations
from repro.manifest import (
    package_dash,
    package_hls,
    parse_master_playlist,
    parse_mpd,
    write_master_playlist,
    write_mpd,
)


def main() -> None:
    content = drama_show()
    combos = hsub_combinations(content)

    # -- DASH with the allowed-combinations extension -------------------
    mpd = package_dash(content, allowed_combinations=combos)
    mpd_text = write_mpd(mpd)
    print("== DASH MPD (first 3 lines worth) ==")
    print(mpd_text[:400], "...\n")
    reparsed = parse_mpd(mpd_text)
    print("allowed combinations carried through XML round-trip:")
    print("  ", reparsed.allowed_combinations, "\n")

    # -- HLS with the curated subset -------------------------------------
    package = package_hls(content, combinations=combos)
    master_text = write_master_playlist(package.master)
    print("== HLS master playlist (H_sub) ==")
    print(master_text)

    parsed_master = parse_master_playlist(master_text)
    print("variants parsed back:", ", ".join(parsed_master.combination_names), "\n")

    # -- client-side per-track bitrate recovery --------------------------
    print("== per-track bitrates recovered from media playlists ==")
    print(f"{'track':<6} {'avg kbps':>9} {'peak kbps':>10}")
    for track_id, (avg, peak) in sorted(package.derived_track_bitrates().items()):
        print(f"{track_id:<6} {avg:>9.0f} {peak:>10.0f}")
    print(
        "\nWith these, a player can budget audio and video individually — "
        "what ExoPlayer lacked under HLS (it priced V3 at the 840 kbps "
        "aggregate of variant V3+A2 instead of V3's own "
        f"{content.video.by_id('V3').declared_kbps:.0f} kbps)."
    )


if __name__ == "__main__":
    main()
