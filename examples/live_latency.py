#!/usr/bin/env python3
"""Live streaming: how far behind the live edge should a client join?

HLS guidance says to start three target durations behind the live edge.
This example quantifies why, using the library's live mode (chunks
publish as the packager finishes them): joining closer to the edge
caps the client's buffer, which caps the achievable quality — joining
farther back buys quality and stability with latency.
"""

from repro import MediaType, drama_show, shared, simulate
from repro.core import RecommendedPlayer, hsub_combinations
from repro.net import constant
from repro.sim import SessionConfig

LIVE_OFFSET_S = 2.0  # encoder+packager pipeline delay
LINK_KBPS = 1000.0


def main() -> None:
    content = drama_show()
    hsub = hsub_combinations(content)
    chunk_s = content.chunk_duration_s
    print(
        f"live stream: {chunk_s:.0f} s chunks, {LIVE_OFFSET_S:.0f} s packaging "
        f"offset, {LINK_KBPS:.0f} kbps link\n"
    )
    header = (
        f"{'join behind':>12} {'latency s':>10} {'stalls':>7} {'rebuf s':>8} "
        f"{'video kbps':>11} {'audio kbps':>11} {'steady combo':>13}"
    )
    print(header)
    print("-" * len(header))
    for join_chunks in (1, 2, 3, 4, 5):
        config = SessionConfig(
            live_offset_s=LIVE_OFFSET_S,
            startup_threshold_s=join_chunks * chunk_s,
        )
        result = simulate(
            content, RecommendedPlayer(hsub), shared(constant(LINK_KBPS)), config
        )
        latency = result.ended_at_s - content.duration_s
        names = result.combination_names()
        steady = max(set(names[30:]), key=names[30:].count)
        print(
            f"{join_chunks:>9} ch {latency:>10.2f} {result.n_stalls:>7d} "
            f"{result.total_rebuffer_s:>8.1f} "
            f"{result.time_weighted_bitrate_kbps(MediaType.VIDEO):>11.0f} "
            f"{result.time_weighted_bitrate_kbps(MediaType.AUDIO):>11.0f} "
            f"{steady:>13}"
        )
    print(
        "\nJoining at the edge pins both tracks at the bottom rung — the "
        "decision-time buffer never exceeds ~1 s, under every higher "
        "combination's download time. Three chunks back (the HLS rule) is "
        "the first join distance that sustains the VOD steady state."
    )


if __name__ == "__main__":
    main()
