#!/usr/bin/env python3
"""Four ABR control laws, all honouring the paper's best practices.

Section 4.2 specifies *what* a demuxed-aware player must do — adapt
audio, stay within allowed combinations, decide jointly, keep buffers
balanced — but not *which* controller to use. This example runs four:

* rate hysteresis (``RecommendedPlayer``),
* rate hysteresis priced with true per-chunk VBR sizes
  (``ChunkAwarePlayer``, enabled by the Section-4.1 manifests),
* horizon optimization (``MpcPlayer``),
* Lyapunov buffer control (``JointBolaPlayer``),

over an LTE-like Markov link, then prints their QoE decompositions.
"""

from repro import MediaType, drama_show, shared, simulate
from repro.core import (
    ChunkAwarePlayer,
    JointBolaPlayer,
    MpcPlayer,
    RecommendedPlayer,
    hsub_combinations,
)
from repro.manifest import package_hls
from repro.net import lte_preset
from repro.qoe import compute_qoe


def main() -> None:
    content = drama_show()
    hsub = hsub_combinations(content)
    package = package_hls(content, combinations=hsub)
    algorithms = {
        "recommended": lambda: RecommendedPlayer(hsub),
        "chunk-aware": lambda: ChunkAwarePlayer.from_hls_package(hsub, package),
        "mpc": lambda: MpcPlayer(hsub),
        "bola-joint": lambda: JointBolaPlayer(hsub),
    }

    trace = lte_preset(seed=11)
    print(f"link: LTE-like Markov profile, mean {trace.average_kbps():.0f} kbps\n")
    header = (
        f"{'algorithm':<13} {'video':>6} {'audio':>6} {'stalls':>6} "
        f"{'rebuf s':>8} {'switches':>8} {'QoE':>8}"
    )
    print(header)
    print("-" * len(header))
    for name, make_player in algorithms.items():
        result = simulate(content, make_player(), shared(lte_preset(seed=11)))
        qoe = compute_qoe(result, content)
        print(
            f"{name:<13} "
            f"{result.time_weighted_bitrate_kbps(MediaType.VIDEO):>6.0f} "
            f"{result.time_weighted_bitrate_kbps(MediaType.AUDIO):>6.0f} "
            f"{result.n_stalls:>6d} {result.total_rebuffer_s:>8.1f} "
            f"{qoe.video_switches + qoe.audio_switches:>8d} {qoe.score:>8.1f}"
        )
        assert set(result.combination_names()) <= set(hsub.names)
    print(
        "\nAll four stay inside the allowed combination set and keep the "
        "audio/video buffers within one chunk of each other — the "
        "practices hold regardless of the control law on top."
    )


if __name__ == "__main__":
    main()
