#!/usr/bin/env python3
"""Content-aware curation: music show vs action movie, TV vs phone.

Section 2.1 argues that the *server* should curate audio/video
combinations because it knows the content ("for music shows, the sound
quality may be relatively more important than video quality") and the
device. This example curates the same ladder four ways, streams each
over the same 1.5 Mbps link, and shows how the curation shifts the
audio/video quality split without touching the player.
"""

from repro import MediaType, drama_show, shared, simulate
from repro.core import (
    ACTION_MOVIE,
    DRAMA,
    HOME_THEATER,
    MOBILE_HANDSET,
    MUSIC_SHOW,
    RecommendedPlayer,
)
from repro.net import constant
from repro.qoe import compute_qoe


def main() -> None:
    content = drama_show()
    link = 1500.0
    cases = [
        ("drama / home theater", DRAMA, HOME_THEATER),
        ("music show / home theater", MUSIC_SHOW, HOME_THEATER),
        ("action movie / home theater", ACTION_MOVIE, HOME_THEATER),
        ("drama / mobile handset", DRAMA, MOBILE_HANDSET),
    ]

    print(f"link: constant {link:.0f} kbps\n")
    header = f"{'scenario':<28} {'combos':<44} {'video':>6} {'audio':>6} {'QoE':>8}"
    print(header)
    print("-" * len(header))
    for label, policy, device in cases:
        combos = policy.curate(content, device=device)
        player = RecommendedPlayer(combos)
        result = simulate(content, player, shared(constant(link)))
        qoe = compute_qoe(result, content)
        print(
            f"{label:<28} {','.join(combos.names):<44} "
            f"{result.time_weighted_bitrate_kbps(MediaType.VIDEO):>6.0f} "
            f"{result.time_weighted_bitrate_kbps(MediaType.AUDIO):>6.0f} "
            f"{qoe.score:>8.1f}"
        )

    print(
        "\nNote how the music-show curation trades video bitrate for audio "
        "quality at the same link rate, and the handset curation never "
        "wastes bits on >480p video or surround audio."
    )


if __name__ == "__main__":
    main()
