#!/usr/bin/env python3
"""Demuxed vs muxed delivery: origin storage and CDN cache efficiency.

Quantifies the two Section-1 advantages of demuxed tracks on the
Table-1 title: origin stores M+N tracks instead of MxN, and a CDN in
front of the origin serves far more bytes from cache when a population
of viewers mixes audio tracks (languages/qualities) over shared video.
"""

import random

from repro import drama_show
from repro.net import CdnCache, OriginServer


def simulate_population(muxed: bool, n_users: int = 40, seed: int = 7):
    content = drama_show()
    origin = OriginServer(content, muxed=muxed)
    cache = CdnCache(origin, capacity_bits=origin.storage_bits())
    rng = random.Random(seed)
    video_ids = content.video.track_ids
    audio_ids = content.audio.track_ids
    for _ in range(n_users):
        # Most users land on the same few video rungs (similar access
        # networks); audio choice varies with language/preference.
        video_id = rng.choice(video_ids[2:5])
        audio_id = rng.choice(audio_ids)
        for index in range(content.n_chunks):
            cache.fetch_position(video_id, audio_id, index)
    return origin, cache


def main() -> None:
    print(f"{'mode':<10} {'origin storage (Gb)':>20} {'CDN hit ratio':>14} "
          f"{'origin egress (Gb)':>20}")
    for muxed in (False, True):
        origin, cache = simulate_population(muxed)
        mode = "muxed" if muxed else "demuxed"
        print(
            f"{mode:<10} {origin.storage_bits() / 1e9:>20.2f} "
            f"{cache.stats.hit_ratio:>13.1%} "
            f"{origin.stats.bits_served / 1e9:>20.2f}"
        )
    print(
        "\nDemuxed wins twice: the origin stores M+N tracks instead of MxN, "
        "and users who share a video rung but differ in audio reuse each "
        "other's cached video chunks."
    )


if __name__ == "__main__":
    main()
