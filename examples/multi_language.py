#!/usr/bin/env python3
"""Multi-language audio: storage math, HLS authoring, playback.

Section 1's motivating service stores "more than one audio variant —
e.g., to support multiple languages, or multiple audio quality levels
or both". This example builds the "both" case on the Table-1 title —
three quality rungs x five languages — and shows:

1. the storage blow-up muxed delivery would incur (M·N·L objects);
2. the Apple-style HLS authoring (one rendition group per audio rung,
   all languages inside each group);
3. a Spanish-language playback session running through the standard
   best-practices player, untouched.
"""

from repro import drama_show, shared, simulate
from repro.core import RecommendedPlayer, curated_combinations
from repro.manifest import package_hls_multilanguage, write_master_playlist
from repro.media import make_catalog
from repro.net import constant
from repro.qoe import compute_qoe

LANGUAGES = ("en", "es", "fr", "de", "ja")


def main() -> None:
    catalog = make_catalog(drama_show(), LANGUAGES, default_lang="en")

    print(
        f"catalog: {catalog.n_video_tracks} video x {catalog.n_audio_rungs} "
        f"audio rungs x {catalog.n_languages} languages"
    )
    demuxed_gb = catalog.storage_bits_demuxed() / 1e9
    muxed_gb = catalog.storage_bits_muxed() / 1e9
    print(
        f"origin storage: demuxed {demuxed_gb:.2f} Gb "
        f"(M + N*L = {catalog.n_video_tracks} + "
        f"{catalog.n_audio_rungs * catalog.n_languages} tracks), "
        f"muxed {muxed_gb:.2f} Gb "
        f"(M*N*L = "
        f"{catalog.n_video_tracks * catalog.n_audio_rungs * catalog.n_languages} "
        f"objects) -> {catalog.storage_ratio():.1f}x blow-up\n"
    )

    package = package_hls_multilanguage(
        catalog, combinations=curated_combinations(catalog.base)
    )
    master_text = write_master_playlist(package.master)
    media_lines = [
        line for line in master_text.splitlines() if line.startswith("#EXT-X-MEDIA")
    ]
    print(f"master playlist: {len(package.master.variants)} variants, "
          f"{len(media_lines)} audio renditions in "
          f"{len(package.master.audio_group_ids)} groups")
    for line in media_lines[:6]:
        print(" ", line[:110])
    print("  ...\n")

    spanish = catalog.content_for("es")
    player = RecommendedPlayer(curated_combinations(spanish))
    result = simulate(spanish, player, shared(constant(1200.0)))
    print("Spanish playback over a 1.2 Mbps link:")
    print("  combinations:", result.distinct_combinations())
    print("  QoE:", compute_qoe(result, spanish).as_dict())


if __name__ == "__main__":
    main()
