#!/usr/bin/env python3
"""Player shootout: the three measured players vs the best practices.

Re-creates the paper's Section-3 comparison as one table: each player
streams the same drama show over the same links; the columns show the
failure modes the paper documents (stalls for ExoPlayer-HLS, pinned
bandwidth for Shaka, undesirable pairs and unbalanced buffers for
dash.js) and how the Section-4 player avoids them.
"""

from repro import MediaType, drama_show, shared, simulate
from repro.core import RecommendedPlayer, hsub_combinations
from repro.experiments.traces import fig3_trace
from repro.manifest import package_dash, package_hls
from repro.net import constant
from repro.players import DashJsPlayer, ExoPlayerDash, ExoPlayerHls, ShakaPlayer
from repro.qoe import compute_qoe

HEADER = (
    f"{'link':<14} {'player':<16} {'video':>6} {'audio':>6} {'stalls':>6} "
    f"{'rebuf s':>8} {'switch':>6} {'imbal s':>8} {'bad':>4} {'QoE':>8}"
)


def run(content, name, player, network):
    result = simulate(content, player, network)
    qoe = compute_qoe(result, content)
    return (
        f"{name:<16} "
        f"{result.time_weighted_bitrate_kbps(MediaType.VIDEO):>6.0f} "
        f"{result.time_weighted_bitrate_kbps(MediaType.AUDIO):>6.0f} "
        f"{result.n_stalls:>6d} {result.total_rebuffer_s:>8.1f} "
        f"{qoe.video_switches + qoe.audio_switches:>6d} "
        f"{result.max_buffer_imbalance_s():>8.1f} "
        f"{qoe.undesirable_chunks:>4d} {qoe.score:>8.1f}"
    )


def main() -> None:
    content = drama_show()
    dash = package_dash(content)
    hall = package_hls(content).master
    hsub = hsub_combinations(content)
    hsub_a3_first = package_hls(
        content, combinations=hsub, audio_order=["A3", "A2", "A1"]
    ).master

    scenarios = [
        ("700 kbps", lambda: shared(constant(700.0))),
        ("1 Mbps", lambda: shared(constant(1000.0))),
        ("vary ~600", lambda: shared(fig3_trace())),
        ("3 Mbps", lambda: shared(constant(3000.0))),
    ]

    print(HEADER)
    print("-" * len(HEADER))
    for label, make_network in scenarios:
        rows = [
            ("exoplayer-dash", lambda: ExoPlayerDash(dash)),
            ("exoplayer-hls", lambda: ExoPlayerHls(hsub_a3_first)),
            ("shaka", lambda: ShakaPlayer.from_hls(hall)),
            ("dashjs", lambda: DashJsPlayer(dash)),
            ("recommended", lambda: RecommendedPlayer(hsub)),
        ]
        for name, make_player in rows:
            print(f"{label:<14} " + run(content, name, make_player(), make_network()))
        print()


if __name__ == "__main__":
    main()
