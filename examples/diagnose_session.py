#!/usr/bin/env python3
"""The paper's methodology in a box: run a player, diagnose its session.

Section 3 of the paper is a series of diagnoses — run a controlled
experiment, inspect the timelines, name the root cause. The library
automates the pattern: :func:`repro.qoe.diagnose` inspects a finished
session and reports which documented pathologies it exhibits, with the
evidence. This example diagnoses all four players on the link that best
exposes each.
"""

from repro import drama_show, shared, simulate
from repro.core import RecommendedPlayer, hsub_combinations
from repro.experiments.traces import fig3_trace, fig4b_trace
from repro.manifest import package_dash, package_hls
from repro.net import ResilienceModel, RetryPolicy, constant
from repro.players import DashJsPlayer, ExoPlayerHls, ShakaPlayer
from repro.qoe import diagnose
from repro.sim import SessionConfig


def print_resilience_counters(result) -> None:
    """Failure/retry/resume bookkeeping for one finished session."""
    accounting = result.byte_accounting()
    print(
        f"  resilience: {len(result.failures)} failures "
        f"({result.failures_by_kind() or 'none'}), "
        f"{result.n_retries} retries, {len(result.skips)} skips"
    )
    print(
        f"  bytes: served {accounting['bits_served'] / 1e6:.1f} Mb = "
        f"played {accounting['bits_played'] / 1e6:.1f} + "
        f"wasted {accounting['bits_wasted'] / 1e6:.1f} + "
        f"resumed {accounting['bits_resumed'] / 1e6:.1f} "
        f"(reconciles: {accounting['reconciles']})"
    )
    if result.termination_reason is not None:
        print(f"  terminated early: {result.termination_reason}")


def main() -> None:
    content = drama_show()
    hsub = hsub_combinations(content)
    scenarios = [
        (
            "ExoPlayer-HLS on the Fig. 3 trace",
            ExoPlayerHls(
                package_hls(
                    content, combinations=hsub, audio_order=["A3", "A2", "A1"]
                ).master
            ),
            shared(fig3_trace()),
        ),
        (
            "Shaka on a constant 1 Mbps link (Fig. 4a)",
            ShakaPlayer.from_hls(package_hls(content).master),
            shared(constant(1000.0)),
        ),
        (
            "Shaka on the Fig. 4b dynamic trace",
            ShakaPlayer.from_hls(package_hls(content).master),
            shared(fig4b_trace()),
        ),
        (
            "dash.js on a constant 700 kbps link (Fig. 5)",
            DashJsPlayer(package_dash(content)),
            shared(constant(700.0)),
        ),
        (
            "best-practices player on the same 700 kbps link",
            RecommendedPlayer(hsub),
            shared(constant(700.0)),
        ),
    ]
    for title, player, network in scenarios:
        result = simulate(content, player, network)
        print(f"== {title} ==")
        findings = diagnose(result, content)
        if not findings:
            print("  clean: no known pathologies\n")
            continue
        for finding in findings:
            print(f"  {finding}")
        print()

    # The same methodology under CDN weather: inject a seeded failure
    # taxonomy, retry with backoff and range-resume, and read off the
    # failure/retry/resume counters next to the QoE diagnosis.
    print("== best-practices player, 10% request failures, 900 kbps ==")
    config = SessionConfig(
        failure_model=ResilienceModel(0.10, seed=1),
        retry_policy=RetryPolicy(),
    )
    result = simulate(
        content, RecommendedPlayer(hsub), shared(constant(900.0)), config
    )
    for finding in diagnose(result, content) or ["clean: no known pathologies"]:
        print(f"  {finding}")
    print_resilience_counters(result)


if __name__ == "__main__":
    main()
