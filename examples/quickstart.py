#!/usr/bin/env python3
"""Quickstart: stream the paper's drama show with the best-practices player.

Builds the Table-1 title, curates the H_sub combination set, streams it
over a time-varying link with the recommended (Section 4.2) player, and
prints the session summary plus its QoE decomposition.
"""

from repro import drama_show, shared, simulate
from repro.core import RecommendedPlayer, hsub_combinations
from repro.net import random_walk
from repro.qoe import compute_qoe


def main() -> None:
    content = drama_show()
    print(f"content: {content.name}, {content.duration_s:.0f} s, "
          f"{len(content.video)} video + {len(content.audio)} audio tracks")

    allowed = hsub_combinations(content)
    print("allowed combinations:", ", ".join(allowed.names))

    player = RecommendedPlayer(allowed)
    trace = random_walk(mean_kbps=900, seed=7)
    print(f"link: time-varying, mean {trace.average_kbps():.0f} kbps")

    result = simulate(content, player, shared(trace))

    print("\n-- session summary --")
    for key, value in result.summary().items():
        print(f"  {key}: {value}")

    print("\n-- QoE --")
    for key, value in compute_qoe(result, content).as_dict().items():
        print(f"  {key}: {value}")

    print("\nper-position selections (first 12):")
    for index, video_id, audio_id in result.selected_combinations()[:12]:
        print(f"  chunk {index:2d}: {video_id}+{audio_id}")


if __name__ == "__main__":
    main()
