"""repro.analysis — full-tree code lint speed.

The code-lint CI gate runs every UNIT/POOL/DET/SHARE/HOT rule over
all of ``src/repro`` on each push, so analyzer throughput is a
trajectory we track: a rule that re-walks the AST per finding or
re-tokenizes per query shows up here long before the gate feels slow.
The ``jobs4`` timer pins the two-phase parallel path (summarize, merge
the whole-program index, lint) that ``repro-abr lint --jobs N`` runs.
"""

from pathlib import Path

import pytest

from repro.analysis import AnalyzerConfig, analyze_files
from repro.analysis.parallel import analyze_files_parallel

SRC_REPRO = Path(__file__).parent.parent / "src" / "repro"

FILES = {
    str(p.relative_to(SRC_REPRO.parent)): p.read_text()
    for p in sorted(SRC_REPRO.rglob("*.py"))
}


def test_bench_full_tree_code_lint(benchmark):
    findings = benchmark(analyze_files, FILES)
    assert findings == []  # the tree is pinned clean


def test_bench_full_tree_code_lint_jobs4(benchmark):
    findings = benchmark(analyze_files_parallel, FILES, None, 4)
    assert findings == []


def test_bench_units_family_only(benchmark):
    config = AnalyzerConfig(
        selected=frozenset(
            {
                "UNIT-MIX-ARITH",
                "UNIT-MIX-COMPARE",
                "UNIT-ASSIGN-MISMATCH",
                "UNIT-ARG-MISMATCH",
                "UNIT-RETURN-MISMATCH",
            }
        )
    )
    findings = benchmark(analyze_files, FILES, config)
    assert findings == []


def test_bench_single_module_lint(benchmark):
    name = "repro/runner/engine.py"
    files = {name: FILES[name]}
    findings = benchmark(analyze_files, files)
    assert findings == []


if __name__ == "__main__":  # pragma: no cover
    pytest.main([__file__, "--benchmark-only"])
