"""Table 1 — the drama-show ladder and its chunk synthesis."""

from repro.experiments.tables import run_table1


def test_bench_table1(benchmark):
    report = benchmark(run_table1)
    assert report.passed
    assert len(report.rows) == 9  # 3 audio + 6 video tracks
