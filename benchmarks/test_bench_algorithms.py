"""X4 — the four practice-compliant ABR algorithms."""

from repro.experiments.algorithms import run_algorithms


def test_bench_algorithms(benchmark):
    report = benchmark(run_algorithms)
    assert report.passed
    assert len(report.rows) == 3 * 4  # 3 profiles x 4 algorithms
