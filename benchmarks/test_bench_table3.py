"""Table 3 — the curated H_sub combination bitrates."""

from repro.experiments.tables import run_table3


def test_bench_table3(benchmark):
    report = benchmark(run_table3)
    assert report.passed
    assert len(report.rows) == 6
