"""Micro-benchmarks of the library's hot paths.

Not paper artifacts — these size the substrate itself: how fast the
event-driven simulator plays a session, how expensive each estimator
and manifest codec is. Useful when extending the library (e.g. running
thousands of sessions for a trace study).
"""

from repro.core.combinations import hsub_combinations
from repro.core.player import RecommendedPlayer
from repro.manifest.dash import parse_mpd, write_mpd
from repro.manifest.hls import parse_master_playlist, write_master_playlist
from repro.manifest.packager import package_dash, package_hls
from repro.media.content import drama_show
from repro.net.link import shared
from repro.net.traces import constant, random_walk
from repro.players.dashjs import DashJsPlayer
from repro.players.estimators import ShakaEstimator
from repro.players.exoplayer import ExoPlayerDash
from repro.players.shaka import ShakaPlayer
from repro.sim.session import simulate

CONTENT = drama_show()
DASH = package_dash(CONTENT)
HLS = package_hls(CONTENT)


def test_bench_content_synthesis(benchmark):
    content = benchmark(drama_show)
    assert content.n_chunks == 60


def test_bench_session_exoplayer(benchmark):
    def run():
        return simulate(CONTENT, ExoPlayerDash(DASH), shared(constant(900.0)))

    result = benchmark(run)
    assert result.completed


def test_bench_session_shaka(benchmark):
    def run():
        return simulate(CONTENT, ShakaPlayer.from_hls(HLS.master), shared(constant(1000.0)))

    result = benchmark(run)
    assert result.completed


def test_bench_session_dashjs(benchmark):
    def run():
        return simulate(CONTENT, DashJsPlayer(DASH), shared(constant(700.0)))

    result = benchmark(run)
    assert result.completed


def test_bench_session_recommended_variable_link(benchmark):
    combos = hsub_combinations(CONTENT)
    trace = random_walk(800, seed=3)

    def run():
        return simulate(CONTENT, RecommendedPlayer(combos), shared(trace))

    result = benchmark(run)
    assert result.completed


def test_bench_mpd_roundtrip(benchmark):
    def run():
        return parse_mpd(write_mpd(DASH))

    parsed = benchmark(run)
    assert len(parsed.adaptation_sets) == 2


def test_bench_hls_master_roundtrip(benchmark):
    def run():
        return parse_master_playlist(write_master_playlist(HLS.master))

    parsed = benchmark(run)
    assert len(parsed.variants) == 18


def test_bench_shaka_estimator_sampling(benchmark):
    from repro.sim.records import DownloadRecord, ProgressSegment

    records = [
        DownloadRecord(
            medium=track.media_type,
            track_id=track.track_id,
            chunk_index=0,
            size_bits=2_000_000.0,
            started_at=i * 2.0,
            completed_at=i * 2.0 + 1.0,
            segments=(
                ProgressSegment(start_s=i * 2.0, end_s=i * 2.0 + 1.0, bits=2_000_000.0),
            ),
        )
        for i, track in enumerate(list(CONTENT.video) + list(CONTENT.audio))
    ]

    def run():
        estimator = ShakaEstimator()
        for record in records:
            estimator.observe_download(record)
        return estimator.get_estimate_kbps()

    estimate = benchmark(run)
    assert estimate > 500.0
