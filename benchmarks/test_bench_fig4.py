"""Fig. 4 — Shaka bandwidth mis-estimation under demuxed A/V."""

from repro.experiments.fig4 import run_fig4a, run_fig4b


def test_bench_fig4a(benchmark):
    report = benchmark(run_fig4a)
    assert report.passed


def test_bench_fig4b(benchmark):
    report = benchmark(run_fig4b)
    assert report.passed
