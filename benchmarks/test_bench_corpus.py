"""X5 — the HSPA trace-corpus study across all players."""

from repro.experiments.corpus import run_corpus


def test_bench_corpus(benchmark):
    benchmark.pedantic(run_corpus, rounds=1, iterations=1)
    # The fidelity assertion runs once outside the timed loop (the
    # corpus is 60 sessions; timing it repeatedly would dominate the
    # whole benchmark run).
    report = run_corpus()
    assert report.passed
