"""Fig. 2 — ExoPlayer DASH predetermined-combination limitations."""

from repro.experiments.fig2 import run_fig2a, run_fig2b


def test_bench_fig2a(benchmark):
    report = benchmark(run_fig2a)
    assert report.passed


def test_bench_fig2b(benchmark):
    report = benchmark(run_fig2b)
    assert report.passed
