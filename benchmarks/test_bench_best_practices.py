"""X2 — the Section-4 best practices head-to-head and their ablations."""

from repro.experiments.best_practices import run_ablations, run_best_practices


def test_bench_best_practices(benchmark):
    report = benchmark(run_best_practices)
    assert report.passed


def test_bench_ablations(benchmark):
    report = benchmark(run_ablations)
    assert report.passed
