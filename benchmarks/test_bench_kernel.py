"""Session-kernel throughput timers: the ROADMAP item-1 speed contract.

Unlike the paper-artifact benches, these time *sessions per second*
through the event-driven kernel over a representative player x trace x
failure grid — the quantity every sweep, chaos run and population
study pays for. ``BENCH_baseline.json`` pins the before/after numbers
of the kernel overhaul; the perf CI job regresses against them via
``benchmarks/perf_gate.py``.

The session timers run over fine-grained bandwidth profiles (0.5 s
segments, the granularity :func:`repro.net.mahimahi.load_mahimahi` and
``traces.from_csv`` produce from real cellular captures) because that
is what the paper's experiments replay. It is also where the trace
cursor earns its keep: per-event lookups against a many-hundred-segment
trace were the old kernel's dominant cost. On toy two-segment traces
the overhaul is worth ~3x; on measured-trace workloads it is ~10x.

Each timer asserts the sessions it runs actually complete (or reach a
verdict) before the timing is accepted: a kernel that got fast by
dropping work does not count.
"""

from repro.experiments.corpus import drama_show
from repro.net.link import SeparatePaths, shared
from repro.net.resilience import ResilienceModel, RetryPolicy
from repro.net.traces import random_walk
from repro.players.fixed import FixedTracksPlayer
from repro.runner.jobs import PlayerSpec
from repro.sim.session import Session, SessionConfig, simulate

CONTENT = drama_show()

GRID_PLAYERS = ["shaka", "dashjs", "exoplayer-dash", "recommended"]

#: Measured-trace shape: 10 minutes of bandwidth at 0.5 s granularity,
#: looped — what load_mahimahi(window_s=0.5) yields from a real capture.
_FINE = dict(n_segments=1200, segment_duration_s=0.5)


def _fine_trace(mean_kbps, seed, floor_kbps=50.0):
    return random_walk(mean_kbps, seed=seed, floor_kbps=floor_kbps, **_FINE)


def test_bench_kernel_grid(benchmark):
    """The headline grid: 4 adaptive players x 3 measured-shape traces."""
    traces = [_fine_trace(1500.0, 3), _fine_trace(900.0, 4), _fine_trace(2400.0, 5)]

    def run():
        results = []
        for name in GRID_PLAYERS:
            for trace in traces:
                player = PlayerSpec(name).build(CONTENT)
                results.append(
                    simulate(CONTENT, player, shared(trace, rtt_s=0.05))
                )
        return results

    results = benchmark(run)
    assert len(results) == 12 and all(r.completed for r in results)


def test_bench_kernel_fixed_grid(benchmark):
    """Kernel-isolated grid: non-adaptive player, pure event-loop cost."""
    traces = [_fine_trace(1500.0, s) for s in (1, 2, 3, 4)]

    def run():
        results = []
        for trace in traces:
            for v, a in (("V3", "A2"), ("V1", "A1")):
                player = FixedTracksPlayer(
                    video_id=v, audio_id=a, buffer_target_s=30.0
                )
                results.append(
                    simulate(CONTENT, player, shared(trace, rtt_s=0.05))
                )
        return results

    results = benchmark(run)
    assert len(results) == 8 and all(r.completed for r in results)


def test_bench_kernel_failure_grid(benchmark):
    """The failure-path grid: taxonomy failures, retries, range-resume."""
    trace = _fine_trace(1500.0, 3)

    def run():
        results = []
        for name in ("shaka", "recommended"):
            for seed in range(3):
                player = PlayerSpec(name).build(CONTENT)
                config = SessionConfig(
                    failure_model=ResilienceModel(0.2, seed=seed),
                    retry_policy=RetryPolicy(),
                )
                results.append(
                    Session(
                        CONTENT, player, shared(trace, rtt_s=0.05), config
                    ).run()
                )
        return results

    results = benchmark(run)
    assert len(results) == 6
    assert all(r.ended_at_s is not None for r in results)


def test_bench_kernel_stall_heavy(benchmark):
    """An underprovisioned link: long stalls, many trace boundaries."""
    trace = _fine_trace(260.0, 5, floor_kbps=60.0)

    def run():
        player = PlayerSpec("dashjs").build(CONTENT)
        return simulate(CONTENT, player, shared(trace, rtt_s=0.05))

    result = benchmark(run)
    assert result.completed and result.n_stalls > 0


def test_bench_kernel_separate_paths(benchmark):
    """Dual-trace topology: two cursor-backed traces per event."""
    network = SeparatePaths(
        _fine_trace(1800.0, 7),
        _fine_trace(400.0, 11, floor_kbps=40.0),
        rtt_s=0.05,
    )

    def run():
        player = PlayerSpec("shaka").build(CONTENT)
        return simulate(CONTENT, player, network)

    result = benchmark(run)
    assert result.completed


def test_bench_trace_lookup(benchmark):
    """Monotonic bandwidth_at/next_change_after sweep over a
    1200-segment trace — the access pattern the session kernel
    generates against a measured capture."""
    trace = random_walk(1500.0, seed=3, **_FINE)
    period = trace.period_s

    def run():
        acc = 0.0
        t = 0.0
        while t < 4.0 * period:
            acc += trace.bandwidth_at(t)
            nxt = trace.next_change_after(t)
            t = nxt if nxt > t else t + 0.5
        return acc

    acc = benchmark(run)
    assert acc > 0.0
