"""repro.runner — engine overhead and cache replay speed.

Two costs matter: what the job/spec machinery adds on top of the bare
serial loop (should be negligible), and how fast a fully warmed cache
replays a grid (should be orders of magnitude under simulation).
"""

import pytest

from repro.runner import (
    PlayerSpec,
    ResultCache,
    SimulationJob,
    TraceSpec,
    run_jobs,
)

GRID = [
    SimulationJob(
        player=PlayerSpec(name, combinations=combos),
        trace=TraceSpec.constant(kbps),
    )
    for kbps in (500.0, 1000.0, 2000.0)
    for name, combos in (("recommended", "hsub"), ("dashjs", "hsub"))
]


def test_bench_runner_serial_grid(benchmark):
    outcomes = benchmark(run_jobs, GRID, 1)
    assert len(outcomes) == len(GRID)
    assert all(o.result.completed for o in outcomes)


def test_bench_runner_cached_replay(benchmark, tmp_path):
    cache = ResultCache(str(tmp_path / "cache"))
    run_jobs(GRID, workers=1, cache=cache)  # warm it

    def replay():
        return run_jobs(GRID, workers=1, cache=ResultCache(str(tmp_path / "cache")))

    outcomes = benchmark(replay)
    assert all(o.cached for o in outcomes)


def test_bench_job_key_hashing(benchmark):
    job = GRID[0]
    key = benchmark(job.key)
    assert len(key) == 64


if __name__ == "__main__":  # pragma: no cover
    pytest.main([__file__, "--benchmark-only"])
