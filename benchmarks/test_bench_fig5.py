"""Fig. 5 — dash.js independent A/V adaptation and buffer imbalance."""

from repro.experiments.fig5 import run_fig5


def test_bench_fig5(benchmark):
    report = benchmark(run_fig5)
    assert report.passed
