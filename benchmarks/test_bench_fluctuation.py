"""X1 — Shaka's rate-closest rule fluctuation across close combinations."""

from repro.experiments.fluctuation import run_fluctuation


def test_bench_fluctuation(benchmark):
    report = benchmark(run_fluctuation)
    assert report.passed
