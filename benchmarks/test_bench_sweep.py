"""X3 — the fixed-bandwidth sweep across all players."""

from repro.experiments.sweeps import run_sweep


def test_bench_sweep(benchmark):
    report = benchmark(run_sweep)
    assert report.passed
    assert len(report.rows) == 7 * 5  # 7 link rates x 5 players
