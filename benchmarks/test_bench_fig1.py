"""Fig. 1 — demuxed streaming structure, storage and CDN effects."""

from repro.experiments.fig1 import run_fig1


def test_bench_fig1(benchmark):
    report = benchmark(run_fig1)
    assert report.passed
