"""X7 — live-edge latency/quality trade-off."""

from repro.experiments.live import run_live


def test_bench_live(benchmark):
    report = benchmark(run_live)
    assert report.passed
