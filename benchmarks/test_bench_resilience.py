"""X8 — transient-failure resilience across players."""

from repro.experiments.resilience import run_resilience


def test_bench_resilience(benchmark):
    benchmark.pedantic(run_resilience, rounds=1, iterations=1)
    report = run_resilience()
    assert report.passed
