"""Table 2 — all 18 audio/video combination bitrates (H_all)."""

from repro.experiments.tables import run_table2


def test_bench_table2(benchmark):
    report = benchmark(run_table2)
    assert report.passed
    assert len(report.rows) == 18
