"""Performance-regression gate for the kernel benchmark timers.

Compares a fresh ``pytest-benchmark`` JSON export against the pinned
numbers in ``BENCH_baseline.json`` and fails (exit 1) when any shared
timer regressed beyond the tolerance band. Usage::

    PYTHONPATH=src pytest benchmarks/test_bench_kernel.py \
        --benchmark-only --benchmark-json=bench.json
    python benchmarks/perf_gate.py bench.json

    # Accept a deliberate change and refresh the pinned numbers:
    python benchmarks/perf_gate.py bench.json --update

Gating is on each timer's *minimum* round time: the minimum is the
least noise-sensitive location statistic a shared CI box offers (mean
and stddev absorb scheduler interference; the min is bounded below by
the actual cost of the work). The tolerance band must stay generous
enough for cross-machine variance — the baseline records one machine,
CI runs another — while still catching an accidental return of the
pre-overhaul kernel, which is multiples slower, not percent slower
(see the ``kernel_overhaul`` section of the baseline).
"""

from __future__ import annotations

import argparse
import json
import sys


def distill(pytest_benchmark_json: dict) -> dict:
    """Per-timer summary stats from a raw pytest-benchmark export."""
    out = {}
    for bench in pytest_benchmark_json["benchmarks"]:
        stats = bench["stats"]
        out[bench["name"]] = {
            "mean_s": round(stats["mean"], 6),
            "min_s": round(stats["min"], 6),
            "rounds": stats["rounds"],
            "stddev_s": round(stats["stddev"], 6),
        }
    return out


def gate(current: dict, baseline: dict, tolerance: float):
    """(failures, lines): regressions beyond ``tolerance`` x baseline."""
    failures = []
    lines = []
    shared = sorted(set(current) & set(baseline))
    for name in shared:
        base_min = baseline[name]["min_s"]
        cur_min = current[name]["min_s"]
        ratio = cur_min / base_min if base_min > 0 else float("inf")
        verdict = "ok"
        if ratio > tolerance:
            verdict = f"REGRESSION (> {tolerance:.2f}x)"
            failures.append(name)
        lines.append(
            f"  {name}: {cur_min * 1e3:9.2f} ms vs baseline "
            f"{base_min * 1e3:9.2f} ms ({ratio:5.2f}x)  {verdict}"
        )
    return failures, lines, shared


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("results", help="pytest-benchmark JSON export")
    parser.add_argument(
        "--baseline",
        default="BENCH_baseline.json",
        help="pinned baseline file (default: BENCH_baseline.json)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=2.0,
        metavar="X",
        help="fail when a timer's min exceeds X times its baseline min "
        "(default 2.0; use a wider band on machines unlike the one "
        "that recorded the baseline)",
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="refresh the baseline's pinned numbers from these results "
        "instead of gating (for deliberate, reviewed perf changes)",
    )
    args = parser.parse_args(argv)

    with open(args.results) as f:
        current = distill(json.load(f))
    with open(args.baseline) as f:
        base_doc = json.load(f)
    baseline = base_doc.get("benchmarks", {})

    if args.update:
        baseline.update(current)
        base_doc["benchmarks"] = baseline
        with open(args.baseline, "w") as f:
            json.dump(base_doc, f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"refreshed {len(current)} timer(s) in {args.baseline}")
        return 0

    failures, lines, shared = gate(current, baseline, args.tolerance)
    if not shared:
        print("perf gate: no timers in common with the baseline", file=sys.stderr)
        return 2
    print(f"perf gate: {len(shared)} timer(s), tolerance {args.tolerance:.2f}x")
    for line in lines:
        print(line)
    only_current = sorted(set(current) - set(baseline))
    if only_current:
        print(
            "  (not pinned yet, run --update to add: "
            + ", ".join(only_current)
            + ")"
        )
    if failures:
        print(f"perf gate: FAIL ({len(failures)} regression(s))")
        return 1
    print("perf gate: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
