"""Benchmark-suite configuration.

Each benchmark regenerates one paper artifact (table or figure) through
the full pipeline — content synthesis, packaging, player model,
event-driven simulation — and asserts the artifact reproduces before
timing is accepted. Run with::

    pytest benchmarks/ --benchmark-only
"""
