"""repro.topology — multi-client cohort kernel throughput.

Times the flash-crowd grid every chaos CI run pays for: cohorts of
concurrent sessions max-min fair-sharing edge bottlenecks, with and
without a mid-run edge outage. The timer asserts every session reaches
a verdict and the cohort invariants hold before the timing is
accepted — a kernel that got fast by losing sessions does not count.
"""

import pytest

from repro.chaos import check_cohort
from repro.runner import run_jobs
from repro.topology import (
    CohortJob,
    FaultDomainKind,
    FaultDomainSchedule,
    FaultWindow,
    TopologySpec,
)

_TOPOLOGY = TopologySpec.uniform(4, capacity_kbps=25_000.0)
_OUTAGE = FaultDomainSchedule(
    kinds=(),
    pinned=(
        FaultWindow(FaultDomainKind.EDGE_OUTAGE, "edge-1", 60.0, 100.0),
    ),
)

GRID = [
    CohortJob(
        topology=_TOPOLOGY,
        faults=faults,
        n_sessions=100,
        arrival_burst_s=30.0,
        seed=seed,
        keep_summaries=False,
    )
    for faults in (None, _OUTAGE)
    for seed in (0, 1)
]


def test_bench_cohort_grid(benchmark):
    """4 cells x 100 sessions: the CI cohort-chaos workload shape."""
    outcomes = benchmark(run_jobs, GRID, 1)
    assert len(outcomes) == len(GRID)
    for outcome in outcomes:
        result = outcome.result
        assert sum(result.verdict_counts.values()) == 100
        assert check_cohort(result) == []


if __name__ == "__main__":  # pragma: no cover
    pytest.main([__file__, "--benchmark-only"])
