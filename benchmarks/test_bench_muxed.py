"""X6 — muxed vs demuxed delivery comparison."""

from repro.experiments.muxed import run_muxed_vs_demuxed


def test_bench_muxed_vs_demuxed(benchmark):
    report = benchmark(run_muxed_vs_demuxed)
    assert report.passed
