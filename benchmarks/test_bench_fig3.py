"""Fig. 3 — ExoPlayer HLS fixed-audio stalls and manifest non-conformance."""

from repro.experiments.fig3 import run_fig3, run_fig3_a1_first


def test_bench_fig3(benchmark):
    report = benchmark(run_fig3)
    assert report.passed


def test_bench_fig3_a1_first(benchmark):
    report = benchmark(run_fig3_a1_first)
    assert report.passed
