"""Multi-client edge/origin topologies with correlated fault domains.

The paper's measurement setup is one client behind one throttled link;
its best practices are stated per session. This package asks the
operator's question instead: what happens to a *cohort* — a flash
crowd of hundreds of sessions spread over CDN edges — when the
infrastructure itself misbehaves? Faults here are correlated domains
(a whole edge goes dark, the origin browns out, a cache is flushed),
not independent per-request coin flips, because that correlation is
what actually stresses failover logic: every session on a dead edge
stampedes onto the same neighbor at once.

Layout:

* :mod:`~repro.topology.spec` — frozen edge/origin descriptions and
  deterministic session→edge placement;
* :mod:`~repro.topology.faults` — seeded fault-domain schedules
  (outages, brownouts, eviction storms) sharing the chaos schedule's
  sha256 idiom;
* :mod:`~repro.topology.cache` — the per-edge LRU chunk cache;
* :mod:`~repro.topology.jobs` — :class:`CohortJob`, the
  content-addressed unit the runner executes, caches and resumes.

The kernel that animates these specs lives in :mod:`repro.sim.cohort`;
cohort QoE folds into :class:`repro.qoe.aggregate.CohortAggregate`;
cohort invariants live in :mod:`repro.chaos.invariants`.
"""

from .cache import ChunkAddress, EdgeCache
from .faults import (
    ALL_FAULT_KINDS,
    ORIGIN_DOMAIN,
    FaultDomainKind,
    FaultDomainSchedule,
    FaultWindow,
)
from .jobs import COHORT_SPEC_SCHEMA_VERSION, CohortJob
from .spec import EdgeSpec, OriginSpec, TopologySpec

__all__ = [
    "ALL_FAULT_KINDS",
    "COHORT_SPEC_SCHEMA_VERSION",
    "ChunkAddress",
    "CohortJob",
    "EdgeCache",
    "EdgeSpec",
    "FaultDomainKind",
    "FaultDomainSchedule",
    "FaultWindow",
    "ORIGIN_DOMAIN",
    "OriginSpec",
    "TopologySpec",
]
