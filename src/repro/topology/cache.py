"""Deterministic LRU chunk cache for one simulated edge.

Hit/miss dynamics are driven by the *actual* chunk request stream the
cohort's sessions emit — which is what makes an eviction storm hurt:
the post-flush misses arrive exactly when a crowd is re-requesting the
same popular rungs. Insertion and recency order are the only state, so
identical request streams produce identical hit/miss sequences in any
process (no hashing randomization: keys are plain tuples in an
``OrderedDict``).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Tuple

#: A cached object: (track id, chunk index).
ChunkAddress = Tuple[str, int]


class EdgeCache:
    """Bounded LRU over chunk addresses with hit/miss/eviction counters.

    ``capacity_chunks=0`` disables caching entirely: every lookup is a
    miss and nothing is admitted (an edge reduced to a dumb proxy).
    """

    __slots__ = ("capacity_chunks", "_entries", "hits", "misses", "evictions")

    def __init__(self, capacity_chunks: int):
        if capacity_chunks < 0:
            raise ValueError(
                f"cache capacity must be >= 0 chunks, got {capacity_chunks}"
            )
        self.capacity_chunks = capacity_chunks
        self._entries: "OrderedDict[ChunkAddress, None]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, address: ChunkAddress) -> bool:
        """Is ``address`` cached? Touches recency on a hit."""
        if address in self._entries:
            self._entries.move_to_end(address)
            self.hits += 1
            return True
        self.misses += 1
        return False

    def admit(self, address: ChunkAddress) -> None:
        """Insert after a successful origin fetch, evicting LRU first."""
        if self.capacity_chunks == 0:
            return
        if address in self._entries:
            self._entries.move_to_end(address)
            return
        while len(self._entries) >= self.capacity_chunks:
            self._entries.popitem(last=False)
            self.evictions += 1
        self._entries[address] = None

    def flush(self) -> int:
        """Eviction storm: drop everything; returns the chunks lost."""
        dropped = len(self._entries)
        self._entries.clear()
        self.evictions += dropped
        return dropped
