"""Correlated fault domains: seeded outage/brownout/eviction windows.

The chaos harness (:mod:`repro.chaos`) injects *process*-level faults
into the runner; this module injects *infrastructure*-level faults into
the simulated topology. The distinction the paper's single-link model
cannot express is correlation: a real edge outage takes down every
session attached to that edge at once and stampedes them onto its
neighbors, which is nothing like per-request coin flips.

A :class:`FaultDomainSchedule` is frozen data scheduled sha256-style
like :class:`~repro.chaos.schedule.ChaosSchedule`: whether domain *d*
suffers window *i*, when, and for how long is a pure hash of
``(seed, kind, domain, i)`` — every cohort rerun, on any machine,
replays the identical storm. Tests (and the flash-crowd experiment)
can additionally *pin* exact windows for scenario control; pinned
windows participate in the spec and the job hash like drawn ones.
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass
from typing import Tuple

from ..errors import ExperimentError
from .spec import TopologySpec


class FaultDomainKind(enum.Enum):
    """What a fault window does to its domain while it is open.

    * ``EDGE_OUTAGE`` — the edge's uplink capacity drops to zero: new
      requests hang into their watchdog timeout, in-flight transfers
      trickle to a stop, and sessions fail over across the ring.
    * ``ORIGIN_BROWNOUT`` — cache misses pay ``latency_factor`` times
      the origin miss penalty and a deterministic fraction of them die
      as HTTP 5xx (the classic overloaded-origin storm).
    * ``EVICTION_STORM`` — the edge's cache is flushed at window start
      (a deploy, a purge, an LRU collapse): the subsequent miss burst
      hits the origin exactly when it hurts.
    """

    EDGE_OUTAGE = "edge_outage"
    ORIGIN_BROWNOUT = "origin_brownout"
    EVICTION_STORM = "eviction_storm"


#: ``--faults all`` shorthand.
ALL_FAULT_KINDS: Tuple[FaultDomainKind, ...] = tuple(FaultDomainKind)

#: Domain name used for origin-scoped windows.
ORIGIN_DOMAIN = "origin"


@dataclass(frozen=True)
class FaultWindow:
    """One fault window over one domain (an edge, or the origin)."""

    kind: FaultDomainKind
    domain: str
    start_s: float
    end_s: float
    #: Brownout miss-latency multiplier (ignored by other kinds).
    latency_factor: float = 4.0
    #: Brownout per-miss 5xx probability (ignored by other kinds).
    error_probability: float = 0.5

    def __post_init__(self) -> None:
        if self.start_s < 0:
            raise ExperimentError(
                f"fault window start must be >= 0, got {self.start_s}"
            )
        if self.end_s <= self.start_s:
            raise ExperimentError(
                f"fault window [{self.start_s}, {self.end_s}] is empty"
            )
        if self.latency_factor < 1.0:
            raise ExperimentError(
                f"latency factor must be >= 1, got {self.latency_factor}"
            )
        if not 0.0 <= self.error_probability <= 1.0:
            raise ExperimentError(
                "error probability must be in [0,1], got "
                f"{self.error_probability}"
            )

    def active(self, t: float) -> bool:
        return self.start_s <= t < self.end_s


@dataclass(frozen=True)
class FaultDomainSchedule:
    """Deterministic fault windows over a topology's fault domains.

    For every eligible domain (each edge for edge-scoped kinds, the
    origin for brownouts) and window slot ``i < windows_per_domain``,
    three uniforms hashed from ``(seed, kind, domain, i)`` decide
    whether the window exists (``probability`` gate), where its start
    falls in ``[horizon_s/8, horizon_s]`` (the first eighth is kept
    storm-free so cohorts establish steady state first), and nothing
    else — the duration is the fixed ``duration_s``, which is what
    makes a window a *correlated domain* rather than noise.

    ``pinned`` windows are unioned in verbatim: scenario tests pin an
    exact mid-run outage instead of fishing for a seed that draws one.
    """

    kinds: Tuple[FaultDomainKind, ...] = ALL_FAULT_KINDS
    seed: int = 0
    probability: float = 1.0
    windows_per_domain: int = 1
    duration_s: float = 20.0
    horizon_s: float = 240.0
    latency_factor: float = 4.0
    error_probability: float = 0.5
    pinned: Tuple[FaultWindow, ...] = ()

    def __post_init__(self) -> None:
        if not self.kinds and not self.pinned:
            raise ExperimentError(
                "fault schedule needs at least one kind or a pinned window"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise ExperimentError(
                f"fault probability must be in [0,1], got {self.probability}"
            )
        if self.windows_per_domain < 0:
            raise ExperimentError(
                f"windows per domain must be >= 0, got {self.windows_per_domain}"
            )
        if self.duration_s <= 0:
            raise ExperimentError(
                f"window duration must be positive, got {self.duration_s}"
            )
        if self.horizon_s <= 0:
            raise ExperimentError(
                f"horizon must be positive, got {self.horizon_s}"
            )

    def _draw(self, kind: FaultDomainKind, domain: str, slot: int):
        digest = hashlib.sha256(
            f"faultdom|{self.seed}|{kind.value}|{domain}|{slot}".encode("utf-8")
        ).digest()
        gate = int.from_bytes(digest[:8], "big") / 2**64
        when = int.from_bytes(digest[8:16], "big") / 2**64
        return gate, when

    def windows_for(self, topology: TopologySpec) -> Tuple[FaultWindow, ...]:
        """Every window this schedule opens over ``topology``, sorted."""
        windows = list(self.pinned)
        for kind in self.kinds:
            if kind is FaultDomainKind.ORIGIN_BROWNOUT:
                domains = [ORIGIN_DOMAIN]
            else:
                domains = [edge.edge_id for edge in topology.edges]
            for domain in domains:
                for slot in range(self.windows_per_domain):
                    gate, when = self._draw(kind, domain, slot)
                    if gate >= self.probability:
                        continue
                    lead = self.horizon_s / 8.0
                    start = lead + when * (self.horizon_s - lead)
                    windows.append(
                        FaultWindow(
                            kind=kind,
                            domain=domain,
                            start_s=start,
                            end_s=start + self.duration_s,
                            latency_factor=self.latency_factor,
                            error_probability=self.error_probability,
                        )
                    )
        return tuple(
            sorted(windows, key=lambda w: (w.start_s, w.domain, w.kind.value))
        )

    # -- CLI grammar --------------------------------------------------------

    def spec(self) -> str:
        """Round-trippable spec string (shown in report params)."""
        kinds = "-".join(kind.value for kind in self.kinds) or "none"
        parts = [
            f"{kinds}:p={self.probability},seed={self.seed}",
            f"windows={self.windows_per_domain}",
            f"duration={self.duration_s}",
            f"horizon={self.horizon_s}",
        ]
        for window in self.pinned:
            parts.append(
                f"pin={window.kind.value}@{window.domain}"
                f"@{window.start_s:g}@{window.end_s:g}"
            )
        return ",".join(parts)

    @classmethod
    def from_spec(cls, spec: str) -> "FaultDomainSchedule":
        """Parse the CLI's ``--faults`` grammar.

        ``KINDS[:KEY=VALUE,...]`` where ``KINDS`` is dash-separated
        fault-domain names (``edge_outage-eviction_storm``), ``all``,
        or ``none`` (pinned windows only); options are ``p``, ``seed``,
        ``windows``, ``duration``, ``horizon``, ``latency``, ``errp``
        and repeatable ``pin=KIND@DOMAIN@START@END``. Examples::

            --faults all
            --faults edge_outage:seed=3,duration=30
            --faults none:pin=edge_outage@edge-a@60@90
        """
        head, _, tail = spec.strip().partition(":")
        if not head:
            raise ExperimentError(f"empty fault spec {spec!r}")
        if head == "all":
            kinds: Tuple[FaultDomainKind, ...] = ALL_FAULT_KINDS
        elif head == "none":
            kinds = ()
        else:
            try:
                kinds = tuple(FaultDomainKind(name) for name in head.split("-"))
            except ValueError:
                known = "-".join(k.value for k in ALL_FAULT_KINDS)
                raise ExperimentError(
                    f"unknown fault-domain kind in {head!r}; known: {known} "
                    f"(dash-separated), 'all', or 'none'"
                ) from None
        options = []
        if tail:
            for item in tail.split(","):
                key, sep, value = item.partition("=")
                if not sep:
                    raise ExperimentError(f"fault option {item!r} is not KEY=VALUE")
                options.append((key.strip(), value.strip()))
        scalars = {}
        pins = []
        for key, value in options:
            if key == "pin":
                pins.append(value)
            elif key in scalars:
                raise ExperimentError(f"duplicate fault option {key!r}")
            else:
                scalars[key] = value
        pinned = []
        for pin in pins:
            fields = pin.split("@")
            if len(fields) != 4:
                raise ExperimentError(
                    f"pinned window {pin!r} is not KIND@DOMAIN@START@END"
                )
            try:
                pinned.append(
                    FaultWindow(
                        kind=FaultDomainKind(fields[0]),
                        domain=fields[1],
                        start_s=float(fields[2]),
                        end_s=float(fields[3]),
                        latency_factor=float(scalars.get("latency", 4.0)),
                        error_probability=float(scalars.get("errp", 0.5)),
                    )
                )
            except ValueError as exc:
                raise ExperimentError(f"bad pinned window {pin!r}: {exc}") from None
        known = {"p", "seed", "windows", "duration", "horizon", "latency", "errp"}
        unknown = set(scalars) - known
        if unknown:
            raise ExperimentError(
                f"unknown fault option(s): {sorted(unknown)}; "
                f"known: {sorted(known)}, pin"
            )
        try:
            return cls(
                kinds=kinds,
                seed=int(scalars.get("seed", 0)),
                probability=float(scalars.get("p", 1.0)),
                windows_per_domain=int(scalars.get("windows", 1)),
                duration_s=float(scalars.get("duration", 20.0)),
                horizon_s=float(scalars.get("horizon", 240.0)),
                latency_factor=float(scalars.get("latency", 4.0)),
                error_probability=float(scalars.get("errp", 0.5)),
                pinned=tuple(pinned),
            )
        except ValueError as exc:
            raise ExperimentError(f"bad fault option value: {exc}") from None
