"""Edge/origin topology descriptions for cohort simulations.

A :class:`TopologySpec` is plain frozen data — like the runner's job
specs it crosses process boundaries by pickling, hashes canonically
into cohort job keys, and rebuilds live state (edge caches, fair-share
queues) inside the worker. Each :class:`EdgeSpec` is one CDN edge: a
bottleneck uplink that all sessions attached to it max-min fair-share,
plus an LRU chunk cache in front of the origin. The single
:class:`OriginSpec` contributes latency (and, under brownout, errors)
to cache misses.

Sessions are spread over edges deterministically: a session's primary
edge is a sha256 hash of ``(seed, session id)`` and its failover order
is ring order from there, so every rerun of a cohort assigns identical
endpoint lists without any shared RNG.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Optional, Tuple

from ..errors import ExperimentError


@dataclass(frozen=True)
class EdgeSpec:
    """One CDN edge: a shared bottleneck uplink plus a chunk cache.

    :param edge_id: unique name; also the endpoint id sessions fail
        over across and the key of the per-edge byte ledger.
    :param capacity_kbps: uplink capacity all attached transfers share
        (max-min fair: every backlogged flow gets an equal split).
    :param rtt_s: client-to-edge round trip added before each transfer.
    :param cache_chunks: LRU capacity in chunks; 0 disables caching
        (every request pays the origin miss latency).
    """

    edge_id: str
    capacity_kbps: float = 20_000.0
    rtt_s: float = 0.03
    cache_chunks: int = 512

    def __post_init__(self) -> None:
        if not self.edge_id:
            raise ExperimentError("edge id must be non-empty")
        if self.capacity_kbps <= 0:
            raise ExperimentError(
                f"edge capacity must be positive, got {self.capacity_kbps}"
            )
        if self.rtt_s < 0:
            raise ExperimentError(f"edge rtt must be >= 0, got {self.rtt_s}")
        if self.cache_chunks < 0:
            raise ExperimentError(
                f"cache size must be >= 0 chunks, got {self.cache_chunks}"
            )


@dataclass(frozen=True)
class OriginSpec:
    """The origin behind every edge: misses pay its latency.

    :param rtt_s: edge-to-origin round trip on a cache miss.
    :param miss_penalty_s: origin service time on a miss (lookup +
        first byte); origin brownouts inflate this multiplicatively.
    """

    rtt_s: float = 0.08
    miss_penalty_s: float = 0.05

    def __post_init__(self) -> None:
        if self.rtt_s < 0:
            raise ExperimentError(f"origin rtt must be >= 0, got {self.rtt_s}")
        if self.miss_penalty_s < 0:
            raise ExperimentError(
                f"miss penalty must be >= 0, got {self.miss_penalty_s}"
            )


def _default_edges() -> Tuple[EdgeSpec, ...]:
    return (
        EdgeSpec("edge-a"),
        EdgeSpec("edge-b"),
        EdgeSpec("edge-c"),
    )


@dataclass(frozen=True)
class TopologySpec:
    """A full client-facing topology: edges in ring order plus origin."""

    edges: Tuple[EdgeSpec, ...] = field(default_factory=_default_edges)
    origin: OriginSpec = field(default_factory=OriginSpec)

    def __post_init__(self) -> None:
        if not self.edges:
            raise ExperimentError("topology needs at least one edge")
        ids = [edge.edge_id for edge in self.edges]
        if len(set(ids)) != len(ids):
            raise ExperimentError(f"duplicate edge ids: {ids}")

    def edge(self, edge_id: str) -> EdgeSpec:
        for edge in self.edges:
            if edge.edge_id == edge_id:
                return edge
        raise ExperimentError(
            f"unknown edge {edge_id!r}; known: {[e.edge_id for e in self.edges]}"
        )

    def endpoint_order(self, seed: int, session_id: int) -> Tuple[str, ...]:
        """This session's ordered endpoint list (primary first).

        The primary is a pure sha256 hash of ``(seed, session id)`` —
        uniform load spread, replayable everywhere — and the fallbacks
        follow in ring order, so a dead edge stampedes onto its ring
        neighbor (the correlated-contention spike the single-session
        model cannot express).
        """
        digest = hashlib.sha256(
            f"topo|{seed}|{session_id}".encode("utf-8")
        ).digest()
        primary = int.from_bytes(digest[:8], "big") % len(self.edges)
        n = len(self.edges)
        return tuple(self.edges[(primary + i) % n].edge_id for i in range(n))

    @classmethod
    def uniform(
        cls,
        n_edges: int,
        capacity_kbps: float = 20_000.0,
        rtt_s: float = 0.03,
        cache_chunks: int = 512,
        origin: Optional[OriginSpec] = None,
    ) -> "TopologySpec":
        """``n_edges`` identical edges named ``edge-1..n``."""
        if n_edges < 1:
            raise ExperimentError(f"need at least one edge, got {n_edges}")
        edges = tuple(
            EdgeSpec(
                f"edge-{i + 1}",
                capacity_kbps=capacity_kbps,
                rtt_s=rtt_s,
                cache_chunks=cache_chunks,
            )
            for i in range(n_edges)
        )
        return cls(edges=edges, origin=origin or OriginSpec())
