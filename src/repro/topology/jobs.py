"""Cohort jobs: content-addressed units of multi-session simulation.

A :class:`CohortJob` is to the cohort kernel what
:class:`~repro.runner.jobs.SimulationJob` is to the single-session
kernel: frozen plain data whose sha256 key is its identity in the
result cache, rebuilt into live state inside whichever worker runs it.
The runner engine dispatches on the job's ``execute`` hook, so cohort
cells ride the existing machinery — parallel pools, crash-safe
checkpointing, chaos injection, resume — without the engine knowing
anything about topologies.

The fault schedule serializes into the key via its round-trippable
spec string (:meth:`~repro.topology.faults.FaultDomainSchedule.spec`),
so two jobs agree on their key exactly when they would replay the
identical storm.

Like :class:`~repro.runner.jobs.SimulationJob`, the cohort key layout
is part of the keyed-spec compatibility surface pinned in
``surfaces/spec_keys.json`` and guarded by ``SURF-KEY-CHURN``; layout
changes go through ``repro-abr lint --update-surfaces`` (plus a
:data:`COHORT_SPEC_SCHEMA_VERSION` bump when semantic).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, Optional

from ..net.resilience import FailoverPolicy, RetryPolicy
from ..runner.jobs import ContentSpec
from .faults import FaultDomainSchedule
from .spec import TopologySpec

#: Bumped when the meaning of an existing cohort-spec field changes.
COHORT_SPEC_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class CohortJob:
    """One cohort cell: N sessions on one topology under one storm."""

    topology: TopologySpec = field(default_factory=TopologySpec)
    faults: Optional[FaultDomainSchedule] = None
    content: ContentSpec = field(default_factory=ContentSpec)
    n_sessions: int = 100
    arrival_burst_s: float = 30.0
    retry_policy: RetryPolicy = field(default_factory=RetryPolicy)
    failover: FailoverPolicy = field(default_factory=FailoverPolicy)
    seed: int = 0
    max_sim_time_s: float = 3600.0
    keep_summaries: bool = True

    def spec_dict(self) -> Dict[str, object]:
        """Canonical JSON-ready form; the basis of the cache key."""
        return {
            "schema": COHORT_SPEC_SCHEMA_VERSION,
            "kind": "cohort",
            "topology": dataclasses.asdict(self.topology),
            "faults": None if self.faults is None else self.faults.spec(),
            "content": dataclasses.asdict(self.content),
            "n_sessions": self.n_sessions,
            "arrival_burst_s": self.arrival_burst_s,
            "retry_policy": dataclasses.asdict(self.retry_policy),
            "failover": dataclasses.asdict(self.failover),
            "seed": self.seed,
            "max_sim_time_s": self.max_sim_time_s,
            "keep_summaries": self.keep_summaries,
        }

    def key(self) -> str:
        """Stable content-addressed identity of this job."""
        canonical = json.dumps(
            self.spec_dict(), sort_keys=True, separators=(",", ":"), default=list
        )
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def label(self) -> str:
        """Short human identity for chaos logs and failure messages."""
        storm = "clean" if self.faults is None else "storm"
        return (
            f"cohort{self.n_sessions}/{len(self.topology.edges)}edges"
            f"/{storm}/s{self.seed}#{self.key()[:10]}"
        )

    def execute(self, attempt: int = 1, record_dir: Optional[str] = None):
        """Run the cohort; the engine's job-agnostic entry point.

        ``record_dir`` writes a schema-2 fault-domain event log next to
        the session logs single-session jobs record — the CI artifact
        showing which windows opened and who failed over where.
        """
        # Deferred import: topology.* must stay importable without the
        # sim layer (which itself imports topology specs for the kernel).
        from ..core.combinations import curated_combinations
        from ..sim.cohort import CohortConfig, CohortKernel

        content = self.content.build()
        combos = curated_combinations(content)
        windows = (
            () if self.faults is None else self.faults.windows_for(self.topology)
        )
        config = CohortConfig(
            n_sessions=self.n_sessions,
            arrival_burst_s=self.arrival_burst_s,
            retry_policy=self.retry_policy,
            failover=self.failover,
            seed=self.seed,
            max_sim_time_s=self.max_sim_time_s,
            keep_summaries=self.keep_summaries,
        )
        kernel = CohortKernel(
            content, combos, self.topology, windows=windows, config=config
        )
        result = kernel.run()
        if record_dir is not None:
            self._record_fault_log(result, record_dir)
        return result

    def _record_fault_log(self, result, record_dir: str) -> None:
        """Write the cohort's fault-domain event log (schema 2)."""
        from ..replay.recorder import EventRecorder, record_path

        meta = {
            "job": self.spec_dict(),
            "key": self.key(),
            "label": self.label(),
            # Topology fields: their presence stamps the header schema 2.
            "edges": [edge.edge_id for edge in self.topology.edges],
        }
        with EventRecorder(record_path(record_dir, self.key()), meta) as rec:
            rec.emit("session_meta", {"n_sessions": self.n_sessions})
            for window in result.fault_windows:
                rec.emit("fault_window", dict(window))
            for event in result.fault_events:
                payload = dict(event)
                kind = payload.pop("k")
                rec.emit(f"fault_{kind}" if not kind.startswith("fault") else kind,
                         payload)
            rec.emit(
                "verdict",
                {
                    "completed": result.completed_sessions,
                    "degraded": result.degraded_sessions,
                    "verdicts": result.verdict_counts,
                },
            )
