"""Exception hierarchy for the :mod:`repro` library.

All library-specific errors derive from :class:`ReproError` so callers
can catch everything the library raises with one ``except`` clause while
still being able to distinguish manifest problems from simulation
problems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class MediaError(ReproError):
    """Invalid media description (tracks, ladders, chunk tables)."""


class ManifestError(ReproError):
    """A manifest could not be built, serialized or parsed."""


class ManifestParseError(ManifestError):
    """A DASH MPD or HLS playlist document is malformed."""


class TraceError(ReproError, ValueError):
    """A bandwidth trace is malformed or cannot be evaluated.

    Also a :class:`ValueError`: trace loaders reject bad numeric data
    (NaN, negative rates, non-increasing timestamps), and callers that
    validate inputs generically catch ``ValueError``.
    """


class SimulationError(ReproError):
    """The playback simulation reached an inconsistent state."""


class LinkConfigError(SimulationError, TraceError):
    """A network path model was configured with invalid parameters.

    Raised for things like a negative RTT: link configuration belongs
    to the simulation setup, not to trace data, so this is primarily a
    :class:`SimulationError`. :class:`TraceError` remains a base as a
    deprecation shim — these mistakes historically raised ``TraceError``
    and existing ``except TraceError`` handlers keep working — and will
    be dropped from the bases in a future release.
    """


class PlayerError(ReproError):
    """A player model was misconfigured or made an invalid decision."""


class ExperimentError(ReproError):
    """An experiment was invoked with invalid parameters."""
