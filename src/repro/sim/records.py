"""Result records produced by a simulated streaming session."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..media.tracks import MediaType


@dataclass(frozen=True, slots=True)
class ProgressSegment:
    """Bits received by one download over one constant-rate interval."""

    start_s: float
    end_s: float
    bits: float

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s


@dataclass(frozen=True, slots=True)
class DownloadRecord:
    """One completed chunk download.

    ``resumed_bits`` is the portion of ``size_bits`` inherited from
    failed attempts via HTTP range-resume (bytes that crossed the wire
    during an earlier attempt and were not re-fetched); the progress
    ``segments`` cover only the final attempt's ``size_bits -
    resumed_bits`` fresh bytes.
    """

    medium: MediaType
    track_id: str
    chunk_index: int
    size_bits: float
    started_at: float
    completed_at: float
    segments: Tuple[ProgressSegment, ...] = ()
    resumed_bits: float = 0.0

    @property
    def duration_s(self) -> float:
        return self.completed_at - self.started_at

    @property
    def throughput_kbps(self) -> float:
        """Observed throughput over the whole request (incl. dead time)."""
        if self.duration_s <= 0:
            return math.inf
        return self.size_bits / self.duration_s / 1000.0


@dataclass(frozen=True, slots=True)
class AbortRecord:
    """An in-flight download the player abandoned."""

    medium: MediaType
    track_id: str
    chunk_index: int
    aborted_at: float
    bits_done: float
    size_bits: float

    @property
    def wasted_fraction(self) -> float:
        """Fraction of the chunk that was fetched and thrown away."""
        return self.bits_done / self.size_bits if self.size_bits else 0.0


@dataclass(frozen=True, slots=True)
class FailureRecord:
    """One failed request attempt.

    ``bits_done`` counts only the bytes *this attempt* pulled over the
    wire (a resumed attempt's inherited bytes belong to the earlier
    attempt's record), so summing failure records never double-counts
    transferred data. ``kind`` is the taxonomy label (a
    :class:`~repro.net.resilience.FailureKind` value;
    ``"connection_reset"`` for the legacy anonymous death),
    ``attempt`` numbers the tries of this chunk request (1 = first),
    ``resumable`` marks partial bytes stashed for HTTP range-resume,
    and ``retry_at`` is the backoff-scheduled dispatch time of the next
    attempt (``None`` when no retry follows — legacy immediate re-ask,
    terminal failure, or budget exhaustion).
    """

    medium: MediaType
    track_id: str
    chunk_index: int
    failed_at: float
    bits_done: float
    kind: str = "connection_reset"
    attempt: int = 1
    resumable: bool = False
    retry_at: Optional[float] = None


@dataclass(frozen=True, slots=True)
class SkipRecord:
    """A live chunk skipped to preserve liveness after attempts ran out."""

    medium: MediaType
    track_id: str
    chunk_index: int
    skipped_at: float
    attempts: int


@dataclass(slots=True)
class StallEvent:
    """One rebuffering interval (shaded regions of the paper's Fig. 3)."""

    start_s: float
    end_s: Optional[float] = None

    @property
    def duration_s(self) -> float:
        if self.end_s is None:
            return 0.0
        return self.end_s - self.start_s


@dataclass(frozen=True, slots=True)
class BufferSample:
    """Buffer levels (seconds of content) at one instant."""

    t: float
    video_level_s: float
    audio_level_s: float

    @property
    def imbalance_s(self) -> float:
        """Absolute audio/video buffer difference — the Fig. 5(b) metric."""
        return abs(self.video_level_s - self.audio_level_s)


@dataclass(frozen=True, slots=True)
class EstimateSample:
    """A bandwidth-estimate reading logged by the player."""

    t: float
    kbps: float


class SessionResult:
    """Everything observed during one simulated session.

    The accessors mirror what the paper plots: selected tracks over time
    (Figs. 2/3a/4/5a), buffer levels over time (Figs. 3b/5b), bandwidth
    estimates (Fig. 4), stalls and rebuffering totals.
    """

    def __init__(
        self,
        content_duration_s: float,
        chunk_duration_s: float,
        n_chunks: int,
    ):
        self.content_duration_s = content_duration_s
        self.chunk_duration_s = chunk_duration_s
        self.n_chunks = n_chunks
        self.downloads: List[DownloadRecord] = []
        self.aborts: List[AbortRecord] = []
        self.failures: List[FailureRecord] = []
        self.skips: List[SkipRecord] = []
        self.stalls: List[StallEvent] = []
        self.buffer_timeline: List[BufferSample] = []
        self.estimate_timeline: List[EstimateSample] = []
        self.startup_delay_s: Optional[float] = None
        self.ended_at_s: Optional[float] = None
        self.completed = False
        #: Why the session ended early under degradation (retry budget
        #: exhausted, attempts exhausted); ``None`` for a normal end.
        self.termination_reason: Optional[str] = None

    # -- ingest ----------------------------------------------------------

    def add_download(self, record: DownloadRecord) -> None:
        self.downloads.append(record)

    def add_abort(self, record: AbortRecord) -> None:
        self.aborts.append(record)

    def add_failure(self, record: FailureRecord) -> None:
        self.failures.append(record)

    def add_skip(self, record: SkipRecord) -> None:
        self.skips.append(record)

    @property
    def wasted_bits(self) -> float:
        """Bytes fetched for chunks that were later abandoned."""
        return sum(a.bits_done for a in self.aborts)

    # -- failure/retry/resume accounting ---------------------------------

    @property
    def n_retries(self) -> int:
        """Failed attempts that scheduled a backoff retry."""
        return sum(1 for f in self.failures if f.retry_at is not None)

    @property
    def bits_played(self) -> float:
        """Bits that entered the buffer (completed chunk downloads)."""
        return sum(d.size_bits for d in self.downloads)

    @property
    def bits_resumed(self) -> float:
        """Failure bytes salvaged by range-resume into completed chunks."""
        return sum(d.resumed_bits for d in self.downloads)

    @property
    def bits_wasted(self) -> float:
        """Bytes transferred but never played.

        Failed-attempt bytes that no later download resumed, plus
        player-abandoned partials.
        """
        failure_bits = sum(f.bits_done for f in self.failures)
        abort_bits = sum(a.bits_done for a in self.aborts)
        return failure_bits - self.bits_resumed + abort_bits

    @property
    def bits_served(self) -> float:
        """Gross per-request accounting: every request's received bits.

        Resumed bytes appear both in the failure record that fetched
        them and in the download that consumed them, which is exactly
        what makes the ledger close: ``bits_served == bits_played +
        bits_wasted + bits_resumed``.
        """
        failure_bits = sum(f.bits_done for f in self.failures)
        abort_bits = sum(a.bits_done for a in self.aborts)
        return self.bits_played + failure_bits + abort_bits

    def byte_accounting(self) -> Dict[str, float]:
        """The reconciliation ledger; ``reconciles`` is the invariant."""
        served = self.bits_served
        played = self.bits_played
        wasted = self.bits_wasted
        resumed = self.bits_resumed
        return {
            "bits_served": served,
            "bits_played": played,
            "bits_wasted": wasted,
            "bits_resumed": resumed,
            "reconciles": math.isclose(
                served, played + wasted + resumed, rel_tol=1e-9, abs_tol=1e-3
            ),
        }

    def failures_by_kind(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for failure in self.failures:
            kind = getattr(failure.kind, "value", failure.kind)
            counts[kind] = counts.get(kind, 0) + 1
        return counts

    def retry_schedule(self) -> List[Tuple]:
        """The full failure/retry timeline, for determinism comparisons.

        Two sessions with identical seeds and configs must produce
        identical schedules, element for element.
        """
        return [
            (
                f.medium.value,
                f.chunk_index,
                f.attempt,
                getattr(f.kind, "value", f.kind),
                round(f.failed_at, 9),
                None if f.retry_at is None else round(f.retry_at, 9),
            )
            for f in self.failures
        ]

    def add_buffer_sample(self, sample: BufferSample) -> None:
        self.buffer_timeline.append(sample)

    def extend_buffer_samples(
        self,
        t: Sequence[float],
        video_level_s: Sequence[float],
        audio_level_s: Sequence[float],
    ) -> None:
        """Batch-ingest three parallel arrays of buffer samples.

        The session kernel accumulates samples in flat lists on its hot
        path and materializes the :class:`BufferSample` records here in
        one pass at result-build time.
        """
        self.buffer_timeline.extend(
            map(BufferSample, t, video_level_s, audio_level_s)
        )

    def add_estimate(self, t: float, kbps: float) -> None:
        self.estimate_timeline.append(EstimateSample(t=t, kbps=kbps))

    # -- stalls ----------------------------------------------------------

    @property
    def n_stalls(self) -> int:
        return len(self.stalls)

    @property
    def total_rebuffer_s(self) -> float:
        return sum(s.duration_s for s in self.stalls)

    # -- selections ------------------------------------------------------

    def downloads_of(self, medium: MediaType) -> List[DownloadRecord]:
        return [d for d in self.downloads if d.medium is medium]

    def track_for(self, medium: MediaType, chunk_index: int) -> Optional[str]:
        for record in self.downloads:
            if record.medium is medium and record.chunk_index == chunk_index:
                return record.track_id
        return None

    def selected_combinations(self) -> List[Tuple[int, Optional[str], Optional[str]]]:
        """Per chunk position: (index, video track, audio track)."""
        out = []
        for index in range(self.n_chunks):
            out.append(
                (
                    index,
                    self.track_for(MediaType.VIDEO, index),
                    self.track_for(MediaType.AUDIO, index),
                )
            )
        return out

    def combination_names(self) -> List[str]:
        """Paper-style combination names per downloaded position."""
        names = []
        for _, video_id, audio_id in self.selected_combinations():
            if video_id is not None and audio_id is not None:
                names.append(f"{video_id}+{audio_id}")
        return names

    def distinct_combinations(self) -> List[str]:
        """Distinct combinations in order of first use."""
        seen: List[str] = []
        for name in self.combination_names():
            if name not in seen:
                seen.append(name)
        return seen

    def track_usage(self, medium: MediaType) -> Dict[str, int]:
        """How many chunks used each track."""
        usage: Dict[str, int] = {}
        for record in self.downloads_of(medium):
            usage[record.track_id] = usage.get(record.track_id, 0) + 1
        return usage

    def switch_count(self, medium: MediaType) -> int:
        """Number of track changes between consecutive positions."""
        records = sorted(self.downloads_of(medium), key=lambda r: r.chunk_index)
        switches = 0
        for previous, current in zip(records, records[1:]):
            if previous.track_id != current.track_id:
                switches += 1
        return switches

    # -- buffers ---------------------------------------------------------

    def max_buffer_imbalance_s(self) -> float:
        if not self.buffer_timeline:
            return 0.0
        return max(s.imbalance_s for s in self.buffer_timeline)

    def mean_buffer_imbalance_s(self) -> float:
        """Time-weighted mean |audio - video| buffer difference."""
        timeline = self.buffer_timeline
        if len(timeline) < 2:
            return 0.0
        total = 0.0
        span = timeline[-1].t - timeline[0].t
        if span <= 0:
            return timeline[-1].imbalance_s
        for a, b in zip(timeline, timeline[1:]):
            total += a.imbalance_s * (b.t - a.t)
        return total / span

    # -- summary ---------------------------------------------------------

    def time_weighted_bitrate_kbps(self, medium: MediaType) -> float:
        """Mean encoded bitrate of the *selected* tracks, per chunk."""
        records = self.downloads_of(medium)
        if not records:
            return 0.0
        return sum(r.size_bits for r in records) / (
            len(records) * self.chunk_duration_s * 1000.0
        )

    def to_dict(self, include_timelines: bool = True) -> Dict[str, object]:
        """JSON-serializable dump of the whole session.

        Enables external analysis (pandas, notebooks) without importing
        the library: every download, stall, abort, failure, buffer
        sample and estimate reading, plus the summary.
        """
        data: Dict[str, object] = {
            "content_duration_s": self.content_duration_s,
            "chunk_duration_s": self.chunk_duration_s,
            "n_chunks": self.n_chunks,
            "summary": self.summary(),
            "downloads": [
                {
                    "medium": record.medium.value,
                    "track_id": record.track_id,
                    "chunk_index": record.chunk_index,
                    "size_bits": record.size_bits,
                    "started_at": record.started_at,
                    "completed_at": record.completed_at,
                    "throughput_kbps": record.throughput_kbps,
                }
                for record in self.downloads
            ],
            "stalls": [
                {"start_s": stall.start_s, "end_s": stall.end_s}
                for stall in self.stalls
            ],
            "aborts": [
                {
                    "medium": abort.medium.value,
                    "track_id": abort.track_id,
                    "chunk_index": abort.chunk_index,
                    "aborted_at": abort.aborted_at,
                    "bits_done": abort.bits_done,
                }
                for abort in self.aborts
            ],
            "failures": [
                {
                    "medium": failure.medium.value,
                    "track_id": failure.track_id,
                    "chunk_index": failure.chunk_index,
                    "failed_at": failure.failed_at,
                    "bits_done": failure.bits_done,
                    "kind": getattr(failure.kind, "value", failure.kind),
                    "attempt": failure.attempt,
                    "resumable": failure.resumable,
                    "retry_at": failure.retry_at,
                }
                for failure in self.failures
            ],
            "skips": [
                {
                    "medium": skip.medium.value,
                    "track_id": skip.track_id,
                    "chunk_index": skip.chunk_index,
                    "skipped_at": skip.skipped_at,
                    "attempts": skip.attempts,
                }
                for skip in self.skips
            ],
            "byte_accounting": self.byte_accounting(),
            "termination_reason": self.termination_reason,
        }
        if include_timelines:
            data["buffer_timeline"] = [
                {
                    "t": sample.t,
                    "video_level_s": sample.video_level_s,
                    "audio_level_s": sample.audio_level_s,
                }
                for sample in self.buffer_timeline
            ]
            data["estimate_timeline"] = [
                {"t": sample.t, "kbps": sample.kbps}
                for sample in self.estimate_timeline
            ]
        return data

    def summary(self) -> Dict[str, object]:
        return {
            "completed": self.completed,
            "startup_delay_s": self.startup_delay_s,
            "n_stalls": self.n_stalls,
            "total_rebuffer_s": round(self.total_rebuffer_s, 3),
            "video_switches": self.switch_count(MediaType.VIDEO),
            "audio_switches": self.switch_count(MediaType.AUDIO),
            "video_kbps": round(self.time_weighted_bitrate_kbps(MediaType.VIDEO), 1),
            "audio_kbps": round(self.time_weighted_bitrate_kbps(MediaType.AUDIO), 1),
            "combinations": self.distinct_combinations(),
            "max_buffer_imbalance_s": round(self.max_buffer_imbalance_s(), 2),
            "failures": len(self.failures),
            "retries": self.n_retries,
            "skipped_chunks": len(self.skips),
            "resumed_mbit": round(self.bits_resumed / 1e6, 3),
            "wasted_mbit": round(self.bits_wasted / 1e6, 3),
            "termination_reason": self.termination_reason,
        }
