"""The event-driven streaming session.

One :class:`Session` plays one title through one player model over one
network model, producing a :class:`~repro.sim.records.SessionResult`.

The simulation is exact, not time-stepped: bandwidth traces are
piecewise-constant and at most one download per medium is active, so
between events every download progresses at a constant rate and the
next event time (trace change, request dead-time expiry, download
completion, injected failure point, request-timeout expiry,
buffer-frontier hit, scheduled player wake-up, backoff-retry dispatch)
can be computed in closed form.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..errors import PlayerError, SimulationError
from ..media.content import Content
from ..media.tracks import MediaType
from ..net.link import NetworkModel
from ..net.resilience import (
    DEFAULT_REQUEST_TIMEOUT_S,
    FailureKind,
    RetryPolicy,
)
from .decisions import Download, Wait
from .playback import PlaybackState, PlaybackTracker
from .records import (
    AbortRecord,
    BufferSample,
    DownloadRecord,
    FailureRecord,
    ProgressSegment,
    SessionResult,
    SkipRecord,
)

from ..net.failures import FailureModel  # noqa: F401  (config type)

_MEDIA = (MediaType.VIDEO, MediaType.AUDIO)
_EPS = 1e-9


class SessionObserver:
    """Receiver of the session's typed event stream.

    Attach one via ``SessionConfig(observer=...)`` and the session
    calls :meth:`emit` at every observable moment — downloads starting,
    bytes flowing, player decisions, stalls, buffer samples, failures —
    and :meth:`close` once the run ends. The canonical implementation
    is :class:`repro.replay.EventRecorder`, which streams the events to
    a crash-safe JSON-lines log; the schema of each ``(kind, payload)``
    pair is documented in ``docs/event_log.md``.

    Observers must not mutate the session: they see copies of scalars,
    and determinism requires recording to be a pure tap. Emission sites
    are guarded so a session without an observer pays one attribute
    check and nothing else.
    """

    def emit(self, kind: str, payload: Dict[str, object]) -> None:
        """Receive one event. ``payload`` is owned by the observer."""

    def close(self) -> None:
        """The session ended; release any resources."""


@dataclass
class ActiveDownload:
    """A download in flight."""

    medium: MediaType
    track_id: str
    chunk_index: int
    size_bits: float
    started_at: float
    dead_until: float  # request RTT: no bits before this time
    bits_done: float = 0.0
    segments: List[ProgressSegment] = field(default_factory=list)
    #: Injected failure point: the request dies once this many bits have
    #: arrived. ``None`` = no byte-triggered failure.
    fail_at_bits: Optional[float] = None
    #: Taxonomy label of the injected failure (``None`` = none injected,
    #: or the legacy anonymous verdict, treated as a connection reset).
    fail_kind: Optional[FailureKind] = None
    #: Wall time at which a deadline-kind failure surfaces: the request
    #: timeout (TIMEOUT / SLOW_TRANSFER) or response time (HTTP errors).
    fail_at_time: Optional[float] = None
    #: A hung request: no payload bytes ever flow, the connection holds
    #: no link share, and only ``fail_at_time`` can end it.
    stalled: bool = False
    #: Partial bytes of this request survive for HTTP range-resume.
    resumable: bool = False
    #: Bytes inherited from earlier failed attempts via range-resume;
    #: ``bits_done`` starts here, so only fresh bytes cross the wire.
    resumed_bits: float = 0.0
    #: 1-based try number of this chunk request (retries increment it).
    attempt: int = 1

    @property
    def remaining_bits(self) -> float:
        return self.size_bits - self.bits_done

    @property
    def finished(self) -> bool:
        # The tolerance must absorb absolute-time float cancellation:
        # crediting rate*(horizon - now) at large `now` loses ~1e-8 bits,
        # which on a tiny chunk is far more than size*1e-12. A millibit
        # is physically meaningless at any rate, so snap there.
        return self.remaining_bits <= max(self.size_bits * 1e-9, 1e-3)

    @property
    def failed(self) -> bool:
        return (
            self.fail_at_bits is not None
            and self.bits_done >= self.fail_at_bits - 1e-3
        )

    def failed_by(self, now: float) -> bool:
        """Has this request failed as of ``now``?

        Byte-triggered deaths fire on ``bits_done``; deadline kinds fire
        when the clock reaches ``fail_at_time`` — unless the transfer
        finished first (completion beats a watchdog kill on ties).
        """
        if self.failed:
            return True
        if self.fail_at_time is not None and now >= self.fail_at_time - _EPS:
            return not self.finished
        return False

    @property
    def next_target_bits(self) -> float:
        """Bits outstanding until the next terminal event (fail or done)."""
        if self.fail_at_bits is not None and self.fail_at_bits < self.size_bits:
            return max(0.0, self.fail_at_bits - self.bits_done)
        return self.remaining_bits


@dataclass
class SessionConfig:
    """Session-level playback policy knobs.

    Defaults approximate common player settings: begin playback after
    one chunk of both media is buffered; resume after a stall likewise.

    ``live_offset_s`` switches the session into *live* mode: chunk *i*
    of every track becomes requestable only at wall time
    ``i * chunk_duration + live_offset_s`` (the encoder/packager
    pipeline delay). The client therefore cannot prefetch beyond the
    live edge — buffers stay inherently shallow, which is exactly the
    regime where unbalanced audio/video downloading hurts most. ``None``
    (default) is VOD: everything is available immediately.
    """

    startup_threshold_s: Optional[float] = None  # default: one chunk
    resume_threshold_s: Optional[float] = None  # default: one chunk
    max_sim_time_s: Optional[float] = None  # default: 20x duration + 120
    max_events: int = 2_000_000
    live_offset_s: Optional[float] = None
    #: Transient-failure injection (see :mod:`repro.net.failures`).
    failure_model: Optional["FailureModel"] = None
    #: Retry/backoff/timeout behaviour for failed requests (see
    #: :mod:`repro.net.resilience`). ``None`` preserves the legacy
    #: semantics: the slot frees immediately, the player is re-asked
    #: with no delay, partial bytes are discarded, and a chunk failing
    #: ``MAX_FAILURES_PER_CHUNK`` times raises ``SimulationError``.
    retry_policy: Optional[RetryPolicy] = None
    #: Event-stream tap (see :class:`SessionObserver`); ``None`` (the
    #: default) records nothing and costs nothing.
    observer: Optional[SessionObserver] = None

    def __post_init__(self) -> None:
        if self.live_offset_s is not None and self.live_offset_s < 0:
            raise SimulationError(
                f"live_offset_s must be non-negative, got {self.live_offset_s}"
            )


class SessionContext:
    """The player's window into the session state.

    Players must base decisions only on what a real client can see:
    buffer levels, past download observations (delivered via
    ``on_chunk_complete``) and manifest data they were built with. The
    context deliberately does not expose future bandwidth or the true
    sizes of not-yet-fetched chunks.
    """

    def __init__(self, session: "Session"):
        self._session = session

    @property
    def now(self) -> float:
        return self._session.now

    @property
    def chunk_duration_s(self) -> float:
        return self._session.content.chunk_duration_s

    @property
    def n_chunks(self) -> int:
        return self._session.content.n_chunks

    @property
    def playback_state(self) -> PlaybackState:
        return self._session.playback.state

    @property
    def play_position_s(self) -> float:
        return self._session.playback.position_s

    def buffer_level_s(self, medium: MediaType) -> float:
        return self._session.buffer_level_s(medium)

    def completed_chunks(self, medium: MediaType) -> int:
        return self._session.completed[medium]

    def next_chunk_index(self, medium: MediaType) -> int:
        """Index of the chunk the medium would fetch next."""
        return self._session.completed[medium] + (
            1 if self._session.active.get(medium) else 0
        )

    def in_flight(self, medium: MediaType) -> Optional[ActiveDownload]:
        return self._session.active.get(medium)

    @property
    def is_live(self) -> bool:
        return self._session.config.live_offset_s is not None

    def chunk_available_at(self, index: int) -> float:
        """Wall time at which chunk ``index`` becomes requestable."""
        return self._session.chunk_available_at(index)

    def live_edge_index(self) -> int:
        """Highest chunk index already published (n_chunks-1 for VOD)."""
        last = self._session.content.n_chunks - 1
        if not self.is_live:
            return last
        for index in range(last, -1, -1):
            if self.chunk_available_at(index) <= self.now + 1e-9:
                return index
        return -1

    @property
    def retry_policy(self) -> Optional[RetryPolicy]:
        return self._session.config.retry_policy

    def retry_budget_remaining(self) -> Optional[int]:
        """Retries left in the session budget (``None`` = no policy).

        Cooperating players compare this against the policy's
        ``emergency_threshold()`` to decide when to stop gambling bytes
        on high rungs and fall back to the cheapest allowed combination.
        """
        policy = self._session.config.retry_policy
        if policy is None:
            return None
        return max(0, policy.retry_budget - self._session.retries_spent)

    def log_estimate(self, kbps: float) -> None:
        """Record a bandwidth-estimate reading for the result timeline."""
        self._session.record_estimate(kbps)


class Session:
    """Simulate one streaming session to completion."""

    def __init__(
        self,
        content: Content,
        player: "BasePlayer",
        network: NetworkModel,
        config: Optional[SessionConfig] = None,
    ):
        self.content = content
        self.player = player
        self.network = network
        self.config = config or SessionConfig()

        chunk = content.chunk_duration_s
        startup = self.config.startup_threshold_s or chunk
        resume = self.config.resume_threshold_s or chunk
        self.playback = PlaybackTracker(
            content_duration_s=content.duration_s,
            startup_threshold_s=startup,
            resume_threshold_s=resume,
        )
        self.now = 0.0
        self.completed: Dict[MediaType, int] = {m: 0 for m in _MEDIA}
        self.active: Dict[MediaType, Optional[ActiveDownload]] = {
            m: None for m in _MEDIA
        }
        self._wake_at: Dict[MediaType, float] = {m: 0.0 for m in _MEDIA}
        self._abort_counts: Dict[tuple, int] = {}
        #: Retries spent against the policy's per-session budget.
        self.retries_spent = 0
        #: Range-resume stash per medium: (track_id, chunk_index, bits)
        #: surviving from the last resumable failure. Consumed (or
        #: discarded, if the player re-targets) by the next request.
        self._resume_stash: Dict[MediaType, Tuple[str, int, float]] = {}
        #: Degraded-termination reason; set ends the run loop cleanly.
        self._terminated: Optional[str] = None
        self.result = SessionResult(
            content_duration_s=content.duration_s,
            chunk_duration_s=chunk,
            n_chunks=content.n_chunks,
        )
        self.ctx = SessionContext(self)
        #: Event-stream tap; cached off the config because the guard
        #: sits on the hot path of every loop iteration.
        self._observer = self.config.observer
        self._stall_begins_emitted = 0
        self._stall_ends_emitted = 0
        self._startup_emitted = False

    # -- event stream ------------------------------------------------------

    def _emit(self, kind: str, payload: Dict[str, object]) -> None:
        self._observer.emit(kind, payload)

    def _meta_payload(self) -> Dict[str, object]:
        """The ``session_meta`` header: everything replay/QoE needs."""

        def tracks_of(ladder) -> List[Dict[str, object]]:
            out: List[Dict[str, object]] = []
            for track in ladder:
                entry: Dict[str, object] = {
                    "id": track.track_id,
                    "avg_kbps": track.avg_kbps,
                    "peak_kbps": track.peak_kbps,
                    "declared_kbps": track.declared_kbps,
                }
                if track.height is not None:
                    entry["height"] = track.height
                if track.channels is not None:
                    entry["channels"] = track.channels
                if track.sampling_khz is not None:
                    entry["sampling_khz"] = track.sampling_khz
                out.append(entry)
            return out

        return {
            "content": {
                "name": self.content.name,
                "duration_s": self.content.duration_s,
                "chunk_duration_s": self.content.chunk_duration_s,
                "n_chunks": self.content.n_chunks,
                "video": tracks_of(self.content.video),
                "audio": tracks_of(self.content.audio),
            },
            "player": getattr(self.player, "name", type(self.player).__name__),
            "rtt_s": self.network.rtt_s,
            "config": {
                "startup_threshold_s": self.playback.startup_threshold_s,
                "resume_threshold_s": self.playback.resume_threshold_s,
                "live_offset_s": self.config.live_offset_s,
            },
        }

    def _sync_playback_events(self) -> None:
        """Emit startup/stall transitions the playback tracker crossed.

        Transitions happen inside :class:`PlaybackTracker`; diffing its
        state here (rather than threading callbacks through it) keeps
        the tracker pure and the event order deterministic: a stall
        that begins and the sample that observes it always appear in
        the same relative order.
        """
        if not self._startup_emitted and self.playback.startup_delay_s is not None:
            self._startup_emitted = True
            self._emit("playback_start", {"t": self.playback.startup_delay_s})
        stalls = self.playback.stalls
        while self._stall_begins_emitted < len(stalls):
            stall = stalls[self._stall_begins_emitted]
            self._stall_begins_emitted += 1
            self._emit("stall_begin", {"t": stall.start_s})
        while self._stall_ends_emitted < len(stalls):
            stall = stalls[self._stall_ends_emitted]
            if stall.end_s is None:
                break
            self._stall_ends_emitted += 1
            self._emit(
                "stall_end", {"t": stall.end_s, "duration_s": stall.duration_s}
            )

    def record_estimate(self, kbps: float) -> None:
        """Add a bandwidth-estimate reading (and mirror it to the log)."""
        self.result.add_estimate(self.now, kbps)
        if self._observer is not None:
            self._emit("estimate", {"t": self.now, "kbps": kbps})

    # -- state helpers ----------------------------------------------------

    def buffered_frontier_s(self, medium: MediaType) -> float:
        """Playable content time buffered for one medium."""
        return self.completed[medium] * self.content.chunk_duration_s

    def buffer_level_s(self, medium: MediaType) -> float:
        return max(0.0, self.buffered_frontier_s(medium) - self.playback.position_s)

    def _min_frontier_s(self) -> float:
        return min(self.buffered_frontier_s(m) for m in _MEDIA)

    def _all_downloaded(self) -> bool:
        return all(self.completed[m] >= self.content.n_chunks for m in _MEDIA)

    def _medium_done(self, medium: MediaType) -> bool:
        return self.completed[medium] >= self.content.n_chunks

    def chunk_available_at(self, index: int) -> float:
        """Wall time at which chunk ``index`` becomes requestable."""
        if self.config.live_offset_s is None:
            return 0.0
        return index * self.content.chunk_duration_s + self.config.live_offset_s

    # -- scheduling --------------------------------------------------------

    def _fill_slots(self) -> None:
        for medium in _MEDIA:
            if self.active[medium] is not None or self._medium_done(medium):
                continue
            wake = self._wake_at[medium]
            # A finite wake time is a timed wait; an infinite one means
            # "re-poll on every event", so it never blocks this pass.
            if math.isfinite(wake) and wake > self.now + _EPS:
                continue
            # Live mode: the next chunk may not exist yet; sleep until
            # the packager publishes it. This is session policy, not a
            # player decision — a real client simply sees the segment
            # missing from the refreshed manifest.
            available_at = self.chunk_available_at(self.completed[medium])
            if available_at > self.now + _EPS:
                self._wake_at[medium] = available_at
                continue
            decision = self.player.choose_next(medium, self.ctx)
            if isinstance(decision, Download):
                if self._observer is not None:
                    self._emit(
                        "decision",
                        {
                            "t": self.now,
                            "medium": medium.value,
                            "action": "download",
                            "track_id": decision.track_id,
                        },
                    )
                self._start_download(medium, decision.track_id)
            elif isinstance(decision, Wait):
                if decision.until <= self.now + _EPS and math.isfinite(decision.until):
                    raise PlayerError(
                        f"player waited until the past/present "
                        f"({decision.until} <= {self.now})"
                    )
                if self._observer is not None:
                    self._emit(
                        "decision",
                        {
                            "t": self.now,
                            "medium": medium.value,
                            "action": "wait",
                            "until": decision.until,
                        },
                    )
                self._wake_at[medium] = decision.until
            else:
                raise PlayerError(
                    f"choose_next must return Download or Wait, got {decision!r}"
                )

    def _start_download(self, medium: MediaType, track_id: str) -> None:
        track = self.content.track(track_id)
        if track.media_type is not medium:
            raise PlayerError(
                f"player chose {track_id!r} ({track.media_type}) for {medium}"
            )
        index = self.completed[medium]
        chunk = self.content.chunk(track_id, index)
        policy = self.config.retry_policy
        # Consume the range-resume stash: bytes survive only into a
        # request for the *same* resource. A player that re-targets
        # (downshifts) after the failure implicitly wastes them.
        resumed = 0.0
        stash = self._resume_stash.pop(medium, None)
        if stash is not None and stash[0] == track_id and stash[1] == index:
            resumed = min(stash[2], chunk.size_bits)
        timeout = (
            policy.timeout_for(medium)
            if policy is not None
            else DEFAULT_REQUEST_TIMEOUT_S
        )
        fail_at_bits: Optional[float] = None
        fail_at_time: Optional[float] = None
        fail_kind: Optional[FailureKind] = None
        stalled = False
        resumable = False
        if self.config.failure_model is not None:
            verdict = self.config.failure_model.next_request()
            if verdict is not None:
                fail_kind = verdict.kind or FailureKind.CONNECTION_RESET
                resumable = verdict.resumable
                if fail_kind is FailureKind.TIMEOUT:
                    # Hung connection: no bytes, watchdog fires.
                    stalled = True
                    fail_at_time = self.now + timeout
                elif fail_kind in (FailureKind.HTTP_5XX, FailureKind.HTTP_404):
                    # Error response arrives at response time; no payload.
                    stalled = True
                    fail_at_time = self.now + self.network.rtt_s
                elif fail_kind is FailureKind.SLOW_TRANSFER:
                    # Bytes flow; the watchdog kills whatever is unfinished.
                    fail_at_time = self.now + timeout
                else:  # CONNECTION_RESET, incl. the legacy anonymous death
                    fail_at_bits = resumed + verdict.fraction * (
                        chunk.size_bits - resumed
                    )
        self.active[medium] = ActiveDownload(
            medium=medium,
            track_id=track_id,
            chunk_index=index,
            size_bits=chunk.size_bits,
            started_at=self.now,
            dead_until=self.now + self.network.rtt_s,
            bits_done=resumed,
            fail_at_bits=fail_at_bits,
            fail_kind=fail_kind,
            fail_at_time=fail_at_time,
            stalled=stalled,
            resumable=resumable,
            resumed_bits=resumed,
            attempt=self._abort_counts.get(("fail", medium, index), 0) + 1,
        )
        self._wake_at[medium] = 0.0
        if self._observer is not None:
            self._emit(
                "download_start",
                {
                    "t": self.now,
                    "medium": medium.value,
                    "track_id": track_id,
                    "chunk_index": index,
                    "size_bits": chunk.size_bits,
                    "attempt": self.active[medium].attempt,
                    "resumed_bits": resumed,
                },
            )
        self.player.on_chunk_start(medium, track_id, index, self.ctx)

    # -- event horizon -----------------------------------------------------

    def _current_rates(self) -> Dict[MediaType, float]:
        """kbps per active download at the current instant."""
        live = {
            m: dl.medium
            for m, dl in self.active.items()
            if dl is not None
            and not dl.stalled
            and self.now >= dl.dead_until - _EPS
        }
        rates = self.network.rates(live, self.now) if live else {}
        return {m: rates.get(m, 0.0) for m in _MEDIA}

    def _next_event_time(self) -> float:
        candidates: List[float] = [self.network.next_change_after(self.now)]
        rates = self._current_rates()
        for medium in _MEDIA:
            download = self.active[medium]
            if download is None:
                wake = self._wake_at[medium]
                if math.isfinite(wake) and wake > self.now + _EPS:
                    candidates.append(wake)
                continue
            if download.fail_at_time is not None:
                candidates.append(download.fail_at_time)
            if download.stalled:
                continue  # no bytes will ever flow; only the deadline
            if self.now < download.dead_until - _EPS:
                candidates.append(download.dead_until)
                continue
            rate = rates[medium]
            if rate > 0:
                candidates.append(
                    self.now + download.next_target_bits / (rate * 1000.0)
                )
        if self.playback.is_playing:
            frontier = self._min_frontier_s()
            candidates.append(self.now + max(0.0, frontier - self.playback.position_s))
        horizon = min(candidates)
        if not math.isfinite(horizon):
            raise SimulationError(
                "deadlock: no future event (all media waiting forever while "
                f"playback is {self.playback.state})"
            )
        return max(horizon, self.now)

    # -- advancing ---------------------------------------------------------

    def _advance_to(self, horizon: float) -> None:
        dt = horizon - self.now
        if dt < -1e-6:
            raise SimulationError(f"time went backwards: {self.now} -> {horizon}")
        dt = max(dt, 0.0)
        rates = self._current_rates()
        for medium in _MEDIA:
            download = self.active[medium]
            if download is None:
                continue
            rate = rates[medium]
            if rate > 0 and dt > 0:
                bits = min(rate * 1000.0 * dt, download.remaining_bits)
                download.bits_done += bits
                download.segments.append(
                    ProgressSegment(start_s=self.now, end_s=horizon, bits=bits)
                )
                if self._observer is not None:
                    self._emit(
                        "download_progress",
                        {
                            "t0": self.now,
                            "t1": horizon,
                            "medium": medium.value,
                            "bits": bits,
                        },
                    )
        self.playback.advance(dt, self._min_frontier_s())
        self.now = horizon

    #: More consecutive failures than this on one chunk indicates a
    #: pathological failure model rather than transient weather.
    MAX_FAILURES_PER_CHUNK = 32

    def _terminate(self, reason: str) -> None:
        """End the session gracefully (degraded), keeping the result."""
        if self._terminated is None:
            self._terminated = reason

    def _process_failures(self) -> None:
        policy = self.config.retry_policy
        for medium in _MEDIA:
            download = self.active[medium]
            if download is None or not download.failed_by(self.now):
                continue
            self.active[medium] = None
            self._wake_at[medium] = 0.0
            index = download.chunk_index
            key = ("fail", medium, index)
            self._abort_counts[key] = self._abort_counts.get(key, 0) + 1
            if (
                policy is None
                and self._abort_counts[key] > self.MAX_FAILURES_PER_CHUNK
            ):
                raise SimulationError(
                    f"{medium} chunk {index} failed "
                    f"{self.MAX_FAILURES_PER_CHUNK}+ times; failure model "
                    "leaves the session unable to progress"
                )
            kind = download.fail_kind or FailureKind.CONNECTION_RESET
            attempt = download.attempt
            # Fresh wire bytes of this attempt only; inherited resume
            # bytes belong to the earlier attempts' records.
            fresh_bits = max(0.0, download.bits_done - download.resumed_bits)
            stash = (
                policy is not None
                and download.resumable
                and download.bits_done > _EPS
            )
            retry_at: Optional[float] = None
            if policy is not None:
                if attempt >= policy.max_attempts:
                    stash = False
                    if self.ctx.is_live and policy.live_skip:
                        # Preserve liveness: give the chunk up and move
                        # on — the real player plays through the gap.
                        self.completed[medium] += 1
                        self.result.add_skip(
                            SkipRecord(
                                medium=medium,
                                track_id=download.track_id,
                                chunk_index=index,
                                skipped_at=self.now,
                                attempts=attempt,
                            )
                        )
                        if self._observer is not None:
                            self._emit(
                                "skip",
                                {
                                    "t": self.now,
                                    "medium": medium.value,
                                    "track_id": download.track_id,
                                    "chunk_index": index,
                                    "attempts": attempt,
                                },
                            )
                    else:
                        self._terminate("attempts_exhausted")
                elif self.retries_spent >= policy.retry_budget:
                    stash = False
                    self._terminate("retry_budget_exhausted")
                else:
                    self.retries_spent += 1
                    retry_at = self.now + policy.delay_s(
                        attempt + 1, medium, index
                    )
                    self._wake_at[medium] = retry_at
            if stash:
                self._resume_stash[medium] = (
                    download.track_id,
                    index,
                    download.bits_done,
                )
            record = FailureRecord(
                medium=medium,
                track_id=download.track_id,
                chunk_index=index,
                failed_at=self.now,
                bits_done=fresh_bits,
                kind=kind.value,
                attempt=attempt,
                resumable=stash,
                retry_at=retry_at,
            )
            self.result.add_failure(record)
            if self._observer is not None:
                self._emit(
                    "failure",
                    {
                        "t": self.now,
                        "medium": medium.value,
                        "track_id": download.track_id,
                        "chunk_index": index,
                        "bits_done": fresh_bits,
                        "kind": kind.value,
                        "attempt": attempt,
                        "resumable": stash,
                        "retry_at": retry_at,
                    },
                )
                if retry_at is not None:
                    self._emit(
                        "retry",
                        {
                            "t": self.now,
                            "medium": medium.value,
                            "chunk_index": index,
                            "attempt": attempt + 1,
                            "at": retry_at,
                        },
                    )
            self.player.on_failure(medium, record, self.ctx)

    def _complete_downloads(self) -> None:
        for medium in _MEDIA:
            download = self.active[medium]
            if download is None or not download.finished:
                continue
            if download.failed:
                continue  # handled by _process_failures
            self.active[medium] = None
            self.completed[medium] += 1
            record = DownloadRecord(
                medium=medium,
                track_id=download.track_id,
                chunk_index=download.chunk_index,
                size_bits=download.size_bits,
                started_at=download.started_at,
                completed_at=self.now,
                segments=tuple(download.segments),
                resumed_bits=download.resumed_bits,
            )
            self.result.add_download(record)
            if self._observer is not None:
                self._emit(
                    "download_complete",
                    {
                        "t": self.now,
                        "medium": medium.value,
                        "track_id": download.track_id,
                        "chunk_index": download.chunk_index,
                        "size_bits": download.size_bits,
                        "started_at": download.started_at,
                        "resumed_bits": download.resumed_bits,
                    },
                )
            self.player.on_chunk_complete(record, self.ctx)

    #: Re-requesting the same chunk more than this many times after
    #: aborting it indicates a player abort-loop bug.
    MAX_ABORTS_PER_CHUNK = 8

    def _check_aborts(self) -> None:
        for medium in _MEDIA:
            download = self.active[medium]
            if download is None or download.finished:
                continue
            if not self.player.consider_abort(medium, download, self.ctx):
                continue
            key = (medium, download.chunk_index)
            self._abort_counts[key] = self._abort_counts.get(key, 0) + 1
            if self._abort_counts[key] > self.MAX_ABORTS_PER_CHUNK:
                raise PlayerError(
                    f"player aborted {medium} chunk {download.chunk_index} "
                    f"more than {self.MAX_ABORTS_PER_CHUNK} times"
                )
            self.active[medium] = None
            self._wake_at[medium] = 0.0
            self.result.add_abort(
                AbortRecord(
                    medium=medium,
                    track_id=download.track_id,
                    chunk_index=download.chunk_index,
                    aborted_at=self.now,
                    bits_done=download.bits_done,
                    size_bits=download.size_bits,
                )
            )
            if self._observer is not None:
                self._emit(
                    "download_abort",
                    {
                        "t": self.now,
                        "medium": medium.value,
                        "track_id": download.track_id,
                        "chunk_index": download.chunk_index,
                        "bits_done": download.bits_done,
                        "size_bits": download.size_bits,
                    },
                )

    def _sample_buffers(self) -> None:
        video_s = self.buffer_level_s(MediaType.VIDEO)
        audio_s = self.buffer_level_s(MediaType.AUDIO)
        self.result.add_buffer_sample(
            BufferSample(t=self.now, video_level_s=video_s, audio_level_s=audio_s)
        )
        if self._observer is not None:
            self._emit(
                "buffer_sample",
                {"t": self.now, "video_s": video_s, "audio_s": audio_s},
            )

    # -- main loop ----------------------------------------------------------

    def run(self) -> SessionResult:
        max_time = self.config.max_sim_time_s or (
            self.content.duration_s * 20.0 + 120.0
        )
        if self._observer is not None:
            # The header must precede every other event: estimates can
            # flow as early as on_session_start.
            self._emit("session_meta", self._meta_payload())
        self.player.on_session_start(self.ctx)
        self._sample_buffers()
        zero_dt_streak = 0
        for _ in range(self.config.max_events):
            self.playback.update_state(
                self.now, self._min_frontier_s(), self._all_downloaded()
            )
            if self._observer is not None:
                self._sync_playback_events()
            if self.playback.state is PlaybackState.ENDED:
                break
            self._fill_slots()
            # A fill can complete... no: downloads take time. But the
            # playback state may change due to scheduling being a no-op,
            # so recheck the horizon after filling.
            horizon = self._next_event_time()
            if horizon > max_time:
                break
            # Progress guard: simultaneous events legitimately yield a
            # few zero-length steps, but a long run of them means the
            # event schedule is stuck (clock not advancing).
            if horizon <= self.now + _EPS:
                zero_dt_streak += 1
                if zero_dt_streak > 64:
                    raise SimulationError(
                        f"simulation clock stuck at t={self.now}: "
                        "64 consecutive zero-length events"
                    )
            else:
                zero_dt_streak = 0
            self._advance_to(horizon)
            self._process_failures()
            self._complete_downloads()
            self._check_aborts()
            self.playback.update_state(
                self.now, self._min_frontier_s(), self._all_downloaded()
            )
            if self._observer is not None:
                self._sync_playback_events()
            self._sample_buffers()
            if self._terminated is not None:
                break  # graceful degraded end: keep the result intact
        else:
            raise SimulationError(
                f"event cap ({self.config.max_events}) exceeded at t={self.now}"
            )
        self.playback.close(self.now)
        self.result.stalls = list(self.playback.stalls)
        self.result.startup_delay_s = self.playback.startup_delay_s
        self.result.ended_at_s = self.now
        self.result.completed = self.playback.state is PlaybackState.ENDED
        self.result.termination_reason = self._terminated
        if self._observer is not None:
            # `close` may have sealed a final stall; flush before verdict.
            self._sync_playback_events()
            self._emit(
                "verdict",
                {
                    "t": self.now,
                    "completed": self.result.completed,
                    "startup_delay_s": self.result.startup_delay_s,
                    "termination_reason": self._terminated,
                    "n_stalls": len(self.result.stalls),
                },
            )
        self.player.on_session_end(self.ctx)
        if self._observer is not None:
            self._observer.close()
        return self.result


def simulate(
    content: Content,
    player: "BasePlayer",
    network: NetworkModel,
    config: Optional[SessionConfig] = None,
) -> SessionResult:
    """Convenience wrapper: build a session and run it to completion."""
    return Session(content, player, network, config).run()
