"""The event-driven streaming session.

One :class:`Session` plays one title through one player model over one
network model, producing a :class:`~repro.sim.records.SessionResult`.

The simulation is exact, not time-stepped: bandwidth traces are
piecewise-constant and at most one download per medium is active, so
between events every download progresses at a constant rate and the
next event time (trace change, request dead-time expiry, download
completion, injected failure point, request-timeout expiry,
buffer-frontier hit, scheduled player wake-up, backoff-retry dispatch)
can be computed in closed form.

The main loop is the hot path of every experiment, sweep and chaos run,
so it is written for throughput: per-medium state lives in two
``__slots__`` lane objects instead of ``MediaType``-keyed dicts, rates
come from the :meth:`~repro.net.link.NetworkModel.media_rates` tuple
fast path, buffer samples accumulate in flat lists and are materialized
once at result-build time, and runs of *quiet* events (trace boundaries
and dead-time expiries with no decision, completion, failure, wake-up
or playback transition in between) are collapsed by a fast-forward
inner loop that skips the scheduling/bookkeeping machinery. Every fast
path is required to be observably equivalent to the plain loop — same
event stream, same floats; see ``docs/architecture.md`` ("kernel fast
paths") and the recorded-log oracle in ``tests/fixtures/eventlogs/``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..errors import PlayerError, SimulationError
from ..media.content import Content
from ..media.tracks import MediaType
from ..net.link import NetworkModel
from ..net.resilience import (
    DEFAULT_REQUEST_TIMEOUT_S,
    FailureKind,
    RetryPolicy,
)
from .constants import EPS
from .decisions import Download, Wait
from .playback import PlaybackState, PlaybackTracker
from .records import (
    AbortRecord,
    BufferSample,
    DownloadRecord,
    FailureRecord,
    ProgressSegment,
    SessionResult,
    SkipRecord,
)

from ..net.failures import FailureModel  # noqa: F401  (config type)

_MEDIA = (MediaType.VIDEO, MediaType.AUDIO)
_EPS = EPS  # shared kernel tolerance; see repro.sim.constants
_INF = math.inf


class SessionObserver:
    """Receiver of the session's typed event stream.

    Attach one via ``SessionConfig(observer=...)`` and the session
    calls :meth:`emit` at every observable moment — downloads starting,
    bytes flowing, player decisions, stalls, buffer samples, failures —
    and :meth:`close` once the run ends. The canonical implementation
    is :class:`repro.replay.EventRecorder`, which streams the events to
    a crash-safe JSON-lines log; the schema of each ``(kind, payload)``
    pair is documented in ``docs/event_log.md``.

    Observers must not mutate the session: they see copies of scalars,
    and determinism requires recording to be a pure tap. Emission sites
    are guarded so a session without an observer pays one attribute
    check and nothing else.
    """

    def emit(self, kind: str, payload: Dict[str, object]) -> None:
        """Receive one event. ``payload`` is owned by the observer."""

    def close(self) -> None:
        """The session ended; release any resources."""


@dataclass(slots=True)
class ActiveDownload:
    """A download in flight."""

    medium: MediaType
    track_id: str
    chunk_index: int
    size_bits: float
    started_at: float
    dead_until: float  # request RTT: no bits before this time
    bits_done: float = 0.0
    segments: List[ProgressSegment] = field(default_factory=list)
    #: Injected failure point: the request dies once this many bits have
    #: arrived. ``None`` = no byte-triggered failure.
    fail_at_bits: Optional[float] = None
    #: Taxonomy label of the injected failure (``None`` = none injected,
    #: or the legacy anonymous verdict, treated as a connection reset).
    fail_kind: Optional[FailureKind] = None
    #: Wall time at which a deadline-kind failure surfaces: the request
    #: timeout (TIMEOUT / SLOW_TRANSFER) or response time (HTTP errors).
    fail_at_time: Optional[float] = None
    #: A hung request: no payload bytes ever flow, the connection holds
    #: no link share, and only ``fail_at_time`` can end it.
    stalled: bool = False
    #: Partial bytes of this request survive for HTTP range-resume.
    resumable: bool = False
    #: Bytes inherited from earlier failed attempts via range-resume;
    #: ``bits_done`` starts here, so only fresh bytes cross the wire.
    resumed_bits: float = 0.0
    #: 1-based try number of this chunk request (retries increment it).
    attempt: int = 1

    @property
    def remaining_bits(self) -> float:
        return self.size_bits - self.bits_done

    @property
    def finished(self) -> bool:
        # The tolerance must absorb absolute-time float cancellation:
        # crediting rate*(horizon - now) at large `now` loses ~1e-8 bits,
        # which on a tiny chunk is far more than size*1e-12. A millibit
        # is physically meaningless at any rate, so snap there.
        return self.remaining_bits <= max(self.size_bits * 1e-9, 1e-3)

    @property
    def failed(self) -> bool:
        return (
            self.fail_at_bits is not None
            and self.bits_done >= self.fail_at_bits - 1e-3
        )

    def failed_by(self, now: float) -> bool:
        """Has this request failed as of ``now``?

        Byte-triggered deaths fire on ``bits_done``; deadline kinds fire
        when the clock reaches ``fail_at_time`` — unless the transfer
        finished first (completion beats a watchdog kill on ties).
        """
        if self.failed:
            return True
        if self.fail_at_time is not None and now >= self.fail_at_time - _EPS:
            return not self.finished
        return False

    @property
    def next_target_bits(self) -> float:
        """Bits outstanding until the next terminal event (fail or done)."""
        if self.fail_at_bits is not None and self.fail_at_bits < self.size_bits:
            return max(0.0, self.fail_at_bits - self.bits_done)
        return self.remaining_bits


class _MediumLane:
    """Per-medium hot state: one slot, one wake-up, one completion count.

    The kernel historically kept these in ``MediaType``-keyed dicts,
    which put two enum hashes on every hot-path access; the lane object
    turns each into one attribute load.
    """

    __slots__ = ("medium", "completed", "active", "wake_at")

    def __init__(self, medium: MediaType):
        self.medium = medium
        #: Chunks fully downloaded (the buffered frontier is
        #: ``completed * chunk_duration_s``, always recomputed by
        #: multiplication so it cannot drift from accumulation error).
        self.completed = 0
        self.active: Optional[ActiveDownload] = None
        #: Next time the idle slot should re-ask the player (0.0 = now;
        #: ``inf`` = re-poll on every event).
        self.wake_at = 0.0


@dataclass
class SessionConfig:
    """Session-level playback policy knobs.

    Defaults approximate common player settings: begin playback after
    one chunk of both media is buffered; resume after a stall likewise.

    ``live_offset_s`` switches the session into *live* mode: chunk *i*
    of every track becomes requestable only at wall time
    ``i * chunk_duration + live_offset_s`` (the encoder/packager
    pipeline delay). The client therefore cannot prefetch beyond the
    live edge — buffers stay inherently shallow, which is exactly the
    regime where unbalanced audio/video downloading hurts most. ``None``
    (default) is VOD: everything is available immediately.
    """

    startup_threshold_s: Optional[float] = None  # default: one chunk
    resume_threshold_s: Optional[float] = None  # default: one chunk
    max_sim_time_s: Optional[float] = None  # default: 20x duration + 120
    max_events: int = 2_000_000
    live_offset_s: Optional[float] = None
    #: Transient-failure injection (see :mod:`repro.net.failures`).
    failure_model: Optional["FailureModel"] = None
    #: Retry/backoff/timeout behaviour for failed requests (see
    #: :mod:`repro.net.resilience`). ``None`` preserves the legacy
    #: semantics: the slot frees immediately, the player is re-asked
    #: with no delay, partial bytes are discarded, and a chunk failing
    #: ``MAX_FAILURES_PER_CHUNK`` times raises ``SimulationError``.
    retry_policy: Optional[RetryPolicy] = None
    #: Event-stream tap (see :class:`SessionObserver`); ``None`` (the
    #: default) records nothing and costs nothing.
    observer: Optional[SessionObserver] = None

    def __post_init__(self) -> None:
        if self.live_offset_s is not None and self.live_offset_s < 0:
            raise SimulationError(
                f"live_offset_s must be non-negative, got {self.live_offset_s}"
            )


class SessionContext:
    """The player's window into the session state.

    Players must base decisions only on what a real client can see:
    buffer levels, past download observations (delivered via
    ``on_chunk_complete``) and manifest data they were built with. The
    context deliberately does not expose future bandwidth or the true
    sizes of not-yet-fetched chunks.
    """

    def __init__(self, session: "Session"):
        self._session = session
        # Plain attributes, not properties: players read these on every
        # decision and both are immutable for the session's lifetime.
        self.chunk_duration_s = session.content.chunk_duration_s
        self.n_chunks = session.content.n_chunks
        # Direct references into the kernel state: the accessors below
        # sit on the player decision hot path, and each saved attribute
        # hop is measurable at tens of thousands of calls per session.
        self._playback = session.playback
        self._video = session._video
        self._audio = session._audio
        self._chunk_s = session._chunk_s

    @property
    def now(self) -> float:
        return self._session.now

    @property
    def playback_state(self) -> PlaybackState:
        return self._playback.state

    @property
    def play_position_s(self) -> float:
        return self._playback.position_s

    def buffer_level_s(self, medium: MediaType) -> float:
        lane = self._video if medium is MediaType.VIDEO else self._audio
        level = lane.completed * self._chunk_s - self._playback.position_s
        return level if level > 0.0 else 0.0

    def completed_chunks(self, medium: MediaType) -> int:
        lane = self._video if medium is MediaType.VIDEO else self._audio
        return lane.completed

    def next_chunk_index(self, medium: MediaType) -> int:
        """Index of the chunk the medium would fetch next."""
        lane = self._video if medium is MediaType.VIDEO else self._audio
        return lane.completed + (1 if lane.active else 0)

    def in_flight(self, medium: MediaType) -> Optional[ActiveDownload]:
        return (self._video if medium is MediaType.VIDEO else self._audio).active

    @property
    def is_live(self) -> bool:
        return self._session.config.live_offset_s is not None

    def chunk_available_at(self, index: int) -> float:
        """Wall time at which chunk ``index`` becomes requestable."""
        return self._session.chunk_available_at(index)

    def live_edge_index(self) -> int:
        """Highest chunk index already published (n_chunks-1 for VOD)."""
        last = self._session.content.n_chunks - 1
        if not self.is_live:
            return last
        for index in range(last, -1, -1):
            if self.chunk_available_at(index) <= self.now + _EPS:
                return index
        return -1

    @property
    def retry_policy(self) -> Optional[RetryPolicy]:
        return self._session.config.retry_policy

    def retry_budget_remaining(self) -> Optional[int]:
        """Retries left in the session budget (``None`` = no policy).

        Cooperating players compare this against the policy's
        ``emergency_threshold()`` to decide when to stop gambling bytes
        on high rungs and fall back to the cheapest allowed combination.
        """
        policy = self._session.config.retry_policy
        if policy is None:
            return None
        return max(0, policy.retry_budget - self._session.retries_spent)

    def log_estimate(self, kbps: float) -> None:
        """Record a bandwidth-estimate reading for the result timeline."""
        self._session.record_estimate(kbps)


class Session:
    """Simulate one streaming session to completion."""

    def __init__(
        self,
        content: Content,
        player: "BasePlayer",
        network: NetworkModel,
        config: Optional[SessionConfig] = None,
    ):
        self.content = content
        self.player = player
        self.network = network
        self.config = config or SessionConfig()

        chunk = content.chunk_duration_s
        startup = self.config.startup_threshold_s or chunk
        resume = self.config.resume_threshold_s or chunk
        self.playback = PlaybackTracker(
            content_duration_s=content.duration_s,
            startup_threshold_s=startup,
            resume_threshold_s=resume,
        )
        self.now = 0.0
        self._chunk_s = chunk
        self._n_chunks = content.n_chunks
        self._video = _MediumLane(MediaType.VIDEO)
        self._audio = _MediumLane(MediaType.AUDIO)
        self._lanes = (self._video, self._audio)
        self._abort_counts: Dict[tuple, int] = {}
        #: Per-track medium memo: ``_start_download`` validates each
        #: chosen track id once instead of on every request.
        self._track_media: Dict[str, MediaType] = {}
        #: Retries spent against the policy's per-session budget.
        self.retries_spent = 0
        #: Range-resume stash per medium: (track_id, chunk_index, bits)
        #: surviving from the last resumable failure. Consumed (or
        #: discarded, if the player re-targets) by the next request.
        self._resume_stash: Dict[MediaType, Tuple[str, int, float]] = {}
        #: Degraded-termination reason; set ends the run loop cleanly.
        self._terminated: Optional[str] = None
        self.result = SessionResult(
            content_duration_s=content.duration_s,
            chunk_duration_s=chunk,
            n_chunks=content.n_chunks,
        )
        self.ctx = SessionContext(self)
        #: Event-stream tap; cached off the config because the guard
        #: sits on the hot path of every loop iteration.
        self._observer = self.config.observer
        self._stall_begins_emitted = 0
        self._stall_ends_emitted = 0
        self._startup_emitted = False
        #: Buffer samples accumulate in flat parallel lists on the hot
        #: path; record objects are built once at result-build time.
        self._bt_t: List[float] = []
        self._bt_v: List[float] = []
        self._bt_a: List[float] = []
        # Last emitted sample, for deduping coincident zero-dt events
        # that would otherwise sample twice at the identical instant.
        self._ls_t = -1.0
        self._ls_v = -1.0
        self._ls_a = -1.0
        #: Does the player override ``consider_abort``? If not, the
        #: abort scan is provably a no-op and the loop skips it.
        from ..players.base import BasePlayer  # local: avoids import cycle

        self._player_may_abort = (
            getattr(type(player), "consider_abort", None)
            is not BasePlayer.consider_abort
        )

    # -- event stream ------------------------------------------------------

    def _emit(self, kind: str, payload: Dict[str, object]) -> None:  # hot
        self._observer.emit(kind, payload)

    def _meta_payload(self) -> Dict[str, object]:
        """The ``session_meta`` header: everything replay/QoE needs."""

        def tracks_of(ladder) -> List[Dict[str, object]]:
            out: List[Dict[str, object]] = []
            for track in ladder:
                entry: Dict[str, object] = {
                    "id": track.track_id,
                    "avg_kbps": track.avg_kbps,
                    "peak_kbps": track.peak_kbps,
                    "declared_kbps": track.declared_kbps,
                }
                if track.height is not None:
                    entry["height"] = track.height
                if track.channels is not None:
                    entry["channels"] = track.channels
                if track.sampling_khz is not None:
                    entry["sampling_khz"] = track.sampling_khz
                out.append(entry)
            return out

        return {
            "content": {
                "name": self.content.name,
                "duration_s": self.content.duration_s,
                "chunk_duration_s": self.content.chunk_duration_s,
                "n_chunks": self.content.n_chunks,
                "video": tracks_of(self.content.video),
                "audio": tracks_of(self.content.audio),
            },
            "player": getattr(self.player, "name", type(self.player).__name__),
            "rtt_s": self.network.rtt_s,
            "config": {
                "startup_threshold_s": self.playback.startup_threshold_s,
                "resume_threshold_s": self.playback.resume_threshold_s,
                "live_offset_s": self.config.live_offset_s,
            },
        }

    def _sync_playback_events(self) -> None:
        """Emit startup/stall transitions the playback tracker crossed.

        Transitions happen inside :class:`PlaybackTracker`; diffing its
        state here (rather than threading callbacks through it) keeps
        the tracker pure and the event order deterministic: a stall
        that begins and the sample that observes it always appear in
        the same relative order.
        """
        if not self._startup_emitted and self.playback.startup_delay_s is not None:
            self._startup_emitted = True
            self._emit("playback_start", {"t": self.playback.startup_delay_s})
        stalls = self.playback.stalls
        while self._stall_begins_emitted < len(stalls):
            stall = stalls[self._stall_begins_emitted]
            self._stall_begins_emitted += 1
            self._emit("stall_begin", {"t": stall.start_s})
        while self._stall_ends_emitted < len(stalls):
            stall = stalls[self._stall_ends_emitted]
            if stall.end_s is None:
                break
            self._stall_ends_emitted += 1
            self._emit(
                "stall_end", {"t": stall.end_s, "duration_s": stall.duration_s}
            )

    def record_estimate(self, kbps: float) -> None:
        """Add a bandwidth-estimate reading (and mirror it to the log)."""
        self.result.add_estimate(self.now, kbps)
        if self._observer is not None:
            self._emit("estimate", {"t": self.now, "kbps": kbps})

    # -- state helpers ----------------------------------------------------

    def _lane(self, medium: MediaType) -> _MediumLane:
        return self._video if medium is MediaType.VIDEO else self._audio

    @property
    def completed(self) -> Dict[MediaType, int]:
        """Chunks fully downloaded per medium (read-only snapshot)."""
        return {
            MediaType.VIDEO: self._video.completed,
            MediaType.AUDIO: self._audio.completed,
        }

    @property
    def active(self) -> Dict[MediaType, Optional[ActiveDownload]]:
        """In-flight download per medium (read-only snapshot)."""
        return {
            MediaType.VIDEO: self._video.active,
            MediaType.AUDIO: self._audio.active,
        }

    def buffered_frontier_s(self, medium: MediaType) -> float:
        """Playable content time buffered for one medium."""
        return self._lane(medium).completed * self._chunk_s

    def buffer_level_s(self, medium: MediaType) -> float:
        level = (
            self._lane(medium).completed * self._chunk_s
            - self.playback.position_s
        )
        return level if level > 0.0 else 0.0

    def _min_frontier_s(self) -> float:
        fv = self._video.completed * self._chunk_s
        fa = self._audio.completed * self._chunk_s
        return fv if fv <= fa else fa

    def _all_downloaded(self) -> bool:
        n = self.content.n_chunks
        return self._video.completed >= n and self._audio.completed >= n

    def _medium_done(self, medium: MediaType) -> bool:
        return self._lane(medium).completed >= self.content.n_chunks

    def chunk_available_at(self, index: int) -> float:
        """Wall time at which chunk ``index`` becomes requestable."""
        if self.config.live_offset_s is None:
            return 0.0
        return index * self.content.chunk_duration_s + self.config.live_offset_s

    # -- scheduling --------------------------------------------------------

    def _fill_slots(self) -> None:  # hot
        n_chunks = self._n_chunks
        deadline = self.now + _EPS
        vod = self.config.live_offset_s is None
        choose_next = self.player.choose_next
        ctx = self.ctx
        for lane in self._lanes:
            if lane.active is not None or lane.completed >= n_chunks:
                continue
            wake = lane.wake_at
            # A finite wake time is a timed wait; an infinite one means
            # "re-poll on every event", so it never blocks this pass.
            if wake != _INF and wake > deadline:
                continue
            # Live mode: the next chunk may not exist yet; sleep until
            # the packager publishes it. This is session policy, not a
            # player decision — a real client simply sees the segment
            # missing from the refreshed manifest.
            if not vod:
                available_at = self.chunk_available_at(lane.completed)
                if available_at > deadline:
                    lane.wake_at = available_at
                    continue
            medium = lane.medium
            decision = choose_next(medium, ctx)
            if isinstance(decision, Download):
                if self._observer is not None:
                    self._emit(
                        "decision",
                        {  # lint: allow[HOT-ALLOC-IN-LOOP] observer-only payload
                            "t": self.now,
                            "medium": medium.value,
                            "action": "download",
                            "track_id": decision.track_id,
                        },
                    )
                self._start_download(lane, decision.track_id)
            elif isinstance(decision, Wait):
                if decision.until <= deadline and math.isfinite(decision.until):
                    raise PlayerError(
                        f"player waited until the past/present "
                        f"({decision.until} <= {self.now})"
                    )
                if self._observer is not None:
                    self._emit(
                        "decision",
                        {  # lint: allow[HOT-ALLOC-IN-LOOP] observer-only payload
                            "t": self.now,
                            "medium": medium.value,
                            "action": "wait",
                            "until": decision.until,
                        },
                    )
                lane.wake_at = decision.until
            else:
                raise PlayerError(
                    f"choose_next must return Download or Wait, got {decision!r}"
                )

    def _start_download(self, lane: _MediumLane, track_id: str) -> None:  # hot
        medium = lane.medium
        # Track identity/medium never changes mid-session; validate each
        # track id once and remember its medium.
        media_type = self._track_media.get(track_id)
        if media_type is None:
            media_type = self.content.track(track_id).media_type
            self._track_media[track_id] = media_type
        if media_type is not medium:
            raise PlayerError(
                f"player chose {track_id!r} ({media_type}) for {medium}"
            )
        index = lane.completed
        chunk = self.content.chunk(track_id, index)
        now = self.now
        # Consume the range-resume stash: bytes survive only into a
        # request for the *same* resource. A player that re-targets
        # (downshifts) after the failure implicitly wastes them.
        resumed = 0.0
        if self._resume_stash:
            stash = self._resume_stash.pop(medium, None)
            if stash is not None and stash[0] == track_id and stash[1] == index:
                resumed = min(stash[2], chunk.size_bits)
        fail_at_bits: Optional[float] = None
        fail_at_time: Optional[float] = None
        fail_kind: Optional[FailureKind] = None
        stalled = False
        resumable = False
        if self.config.failure_model is not None:
            policy = self.config.retry_policy
            timeout = (
                policy.timeout_for(medium)
                if policy is not None
                else DEFAULT_REQUEST_TIMEOUT_S
            )
            verdict = self.config.failure_model.next_request()
            if verdict is not None:
                fail_kind = verdict.kind or FailureKind.CONNECTION_RESET
                resumable = verdict.resumable
                if fail_kind is FailureKind.TIMEOUT:
                    # Hung connection: no bytes, watchdog fires.
                    stalled = True
                    fail_at_time = now + timeout
                elif fail_kind in (FailureKind.HTTP_5XX, FailureKind.HTTP_404):
                    # Error response arrives at response time; no payload.
                    stalled = True
                    fail_at_time = now + self.network.rtt_s
                elif fail_kind is FailureKind.SLOW_TRANSFER:
                    # Bytes flow; the watchdog kills whatever is unfinished.
                    fail_at_time = now + timeout
                else:  # CONNECTION_RESET, incl. the legacy anonymous death
                    fail_at_bits = resumed + verdict.fraction * (
                        chunk.size_bits - resumed
                    )
        # Positional, in field order (hot path: one per chunk request).
        download = ActiveDownload(
            medium,
            track_id,
            index,
            chunk.size_bits,
            now,
            now + self.network.rtt_s,
            resumed,
            [],
            fail_at_bits,
            fail_kind,
            fail_at_time,
            stalled,
            resumable,
            resumed,
            (
                self._abort_counts.get(("fail", medium, index), 0) + 1
                if self._abort_counts
                else 1
            ),
        )
        lane.active = download
        lane.wake_at = 0.0
        if self._observer is not None:
            self._emit(
                "download_start",
                {
                    "t": self.now,
                    "medium": medium.value,
                    "track_id": track_id,
                    "chunk_index": index,
                    "size_bits": chunk.size_bits,
                    "attempt": download.attempt,
                    "resumed_bits": resumed,
                },
            )
        self.player.on_chunk_start(medium, track_id, index, self.ctx)

    #: More consecutive failures than this on one chunk indicates a
    #: pathological failure model rather than transient weather.
    MAX_FAILURES_PER_CHUNK = 32

    def _terminate(self, reason: str) -> None:
        """End the session gracefully (degraded), keeping the result."""
        if self._terminated is None:
            self._terminated = reason

    def _process_failures(self) -> None:  # hot
        policy = self.config.retry_policy
        for lane in self._lanes:
            download = lane.active
            if download is None or not download.failed_by(self.now):
                continue
            medium = lane.medium
            lane.active = None
            lane.wake_at = 0.0
            index = download.chunk_index
            key = ("fail", medium, index)
            self._abort_counts[key] = self._abort_counts.get(key, 0) + 1
            if (
                policy is None
                and self._abort_counts[key] > self.MAX_FAILURES_PER_CHUNK
            ):
                raise SimulationError(
                    f"{medium} chunk {index} failed "
                    f"{self.MAX_FAILURES_PER_CHUNK}+ times; failure model "
                    "leaves the session unable to progress"
                )
            kind = download.fail_kind or FailureKind.CONNECTION_RESET
            attempt = download.attempt
            # Fresh wire bytes of this attempt only; inherited resume
            # bytes belong to the earlier attempts' records.
            fresh_bits = max(0.0, download.bits_done - download.resumed_bits)
            stash = (
                policy is not None
                and download.resumable
                and download.bits_done > _EPS
            )
            retry_at: Optional[float] = None
            if policy is not None:
                if attempt >= policy.max_attempts:
                    stash = False
                    if self.ctx.is_live and policy.live_skip:
                        # Preserve liveness: give the chunk up and move
                        # on — the real player plays through the gap.
                        lane.completed += 1
                        self.result.add_skip(
                            SkipRecord(
                                medium=medium,
                                track_id=download.track_id,
                                chunk_index=index,
                                skipped_at=self.now,
                                attempts=attempt,
                            )
                        )
                        if self._observer is not None:
                            self._emit(
                                "skip",
                                {  # lint: allow[HOT-ALLOC-IN-LOOP] observer-only payload
                                    "t": self.now,
                                    "medium": medium.value,
                                    "track_id": download.track_id,
                                    "chunk_index": index,
                                    "attempts": attempt,
                                },
                            )
                    else:
                        self._terminate("attempts_exhausted")
                elif self.retries_spent >= policy.retry_budget:
                    stash = False
                    self._terminate("retry_budget_exhausted")
                else:
                    self.retries_spent += 1
                    retry_at = self.now + policy.delay_s(
                        attempt + 1, medium, index
                    )
                    lane.wake_at = retry_at
            if stash:
                self._resume_stash[medium] = (
                    download.track_id,
                    index,
                    download.bits_done,
                )
            record = FailureRecord(
                medium=medium,
                track_id=download.track_id,
                chunk_index=index,
                failed_at=self.now,
                bits_done=fresh_bits,
                kind=kind.value,
                attempt=attempt,
                resumable=stash,
                retry_at=retry_at,
            )
            self.result.add_failure(record)
            if self._observer is not None:
                self._emit(
                    "failure",
                    {  # lint: allow[HOT-ALLOC-IN-LOOP] observer-only payload
                        "t": self.now,
                        "medium": medium.value,
                        "track_id": download.track_id,
                        "chunk_index": index,
                        "bits_done": fresh_bits,
                        "kind": kind.value,
                        "attempt": attempt,
                        "resumable": stash,
                        "retry_at": retry_at,
                    },
                )
                if retry_at is not None:
                    self._emit(
                        "retry",
                        {  # lint: allow[HOT-ALLOC-IN-LOOP] observer-only payload
                            "t": self.now,
                            "medium": medium.value,
                            "chunk_index": index,
                            "attempt": attempt + 1,
                            "at": retry_at,
                        },
                    )
            self.player.on_failure(medium, record, self.ctx)

    def _complete(self, lane: _MediumLane, download: ActiveDownload) -> None:  # hot
        """Book one finished download (caller checked ``finished``)."""
        medium = lane.medium
        lane.active = None
        lane.completed += 1
        # Positional, in field order (hot path: one per finished chunk).
        record = DownloadRecord(
            medium,
            download.track_id,
            download.chunk_index,
            download.size_bits,
            download.started_at,
            self.now,
            tuple(download.segments),
            download.resumed_bits,
        )
        self.result.add_download(record)
        if self._observer is not None:
            self._emit(
                "download_complete",
                {
                    "t": self.now,
                    "medium": medium.value,
                    "track_id": download.track_id,
                    "chunk_index": download.chunk_index,
                    "size_bits": download.size_bits,
                    "started_at": download.started_at,
                    "resumed_bits": download.resumed_bits,
                },
            )
        self.player.on_chunk_complete(record, self.ctx)

    def _complete_downloads(self) -> None:  # hot
        for lane in self._lanes:
            download = lane.active
            if download is None or not download.finished:
                continue
            if download.failed:
                continue  # handled by _process_failures
            self._complete(lane, download)

    #: Re-requesting the same chunk more than this many times after
    #: aborting it indicates a player abort-loop bug.
    MAX_ABORTS_PER_CHUNK = 8

    def _check_aborts(self) -> None:
        for lane in self._lanes:
            download = lane.active
            if download is None or download.finished:
                continue
            medium = lane.medium
            if not self.player.consider_abort(medium, download, self.ctx):
                continue
            key = (medium, download.chunk_index)
            self._abort_counts[key] = self._abort_counts.get(key, 0) + 1
            if self._abort_counts[key] > self.MAX_ABORTS_PER_CHUNK:
                raise PlayerError(
                    f"player aborted {medium} chunk {download.chunk_index} "
                    f"more than {self.MAX_ABORTS_PER_CHUNK} times"
                )
            lane.active = None
            lane.wake_at = 0.0
            self.result.add_abort(
                AbortRecord(
                    medium=medium,
                    track_id=download.track_id,
                    chunk_index=download.chunk_index,
                    aborted_at=self.now,
                    bits_done=download.bits_done,
                    size_bits=download.size_bits,
                )
            )
            if self._observer is not None:
                self._emit(
                    "download_abort",
                    {
                        "t": self.now,
                        "medium": medium.value,
                        "track_id": download.track_id,
                        "chunk_index": download.chunk_index,
                        "bits_done": download.bits_done,
                        "size_bits": download.size_bits,
                    },
                )

    def _sample_buffers(self) -> None:  # hot
        now = self.now
        pos = self.playback.position_s
        video_s = self._video.completed * self._chunk_s - pos
        if not video_s > 0.0:
            video_s = 0.0
        audio_s = self._audio.completed * self._chunk_s - pos
        if not audio_s > 0.0:
            audio_s = 0.0
        # Coincident zero-dt events would sample the identical instant
        # twice; keep one. Only *fully identical* consecutive samples
        # are dropped, which leaves the max and the time-weighted mean
        # imbalance bit-for-bit unchanged (the dropped interval has
        # zero width and equal values).
        if now == self._ls_t and video_s == self._ls_v and audio_s == self._ls_a:
            return
        self._ls_t = now
        self._ls_v = video_s
        self._ls_a = audio_s
        self._bt_t.append(now)
        self._bt_v.append(video_s)
        self._bt_a.append(audio_s)
        if self._observer is not None:
            self._emit(
                "buffer_sample",
                {"t": now, "video_s": video_s, "audio_s": audio_s},
            )

    def _flush_buffer_timeline(self) -> None:
        """Materialize the flat sample arrays into result records."""
        if self._bt_t:
            self.result.extend_buffer_samples(
                self._bt_t, self._bt_v, self._bt_a
            )
            self._bt_t = []
            self._bt_v = []
            self._bt_a = []

    # -- main loop ----------------------------------------------------------

    #: Identical zero-length event repetitions tolerated before the
    #: stuck-clock guard declares the schedule wedged. Coincident events
    #: legitimately produce short zero-dt runs *with* state changes;
    #: only a run with bit-identical kernel state is hopeless.
    MAX_STUCK_EVENTS = 64

    def run(self) -> SessionResult:  # hot
        config = self.config
        content = self.content
        playback = self.playback
        network = self.network
        player = self.player
        observer = self._observer
        video = self._video
        audio = self._audio
        chunk_s = self._chunk_s
        n_chunks = content.n_chunks
        max_time = config.max_sim_time_s or (content.duration_s * 20.0 + 120.0)
        failures_possible = config.failure_model is not None
        may_abort = self._player_may_abort
        events_left = config.max_events
        update_state = playback.update_state
        ended_state = PlaybackState.ENDED
        playing_state = PlaybackState.PLAYING
        bt_t = self._bt_t
        bt_v = self._bt_v
        bt_a = self._bt_a
        # The loop tail runs update_state with arguments that cannot
        # change before the next iteration's head; this flag elides the
        # duplicate head call (update_state is idempotent on identical
        # arguments, so eliding it is exact).
        state_fresh = False
        # Stuck-clock guard state: fingerprint of the kernel state at
        # the last zero-dt event and the length of the identical run.
        stuck_fp: Optional[tuple] = None
        stuck_streak = 0

        if observer is not None:
            # The header must precede every other event: estimates can
            # flow as early as on_session_start.
            self._emit("session_meta", self._meta_payload())
        try:
            player.on_session_start(self.ctx)
            self._sample_buffers()
            while True:
                if events_left == 0:
                    raise SimulationError(
                        f"event cap ({config.max_events}) exceeded "
                        f"at t={self.now}"
                    )
                fv = video.completed * chunk_s
                fa = audio.completed * chunk_s
                frontier = fv if fv <= fa else fa
                all_downloaded = (
                    video.completed >= n_chunks and audio.completed >= n_chunks
                )
                if not state_fresh:
                    update_state(self.now, frontier, all_downloaded)
                    if observer is not None:
                        self._sync_playback_events()
                state = playback.state
                if state is ended_state:
                    break
                now = self.now
                if (
                    video.active is None
                    and video.completed < n_chunks
                    and (video.wake_at == _INF or video.wake_at <= now + _EPS)
                ) or (
                    audio.active is None
                    and audio.completed < n_chunks
                    and (audio.wake_at == _INF or audio.wake_at <= now + _EPS)
                ):
                    self._fill_slots()
                    state = playback.state  # unchanged; re-read for clarity
                # Fast-forward is admissible only while every lane is
                # *engaged* — downloading, finished, or in a timed wait.
                # An idle lane with an infinite wake means "re-ask the
                # player at every event", which fast-forward would skip.
                ff_ok = not may_abort and (
                    video.active is not None
                    or video.completed >= n_chunks
                    or video.wake_at != _INF
                ) and (
                    audio.active is not None
                    or audio.completed >= n_chunks
                    or audio.wake_at != _INF
                )
                playing = state is playing_state
                # Event micro-loop: the first pass is the ordinary
                # event step; further passes collapse runs of *quiet*
                # events (trace boundaries, dead-time expiries) that
                # need none of the scheduling machinery above. Each
                # pass consumes one unit of the event budget and emits
                # exactly the stream the plain loop would.
                while True:  # hot: pure
                    events_left -= 1
                    vdl = video.active
                    adl = audio.active
                    v_live = (
                        vdl is not None
                        and not vdl.stalled
                        and now >= vdl.dead_until - _EPS
                    )
                    a_live = (
                        adl is not None
                        and not adl.stalled
                        and now >= adl.dead_until - _EPS
                    )
                    # Quiet bound: rate-change instants (trace boundary,
                    # dead-time expiry) — nothing terminal happens there.
                    if v_live or a_live:
                        v_rate, a_rate, quiet = network.media_step(
                            v_live, a_live, now
                        )
                    else:
                        v_rate = a_rate = 0.0
                        quiet = network.next_change_after(now)
                    # Loud bound: every event that needs the full outer
                    # machinery (completion, failure, wake-up, frontier).
                    loud = _INF
                    if vdl is None:
                        w = video.wake_at
                        if w > now + _EPS and w < loud:
                            loud = w
                    else:
                        ft = vdl.fail_at_time
                        if ft is not None and ft < loud:
                            loud = ft
                        if not vdl.stalled:
                            if now < vdl.dead_until - _EPS:
                                if vdl.dead_until < quiet:
                                    quiet = vdl.dead_until
                            elif v_rate > 0:
                                c = now + vdl.next_target_bits / (v_rate * 1000.0)
                                if c < loud:
                                    loud = c
                    if adl is None:
                        w = audio.wake_at
                        if w > now + _EPS and w < loud:
                            loud = w
                    else:
                        ft = adl.fail_at_time
                        if ft is not None and ft < loud:
                            loud = ft
                        if not adl.stalled:
                            if now < adl.dead_until - _EPS:
                                if adl.dead_until < quiet:
                                    quiet = adl.dead_until
                            elif a_rate > 0:
                                c = now + adl.next_target_bits / (a_rate * 1000.0)
                                if c < loud:
                                    loud = c
                    if playing:
                        gap = frontier - playback.position_s
                        c = now + (gap if gap > 0.0 else 0.0)
                        if c < loud:
                            loud = c
                    is_quiet = quiet < loud
                    horizon = quiet if is_quiet else loud
                    if not horizon < _INF:
                        raise SimulationError(
                            "deadlock: no future event (all media waiting "
                            f"forever while playback is {playback.state})"
                        )
                    if horizon < now:
                        horizon = now
                    if horizon > max_time:
                        self.now = now
                        return self._finish()
                    # Progress guard: simultaneous events legitimately
                    # yield zero-length steps, but a run of them with
                    # *no kernel state change at all* means the event
                    # schedule is wedged (e.g. a network model whose
                    # next_change_after is not strictly in the future).
                    if horizon <= now + _EPS:
                        fp = (
                            now,
                            video.completed,
                            audio.completed,
                            None
                            if vdl is None
                            else (vdl.chunk_index, vdl.attempt, vdl.bits_done),
                            None
                            if adl is None
                            else (adl.chunk_index, adl.attempt, adl.bits_done),
                            video.wake_at,
                            audio.wake_at,
                            playback.state,
                            playback.position_s,
                            self.retries_spent,
                        )
                        if fp == stuck_fp:
                            stuck_streak += 1
                            if stuck_streak >= self.MAX_STUCK_EVENTS:
                                raise SimulationError(
                                    f"simulation clock stuck at t={now}: "
                                    f"{stuck_streak} consecutive zero-length "
                                    "events with identical kernel state "
                                    f"(playback={playback.state.value} "
                                    f"pos={playback.position_s}, video: "
                                    f"completed={video.completed} "
                                    f"active={vdl is not None} "
                                    f"wake={video.wake_at}, audio: "
                                    f"completed={audio.completed} "
                                    f"active={adl is not None} "
                                    f"wake={audio.wake_at})"
                                )
                        else:
                            stuck_fp = fp
                            stuck_streak = 1
                    else:
                        stuck_fp = None
                        stuck_streak = 0
                    # Advance every live transfer at its constant rate.
                    dt = horizon - now
                    if dt < -1e-6:
                        raise SimulationError(
                            f"time went backwards: {now} -> {horizon}"
                        )
                    if dt > 0.0:
                        if v_live and v_rate > 0:
                            bits = v_rate * 1000.0 * dt
                            rem = vdl.size_bits - vdl.bits_done
                            if rem < bits:
                                bits = rem
                            vdl.bits_done += bits
                            vdl.segments.append(
                                ProgressSegment(now, horizon, bits)
                            )
                            if observer is not None:
                                self._emit(
                                    "download_progress",
                                    {  # lint: allow[HOT-ALLOC-IN-LOOP] observer-only payload
                                        "t0": now,
                                        "t1": horizon,
                                        "medium": "video",
                                        "bits": bits,
                                    },
                                )
                        if a_live and a_rate > 0:
                            bits = a_rate * 1000.0 * dt
                            rem = adl.size_bits - adl.bits_done
                            if rem < bits:
                                bits = rem
                            adl.bits_done += bits
                            adl.segments.append(
                                ProgressSegment(now, horizon, bits)
                            )
                            if observer is not None:
                                self._emit(
                                    "download_progress",
                                    {  # lint: allow[HOT-ALLOC-IN-LOOP] observer-only payload
                                        "t0": now,
                                        "t1": horizon,
                                        "medium": "audio",
                                        "bits": bits,
                                    },
                                )
                        if playing:
                            new_position = playback.position_s + dt
                            if new_position > frontier + 1e-6:
                                raise SimulationError(
                                    "playback overshot buffered frontier: "
                                    f"{new_position} > {frontier}"
                                )
                            playback.position_s = (
                                new_position
                                if new_position <= frontier
                                else frontier
                            )
                    now = horizon
                    self.now = horizon
                    if not (is_quiet and ff_ok):
                        break
                    # A quiet step can still land inside the epsilon
                    # window of a loud deadline: a wake-up now due, a
                    # transfer within completion tolerance, a failure
                    # watchdog within _EPS, or a playback transition
                    # (stall at the frontier, end of content). The
                    # plain loop would act on those *this instant*, so
                    # fall back to the outer machinery — it re-derives
                    # the same state and applies the action exactly as
                    # the plain loop does.
                    if vdl is not None:
                        if vdl.finished or vdl.failed_by(now):
                            break
                    elif (
                        video.completed < n_chunks
                        and video.wake_at <= now + _EPS
                    ):
                        break
                    if adl is not None:
                        if adl.finished or adl.failed_by(now):
                            break
                    elif (
                        audio.completed < n_chunks
                        and audio.wake_at <= now + _EPS
                    ):
                        break
                    if playing:
                        position = playback.position_s
                        if position >= content.duration_s - _EPS or (
                            position >= frontier - _EPS and not all_downloaded
                        ):
                            break
                    # Quiet event: no completion, failure, wake-up or
                    # transition is possible here, so the outer pass
                    # (fill_slots/update_state/failure scan) is a
                    # provable no-op. Sample (inline — this is the
                    # hottest line of trace-dense sessions) and take
                    # the next event directly.
                    pos = playback.position_s
                    video_s = video.completed * chunk_s - pos
                    if not video_s > 0.0:
                        video_s = 0.0
                    audio_s = audio.completed * chunk_s - pos
                    if not audio_s > 0.0:
                        audio_s = 0.0
                    if not (
                        now == self._ls_t
                        and video_s == self._ls_v
                        and audio_s == self._ls_a
                    ):
                        self._ls_t = now
                        self._ls_v = video_s
                        self._ls_a = audio_s
                        bt_t.append(now)
                        bt_v.append(video_s)
                        bt_a.append(audio_s)
                        if observer is not None:
                            self._emit(
                                "buffer_sample",
                                {  # lint: allow[HOT-ALLOC-IN-LOOP] observer-only payload
                                    "t": now,
                                    "video_s": video_s,
                                    "audio_s": audio_s,
                                },
                            )
                    if events_left == 0:
                        raise SimulationError(
                            f"event cap ({config.max_events}) exceeded "
                            f"at t={self.now}"
                        )
                # Loud event: run the full bookkeeping.
                if failures_possible:
                    self._process_failures()
                vdl = video.active
                if vdl is not None:
                    rem = vdl.size_bits - vdl.bits_done
                    tol = vdl.size_bits * 1e-9
                    if rem <= (tol if tol > 1e-3 else 1e-3) and not vdl.failed:
                        self._complete(video, vdl)
                adl = audio.active
                if adl is not None:
                    rem = adl.size_bits - adl.bits_done
                    tol = adl.size_bits * 1e-9
                    if rem <= (tol if tol > 1e-3 else 1e-3) and not adl.failed:
                        self._complete(audio, adl)
                if may_abort:
                    self._check_aborts()
                fv = video.completed * chunk_s
                fa = audio.completed * chunk_s
                frontier = fv if fv <= fa else fa
                all_downloaded = (
                    video.completed >= n_chunks and audio.completed >= n_chunks
                )
                update_state(self.now, frontier, all_downloaded)
                state_fresh = True
                if observer is not None:
                    self._sync_playback_events()
                # Inlined _sample_buffers (hot: once per loud event).
                now = self.now
                pos = playback.position_s
                video_s = video.completed * chunk_s - pos
                if not video_s > 0.0:
                    video_s = 0.0
                audio_s = audio.completed * chunk_s - pos
                if not audio_s > 0.0:
                    audio_s = 0.0
                if (
                    now != self._ls_t
                    or video_s != self._ls_v
                    or audio_s != self._ls_a
                ):
                    self._ls_t = now
                    self._ls_v = video_s
                    self._ls_a = audio_s
                    bt_t.append(now)
                    bt_v.append(video_s)
                    bt_a.append(audio_s)
                    if observer is not None:
                        self._emit(
                            "buffer_sample",
                            {  # lint: allow[HOT-ALLOC-IN-LOOP] observer-only payload
                                "t": now,
                                "video_s": video_s,
                                "audio_s": audio_s,
                            },
                        )
                if self._terminated is not None:
                    break  # graceful degraded end: keep the result intact
            return self._finish()
        finally:
            self._flush_buffer_timeline()

    def _finish(self) -> SessionResult:
        """Seal the result after the event loop ends."""
        self.playback.close(self.now)
        self.result.stalls = list(self.playback.stalls)
        self.result.startup_delay_s = self.playback.startup_delay_s
        self.result.ended_at_s = self.now
        self.result.completed = self.playback.state is PlaybackState.ENDED
        self.result.termination_reason = self._terminated
        if self._observer is not None:
            # `close` may have sealed a final stall; flush before verdict.
            self._sync_playback_events()
            self._emit(
                "verdict",
                {
                    "t": self.now,
                    "completed": self.result.completed,
                    "startup_delay_s": self.result.startup_delay_s,
                    "termination_reason": self._terminated,
                    "n_stalls": len(self.result.stalls),
                },
            )
        self.player.on_session_end(self.ctx)
        if self._observer is not None:
            self._observer.close()
        return self.result


def simulate(
    content: Content,
    player: "BasePlayer",
    network: NetworkModel,
    config: Optional[SessionConfig] = None,
) -> SessionResult:
    """Convenience wrapper: build a session and run it to completion."""
    return Session(content, player, network, config).run()
