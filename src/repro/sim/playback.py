"""Playback clock with demuxed-buffer stall semantics.

The defining property of demuxed playback (Section 2.1): playback needs
*both* media, so "either empty audio or video buffer leads to stalls ...
even if there is a lot of content in the other buffer." The tracker
advances a single play position bounded by the *minimum* of the two
buffered frontiers.
"""

from __future__ import annotations

import enum
from typing import List, Optional

from ..errors import SimulationError
from .constants import EPS
from .records import StallEvent


class PlaybackState(enum.Enum):
    STARTUP = "startup"  # initial buffering, never played yet
    PLAYING = "playing"
    STALLED = "stalled"  # rebuffering mid-session
    ENDED = "ended"


class PlaybackTracker:
    """Tracks play position, startup delay and stall intervals."""

    def __init__(
        self,
        content_duration_s: float,
        startup_threshold_s: float,
        resume_threshold_s: float,
    ):
        if content_duration_s <= 0:
            raise SimulationError("content duration must be positive")
        if startup_threshold_s <= 0 or resume_threshold_s <= 0:
            raise SimulationError("playback thresholds must be positive")
        self.content_duration_s = content_duration_s
        self.startup_threshold_s = startup_threshold_s
        self.resume_threshold_s = resume_threshold_s
        self.state = PlaybackState.STARTUP
        self.position_s = 0.0
        self.startup_delay_s: Optional[float] = None
        self.stalls: List[StallEvent] = []

    @property
    def is_playing(self) -> bool:
        return self.state is PlaybackState.PLAYING

    def buffered_frontier_ok(self, frontier_s: float, threshold_s: float) -> bool:
        """Is there enough content past the play position to (re)start?

        ``frontier_s`` is the buffered frontier of the *lagging* medium.
        Near the end of the title less than a full threshold remains, so
        the requirement shrinks to "everything that is left".
        """
        remaining = self.content_duration_s - self.position_s
        needed = min(threshold_s, remaining)
        return frontier_s - self.position_s >= needed - EPS

    def advance(self, dt: float, frontier_s: float) -> None:
        """Advance wall time by ``dt``; play if in PLAYING state.

        ``frontier_s`` is min(video frontier, audio frontier): playback
        can never move past it. The session sizes ``dt`` so the position
        lands exactly on the frontier at an event boundary rather than
        overshooting; overshoot means the event schedule was wrong.
        """
        if dt < -EPS:
            raise SimulationError(f"negative time step {dt}")
        if self.state is not PlaybackState.PLAYING:
            return
        new_position = self.position_s + dt
        if new_position > frontier_s + 1e-6:
            raise SimulationError(
                f"playback overshot buffered frontier: {new_position} > {frontier_s}"
            )
        self.position_s = min(new_position, frontier_s)

    def update_state(self, now: float, frontier_s: float, all_downloaded: bool) -> None:
        """Apply state transitions after an event.

        :param frontier_s: min of the two buffered frontiers (seconds of
            content playable from the start).
        :param all_downloaded: every chunk of both media is buffered.
        """
        if self.state is PlaybackState.ENDED:
            return
        if self.position_s >= self.content_duration_s - EPS:
            self._end(now)
            return
        if self.state is PlaybackState.PLAYING:
            if self.position_s >= frontier_s - EPS and not all_downloaded:
                self.state = PlaybackState.STALLED
                self.stalls.append(StallEvent(start_s=now))
            return
        # STARTUP or STALLED: can we (re)start?
        threshold = (
            self.startup_threshold_s
            if self.state is PlaybackState.STARTUP
            else self.resume_threshold_s
        )
        if all_downloaded or self.buffered_frontier_ok(frontier_s, threshold):
            if self.state is PlaybackState.STARTUP:
                self.startup_delay_s = now
            else:
                self.stalls[-1].end_s = now
            self.state = PlaybackState.PLAYING

    def _end(self, now: float) -> None:
        if self.state is PlaybackState.STALLED and self.stalls:
            # A stall can in principle end exactly at content end.
            self.stalls[-1].end_s = now
        self.state = PlaybackState.ENDED

    def close(self, now: float) -> None:
        """Close any open stall at session teardown."""
        if self.stalls and self.stalls[-1].end_s is None:
            self.stalls[-1].end_s = now
