"""Decision types a player returns from ``choose_next``."""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import PlayerError


@dataclass(frozen=True)
class Download:
    """Fetch the next chunk of this medium from ``track_id``."""

    track_id: str

    def __post_init__(self) -> None:
        if not self.track_id:
            raise PlayerError("Download decision needs a track id")


@dataclass(frozen=True)
class Wait:
    """Do not fetch now; re-ask at ``until`` (or at the next event).

    ``until=inf`` means "poll me again whenever anything else happens"
    — used when the player is blocked on another medium's progress
    rather than on time (e.g. ExoPlayer's per-chunk A/V locking).
    """

    until: float = math.inf

    def __post_init__(self) -> None:
        if not self.until == self.until:  # NaN guard
            raise PlayerError("Wait.until must not be NaN")


Decision = object  # Download | Wait (typing.Union kept loose for 3.9)
