"""Decision types a player returns from ``choose_next``."""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import PlayerError


@dataclass(frozen=True)
class Download:
    """Fetch the next chunk of this medium from ``track_id``."""

    track_id: str

    def __post_init__(self) -> None:
        if not self.track_id:
            raise PlayerError("Download decision needs a track id")


@dataclass(frozen=True)
class Wait:
    """Do not fetch now; re-ask at ``until`` (or at the next event).

    ``until=inf`` means "poll me again whenever anything else happens"
    — used when the player is blocked on another medium's progress
    rather than on time (e.g. ExoPlayer's per-chunk A/V locking).
    """

    until: float = math.inf

    def __post_init__(self) -> None:
        if not self.until == self.until:  # NaN guard
            raise PlayerError("Wait.until must not be NaN")


Decision = object  # Download | Wait (typing.Union kept loose for 3.9)

#: Shared "blocked on another medium, re-poll at the next event"
#: decision. Both decision types are frozen, so hot players return the
#: same instance instead of constructing one per poll.
WAIT_FOREVER = Wait()

_DOWNLOAD_CACHE: dict = {}


def download_for(track_id: str) -> Download:
    """A (shared, frozen) :class:`Download` decision for ``track_id``.

    Players issue the same few decisions tens of thousands of times per
    session sweep; interning them removes the per-poll construction.
    """
    decision = _DOWNLOAD_CACHE.get(track_id)
    if decision is None:
        # Intern cache: the value is a pure function of the key, so
        # each worker rebuilding its own copy is correct by design.
        decision = _DOWNLOAD_CACHE[track_id] = Download(track_id=track_id)  # lint: allow[POOL-GLOBAL-MUTABLE]
    return decision
