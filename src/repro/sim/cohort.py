"""Multi-session cohort kernel: N players on shared edge infrastructure.

The single-session kernel (:mod:`repro.sim.session`) owns its link: a
session's downloads see the trace's bandwidth and nothing else. A
cohort cannot be simulated by running that kernel N times, because the
defining physics is *coupling* — every flow's rate depends on how many
neighbors currently share its edge, so one session completing a chunk
re-times every other session's in-flight transfer.

This kernel models each edge as a processor-sharing fluid link: all
backlogged flows on edge *e* receive ``capacity/n`` (max-min fair with
unconstrained last-mile links), tracked in O(log n) per event through
a per-edge *virtual service* clock ``V`` — the cumulative bits any one
flow has received. A flow of ``size`` bits joining at ``V0`` completes
when ``V`` reaches ``V0 + size``, so flow joins/leaves and capacity
changes (fault windows) only re-time the earliest completion; no
per-flow state is rewritten. A global event heap ordered by
``(time, push seq)`` interleaves all sessions deterministically.

Sessions run a compact recommended-style policy (harmonic-mean
estimate, safety factor, curated-combination selection, balanced A/V
fetching, buffer-target pacing) and the full failure machinery:
per-request watchdog timeouts from the real
:class:`~repro.net.resilience.RetryPolicy`, backoff retries against a
finite budget, and edge failover through
:class:`~repro.net.resilience.EndpointHealth` under a
:class:`~repro.net.resilience.FailoverPolicy`. Every session ends with
a verdict — completed, or degraded with a ``termination_reason`` —
never an exception; correlated faults produce stalls, failovers and
degradations, not aborts.

Determinism: event ordering is ``(time, monotonic push counter)``;
endpoint assignment and brownout 5xx draws are sha256 hashes of the
cohort seed and event coordinates; there is no wall clock and no
shared RNG. Identical specs produce byte-identical
:class:`CohortResult` fingerprints in any process.

Memory: per-session state is a fixed-size struct and per-session
output is one :class:`CohortSessionSummary`; cohort QoE is folded
session-by-session into a streaming
:class:`~repro.qoe.aggregate.CohortAggregate`, so aggregation memory
is O(1) per session (``keep_summaries=False`` drops even the
summaries for very large cohorts).
"""

from __future__ import annotations

import hashlib
import heapq
import json
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..errors import SimulationError
from ..media.tracks import MediaType
from ..net.resilience import (
    EndpointHealth,
    FailoverPolicy,
    FailureKind,
    RetryPolicy,
)
from ..topology.cache import EdgeCache
from ..topology.faults import (
    ORIGIN_DOMAIN,
    FaultDomainKind,
    FaultWindow,
)
from ..topology.spec import TopologySpec

#: Relative slack when comparing virtual-service targets (fp rounding
#: in the completion-time arithmetic).
_V_EPS = 1e-6

#: Runaway guard: no legitimate cohort needs more events than this per
#: session chunk (requests, retries, waits, fault edges, watchdogs).
_EVENTS_PER_CHUNK_CAP = 400


@dataclass
class CohortConfig:
    """Knobs of one cohort run (player policy + failure machinery)."""

    n_sessions: int = 100
    #: Flash-crowd window: session ``i`` arrives at ``i * burst/n``.
    arrival_burst_s: float = 30.0
    retry_policy: RetryPolicy = field(default_factory=RetryPolicy)
    failover: FailoverPolicy = field(default_factory=FailoverPolicy)
    seed: int = 0
    safety_factor: float = 0.85
    up_buffer_s: float = 10.0
    down_buffer_s: float = 15.0
    buffer_target_s: float = 20.0
    estimator_window: int = 5
    max_sim_time_s: float = 3600.0
    keep_summaries: bool = True

    def __post_init__(self) -> None:
        if self.n_sessions < 1:
            raise SimulationError(
                f"cohort needs at least one session, got {self.n_sessions}"
            )
        if self.arrival_burst_s < 0:
            raise SimulationError(
                f"arrival burst must be >= 0, got {self.arrival_burst_s}"
            )
        if not 0 < self.safety_factor <= 1:
            raise SimulationError(
                f"safety factor must be in (0,1], got {self.safety_factor}"
            )
        if self.estimator_window < 1:
            raise SimulationError(
                f"estimator window must be >= 1, got {self.estimator_window}"
            )
        if self.max_sim_time_s <= 0:
            raise SimulationError(
                f"max sim time must be positive, got {self.max_sim_time_s}"
            )


@dataclass(frozen=True)
class CohortSessionSummary:
    """Fixed-size per-session verdict (the O(1) unit of aggregation)."""

    session_id: int
    primary_edge: str
    final_edge: str
    arrival_s: float
    end_s: float
    completed: bool
    termination_reason: Optional[str]
    startup_delay_s: float
    stall_s: float
    n_stalls: int
    video_switches: int
    audio_switches: int
    failovers: int
    retries: int
    chunks_downloaded: int
    bits_useful: float
    bits_wasted: float
    mean_av_imbalance_s: float


@dataclass
class CohortResult:
    """Everything one cohort run produced, in picklable plain data."""

    n_sessions: int
    content_duration_s: float
    completed_sessions: int
    degraded_sessions: int
    verdict_counts: Dict[str, int]
    #: Streaming cohort QoE (:meth:`~repro.qoe.aggregate.CohortAggregate.summary`).
    aggregate: Dict[str, object]
    #: Per-edge byte ledger and cache counters.
    edges: Dict[str, Dict[str, float]]
    #: The fault windows that governed the run (as plain dicts).
    fault_windows: Tuple[Dict[str, object], ...]
    #: Sparse fault-domain event log: window edges, failovers,
    #: degradations — the CI artifact, bounded by faults + sessions.
    fault_events: Tuple[Dict[str, object], ...]
    #: Per-session summaries (empty when ``keep_summaries=False``).
    summaries: Tuple[CohortSessionSummary, ...] = ()

    def fingerprint(self) -> str:
        """sha256 over the canonical JSON of every field.

        Floats serialize at full ``repr`` precision, so two runs agree
        on the fingerprint only if they agree bit-for-bit — the
        identity the serial/parallel/resumed grid tests pin.
        """
        payload = {
            "n_sessions": self.n_sessions,
            "content_duration_s": self.content_duration_s,
            "completed_sessions": self.completed_sessions,
            "degraded_sessions": self.degraded_sessions,
            "verdict_counts": self.verdict_counts,
            "aggregate": self.aggregate,
            "edges": self.edges,
            "fault_windows": self.fault_windows,
            "fault_events": self.fault_events,
            "summaries": [vars(s) for s in self.summaries],
        }
        canonical = json.dumps(
            payload, sort_keys=True, separators=(",", ":"), default=str
        )
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class _Edge:
    """Live processor-sharing state of one edge."""

    __slots__ = (
        "spec",
        "cache",
        "base_bps",
        "rate_bps",
        "v",
        "last_t",
        "flows",
        "heap",
        "gen",
        "served_bits",
        "settled_bits",
        "busy_s",
        "useful_bits",
        "wasted_bits",
    )

    def __init__(self, spec, cache: EdgeCache):
        self.spec = spec
        self.cache = cache
        self.base_bps = spec.capacity_kbps * 1000.0
        self.rate_bps = self.base_bps
        self.v = 0.0  # cumulative per-flow service, bits
        self.last_t = 0.0
        self.flows: Dict[int, "_Flow"] = {}
        self.heap: List[Tuple[float, int]] = []  # (v_target, flow id)
        self.gen = 0
        self.served_bits = 0.0  # ∫ capacity dt while busy (edge's ledger)
        self.settled_bits = 0.0  # Σ per-flow settlements (sessions' ledger)
        self.busy_s = 0.0
        self.useful_bits = 0.0
        self.wasted_bits = 0.0

    def settle(self, t: float) -> None:
        """Advance the fluid state to ``t`` (call before any change)."""
        dt = t - self.last_t
        if dt > 0 and self.flows and self.rate_bps > 0:
            self.v += self.rate_bps * dt / len(self.flows)
            self.served_bits += self.rate_bps * dt
            self.busy_s += dt
        self.last_t = max(self.last_t, t)

    def next_completion(self) -> Optional[Tuple[float, int]]:
        """(absolute time, flow id) of the earliest completion, if any."""
        while self.heap:
            v_target, flow_id = self.heap[0]
            if flow_id not in self.flows:
                heapq.heappop(self.heap)  # stale: flow already removed
                continue
            if self.rate_bps <= 0:
                return None
            remaining = max(0.0, v_target - self.v)
            dt = remaining * len(self.flows) / self.rate_bps
            return self.last_t + dt, flow_id
        return None


class _Flow:
    """One in-transfer request's share of an edge."""

    __slots__ = ("session_id", "v_start", "v_target", "size_bits")

    def __init__(self, session_id: int, v_start: float, size_bits: float):
        self.session_id = session_id
        self.v_start = v_start
        self.v_target = v_start + size_bits
        self.size_bits = size_bits


class _Session:
    """One cohort member's compact state machine."""

    __slots__ = (
        "sid",
        "arrival_s",
        "health",
        "clock",
        "vbuf",
        "abuf",
        "playing",
        "stalled",
        "played_s",
        "startup_delay_s",
        "stall_s",
        "n_stalls",
        "imbalance_integral",
        "v_done",
        "a_done",
        "last_v_track",
        "last_a_track",
        "video_switches",
        "audio_switches",
        "combo_index",
        "samples",
        "retries_spent",
        "retries",
        "failovers_at_end",
        "chunks_downloaded",
        "bits_useful",
        "bits_wasted",
        "req_seq",
        "inflight",
        "attempt",
        "done",
        "completed",
        "termination_reason",
        "end_s",
        "emergency",
    )

    def __init__(self, sid: int, arrival_s: float, health: EndpointHealth,
                 window: int):
        self.sid = sid
        self.arrival_s = arrival_s
        self.health = health
        self.clock = arrival_s
        self.vbuf = 0.0
        self.abuf = 0.0
        self.playing = False
        self.stalled = False
        self.played_s = 0.0
        self.startup_delay_s = 0.0
        self.stall_s = 0.0
        self.n_stalls = 0
        self.imbalance_integral = 0.0
        self.v_done = 0
        self.a_done = 0
        self.last_v_track: Optional[str] = None
        self.last_a_track: Optional[str] = None
        self.video_switches = 0
        self.audio_switches = 0
        self.combo_index = 0
        self.samples: deque = deque(maxlen=window)
        self.retries_spent = 0
        self.retries = 0
        self.failovers_at_end = 0
        self.chunks_downloaded = 0
        self.bits_useful = 0.0
        self.bits_wasted = 0.0
        self.req_seq = 0  # invalidates stale watchdog/latency events
        self.inflight: Optional[dict] = None
        self.attempt = 0  # attempts spent on the current chunk
        self.done = False
        self.completed = False
        self.termination_reason: Optional[str] = None
        self.end_s = arrival_s
        self.emergency = False

    def estimate_kbps(self) -> Optional[float]:
        if not self.samples:
            return None
        return len(self.samples) / sum(1.0 / s for s in self.samples)


class CohortKernel:
    """Drive ``config.n_sessions`` coupled sessions over ``topology``."""

    def __init__(
        self,
        content,
        combinations,
        topology: TopologySpec,
        windows: Tuple[FaultWindow, ...] = (),
        config: Optional[CohortConfig] = None,
    ):
        self.content = content
        self.combos = list(combinations)
        if not self.combos:
            raise SimulationError("cohort needs a non-empty combination set")
        self.topology = topology
        self.windows = tuple(windows)
        self.config = config or CohortConfig()
        self.chunk_s = content.chunk_duration_s
        self.n_chunks = content.n_chunks
        self.duration_s = content.duration_s
        # Chunk sizes resolved once: (track_id, index) -> bits.
        self._sizes: Dict[Tuple[str, int], float] = {}
        for combo in self.combos:
            for track in (combo.video, combo.audio):
                if (track.track_id, 0) in self._sizes:
                    continue
                for index in range(self.n_chunks):
                    self._sizes[(track.track_id, index)] = content.chunk(
                        track.track_id, index
                    ).size_bits

    # -- deterministic draws ------------------------------------------------

    def _uniform(self, tag: str, *coords) -> float:
        digest = hashlib.sha256(
            ("cohort|%d|%s|%s" % (
                self.config.seed, tag, "|".join(str(c) for c in coords)
            )).encode("utf-8")
        ).digest()
        return int.from_bytes(digest[:8], "big") / 2**64

    # -- the run ------------------------------------------------------------

    def run(self) -> CohortResult:
        from ..qoe.aggregate import CohortAggregate

        cfg = self.config
        self.edges: Dict[str, _Edge] = {
            e.edge_id: _Edge(e, EdgeCache(e.cache_chunks))
            for e in self.topology.edges
        }
        self.sessions: List[_Session] = []
        for sid in range(cfg.n_sessions):
            order = self.topology.endpoint_order(cfg.seed, sid)
            health = EndpointHealth(order, cfg.failover)
            arrival = cfg.arrival_burst_s * sid / cfg.n_sessions
            self.sessions.append(
                _Session(sid, arrival, health, cfg.estimator_window)
            )

        self._heap: List[Tuple[float, int, str, tuple]] = []
        self._push_seq = 0
        self._alive = cfg.n_sessions
        self._events: List[Dict[str, object]] = []
        self._brownouts = [
            w for w in self.windows
            if w.kind is FaultDomainKind.ORIGIN_BROWNOUT
        ]
        self._aggregate = CohortAggregate()
        self._summaries: List[CohortSessionSummary] = []

        for session in self.sessions:
            self._push(session.arrival_s, "arrive", (session.sid,))
        for index, window in enumerate(self.windows):
            self._push(window.start_s, "fault_start", (index,))
            self._push(window.end_s, "fault_end", (index,))

        budget = cfg.n_sessions * self.n_chunks * _EVENTS_PER_CHUNK_CAP
        processed = 0
        while self._heap and self._alive > 0:
            t, _, kind, payload = heapq.heappop(self._heap)
            if t > cfg.max_sim_time_s:
                break
            processed += 1
            if processed > budget:
                raise SimulationError(
                    f"cohort event budget exhausted after {processed} events "
                    "(kernel scheduling bug: the run is not converging)"
                )
            handler = getattr(self, "_on_" + kind)
            handler(t, *payload)

        # Ceiling: anything still alive ends degraded-but-verdicted.
        for session in self.sessions:
            if not session.done:
                self._terminate(
                    session, min(cfg.max_sim_time_s, session.clock),
                    "sim_time_ceiling",
                )
        return self._result()

    # -- event plumbing -----------------------------------------------------

    def _push(self, t: float, kind: str, payload: tuple) -> None:
        self._push_seq += 1
        heapq.heappush(self._heap, (t, self._push_seq, kind, payload))

    def _log(self, t: float, kind: str, **fields) -> None:
        event = {"t": round(t, 6), "k": kind}
        event.update(fields)
        self._events.append(event)

    # -- fault windows ------------------------------------------------------

    def _on_fault_start(self, t: float, index: int) -> None:
        window = self.windows[index]
        self._log(
            t, "fault_open", fault=window.kind.value, domain=window.domain
        )
        if window.kind is FaultDomainKind.EDGE_OUTAGE:
            edge = self.edges.get(window.domain)
            if edge is None:
                return
            edge.settle(t)
            edge.rate_bps = 0.0
            edge.gen += 1  # outage: no completion until the window ends
        elif window.kind is FaultDomainKind.EVICTION_STORM:
            edge = self.edges.get(window.domain)
            if edge is not None:
                dropped = edge.cache.flush()
                self._log(t, "cache_flush", domain=window.domain, dropped=dropped)
        # Brownouts are consulted at dispatch time; no state to mutate.

    def _on_fault_end(self, t: float, index: int) -> None:
        window = self.windows[index]
        self._log(
            t, "fault_close", fault=window.kind.value, domain=window.domain
        )
        if window.kind is FaultDomainKind.EDGE_OUTAGE:
            edge = self.edges.get(window.domain)
            if edge is None:
                return
            edge.settle(t)
            # Another outage window may still cover this edge.
            if not self._edge_in_outage(window.domain, t):
                edge.rate_bps = edge.base_bps
            edge.gen += 1
            self._schedule_completion(edge)

    def _edge_in_outage(self, edge_id: str, t: float) -> bool:
        return any(
            w.kind is FaultDomainKind.EDGE_OUTAGE
            and w.domain == edge_id
            and w.active(t)
            for w in self.windows
        )

    def _brownout_at(self, t: float) -> Optional[FaultWindow]:
        for window in self._brownouts:
            if window.active(t):
                return window
        return None

    # -- session lifecycle --------------------------------------------------

    def _on_arrive(self, t: float, sid: int) -> None:
        self._decide(self.sessions[sid], t)

    def _on_wake(self, t: float, sid: int, seq: int) -> None:
        session = self.sessions[sid]
        if session.done or session.req_seq != seq or session.inflight:
            return  # stale wake: state moved on
        self._decide(session, t)

    def _advance(self, session: _Session, t: float) -> None:
        """Closed-form playback/stall accounting up to ``t``."""
        dt = t - session.clock
        if dt <= 0:
            return
        session.imbalance_integral += abs(session.vbuf - session.abuf) * dt
        if session.playing:
            minbuf = min(session.vbuf, session.abuf)
            drain = min(dt, minbuf)
            session.vbuf = max(0.0, session.vbuf - drain)
            session.abuf = max(0.0, session.abuf - drain)
            session.played_s += drain
            if dt > drain + 1e-12:
                if not session.stalled:
                    session.stalled = True
                    session.n_stalls += 1
                session.stall_s += dt - drain
        session.clock = t

    def _decide(self, session: _Session, t: float) -> None:
        """Pick the next request (or a pacing wait) for ``session``."""
        if session.done or session.inflight is not None:
            return
        self._advance(session, t)
        cfg = self.config
        v_left = session.v_done < self.n_chunks
        a_left = session.a_done < self.n_chunks
        if not v_left and not a_left:
            self._complete_session(session, t)
            return
        # Buffer-target pacing: above target, idle until it drains.
        minbuf = min(
            session.vbuf if v_left else float("inf"),
            session.abuf if a_left else float("inf"),
        )
        if session.playing and minbuf >= cfg.buffer_target_s:
            wake_in = minbuf - max(cfg.buffer_target_s - self.chunk_s, 0.0)
            session.req_seq += 1
            self._push(t + wake_in, "wake", (session.sid, session.req_seq))
            return
        # Balanced A/V: feed the lagging medium (video wins ties, so the
        # very first fetch is video, then audio, as the buffers leapfrog).
        if not a_left or (v_left and session.vbuf <= session.abuf):
            medium = MediaType.VIDEO
            index = session.v_done
        else:
            medium = MediaType.AUDIO
            index = session.a_done
        combo = self.combos[self._select(session)]
        track = combo.video if medium is MediaType.VIDEO else combo.audio
        self._dispatch(session, t, medium, index, track.track_id)

    def _select(self, session: _Session) -> int:
        cfg = self.config
        policy = cfg.retry_policy
        remaining = policy.retry_budget - session.retries_spent
        if remaining <= policy.emergency_threshold():
            # Budget nearly gone: lowest rung, stop gambling bytes.
            session.emergency = True
            session.combo_index = 0
            return 0
        estimate = session.estimate_kbps()
        if estimate is None:
            session.combo_index = 0
            return 0
        budget = estimate * cfg.safety_factor
        ideal = 0
        for i, combo in enumerate(self.combos):
            if combo.avg_kbps <= budget:
                ideal = i
        current = session.combo_index
        minbuf = min(session.vbuf, session.abuf)
        if ideal > current:
            if minbuf >= cfg.up_buffer_s:
                current = ideal
        elif ideal < current:
            if minbuf < cfg.down_buffer_s:
                current = ideal
        session.combo_index = current
        return current

    # -- request lifecycle --------------------------------------------------

    def _dispatch(
        self, session: _Session, t: float, medium: MediaType,
        index: int, track_id: str,
    ) -> None:
        cfg = self.config
        session.attempt += 1
        session.req_seq += 1
        edge_id = session.health.current(t)
        if session.health.failovers > session.failovers_at_end:
            hop = session.health.hops[-1]
            self._log(
                t, "failover", session=session.sid,
                frm=hop[1], to=hop[2],
            )
            session.failovers_at_end = session.health.failovers
        edge = self.edges[edge_id]
        address = (track_id, index)
        hit = edge.cache.lookup(address)
        latency = edge.spec.rtt_s
        failure_kind: Optional[FailureKind] = None
        if not hit:
            origin = self.topology.origin
            brownout = self._brownout_at(t)
            penalty = origin.miss_penalty_s
            if brownout is not None:
                penalty *= brownout.latency_factor
                u = self._uniform(
                    "5xx", session.sid, medium.value, index, session.attempt
                )
                if u < brownout.error_probability:
                    failure_kind = FailureKind.HTTP_5XX
            latency += origin.rtt_s + penalty
        size = self._sizes[address]
        session.inflight = {
            "seq": session.req_seq,
            "medium": medium,
            "index": index,
            "track": track_id,
            "edge": edge_id,
            "size": size,
            "hit": hit,
            "dispatched": t,
            "flow": None,
        }
        deadline = t + cfg.retry_policy.timeout_for(medium)
        self._push(deadline, "deadline", (session.sid, session.req_seq))
        if failure_kind is not None:
            self._push(
                t + latency, "reqfail",
                (session.sid, session.req_seq, failure_kind.value),
            )
        else:
            self._push(t + latency, "flow_start", (session.sid, session.req_seq))

    def _on_flow_start(self, t: float, sid: int, seq: int) -> None:
        session = self.sessions[sid]
        request = session.inflight
        if session.done or request is None or request["seq"] != seq:
            return
        edge = self.edges[request["edge"]]
        edge.settle(t)
        flow = _Flow(sid, edge.v, request["size"])
        flow_id = seq * self.config.n_sessions + sid  # globally unique
        edge.flows[flow_id] = flow
        heapq.heappush(edge.heap, (flow.v_target, flow_id))
        edge.gen += 1
        request["flow"] = flow_id
        self._schedule_completion(edge)

    def _schedule_completion(self, edge: _Edge) -> None:
        nxt = edge.next_completion()
        if nxt is not None:
            self._push(nxt[0], "edge_complete", (edge.spec.edge_id, edge.gen))

    def _on_edge_complete(self, t: float, edge_id: str, gen: int) -> None:
        edge = self.edges[edge_id]
        if gen != edge.gen:
            return  # state changed since this event was scheduled
        edge.settle(t)
        slack = _V_EPS * max(1.0, edge.v)
        finished: List[int] = []
        while edge.heap:
            v_target, flow_id = edge.heap[0]
            if flow_id not in edge.flows:
                heapq.heappop(edge.heap)
                continue
            if v_target > edge.v + slack:
                break
            heapq.heappop(edge.heap)
            finished.append(flow_id)
        for flow_id in finished:
            flow = edge.flows.pop(flow_id)
            # Settle what the uplink *physically* served this flow — the
            # virtual-clock difference, capped at the flow size. A flow
            # completed within the fp slack is credited marginally less
            # than its nominal size (the "last packet" rounding), which
            # keeps Σ settlements == ∫ capacity dt exact at any scale
            # instead of accumulating an early-credit bias.
            delivered = max(
                0.0, min(edge.v, flow.v_target) - flow.v_start
            )
            edge.settled_bits += delivered
            edge.useful_bits += delivered
            self._complete_request(
                self.sessions[flow.session_id], t, flow, delivered
            )
        edge.gen += 1
        self._schedule_completion(edge)

    def _complete_request(
        self, session: _Session, t: float, flow: _Flow, delivered: float
    ) -> None:
        request = session.inflight
        if session.done or request is None:
            return
        session.inflight = None
        session.attempt = 0
        medium: MediaType = request["medium"]
        edge = self.edges[request["edge"]]
        if not request["hit"]:
            edge.cache.admit((request["track"], request["index"]))
        session.health.record_success(request["edge"])
        elapsed = t - request["dispatched"]
        if elapsed > 0:
            session.samples.append(request["size"] / elapsed / 1000.0)
        session.bits_useful += delivered
        session.chunks_downloaded += 1
        self._advance(session, t)
        if medium is MediaType.VIDEO:
            if (
                session.last_v_track is not None
                and session.last_v_track != request["track"]
            ):
                session.video_switches += 1
            session.last_v_track = request["track"]
            session.v_done += 1
            session.vbuf += self.chunk_s
        else:
            if (
                session.last_a_track is not None
                and session.last_a_track != request["track"]
            ):
                session.audio_switches += 1
            session.last_a_track = request["track"]
            session.a_done += 1
            session.abuf += self.chunk_s
        if not session.playing and session.vbuf > 0 and session.abuf > 0:
            session.playing = True
            session.startup_delay_s = t - session.arrival_s
        if session.stalled and session.vbuf > 0 and session.abuf > 0:
            session.stalled = False  # the starved medium refilled
        self._decide(session, t)

    def _on_reqfail(self, t: float, sid: int, seq: int, kind: str) -> None:
        """Header-level failure (brownout 5xx): no payload bytes."""
        session = self.sessions[sid]
        request = session.inflight
        if session.done or request is None or request["seq"] != seq:
            return
        self._fail_request(session, t, FailureKind(kind), wasted_bits=0.0)

    def _on_deadline(self, t: float, sid: int, seq: int) -> None:
        """Watchdog expiry: the request hung or trickled too slowly."""
        session = self.sessions[sid]
        request = session.inflight
        if session.done or request is None or request["seq"] != seq:
            return
        wasted = 0.0
        kind = FailureKind.TIMEOUT
        flow_id = request["flow"]
        if flow_id is not None:
            edge = self.edges[request["edge"]]
            edge.settle(t)
            flow = edge.flows.pop(flow_id, None)
            if flow is not None:
                wasted = max(0.0, min(edge.v - flow.v_start, flow.size_bits))
                edge.settled_bits += wasted
                edge.wasted_bits += wasted
                edge.gen += 1
                self._schedule_completion(edge)
            if wasted > 0:
                kind = FailureKind.SLOW_TRANSFER
                # The trickle is a real bandwidth observation: feed it
                # to the estimator so the ABR steps down instead of
                # re-requesting the same doomed rung until the attempt
                # cap fires.
                elapsed = t - request["dispatched"]
                if elapsed > 0:
                    session.samples.append(wasted / elapsed / 1000.0)
        self._fail_request(session, t, kind, wasted_bits=wasted)

    def _fail_request(
        self, session: _Session, t: float, kind: FailureKind,
        wasted_bits: float,
    ) -> None:
        cfg = self.config
        request = session.inflight
        session.inflight = None
        session.bits_wasted += wasted_bits
        session.health.record_failure(request["edge"], t)
        self._advance(session, t)
        if session.attempt >= cfg.retry_policy.max_attempts:
            self._terminate(session, t, "attempts_exhausted")
            return
        if session.retries_spent >= cfg.retry_policy.retry_budget:
            self._terminate(session, t, "retry_budget_exhausted")
            return
        session.retries_spent += 1
        session.retries += 1
        delay = cfg.retry_policy.delay_s(
            session.attempt + 1, request["medium"], request["index"]
        )
        # Redispatch the same chunk after backoff (possibly on a
        # failed-over edge, possibly at a lower rung).
        session.req_seq += 1
        self._push(
            t + delay, "retry",
            (session.sid, session.req_seq,
             request["medium"].value, request["index"]),
        )

    def _on_retry(
        self, t: float, sid: int, seq: int, medium: str, index: int
    ) -> None:
        session = self.sessions[sid]
        if session.done or session.req_seq != seq or session.inflight:
            return
        self._advance(session, t)
        # Re-select: the failure may have fed the estimator or engaged
        # the emergency rung, so the retry fetches the *current* choice.
        which = MediaType(medium)
        combo = self.combos[self._select(session)]
        track = combo.video if which is MediaType.VIDEO else combo.audio
        self._dispatch(session, t, which, index, track.track_id)

    # -- verdicts -----------------------------------------------------------

    def _complete_session(self, session: _Session, t: float) -> None:
        self._advance(session, t)
        remaining = max(session.vbuf, session.abuf)
        # Play out the tail: both buffers hold the same remaining
        # content once every chunk of both media is down.
        session.imbalance_integral += (
            abs(session.vbuf - session.abuf) * remaining
        )
        session.played_s += remaining
        session.vbuf = 0.0
        session.abuf = 0.0
        session.completed = True
        session.done = True
        session.end_s = t + remaining
        self._alive -= 1
        self._finish(session)

    def _terminate(self, session: _Session, t: float, reason: str) -> None:
        if session.done:
            return
        self._advance(session, t)
        session.done = True
        session.completed = False
        session.termination_reason = reason
        session.end_s = t
        session.inflight = None
        self._alive -= 1
        self._log(t, "degraded", session=session.sid, reason=reason)
        self._finish(session)

    def _finish(self, session: _Session) -> None:
        """Fold the finished session into the streaming aggregate."""
        lifetime = max(session.end_s - session.arrival_s, 1e-12)
        summary = CohortSessionSummary(
            session_id=session.sid,
            primary_edge=session.health.endpoints[0],
            final_edge=session.health.active,
            arrival_s=session.arrival_s,
            end_s=session.end_s,
            completed=session.completed,
            termination_reason=session.termination_reason,
            startup_delay_s=session.startup_delay_s,
            stall_s=session.stall_s,
            n_stalls=session.n_stalls,
            video_switches=session.video_switches,
            audio_switches=session.audio_switches,
            failovers=session.health.failovers,
            retries=session.retries,
            chunks_downloaded=session.chunks_downloaded,
            bits_useful=session.bits_useful,
            bits_wasted=session.bits_wasted,
            mean_av_imbalance_s=session.imbalance_integral / lifetime,
        )
        self._aggregate.add_session(summary)
        if self.config.keep_summaries:
            self._summaries.append(summary)

    # -- result -------------------------------------------------------------

    def _result(self) -> CohortResult:
        verdicts: Dict[str, int] = {}
        completed = 0
        for session in self.sessions:
            if session.completed:
                completed += 1
                verdicts["completed"] = verdicts.get("completed", 0) + 1
            else:
                reason = session.termination_reason or "no_verdict"
                verdicts[reason] = verdicts.get(reason, 0) + 1
        edges: Dict[str, Dict[str, float]] = {}
        for edge_id, edge in sorted(self.edges.items()):
            edges[edge_id] = {
                "capacity_kbps": edge.spec.capacity_kbps,
                "served_bits": edge.served_bits,
                "settled_bits": edge.settled_bits,
                "useful_bits": edge.useful_bits,
                "wasted_bits": edge.wasted_bits,
                "busy_s": edge.busy_s,
                "stranded_bits": max(
                    0.0,
                    edge.served_bits - edge.settled_bits,
                ),
                "cache_hits": edge.cache.hits,
                "cache_misses": edge.cache.misses,
                "cache_evictions": edge.cache.evictions,
            }
        windows = tuple(
            {
                "kind": w.kind.value,
                "domain": w.domain,
                "start_s": w.start_s,
                "end_s": w.end_s,
            }
            for w in self.windows
        )
        return CohortResult(
            n_sessions=self.config.n_sessions,
            content_duration_s=self.duration_s,
            completed_sessions=completed,
            degraded_sessions=self.config.n_sessions - completed,
            verdict_counts=verdicts,
            aggregate=self._aggregate.summary(),
            edges=edges,
            fault_windows=windows,
            fault_events=tuple(self._events),
            summaries=tuple(self._summaries),
        )
