"""Playback simulation: event engine, buffers, session driver."""

from .cohort import (
    CohortConfig,
    CohortKernel,
    CohortResult,
    CohortSessionSummary,
)
from .decisions import Decision, Download, Wait
from .playback import PlaybackState, PlaybackTracker
from .records import (
    AbortRecord,
    BufferSample,
    DownloadRecord,
    EstimateSample,
    FailureRecord,
    ProgressSegment,
    SessionResult,
    SkipRecord,
    StallEvent,
)
from .session import (
    ActiveDownload,
    Session,
    SessionConfig,
    SessionContext,
    SessionObserver,
    simulate,
)

__all__ = [
    "AbortRecord",
    "ActiveDownload",
    "BufferSample",
    "CohortConfig",
    "CohortKernel",
    "CohortResult",
    "CohortSessionSummary",
    "FailureRecord",
    "Decision",
    "Download",
    "DownloadRecord",
    "EstimateSample",
    "PlaybackState",
    "PlaybackTracker",
    "ProgressSegment",
    "Session",
    "SessionConfig",
    "SessionContext",
    "SessionObserver",
    "SessionResult",
    "SkipRecord",
    "StallEvent",
    "Wait",
    "simulate",
]
