"""Shared numeric tolerances of the simulation kernel.

One constant, one meaning: ``EPS`` is the event-coincidence tolerance
used everywhere the kernel asks "has this instant been reached yet" —
dead-time expiry, wake-up times, failure deadlines, playback thresholds
and frontier checks. ``session.py`` and ``playback.py`` historically
carried their own copies (``_EPS = 1e-9`` vs inline ``1e-9`` literals);
they must never drift apart, because the event scheduler and the
playback tracker have to agree on whether a boundary event has fired.

Not covered here: deliberately *different* tolerances with their own
physical meaning, such as the millibit completion snap in
``ActiveDownload.finished`` or the 1e-6 s playback-overshoot allowance
in ``PlaybackTracker.advance``.
"""

from __future__ import annotations

#: Event-coincidence tolerance in seconds (and the generic "close
#: enough to the boundary" epsilon for second-valued comparisons).
EPS = 1e-9
