"""Content model and the paper's reference title.

A :class:`Content` bundles a video ladder, an audio ladder and a
per-chunk size table. :func:`drama_show` reproduces the 5-minute YouTube
drama show of the paper's Table 1 exactly (average/peak/declared
bitrates, resolutions, channel layouts). :func:`b_audio_ladder` and
:func:`c_audio_ladder` are the alternative audio adaptation sets used in
the Fig. 2 experiments (Section 3.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from ..errors import MediaError
from .chunks import Chunk, ChunkTable, build_chunk_table
from .tracks import Ladder, MediaType, Track, audio_track, make_ladder, video_track

#: Chunk duration used for the reference title. YouTube's DASH packaging
#: uses ~5 s segments; the paper's title is "around 5 minutes".
DEFAULT_CHUNK_DURATION_S = 5.0
#: 60 chunks x 5 s = 300 s = 5 minutes of content.
DEFAULT_N_CHUNKS = 60


@dataclass(frozen=True)
class Content:
    """A demuxed title: one video ladder, one audio ladder, chunk sizes."""

    name: str
    video: Ladder
    audio: Ladder
    chunk_table: ChunkTable

    def __post_init__(self) -> None:
        if self.video.media_type is not MediaType.VIDEO:
            raise MediaError("video ladder must contain video tracks")
        if self.audio.media_type is not MediaType.AUDIO:
            raise MediaError("audio ladder must contain audio tracks")
        for track in list(self.video) + list(self.audio):
            if not self.chunk_table.has_track(track.track_id):
                raise MediaError(f"chunk table missing track {track.track_id!r}")
        # Track lookups sit on the simulator's request hot path; index
        # them once here. First ladder wins on a (validated-elsewhere)
        # duplicate id, matching the scan order ``track`` used to have.
        index: Dict[str, Track] = {}
        for track in list(self.video) + list(self.audio):
            index.setdefault(track.track_id, track)
        object.__setattr__(self, "_track_index", index)
        # Chunk objects are frozen, so the per-track rows can be built
        # once and indexed directly by :meth:`chunk` (the simulator hits
        # it for every request it issues).
        rows: Dict[str, Tuple[Chunk, ...]] = {
            track_id: self.chunk_table.row(track_id) for track_id in index
        }
        object.__setattr__(self, "_chunk_rows", rows)

    @property
    def chunk_duration_s(self) -> float:
        return self.chunk_table.duration_s

    @property
    def n_chunks(self) -> int:
        return self.chunk_table.n_chunks

    @property
    def duration_s(self) -> float:
        return self.chunk_table.total_duration_s

    def ladder(self, media_type: MediaType) -> Ladder:
        return self.video if media_type is MediaType.VIDEO else self.audio

    def track(self, track_id: str) -> Track:
        """Look up a track of either medium by id."""
        try:
            return self._track_index[track_id]
        except KeyError:
            raise MediaError(
                f"content {self.name!r} has no track {track_id!r}"
            ) from None

    def chunk(self, track_id: str, index: int) -> Chunk:
        row = self._chunk_rows.get(track_id)
        if row is None:  # id must belong to this content
            raise MediaError(f"content {self.name!r} has no track {track_id!r}")
        if 0 <= index < len(row):
            return row[index]
        raise MediaError(
            f"chunk index {index} out of range [0, {len(row)}) "
            f"for track {track_id!r}"
        )

    def with_audio(self, audio: Ladder, name: Optional[str] = None, seed: int = 2019) -> "Content":
        """A copy of this content with a different audio adaptation set.

        Used by the Fig. 2 experiments, which keep the Table-1 video
        tracks but swap in the B or C audio ladder. Chunk sizes for the
        new audio tracks are synthesized; video sizes are kept.
        """
        new_tracks = list(self.video) + list(audio)
        table = build_chunk_table(
            new_tracks,
            duration_s=self.chunk_duration_s,
            n_chunks=self.n_chunks,
            seed=seed,
        )
        # Preserve the existing video chunk sizes so only audio changes.
        sizes: Dict[str, Sequence[float]] = {
            t.track_id: (
                self.chunk_table.sizes(t.track_id)
                if self.chunk_table.has_track(t.track_id) and t.is_video
                else table.sizes(t.track_id)
            )
            for t in new_tracks
        }
        merged = ChunkTable(duration_s=self.chunk_duration_s, sizes_bits=sizes)
        return Content(
            name=name or f"{self.name}+{'/'.join(audio.track_ids)}",
            video=self.video,
            audio=audio,
            chunk_table=merged,
        )

    def storage_bits_demuxed(self) -> float:
        """Origin storage if audio and video are stored demuxed (M+N tracks)."""
        return sum(
            self.chunk_table.total_bits(t.track_id)
            for t in list(self.video) + list(self.audio)
        )

    def storage_bits_muxed(self) -> float:
        """Origin storage if every A x V combination is stored muxed (M x N)."""
        video_bits = sum(self.chunk_table.total_bits(t.track_id) for t in self.video)
        audio_bits = sum(self.chunk_table.total_bits(t.track_id) for t in self.audio)
        return video_bits * len(self.audio) + audio_bits * len(self.video)


#: The Table-1 ladder: (id, avg, peak, declared, height) for video and
#: (id, avg, peak, declared, channels, sampling kHz) for audio.
TABLE1_VIDEO: Tuple[Tuple[str, float, float, float, int], ...] = (
    ("V1", 111, 119, 111, 144),
    ("V2", 246, 261, 246, 240),
    ("V3", 362, 641, 473, 360),
    ("V4", 734, 1190, 914, 480),
    ("V5", 1421, 2382, 1852, 720),
    ("V6", 2728, 4447, 3746, 1080),
)

TABLE1_AUDIO: Tuple[Tuple[str, float, float, float, int, float], ...] = (
    ("A1", 128, 134, 128, 2, 44.0),
    ("A2", 196, 199, 196, 6, 48.0),
    ("A3", 384, 391, 384, 6, 48.0),
)


def table1_video_ladder() -> Ladder:
    """The six Table-1 video tracks, V1 (144p) through V6 (1080p)."""
    return make_ladder(
        MediaType.VIDEO,
        [
            video_track(tid, avg, peak, declared, height)
            for tid, avg, peak, declared, height in TABLE1_VIDEO
        ],
    )


def table1_audio_ladder() -> Ladder:
    """The three Table-1 audio tracks A1-A3 (128/196/384 kbps)."""
    return make_ladder(
        MediaType.AUDIO,
        [
            audio_track(tid, avg, peak, declared, channels=ch, sampling_khz=khz)
            for tid, avg, peak, declared, ch, khz in TABLE1_AUDIO
        ],
    )


def b_audio_ladder() -> Ladder:
    """The low-bitrate audio set of the first Fig. 2 experiment.

    "three audio tracks B1, B2 and B3 with the declared bitrate as 32,
    64 and 128 Kbps" (Section 3.2).
    """
    return make_ladder(
        MediaType.AUDIO,
        [
            audio_track("B1", 32, channels=2, sampling_khz=44.0),
            audio_track("B2", 64, channels=2, sampling_khz=44.0),
            audio_track("B3", 128, channels=2, sampling_khz=44.0),
        ],
    )


def c_audio_ladder() -> Ladder:
    """The high-bitrate audio set of the second Fig. 2 experiment.

    "three audio tracks ... C1, C2 and C3 with the declared bitrate as
    196, 384 and 768 Kbps" (Section 3.2). 768 kbps corresponds to Dolby
    Atmos-grade audio.
    """
    return make_ladder(
        MediaType.AUDIO,
        [
            audio_track("C1", 196, channels=6, sampling_khz=48.0),
            audio_track("C2", 384, channels=6, sampling_khz=48.0),
            audio_track("C3", 768, channels=8, sampling_khz=48.0),
        ],
    )


def drama_show(
    chunk_duration_s: float = DEFAULT_CHUNK_DURATION_S,
    n_chunks: int = DEFAULT_N_CHUNKS,
    seed: int = 2019,
) -> Content:
    """The paper's reference title: a 5-minute YouTube drama show.

    Six video tracks (144p-1080p) and three audio tracks with the exact
    Table-1 average, peak and declared bitrates; per-chunk sizes are
    synthesized deterministically from ``seed``.
    """
    video = table1_video_ladder()
    audio = table1_audio_ladder()
    table = build_chunk_table(
        list(video) + list(audio),
        duration_s=chunk_duration_s,
        n_chunks=n_chunks,
        seed=seed,
    )
    return Content(name="drama-show", video=video, audio=audio, chunk_table=table)


def synthetic_content(
    name: str,
    video_kbps: Sequence[float],
    audio_kbps: Sequence[float],
    chunk_duration_s: float = DEFAULT_CHUNK_DURATION_S,
    n_chunks: int = DEFAULT_N_CHUNKS,
    video_peak_factor: float = 1.6,
    seed: int = 2019,
) -> Content:
    """Build a synthetic title from plain bitrate lists.

    Video peaks default to ``video_peak_factor`` x average, which matches
    the VBR spread of the Table-1 higher rungs; audio is near-CBR.
    """
    if not video_kbps or not audio_kbps:
        raise MediaError("need at least one video and one audio bitrate")
    video = make_ladder(
        MediaType.VIDEO,
        [
            video_track(f"V{i + 1}", kbps, kbps * video_peak_factor)
            for i, kbps in enumerate(sorted(video_kbps))
        ],
    )
    audio = make_ladder(
        MediaType.AUDIO,
        [audio_track(f"A{i + 1}", kbps) for i, kbps in enumerate(sorted(audio_kbps))],
    )
    table = build_chunk_table(
        list(video) + list(audio),
        duration_s=chunk_duration_s,
        n_chunks=n_chunks,
        seed=seed,
    )
    return Content(name=name, video=video, audio=audio, chunk_table=table)
