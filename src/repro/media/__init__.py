"""Media substrate: tracks, ladders, chunks and content synthesis."""

from .chunks import Chunk, ChunkTable, build_chunk_table, synthesize_vbr_bitrates
from .languages import LanguageCatalog, language_track_id, make_catalog
from .content import (
    DEFAULT_CHUNK_DURATION_S,
    DEFAULT_N_CHUNKS,
    TABLE1_AUDIO,
    TABLE1_VIDEO,
    Content,
    b_audio_ladder,
    c_audio_ladder,
    drama_show,
    synthetic_content,
    table1_audio_ladder,
    table1_video_ladder,
)
from .tracks import (
    Ladder,
    MediaType,
    Track,
    audio_track,
    make_ladder,
    video_track,
)

__all__ = [
    "Chunk",
    "ChunkTable",
    "Content",
    "DEFAULT_CHUNK_DURATION_S",
    "DEFAULT_N_CHUNKS",
    "Ladder",
    "LanguageCatalog",
    "MediaType",
    "language_track_id",
    "make_catalog",
    "TABLE1_AUDIO",
    "TABLE1_VIDEO",
    "Track",
    "audio_track",
    "b_audio_ladder",
    "build_chunk_table",
    "c_audio_ladder",
    "drama_show",
    "make_ladder",
    "synthesize_vbr_bitrates",
    "synthetic_content",
    "table1_audio_ladder",
    "table1_video_ladder",
    "video_track",
]
