"""Per-chunk size tables and VBR size synthesis.

The paper streams a real YouTube drama show; we do not have its bytes,
so we synthesize a per-chunk size table for every track that matches the
track's published *average* and *peak* bitrates exactly (the two
quantities Table 1 reports and the only ones the paper's findings depend
on). Synthesis is deterministic given a seed so experiments are
reproducible run-to-run.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..errors import MediaError
from ..units import chunk_bits
from .tracks import Track


@dataclass(frozen=True)
class Chunk:
    """One downloadable chunk of one track."""

    track_id: str
    index: int
    duration_s: float
    size_bits: float

    @property
    def bitrate_kbps(self) -> float:
        """The encoded bitrate of this chunk."""
        return self.size_bits / self.duration_s / 1000.0

    @property
    def size_bytes(self) -> float:
        return self.size_bits / 8.0


def synthesize_vbr_bitrates(
    avg_kbps: float,
    peak_kbps: float,
    n_chunks: int,
    seed: int,
    burstiness: float = 0.35,
) -> List[float]:
    """Synthesize a per-chunk bitrate series with exact mean and peak.

    The series is drawn from a seeded gamma-like process, clipped at the
    peak and iteratively rescaled so that

    * ``mean(series) == avg_kbps`` (to within float rounding), and
    * ``max(series) == peak_kbps`` (the peak is actually attained, as a
      real encoder's reported peak is the max chunk bitrate).

    :param burstiness: coefficient of variation of the raw draw before
        clipping. Audio is near-CBR (Table 1 peaks are 2-5% over
        average), so callers pass a small value for audio; video VBR is
        bursty (V3-V6 peaks are 1.6-1.8x the average).
    """
    if n_chunks <= 0:
        raise MediaError(f"n_chunks must be positive, got {n_chunks}")
    if not 0 <= burstiness:
        raise MediaError(f"burstiness must be non-negative, got {burstiness}")
    if peak_kbps < avg_kbps:
        raise MediaError(f"peak {peak_kbps} < avg {avg_kbps}")

    if n_chunks == 1:
        # A single chunk must be simultaneously the mean and the max;
        # only satisfiable exactly when they coincide, so prefer the mean.
        return [avg_kbps]

    rng = random.Random(seed)
    if peak_kbps == avg_kbps or burstiness == 0:
        return [avg_kbps] * n_chunks

    # Gamma with mean 1 and CV = burstiness: shape k = 1/cv^2, scale = cv^2.
    shape = 1.0 / (burstiness * burstiness)
    scale = burstiness * burstiness
    series = [avg_kbps * rng.gammavariate(shape, scale) for _ in range(n_chunks)]

    floor_kbps = avg_kbps * 0.05  # encoders never emit near-zero chunks
    for _ in range(64):
        series = [min(max(x, floor_kbps), peak_kbps) for x in series]
        mean = sum(series) / n_chunks
        error = avg_kbps - mean
        if abs(error) < 1e-9 * avg_kbps:
            break
        # Spread the correction over the chunks that have headroom in the
        # needed direction, proportionally to that headroom.
        if error > 0:
            headroom = [peak_kbps - x for x in series]
        else:
            headroom = [x - floor_kbps for x in series]
        total_headroom = sum(headroom)
        if total_headroom <= 0:
            raise MediaError(
                f"cannot reach avg {avg_kbps} within [{floor_kbps}, {peak_kbps}]"
            )
        factor = error * n_chunks / total_headroom
        series = [x + h * factor for x, h in zip(series, headroom)]

    # Pin the maximum chunk to the declared peak, then restore the mean by
    # adjusting one other chunk (keeps the disturbance minimal).
    peak_at = max(range(n_chunks), key=series.__getitem__)
    delta = peak_kbps - series[peak_at]
    series[peak_at] = peak_kbps
    # Give the offset to the chunk with the most room that is not the peak.
    others = [i for i in range(n_chunks) if i != peak_at]
    donor = max(others, key=lambda i: series[i] - floor_kbps)
    series[donor] = max(floor_kbps, series[donor] - delta)

    # Final exact mean correction distributed over non-peak chunks.
    mean = sum(series) / n_chunks
    correction = (avg_kbps - mean) * n_chunks / (n_chunks - 1)
    for i in others:
        series[i] = min(peak_kbps, max(floor_kbps, series[i] + correction))
    # One last tiny linear fix on the donor chunk for float-exactness.
    mean = sum(series) / n_chunks
    series[donor] += (avg_kbps - mean) * n_chunks
    if not floor_kbps * 0.5 <= series[donor] <= peak_kbps:
        # Extremely tight ladders can leave the donor out of range; fall
        # back to a two-level series that satisfies mean and peak exactly
        # (one chunk at the peak, the rest at the balancing rate).
        base = (avg_kbps * n_chunks - peak_kbps) / (n_chunks - 1)
        if base <= 0:
            return [avg_kbps] * n_chunks
        series = [base] * n_chunks
        series[0] = peak_kbps
    return series


class ChunkTable:
    """Chunk sizes for every track of a title.

    Maps ``track_id -> [size_bits per chunk]``; all tracks share the same
    chunk duration and chunk count (as in DASH/HLS, where audio and video
    segment boundaries are aligned to allow seamless switching).
    """

    def __init__(self, duration_s: float, sizes_bits: Dict[str, Sequence[float]]):
        if duration_s <= 0:
            raise MediaError(f"chunk duration must be positive, got {duration_s}")
        if not sizes_bits:
            raise MediaError("chunk table must contain at least one track")
        lengths = {len(v) for v in sizes_bits.values()}
        if len(lengths) != 1:
            raise MediaError(f"tracks disagree on chunk count: {sorted(lengths)}")
        (self._n_chunks,) = lengths
        if self._n_chunks == 0:
            raise MediaError("chunk table must contain at least one chunk")
        for track_id, sizes in sizes_bits.items():
            for i, size in enumerate(sizes):
                if size <= 0:
                    raise MediaError(
                        f"track {track_id} chunk {i} has non-positive size {size}"
                    )
        self._duration_s = float(duration_s)
        self._sizes: Dict[str, Tuple[float, ...]] = {
            k: tuple(float(x) for x in v) for k, v in sizes_bits.items()
        }
        # ``chunk`` is called for every request the simulator issues (and
        # for every segment line the packagers render); :class:`Chunk` is
        # frozen, so the instances can be built once per track and shared.
        self._chunk_cache: Dict[str, Tuple[Chunk, ...]] = {}

    @property
    def duration_s(self) -> float:
        """Duration of every chunk, seconds."""
        return self._duration_s

    @property
    def n_chunks(self) -> int:
        return self._n_chunks

    @property
    def track_ids(self) -> Tuple[str, ...]:
        return tuple(self._sizes)

    @property
    def total_duration_s(self) -> float:
        return self._duration_s * self._n_chunks

    def has_track(self, track_id: str) -> bool:
        return track_id in self._sizes

    def sizes(self, track_id: str) -> Tuple[float, ...]:
        """All chunk sizes (bits) of one track."""
        try:
            return self._sizes[track_id]
        except KeyError:
            raise MediaError(f"no chunk sizes for track {track_id!r}") from None

    def row(self, track_id: str) -> Tuple[Chunk, ...]:
        """All chunks of one track, built once and shared."""
        chunks = self._chunk_cache.get(track_id)
        if chunks is None:
            sizes = self.sizes(track_id)
            chunks = tuple(
                Chunk(
                    track_id=track_id,
                    index=i,
                    duration_s=self._duration_s,
                    size_bits=size,
                )
                for i, size in enumerate(sizes)
            )
            self._chunk_cache[track_id] = chunks
        return chunks

    def chunk(self, track_id: str, index: int) -> Chunk:
        chunks = self.row(track_id)
        if not 0 <= index < len(chunks):
            raise MediaError(
                f"chunk index {index} out of range [0, {len(chunks)}) "
                f"for track {track_id!r}"
            )
        return chunks[index]

    def measured_avg_kbps(self, track_id: str) -> float:
        sizes = self.sizes(track_id)
        return sum(sizes) / len(sizes) / self._duration_s / 1000.0

    def measured_peak_kbps(self, track_id: str) -> float:
        return max(self.sizes(track_id)) / self._duration_s / 1000.0

    def total_bits(self, track_id: str) -> float:
        return sum(self.sizes(track_id))


def build_chunk_table(
    tracks: Sequence[Track],
    duration_s: float,
    n_chunks: int,
    seed: int = 2019,
) -> ChunkTable:
    """Synthesize a :class:`ChunkTable` matching each track's avg/peak.

    Audio tracks get near-CBR series; video tracks get bursty VBR series.
    Each track's stream is seeded independently (from ``seed`` and the
    track id) so adding a track does not perturb the others.
    """
    sizes: Dict[str, List[float]] = {}
    for track in tracks:
        base_burstiness = 0.05 if track.is_audio else 0.35
        # Cap the spread by the track's actual peak headroom so near-CBR
        # rungs (e.g. Table 1's V1/V2) stay synthesizable with an exact
        # mean *and* an attained peak.
        headroom = (track.peak_kbps - track.avg_kbps) / track.avg_kbps
        burstiness = min(base_burstiness, 0.6 * headroom)
        # zlib.crc32 is stable across processes, unlike built-in hash().
        track_seed = seed ^ zlib.crc32(track.track_id.encode("utf-8"))
        bitrates = synthesize_vbr_bitrates(
            avg_kbps=track.avg_kbps,
            peak_kbps=track.peak_kbps,
            n_chunks=n_chunks,
            seed=track_seed,
            burstiness=burstiness,
        )
        sizes[track.track_id] = [chunk_bits(r, duration_s) for r in bitrates]
    return ChunkTable(duration_s=duration_s, sizes_bits=sizes)
