"""Track and ladder models for demuxed ABR content.

A *track* (called a Representation in DASH and a rendition in HLS) is one
encoded version of the audio or the video component of a title. A
*ladder* is the ordered set of tracks for one medium. The paper's
Table 1 is expressed with these types in :mod:`repro.media.content`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterator, Optional, Sequence, Tuple

from ..errors import MediaError


class MediaType(enum.Enum):
    """The medium a track carries."""

    AUDIO = "audio"
    VIDEO = "video"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class Track:
    """One encoded audio or video track.

    Parameters mirror the columns of the paper's Table 1:

    :param track_id: short identifier, e.g. ``"V3"`` or ``"A1"``.
    :param media_type: :class:`MediaType.AUDIO` or :class:`MediaType.VIDEO`.
    :param avg_kbps: average bitrate over the whole title.
    :param peak_kbps: peak (maximum chunk) bitrate.
    :param declared_kbps: the bitrate declared in a DASH manifest's
        ``bandwidth`` attribute. The paper's Table 1 shows this is the
        average bitrate for audio/low video rungs but sits between the
        average and the peak for the VBR-encoded higher video rungs.
    :param height: video resolution height in lines (video tracks only).
    :param channels: audio channel count (audio tracks only).
    :param sampling_khz: audio sampling rate in kHz (audio tracks only).
    """

    track_id: str
    media_type: MediaType
    avg_kbps: float
    peak_kbps: float
    declared_kbps: Optional[float] = None
    height: Optional[int] = None
    channels: Optional[int] = None
    sampling_khz: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.track_id:
            raise MediaError("track_id must be non-empty")
        if self.avg_kbps <= 0:
            raise MediaError(
                f"track {self.track_id}: avg_kbps must be positive, got {self.avg_kbps}"
            )
        if self.peak_kbps < self.avg_kbps:
            raise MediaError(
                f"track {self.track_id}: peak_kbps ({self.peak_kbps}) must be >= "
                f"avg_kbps ({self.avg_kbps})"
            )
        if self.declared_kbps is None:
            # Services commonly declare the average bitrate when no better
            # value is provisioned; Table 1 does exactly this for audio.
            object.__setattr__(self, "declared_kbps", self.avg_kbps)
        if self.declared_kbps <= 0:
            raise MediaError(
                f"track {self.track_id}: declared_kbps must be positive, "
                f"got {self.declared_kbps}"
            )

    @property
    def is_audio(self) -> bool:
        return self.media_type is MediaType.AUDIO

    @property
    def is_video(self) -> bool:
        return self.media_type is MediaType.VIDEO

    def describe(self) -> str:
        """One-line human-readable description, Table-1 style."""
        parts = [
            f"{self.track_id}",
            f"avg {self.avg_kbps:g} kbps",
            f"peak {self.peak_kbps:g} kbps",
            f"declared {self.declared_kbps:g} kbps",
        ]
        if self.is_video and self.height is not None:
            parts.append(f"{self.height}p")
        if self.is_audio and self.channels is not None:
            parts.append(f"{self.channels} ch")
        if self.is_audio and self.sampling_khz is not None:
            parts.append(f"{self.sampling_khz:g} kHz")
        return ", ".join(parts)


def audio_track(
    track_id: str,
    avg_kbps: float,
    peak_kbps: Optional[float] = None,
    declared_kbps: Optional[float] = None,
    channels: int = 2,
    sampling_khz: float = 44.0,
) -> Track:
    """Convenience constructor for an audio :class:`Track`.

    Audio encodings are near-CBR, so ``peak_kbps`` defaults to a few
    percent above the average (Table 1 shows peaks 2-5% over average).
    """
    if peak_kbps is None:
        peak_kbps = round(avg_kbps * 1.03, 3)
    return Track(
        track_id=track_id,
        media_type=MediaType.AUDIO,
        avg_kbps=avg_kbps,
        peak_kbps=peak_kbps,
        declared_kbps=declared_kbps,
        channels=channels,
        sampling_khz=sampling_khz,
    )


def video_track(
    track_id: str,
    avg_kbps: float,
    peak_kbps: float,
    declared_kbps: Optional[float] = None,
    height: Optional[int] = None,
) -> Track:
    """Convenience constructor for a video :class:`Track`."""
    return Track(
        track_id=track_id,
        media_type=MediaType.VIDEO,
        avg_kbps=avg_kbps,
        peak_kbps=peak_kbps,
        declared_kbps=declared_kbps,
        height=height,
    )


@dataclass(frozen=True)
class Ladder:
    """An ordered set of tracks of one medium, lowest bitrate first.

    The order is by declared bitrate, which is the order players use
    when reasoning about upgrade/downgrade steps.
    """

    media_type: MediaType
    tracks: Tuple[Track, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.tracks:
            raise MediaError(f"{self.media_type} ladder must contain at least one track")
        seen = set()
        for track in self.tracks:
            if track.media_type is not self.media_type:
                raise MediaError(
                    f"ladder of {self.media_type} contains {track.media_type} "
                    f"track {track.track_id}"
                )
            if track.track_id in seen:
                raise MediaError(f"duplicate track id {track.track_id!r} in ladder")
            seen.add(track.track_id)
        declared = [t.declared_kbps for t in self.tracks]
        if declared != sorted(declared):
            raise MediaError(
                f"{self.media_type} ladder must be sorted by declared bitrate, "
                f"got {declared}"
            )

    def __len__(self) -> int:
        return len(self.tracks)

    def __iter__(self) -> Iterator[Track]:
        return iter(self.tracks)

    def __getitem__(self, index: int) -> Track:
        return self.tracks[index]

    @property
    def track_ids(self) -> Tuple[str, ...]:
        return tuple(t.track_id for t in self.tracks)

    @property
    def lowest(self) -> Track:
        return self.tracks[0]

    @property
    def highest(self) -> Track:
        return self.tracks[-1]

    def index_of(self, track_id: str) -> int:
        """Rung index (0 = lowest) of ``track_id``."""
        for i, track in enumerate(self.tracks):
            if track.track_id == track_id:
                return i
        raise MediaError(f"no track {track_id!r} in {self.media_type} ladder")

    def by_id(self, track_id: str) -> Track:
        return self.tracks[self.index_of(track_id)]

    def highest_below(self, bitrate_kbps: float) -> Track:
        """Highest track whose declared bitrate does not exceed the budget.

        Falls back to the lowest rung when nothing fits — a player must
        always pick *something*.
        """
        best = self.tracks[0]
        for track in self.tracks:
            if track.declared_kbps <= bitrate_kbps:
                best = track
        return best


def make_ladder(media_type: MediaType, tracks: Sequence[Track]) -> Ladder:
    """Build a :class:`Ladder`, sorting the tracks by declared bitrate."""
    ordered = tuple(sorted(tracks, key=lambda t: (t.declared_kbps, t.avg_kbps)))
    return Ladder(media_type=media_type, tracks=ordered)
