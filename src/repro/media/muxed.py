"""Muxed-delivery modelling.

The paper's baseline alternative (Section 1): "a video track and its
corresponding audio can be combined together as a single multiplexed
track, where each chunk in the track contains the associated video and
audio content." To stream muxed variants through the same simulator,
:func:`muxed_content` re-expresses a title as a Content whose *video*
ladder is the muxed variant ladder (per-chunk sizes are the sums of the
constituent video and audio chunks) and whose audio ladder is a single
negligible *marker* track (a few bytes per chunk) that satisfies the
two-medium playback contract without influencing timing, estimation or
adaptation.

This makes the muxed-vs-demuxed comparison an apples-to-apples
experiment: the same players, the same simulator, only the packaging
differs. The muxed mode's structural drawback is directly observable —
every quality adaptation necessarily switches the *audio* too, because
audio is fused into the variant.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..core.combinations import CombinationSet, all_combinations
from ..errors import MediaError
from .chunks import ChunkTable
from .content import Content
from .tracks import MediaType, Track, audio_track, make_ladder

#: The marker audio track id used in muxed mode.
MUX_MARKER_ID = "MUX"
#: Marker bitrate: 0.01 kbps = ~6 bytes per 5 s chunk. Negligible.
MUX_MARKER_KBPS = 0.01


def muxed_track_id(video_id: str, audio_id: str) -> str:
    return f"{video_id}+{audio_id}"


def demux_ids(muxed_id: str) -> Tuple[str, str]:
    """Recover the constituent (video_id, audio_id) of a muxed track."""
    if "+" not in muxed_id:
        raise MediaError(f"{muxed_id!r} is not a muxed track id")
    video_id, audio_id = muxed_id.split("+", 1)
    return video_id, audio_id


def muxed_content(
    content: Content,
    combinations: Optional[CombinationSet] = None,
    name: Optional[str] = None,
) -> Content:
    """Re-package a demuxed title as muxed variants.

    :param combinations: the muxed variants the origin stores (each one
        costs full video+audio storage). Defaults to every combination —
        the paper's M x N worst case.
    """
    combos = combinations if combinations is not None else all_combinations(content)
    tracks: List[Track] = []
    sizes: Dict[str, List[float]] = {}
    for combo in combos:
        track_id = muxed_track_id(combo.video.track_id, combo.audio.track_id)
        tracks.append(
            Track(
                track_id=track_id,
                media_type=MediaType.VIDEO,
                avg_kbps=combo.avg_kbps,
                peak_kbps=combo.peak_kbps,
                declared_kbps=combo.declared_kbps,
                height=combo.video.height,
            )
        )
        video_sizes = content.chunk_table.sizes(combo.video.track_id)
        audio_sizes = content.chunk_table.sizes(combo.audio.track_id)
        sizes[track_id] = [v + a for v, a in zip(video_sizes, audio_sizes)]

    marker = audio_track(
        MUX_MARKER_ID, MUX_MARKER_KBPS, MUX_MARKER_KBPS, channels=0 or None
    )
    marker_bits = MUX_MARKER_KBPS * 1000.0 * content.chunk_duration_s
    sizes[MUX_MARKER_ID] = [marker_bits] * content.n_chunks

    # Muxed variants must be strictly orderable by declared bitrate for
    # ladder purposes; ties (possible with synthetic ladders) are not —
    # they would also be indistinguishable to a player, so reject them.
    declared = [t.declared_kbps for t in tracks]
    if len(set(declared)) != len(declared):
        raise MediaError("muxed variants have duplicate declared bitrates")

    return Content(
        name=name or f"{content.name}-muxed",
        video=make_ladder(MediaType.VIDEO, tracks),
        audio=make_ladder(MediaType.AUDIO, [marker]),
        chunk_table=ChunkTable(
            duration_s=content.chunk_duration_s, sizes_bits=sizes
        ),
    )


def muxed_selection_pairs(result, content_muxed: Content) -> List[Tuple[str, str]]:
    """Per-position (video_id, audio_id) implied by muxed selections."""
    pairs: List[Tuple[str, str]] = []
    for _, muxed_id, _marker in result.selected_combinations():
        if muxed_id is not None:
            pairs.append(demux_ids(muxed_id))
    return pairs
