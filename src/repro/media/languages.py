"""Multi-language audio catalogues.

The paper's opening motivation for demuxed storage is "services that
need to have more than one audio variant — e.g., to support multiple
languages, or multiple audio quality levels or both" (Section 1). A
:class:`LanguageCatalog` models the "both" case: every language carries
the full audio quality ladder, so a title with M video tracks, N audio
rungs and L languages stores M + N·L demuxed tracks versus M·N·L muxed
objects.

Per-language playback reduces to the single-language model (the ladder
shape is identical across languages), so the simulator is reused
unchanged via :meth:`LanguageCatalog.content_for`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from ..errors import MediaError
from .chunks import ChunkTable
from .content import Content
from .tracks import Ladder, MediaType, Track, make_ladder


def language_track_id(rung_id: str, lang: str) -> str:
    """Track id of one audio rung in one language, e.g. ``"A2-es"``."""
    return f"{rung_id}-{lang}"


@dataclass(frozen=True)
class LanguageCatalog:
    """A title whose audio ladder is replicated across languages."""

    base: Content
    languages: Tuple[str, ...]
    default_lang: str

    def __post_init__(self) -> None:
        if not self.languages:
            raise MediaError("catalog needs at least one language")
        if len(set(self.languages)) != len(self.languages):
            raise MediaError(f"duplicate languages: {self.languages}")
        if self.default_lang not in self.languages:
            raise MediaError(
                f"default language {self.default_lang!r} not in {self.languages}"
            )

    # -- structure ---------------------------------------------------------

    @property
    def n_video_tracks(self) -> int:
        return len(self.base.video)

    @property
    def n_audio_rungs(self) -> int:
        return len(self.base.audio)

    @property
    def n_languages(self) -> int:
        return len(self.languages)

    def audio_track_ids(self) -> List[str]:
        """Every (rung, language) audio track id."""
        return [
            language_track_id(track.track_id, lang)
            for track in self.base.audio
            for lang in self.languages
        ]

    def audio_ladder_for(self, lang: str) -> Ladder:
        """The audio ladder of one language, with language-scoped ids."""
        self._check_lang(lang)
        tracks = [
            Track(
                track_id=language_track_id(track.track_id, lang),
                media_type=MediaType.AUDIO,
                avg_kbps=track.avg_kbps,
                peak_kbps=track.peak_kbps,
                declared_kbps=track.declared_kbps,
                channels=track.channels,
                sampling_khz=track.sampling_khz,
            )
            for track in self.base.audio
        ]
        return make_ladder(MediaType.AUDIO, tracks)

    def content_for(self, lang: str) -> Content:
        """A playable single-language view of the catalogue."""
        self._check_lang(lang)
        audio = self.audio_ladder_for(lang)
        sizes = {
            track.track_id: self.base.chunk_table.sizes(track.track_id)
            for track in self.base.video
        }
        for base_track, lang_track in zip(self.base.audio, audio):
            sizes[lang_track.track_id] = self.base.chunk_table.sizes(
                base_track.track_id
            )
        table = ChunkTable(duration_s=self.base.chunk_duration_s, sizes_bits=sizes)
        return Content(
            name=f"{self.base.name}[{lang}]",
            video=self.base.video,
            audio=audio,
            chunk_table=table,
        )

    def _check_lang(self, lang: str) -> None:
        if lang not in self.languages:
            raise MediaError(f"unknown language {lang!r}; have {self.languages}")

    # -- storage accounting (the Section-1 argument, with L languages) -----

    def storage_bits_demuxed(self) -> float:
        """M video tracks + N·L audio tracks."""
        video_bits = sum(
            self.base.chunk_table.total_bits(track.track_id)
            for track in self.base.video
        )
        audio_bits = sum(
            self.base.chunk_table.total_bits(track.track_id)
            for track in self.base.audio
        )
        return video_bits + audio_bits * self.n_languages

    def storage_bits_muxed(self) -> float:
        """M·N·L muxed objects, each embedding video + one audio."""
        video_bits = sum(
            self.base.chunk_table.total_bits(track.track_id)
            for track in self.base.video
        )
        audio_bits = sum(
            self.base.chunk_table.total_bits(track.track_id)
            for track in self.base.audio
        )
        n, l_count, m = self.n_audio_rungs, self.n_languages, self.n_video_tracks
        return video_bits * n * l_count + audio_bits * l_count * m

    def storage_ratio(self) -> float:
        """Muxed-to-demuxed storage blow-up factor."""
        return self.storage_bits_muxed() / self.storage_bits_demuxed()


def make_catalog(
    base: Content, languages: Sequence[str], default_lang: str = ""
) -> LanguageCatalog:
    """Build a catalogue; the first language is the default if unset."""
    langs = tuple(languages)
    return LanguageCatalog(
        base=base,
        languages=langs,
        default_lang=default_lang or (langs[0] if langs else ""),
    )
