"""Line-aware MPD XML scanner.

:mod:`xml.etree.ElementTree` discards source positions, so the DASH
rules parse MPD text with :mod:`xml.parsers.expat` directly into a tiny
DOM (:class:`XmlElement`) that records the 1-based line and column of
every element. Namespaces are handled the ElementTree way — tag names
are ``{uri}local`` — so rule code reads naturally next to
:mod:`repro.manifest.dash`.

A document that is not well-formed XML raises :class:`XmlParseFailure`;
the engine maps that to the CLI's exit code 2 (parse failure), distinct
from rule findings.
"""

from __future__ import annotations

import xml.parsers.expat
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional


class XmlParseFailure(Exception):
    """MPD text is not well-formed XML (line/col in ``args``)."""

    def __init__(self, message: str, line: int = 0, col: int = 0) -> None:
        super().__init__(message)
        self.line = line
        self.col = col


@dataclass
class XmlElement:
    """One element with source position, attributes and children."""

    tag: str  # "{namespace}local" or bare local name
    line: int  # 1-based
    col: int  # 1-based
    attrib: Dict[str, str] = field(default_factory=dict)
    children: List["XmlElement"] = field(default_factory=list)

    @property
    def local(self) -> str:
        """Tag name without its namespace."""
        return self.tag.rsplit("}", 1)[-1]

    def get(self, key: str, default: Optional[str] = None) -> Optional[str]:
        return self.attrib.get(key, default)

    def find(self, local: str) -> Optional["XmlElement"]:
        for child in self.children:
            if child.local == local:
                return child
        return None

    def findall(self, local: str) -> List["XmlElement"]:
        return [c for c in self.children if c.local == local]

    def iter(self, local: Optional[str] = None) -> Iterator["XmlElement"]:
        if local is None or self.local == local:
            yield self
        for child in self.children:
            yield from child.iter(local)


_NS_SEPARATOR = "\x1f"  # illegal in XML names; safe namespace delimiter


def parse_xml(text: str) -> XmlElement:
    """Parse XML text into a position-annotated element tree."""
    parser = xml.parsers.expat.ParserCreate(namespace_separator=_NS_SEPARATOR)
    root: List[XmlElement] = []
    stack: List[XmlElement] = []

    def to_tag(name: str) -> str:
        if _NS_SEPARATOR in name:
            uri, local = name.split(_NS_SEPARATOR, 1)
            return f"{{{uri}}}{local}"
        return name

    def start(name: str, attrs: Dict[str, str]) -> None:
        element = XmlElement(
            tag=to_tag(name),
            line=parser.CurrentLineNumber,
            col=parser.CurrentColumnNumber + 1,
            attrib={to_tag(k): v for k, v in attrs.items()},
        )
        if stack:
            stack[-1].children.append(element)
        else:
            root.append(element)
        stack.append(element)

    def end(_name: str) -> None:
        stack.pop()

    parser.StartElementHandler = start
    parser.EndElementHandler = end
    try:
        parser.Parse(text, True)
    except xml.parsers.expat.ExpatError as exc:
        raise XmlParseFailure(
            f"invalid XML: {exc}", line=exc.lineno or 0, col=exc.offset or 0
        ) from exc
    if not root:
        raise XmlParseFailure("document has no root element")
    return root[0]
