"""Analysis engine: classify documents, run rules, filter findings.

The engine is the only piece that knows how to go from raw bytes to
rule invocations. It

1. classifies each input document (MPD XML, m3u8 master, m3u8 media,
   Python source) from its name and content,
2. parses it with the matching position-preserving parser — a document
   that cannot be parsed *at all* raises :class:`AnalysisParseFailure`,
   which the CLI maps to exit code 2, distinct from rule findings,
3. runs every registered rule of the matching kind, and
4. applies the run configuration: per-rule enable/disable and the
   suppression baseline.

``analyze_files`` is the package-level entry point: hand it a mapping
of ``{filename: text}`` (e.g. ``HlsPackage.write_all()``) and get back
a deterministically ordered list of findings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Set, Tuple

from .code_engine import (
    ProgramIndex,
    PySource,
    build_program_index,
    parse_python,
)
from .context import RuleContext
from .dash_syntax import XmlElement, XmlParseFailure, parse_xml
from .findings import Baseline, Finding, sort_findings
from .hls_syntax import ScannedPlaylist, scan_playlist
from .registry import REGISTRY, Kind
from .spans import Document


class AnalysisParseFailure(Exception):
    """A document could not be parsed at all (CLI exit code 2)."""

    def __init__(self, file: str, message: str, line: int = 0) -> None:
        super().__init__(f"{file}: {message}")
        self.file = file
        self.message = message
        self.line = line


@dataclass(frozen=True)
class AnalyzerConfig:
    """Per-run configuration: rule selection and suppression."""

    #: Rule IDs to skip.
    disabled: frozenset = frozenset()
    #: When set, *only* these rule IDs run.
    selected: Optional[frozenset] = None
    #: Known findings to suppress (see :class:`Baseline`).
    baseline: Optional[Baseline] = None
    #: Directory of committed compatibility-surface snapshots
    #: (``surfaces/*.json``). ``None`` disables the ``SURF-*`` snapshot
    #: comparisons; a path that does not exist behaves like an empty
    #: directory. The path is read from disk in :func:`prepare`, so the
    #: parallel lint workers (which re-run ``prepare`` per batch) load
    #: the identical snapshots a serial run sees.
    surfaces_dir: Optional[str] = None

    def rule_enabled(self, rule_id: str) -> bool:
        if rule_id in self.disabled:
            return False
        if self.selected is not None and rule_id not in self.selected:
            return False
        return True


DEFAULT_CONFIG = AnalyzerConfig()


@dataclass
class AnalyzedDocument:
    """One classified + parsed input document."""

    name: str
    kind: str  # Kind.DASH / HLS_MASTER / HLS_MEDIA / PYTHON
    doc: Document
    playlist: Optional[ScannedPlaylist] = None
    xml_root: Optional[XmlElement] = None
    python: Optional[PySource] = None


def classify_name(name: str, text: str) -> str:
    """Coarse document classification from filename and content."""
    lowered = name.lower()
    if lowered.endswith(".py"):
        return Kind.PYTHON
    if lowered.endswith((".mpd", ".xml")):
        return Kind.DASH
    if lowered.endswith((".m3u8", ".m3u")):
        return "hls"
    stripped = text.lstrip()
    if stripped.startswith("<"):
        return Kind.DASH
    if stripped.startswith("#EXTM3U") or "#EXT" in text:
        return "hls"
    raise AnalysisParseFailure(
        name, "cannot classify document: not MPD XML, m3u8, or Python"
    )


def prepare(
    files: Mapping[str, str],
    config: Optional[AnalyzerConfig] = None,
    program: Optional[ProgramIndex] = None,
) -> Tuple[List[AnalyzedDocument], RuleContext]:
    """Parse every document and build the shared rule context.

    ``program`` lets a caller supply a pre-built whole-program index
    (the parallel lint path merges worker-batch summaries in the
    parent); without one, the index is built here from the run's own
    Python documents.
    """
    prepared: List[AnalyzedDocument] = []
    ctx = RuleContext(config=config or DEFAULT_CONFIG)
    if config is not None and config.surfaces_dir is not None:
        from .code_surfaces import load_surfaces

        ctx.surfaces = load_surfaces(config.surfaces_dir)
    for name, text in files.items():
        doc = Document(name=name, text=text)
        kind = classify_name(name, text)
        if kind == Kind.PYTHON:
            try:
                python = parse_python(doc)
            except SyntaxError as exc:
                raise AnalysisParseFailure(
                    name, f"invalid Python: {exc.msg}", line=exc.lineno or 0
                ) from exc
            prepared.append(
                AnalyzedDocument(name=name, kind=kind, doc=doc, python=python)
            )
        elif kind == Kind.DASH:
            try:
                root = parse_xml(text)
            except XmlParseFailure as exc:
                raise AnalysisParseFailure(
                    name, str(exc), line=exc.line
                ) from exc
            if root.local != "MPD":
                raise AnalysisParseFailure(
                    name, f"root element is {root.local!r}, expected MPD"
                )
            prepared.append(
                AnalyzedDocument(name=name, kind=kind, doc=doc, xml_root=root)
            )
        else:  # hls
            if not text.strip():
                raise AnalysisParseFailure(name, "empty playlist document")
            scanned = scan_playlist(doc)
            playlist_kind = (
                Kind.HLS_MASTER if scanned.is_master else Kind.HLS_MEDIA
            )
            prepared.append(
                AnalyzedDocument(
                    name=name, kind=playlist_kind, doc=doc, playlist=scanned
                )
            )
            ctx.playlists[name] = scanned
        ctx.documents[name] = doc
    if program is not None:
        ctx.program = program
    else:
        sources = {a.name: a.python for a in prepared if a.python is not None}
        if sources:
            ctx.program = build_program_index(sources)
    return prepared, ctx


def _rule_kinds_for(kind: str) -> List[str]:
    if kind == Kind.HLS_MASTER:
        return [Kind.HLS_ANY, Kind.HLS_MASTER, Kind.HLS_PACKAGE]
    if kind == Kind.HLS_MEDIA:
        return [Kind.HLS_ANY, Kind.HLS_MEDIA]
    return [kind]


def _suppress_and_track(
    python: PySource, produced: List[Finding]
) -> Tuple[List[Finding], Set[Tuple[int, str]]]:
    """Apply ``# lint: allow[...]`` comments to one document's findings.

    Returns the findings that survive plus the ``(line, token)`` pairs
    that actually suppressed something — a named rule ID is preferred
    over a ``*`` on the same line, so a redundant star next to an
    exact ID is itself reported stale.
    """
    tokens = python.allow_tokens()
    kept: List[Finding] = []
    used: Set[Tuple[int, str]] = set()
    for finding in produced:
        line_tokens = tokens.get(finding.span.line, ())
        if finding.rule in line_tokens:
            used.add((finding.span.line, finding.rule))
        elif "*" in line_tokens:
            used.add((finding.span.line, "*"))
        else:
            kept.append(finding)
    return kept, used


def _stale_suppress_findings(
    python: PySource, used: Set[Tuple[int, str]], config: AnalyzerConfig
) -> List[Finding]:
    """LINT-UNUSED-SUPPRESS: allow-tokens that suppressed nothing.

    The ``LINT-UNUSED-SUPPRESS`` token itself is exempt (it waives the
    staleness report on its own line, never draws one), mirroring how
    flake8 treats ``# noqa`` of its unused-noqa code.
    """
    if not config.rule_enabled("LINT-UNUSED-SUPPRESS"):
        return []
    entry = REGISTRY.get("LINT-UNUSED-SUPPRESS")
    findings: List[Finding] = []
    for line, line_tokens in sorted(python.allow_tokens().items()):
        if "LINT-UNUSED-SUPPRESS" in line_tokens:
            continue
        for token in line_tokens:
            if (line, token) in used:
                continue
            what = "blanket '*'" if token == "*" else f"'{token}'"
            findings.append(
                entry.finding(
                    f"suppression {what} matched no finding on this "
                    "line; remove the stale token (or the whole "
                    "comment) — `repro-abr lint --fix` does it",
                    python.doc.find_in_line(line, token),
                    line_text=python.doc.line_text(line),
                )
            )
    return findings


def run_rules(
    prepared: List[AnalyzedDocument], ctx: RuleContext
) -> List[Finding]:
    """Run all enabled rules over prepared documents (unsorted)."""
    config = ctx.config or DEFAULT_CONFIG
    findings: List[Finding] = []
    for analyzed in prepared:
        if analyzed.kind == Kind.PYTHON:
            # Python findings are gathered for the whole document first,
            # then the unified inline allow-comments are applied
            # centrally — one grammar for every code rule — while
            # tracking which tokens matched, so stale allow-comments can
            # be reported by LINT-UNUSED-SUPPRESS afterwards.
            produced: List[Finding] = []
            for entry in REGISTRY.for_kind(Kind.PYTHON):
                if not config.rule_enabled(entry.rule_id):
                    continue
                produced.extend(entry.check(analyzed.python, ctx))
            kept, used = _suppress_and_track(analyzed.python, produced)
            findings.extend(kept)
            findings.extend(
                _stale_suppress_findings(analyzed.python, used, config)
            )
            continue
        for rule_kind in _rule_kinds_for(analyzed.kind):
            for entry in REGISTRY.for_kind(rule_kind):
                if not config.rule_enabled(entry.rule_id):
                    continue
                if analyzed.kind == Kind.DASH:
                    produced = entry.check(analyzed.doc, analyzed.xml_root, ctx)
                else:
                    produced = entry.check(analyzed.playlist, ctx)
                findings.extend(produced)
    return findings


def analyze_files(
    files: Mapping[str, str],
    config: Optional[AnalyzerConfig] = None,
    program: Optional[ProgramIndex] = None,
) -> List[Finding]:
    """Analyze a set of documents; the package-level entry point."""
    config = config or DEFAULT_CONFIG
    prepared, ctx = prepare(files, config, program=program)
    findings = run_rules(prepared, ctx)
    if config.baseline is not None:
        findings = config.baseline.filter(findings)
    return sort_findings(findings)


def analyze_text(
    name: str, text: str, config: Optional[AnalyzerConfig] = None
) -> List[Finding]:
    """Analyze a single document."""
    return analyze_files({name: text}, config)
