"""Shared engine for whole-program Python code rules.

Every code-rule family — units/dimension flow (``UNIT-*``),
pickle/fork safety (``POOL-*``) and determinism (``DET-*``) — runs over
the same parsed view of a module: :class:`PySource` bundles the AST,
the raw :class:`~repro.analysis.spans.Document`, an import tracker and
a tokenizer-accurate comment map. The comment map drives the **one**
inline suppression grammar all code rules share::

    x = legacy_rate  # lint: allow[UNIT-ASSIGN-MISMATCH] justification...

``# lint: allow[ID, ID2]`` suppresses the named rules on that line;
``# lint: allow[*]`` suppresses every code rule. The legacy
``# det: allow`` comment still suppresses ``DET-*`` rules for one
release but draws a ``LINT-DEPRECATED-SUPPRESS`` note (see
:mod:`repro.analysis.code_rules`). Suppression is applied centrally by
the analysis engine, not inside individual rules, so every present and
future code rule obeys the same grammar for free.

The second half of this module is the **dimension-flow** machinery the
``UNIT-*`` rules build on: :func:`dim_of_identifier` maps names to
dimensions through the tables in :mod:`repro.units`
(``DIMENSION_SUFFIXES`` / ``DIMENSION_NAMES`` /
``CONVERTER_SIGNATURES``), and :class:`ScopeEnv` propagates inferred
dimensions through a function's locals so that un-suffixed names
(``budget = chunk_bits(...)``) still participate in mix checks.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from typing import Dict, Iterator, List, Optional, Set, Tuple

from ..units import CONVERTER_SIGNATURES, DIMENSION_NAMES, DIMENSION_SUFFIXES
from .spans import Document, SourceSpan

#: Unified inline suppression: ``# lint: allow[RULE-ID, ...]``.
_ALLOW_RE = re.compile(r"lint:\s*allow\[([^\]]*)\]")

#: Legacy grammar, honoured for DET-* rules for one release.
LEGACY_SUPPRESS_COMMENT = "det: allow"


def _scan_comments(text: str) -> Dict[int, str]:
    """{line: comment text} using the tokenizer, so strings that merely
    *mention* a suppression comment do not suppress (or fire) anything."""
    comments: Dict[int, str] = {}
    try:
        for token in tokenize.generate_tokens(io.StringIO(text).readline):
            if token.type == tokenize.COMMENT:
                comments[token.start[0]] = token.string
    except (tokenize.TokenError, IndentationError, SyntaxError):
        # Unterminated constructs: fall back to whatever was scanned.
        pass
    return comments


# -- import tracking --------------------------------------------------------

#: ``random`` module-level functions whose use implies the shared,
#: unseeded global RNG.
RANDOM_MODULE_FUNCS = {
    "random",
    "randint",
    "randrange",
    "uniform",
    "triangular",
    "choice",
    "choices",
    "shuffle",
    "sample",
    "gauss",
    "normalvariate",
    "lognormvariate",
    "expovariate",
    "vonmisesvariate",
    "gammavariate",
    "betavariate",
    "paretovariate",
    "weibullvariate",
    "getrandbits",
    "randbytes",
}

WALLCLOCK_TIME_FUNCS = {"time", "time_ns"}
WALLCLOCK_DATETIME_FUNCS = {"now", "utcnow", "today"}


class ImportTracker:
    """What local names refer to the modules/classes code rules care about."""

    def __init__(self) -> None:
        self.random_modules: Set[str] = set()
        self.time_modules: Set[str] = set()
        self.datetime_modules: Set[str] = set()
        self.datetime_classes: Set[str] = set()
        self.os_modules: Set[str] = set()
        self.multiprocessing_modules: Set[str] = set()
        #: local name -> random module function it aliases
        self.random_funcs: Dict[str, str] = {}
        #: local name -> time module function it aliases
        self.time_funcs: Dict[str, str] = {}
        #: local names bound to units.py converters (possibly aliased)
        self.converters: Dict[str, str] = {}
        #: local names naming fork-relevant callables (os.fork, ...)
        self.fork_funcs: Dict[str, str] = {}

    def visit_imports(self, tree: ast.AST) -> None:
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    if alias.name == "random":
                        self.random_modules.add(local)
                    elif alias.name == "time":
                        self.time_modules.add(local)
                    elif alias.name == "datetime":
                        self.datetime_modules.add(local)
                    elif alias.name == "os":
                        self.os_modules.add(local)
                    elif alias.name in ("multiprocessing", "multiprocessing.pool"):
                        self.multiprocessing_modules.add(local)
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random":
                    for alias in node.names:
                        if alias.name in RANDOM_MODULE_FUNCS | {"seed"}:
                            self.random_funcs[alias.asname or alias.name] = (
                                alias.name
                            )
                elif node.module == "time":
                    for alias in node.names:
                        if alias.name in WALLCLOCK_TIME_FUNCS:
                            self.time_funcs[alias.asname or alias.name] = (
                                alias.name
                            )
                elif node.module == "datetime":
                    for alias in node.names:
                        if alias.name in {"datetime", "date"}:
                            self.datetime_classes.add(alias.asname or alias.name)
                elif node.module == "os":
                    for alias in node.names:
                        if alias.name == "fork":
                            self.fork_funcs[alias.asname or alias.name] = "os.fork"
                elif node.module and node.module.split(".")[-1] == "units":
                    for alias in node.names:
                        if alias.name in CONVERTER_SIGNATURES:
                            self.converters[alias.asname or alias.name] = (
                                alias.name
                            )


class PySource:
    """A parsed Python document: AST + imports + comments + raw lines."""

    def __init__(self, doc: Document, tree: ast.Module) -> None:
        self.doc = doc
        self.tree = tree
        self.imports = ImportTracker()
        self.imports.visit_imports(tree)
        self.comments = _scan_comments(doc.text)

    def suppressed(self, line: int, rule_id: str = "") -> bool:
        """Is ``rule_id`` suppressed on 1-based ``line``?

        Without a ``rule_id`` (legacy call shape) only the blanket
        ``# lint: allow[*]`` and ``# det: allow`` comments match.
        """
        comment = self.comments.get(line)
        if comment is None:
            return False
        match = _ALLOW_RE.search(comment)
        if match:
            ids = {part.strip() for part in match.group(1).split(",")}
            if "*" in ids or (rule_id and rule_id in ids):
                return True
        if LEGACY_SUPPRESS_COMMENT in comment:
            return not rule_id or rule_id.startswith("DET-")
        return False

    def span(self, node: ast.AST) -> SourceSpan:
        return SourceSpan(
            file=self.doc.name,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
        )

    def line_text(self, node: ast.AST) -> str:
        try:
            return self.doc.line_text(getattr(node, "lineno", 1))
        except IndexError:
            return ""


def parse_python(doc: Document) -> PySource:
    """Parse a Python document; raises ``SyntaxError`` on bad source."""
    tree = ast.parse(doc.text, filename=doc.name)
    return PySource(doc, tree)


# -- dimension inference ----------------------------------------------------

#: Longest suffix first, so ``_kbps`` wins over ``_bps`` and
#: ``_bytes`` over ``_s``-free lookups.
_SUFFIXES_BY_LENGTH = sorted(
    DIMENSION_SUFFIXES, key=len, reverse=True
)

#: Single-argument builtins that preserve their argument's dimension.
_TRANSPARENT_CALLS = {"int", "float", "round", "abs"}

#: Variadic builtins that preserve a dimension when every dimensioned
#: argument agrees (``min(deadline_s, budget_s)``).
_AGGREGATING_CALLS = {"min", "max", "sum"}


def dim_of_identifier(name: str) -> Optional[str]:
    """The dimension an identifier's *name* declares, or ``None``.

    Matching is case-insensitive so constants follow the same
    convention (``_POLL_TICK_S`` is time-s).
    """
    lowered = name.lower()
    exact = DIMENSION_NAMES.get(lowered)
    if exact is not None:
        return exact
    for suffix in _SUFFIXES_BY_LENGTH:
        if lowered.endswith(suffix):
            return DIMENSION_SUFFIXES[suffix]
    return None


def _callee_name(func: ast.AST) -> Optional[str]:
    """The bare name a call's target goes by (``f`` or ``obj.f``)."""
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


class ScopeEnv:
    """Inferred dimensions of a scope's un-suffixed locals.

    Names whose *own* name declares a dimension never enter the env —
    the declared dimension is the contract (and the assignment rule
    checks writes against it). A local assigned conflicting dimensions
    across the scope is demoted to ambiguous and excluded from checks.
    """

    def __init__(self) -> None:
        self._dims: Dict[str, Optional[str]] = {}

    def record(self, name: str, dim: Optional[str]) -> None:
        if dim is None or dim_of_identifier(name) is not None:
            return
        if name in self._dims and self._dims[name] != dim:
            self._dims[name] = None  # ambiguous: repurposed local
        else:
            self._dims[name] = dim

    def get(self, name: str) -> Optional[str]:
        return self._dims.get(name)


def dim_of(node: ast.AST, imports: ImportTracker, env: Optional[ScopeEnv] = None) -> Optional[str]:
    """Infer the dimension of an expression, or ``None`` for unknown.

    Deliberately conservative: multiplication and division yield
    unknown (a product changes the unit, and a scale factor such as
    ``duration_ms / 1000`` is a legitimate manual conversion), so only
    same-unit operations — additive arithmetic, comparison, argument
    passing, assignment, return — are ever checked.
    """
    if isinstance(node, ast.Name):
        declared = dim_of_identifier(node.id)
        if declared is not None:
            return declared
        return env.get(node.id) if env is not None else None
    if isinstance(node, ast.Attribute):
        return dim_of_identifier(node.attr)
    if isinstance(node, ast.Subscript):
        # chunk_sizes_bits[i] carries its sequence's dimension.
        return dim_of(node.value, imports, env)
    if isinstance(node, ast.Call):
        return _dim_of_call(node, imports, env)
    if isinstance(node, ast.UnaryOp) and isinstance(
        node.op, (ast.UAdd, ast.USub)
    ):
        return dim_of(node.operand, imports, env)
    if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.Add, ast.Sub)):
        left = dim_of(node.left, imports, env)
        right = dim_of(node.right, imports, env)
        if left is not None and left == right:
            return left
        return None
    if isinstance(node, ast.IfExp):
        body = dim_of(node.body, imports, env)
        orelse = dim_of(node.orelse, imports, env)
        if body is not None and body == orelse:
            return body
        return None
    return None


def _dim_of_call(
    node: ast.Call, imports: ImportTracker, env: Optional[ScopeEnv]
) -> Optional[str]:
    name = _callee_name(node.func)
    if name is None:
        return None
    if isinstance(node.func, ast.Name) and node.func.id in imports.converters:
        return CONVERTER_SIGNATURES[imports.converters[node.func.id]][1]
    if name in CONVERTER_SIGNATURES:
        return CONVERTER_SIGNATURES[name][1]
    if name in _TRANSPARENT_CALLS and len(node.args) == 1:
        return dim_of(node.args[0], imports, env)
    if name in _AGGREGATING_CALLS and node.args:
        dims = {dim_of(arg, imports, env) for arg in node.args}
        dims.discard(None)
        if len(dims) == 1:
            return dims.pop()
        return None
    # Functions advertise their return dimension by name, the same
    # convention as variables: trace.average_kbps() is rate-kbps.
    return dim_of_identifier(name)


def converter_signature(
    node: ast.Call, imports: ImportTracker
) -> Optional[Tuple[Tuple[str, ...], str]]:
    """The (param dims, return dim) of a call to a units.py converter."""
    if isinstance(node.func, ast.Name) and node.func.id in imports.converters:
        return CONVERTER_SIGNATURES[imports.converters[node.func.id]]
    name = _callee_name(node.func)
    if name in CONVERTER_SIGNATURES:
        return CONVERTER_SIGNATURES[name]
    return None


# -- scope iteration --------------------------------------------------------


def iter_scopes(
    tree: ast.Module,
) -> Iterator[Tuple[Optional[ast.AST], List[ast.stmt]]]:
    """Yield (scope node, body) for the module and every function.

    The module scope is yielded with ``None``; class bodies are not
    scopes of their own (their statements run in the module pass), but
    methods are.
    """
    yield None, tree.body
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node, node.body


def iter_scope_statements(body: List[ast.stmt]) -> Iterator[ast.stmt]:
    """Statements of one scope in source order, recursing into
    control-flow bodies but never into nested functions or classes."""
    for stmt in body:
        if isinstance(
            stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            continue
        yield stmt
        for attr in ("body", "orelse", "finalbody"):
            children = getattr(stmt, attr, None)
            if children:
                yield from iter_scope_statements(children)
        for handler in getattr(stmt, "handlers", ()):
            yield from iter_scope_statements(handler.body)


def iter_scope_expressions(body: List[ast.stmt]) -> Iterator[ast.AST]:
    """Every AST node of one scope, pruning nested function/class defs
    (they are checked as their own scopes, with their own env)."""
    for stmt in iter_scope_statements(body):
        stack: List[ast.AST] = [stmt]
        while stack:
            node = stack.pop()
            yield node
            for child in ast.iter_child_nodes(node):
                if isinstance(
                    child,
                    (
                        ast.FunctionDef,
                        ast.AsyncFunctionDef,
                        ast.ClassDef,
                        ast.Lambda,
                    ),
                ):
                    continue
                if isinstance(child, ast.stmt):
                    continue  # reached via iter_scope_statements
                stack.append(child)
