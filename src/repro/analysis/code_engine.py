"""Shared engine for whole-program Python code rules.

Every code-rule family — units/dimension flow (``UNIT-*``),
pickle/fork safety (``POOL-*``) and determinism (``DET-*``) — runs over
the same parsed view of a module: :class:`PySource` bundles the AST,
the raw :class:`~repro.analysis.spans.Document`, an import tracker and
a tokenizer-accurate comment map. The comment map drives the **one**
inline suppression grammar all code rules share::

    x = legacy_rate  # lint: allow[UNIT-ASSIGN-MISMATCH] justification...

``# lint: allow[ID, ID2]`` suppresses the named rules on that line;
``# lint: allow[*]`` suppresses every code rule. The legacy
``# det: allow`` comment is **inert** — it suppresses nothing and draws
a ``LINT-DEPRECATED-SUPPRESS`` note until removed (see
:mod:`repro.analysis.code_rules`). Suppression is applied centrally by
the analysis engine, not inside individual rules, so every present and
future code rule obeys the same grammar for free — and the engine
tracks which allow-comments actually matched a finding, so stale ones
draw ``LINT-UNUSED-SUPPRESS``.

The middle of this module is the **dimension-flow** machinery the
``UNIT-*`` rules build on: :func:`dim_of_identifier` maps names to
dimensions through the tables in :mod:`repro.units`
(``DIMENSION_SUFFIXES`` / ``DIMENSION_NAMES`` /
``CONVERTER_SIGNATURES``), and :class:`ScopeEnv` propagates inferred
dimensions through a function's locals so that un-suffixed names
(``budget = chunk_bits(...)``) still participate in mix checks.

The last section is the **whole-program index**: per-module summaries
(:func:`summarize_module`) of every function (parameters, return
dimension, escape/aliasing facts, callees), every class (``__slots__``,
frozen-ness, ``# shared`` annotation) and every interning site, merged
into a :class:`ProgramIndex` with a module-level call graph and a
fixed-point pass that resolves return dimensions *through* calls. The
index is what turns the per-function ``UNIT-*`` rules interprocedural
and what the ``SHARE-*`` / ``HOT-*`` families are built on. Summaries
are plain picklable dataclasses, so parallel linting can compute them
per worker batch and merge in the parent.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, replace
from typing import Dict, Iterator, List, Mapping, Optional, Set, Tuple

from ..units import CONVERTER_SIGNATURES, DIMENSION_NAMES, DIMENSION_SUFFIXES
from .spans import Document, SourceSpan

#: Unified inline suppression: a comment beginning ``lint: allow``
#: followed by a bracketed rule-ID list (or ``*`` for all rules).
#: (The grammar is not spelled literally here — a comment that *shows*
#: a bracketed example would itself parse as an allow-comment and draw
#: LINT-UNUSED-SUPPRESS; see the regex below for the exact shape.)
_ALLOW_RE = re.compile(r"lint:\s*allow\[([^\]]*)\]")

#: Legacy grammar. Inert since the PR-5 deprecation window closed: it
#: suppresses nothing and only feeds ``LINT-DEPRECATED-SUPPRESS``.
LEGACY_SUPPRESS_COMMENT = "det: allow"

#: Hot-path annotation: ``# hot`` marks a function as kernel fast path,
#: ``# hot: pure`` on a loop marks a closed-form fast-forward region.
#: The marker must *start* the comment (trailing justification is fine).
_HOT_RE = re.compile(r"^#\s*hot(?P<pure>\s*:\s*pure)?\b")

#: Shared-object annotation: ``# shared`` on a class marks instances as
#: reachable from more than one session/worker, so methods must not
#: mutate attributes after construction.
_SHARED_RE = re.compile(r"^#\s*shared\b")


def _scan_comments(text: str) -> Dict[int, str]:
    """{line: comment text} using the tokenizer, so strings that merely
    *mention* a suppression comment do not suppress (or fire) anything."""
    comments: Dict[int, str] = {}
    try:
        for token in tokenize.generate_tokens(io.StringIO(text).readline):
            if token.type == tokenize.COMMENT:
                comments[token.start[0]] = token.string
    except (tokenize.TokenError, IndentationError, SyntaxError):
        # Unterminated constructs: fall back to whatever was scanned.
        pass
    return comments


# -- import tracking --------------------------------------------------------

#: ``random`` module-level functions whose use implies the shared,
#: unseeded global RNG.
RANDOM_MODULE_FUNCS = {
    "random",
    "randint",
    "randrange",
    "uniform",
    "triangular",
    "choice",
    "choices",
    "shuffle",
    "sample",
    "gauss",
    "normalvariate",
    "lognormvariate",
    "expovariate",
    "vonmisesvariate",
    "gammavariate",
    "betavariate",
    "paretovariate",
    "weibullvariate",
    "getrandbits",
    "randbytes",
}

WALLCLOCK_TIME_FUNCS = {"time", "time_ns"}
WALLCLOCK_DATETIME_FUNCS = {"now", "utcnow", "today"}


def unseeded_random_call(node: "ast.Call", imports: "ImportTracker") -> Optional[str]:
    """Describe ``node`` if it draws from the global RNG, else ``None``.

    The single source of truth for what counts as unseeded randomness:
    ``DET-UNSEEDED-RANDOM`` fires on it per call site, and the function
    summaries record it per function so ``POLICY-NONDETERMINISM`` can
    chase it through the call graph.
    """
    func = node.func
    if (
        isinstance(func, ast.Attribute)
        and isinstance(func.value, ast.Name)
        and func.value.id in imports.random_modules
    ):
        if func.attr in RANDOM_MODULE_FUNCS:
            return f"random.{func.attr}()"
        if func.attr in {"Random", "seed"} and not (node.args or node.keywords):
            return f"random.{func.attr}() without a seed"
    elif isinstance(func, ast.Name) and func.id in imports.random_funcs:
        original = imports.random_funcs[func.id]
        if original == "seed":
            if not (node.args or node.keywords):
                return "seed() without a seed value"
        else:
            return f"{original}() imported from random"
    return None


def wallclock_call(node: "ast.Call", imports: "ImportTracker") -> Optional[str]:
    """Describe ``node`` if it reads the wall clock, else ``None``.

    Shared by ``DET-WALLCLOCK`` (per call site) and the function
    summaries feeding ``POLICY-NONDETERMINISM`` (per function).
    """
    func = node.func
    if isinstance(func, ast.Attribute):
        base = func.value
        if (
            isinstance(base, ast.Name)
            and base.id in imports.time_modules
            and func.attr in WALLCLOCK_TIME_FUNCS
        ):
            return f"time.{func.attr}()"
        if (
            isinstance(base, ast.Name)
            and base.id in imports.datetime_classes
            and func.attr in WALLCLOCK_DATETIME_FUNCS
        ):
            return f"datetime.{func.attr}()"
        if (
            isinstance(base, ast.Attribute)
            and isinstance(base.value, ast.Name)
            and base.value.id in imports.datetime_modules
            and base.attr in {"datetime", "date"}
            and func.attr in WALLCLOCK_DATETIME_FUNCS
        ):
            return f"datetime.{base.attr}.{func.attr}()"
    elif isinstance(func, ast.Name) and func.id in imports.time_funcs:
        return f"{imports.time_funcs[func.id]}() imported from time"
    return None


class ImportTracker:
    """What local names refer to the modules/classes code rules care about."""

    def __init__(self) -> None:
        self.random_modules: Set[str] = set()
        self.time_modules: Set[str] = set()
        self.datetime_modules: Set[str] = set()
        self.datetime_classes: Set[str] = set()
        self.os_modules: Set[str] = set()
        self.multiprocessing_modules: Set[str] = set()
        #: local name -> random module function it aliases
        self.random_funcs: Dict[str, str] = {}
        #: local name -> time module function it aliases
        self.time_funcs: Dict[str, str] = {}
        #: local names bound to units.py converters (possibly aliased)
        self.converters: Dict[str, str] = {}
        #: local names naming fork-relevant callables (os.fork, ...)
        self.fork_funcs: Dict[str, str] = {}

    def visit_imports(self, tree: ast.AST) -> None:
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    if alias.name == "random":
                        self.random_modules.add(local)
                    elif alias.name == "time":
                        self.time_modules.add(local)
                    elif alias.name == "datetime":
                        self.datetime_modules.add(local)
                    elif alias.name == "os":
                        self.os_modules.add(local)
                    elif alias.name in ("multiprocessing", "multiprocessing.pool"):
                        self.multiprocessing_modules.add(local)
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random":
                    for alias in node.names:
                        if alias.name in RANDOM_MODULE_FUNCS | {"seed"}:
                            self.random_funcs[alias.asname or alias.name] = (
                                alias.name
                            )
                elif node.module == "time":
                    for alias in node.names:
                        if alias.name in WALLCLOCK_TIME_FUNCS:
                            self.time_funcs[alias.asname or alias.name] = (
                                alias.name
                            )
                elif node.module == "datetime":
                    for alias in node.names:
                        if alias.name in {"datetime", "date"}:
                            self.datetime_classes.add(alias.asname or alias.name)
                elif node.module == "os":
                    for alias in node.names:
                        if alias.name == "fork":
                            self.fork_funcs[alias.asname or alias.name] = "os.fork"
                elif node.module and node.module.split(".")[-1] == "units":
                    for alias in node.names:
                        if alias.name in CONVERTER_SIGNATURES:
                            self.converters[alias.asname or alias.name] = (
                                alias.name
                            )


class PySource:
    """A parsed Python document: AST + imports + comments + raw lines."""

    def __init__(self, doc: Document, tree: ast.Module) -> None:
        self.doc = doc
        self.tree = tree
        self.imports = ImportTracker()
        self.imports.visit_imports(tree)
        self.comments = _scan_comments(doc.text)

    def suppressed(self, line: int, rule_id: str = "") -> bool:
        """Is ``rule_id`` suppressed on 1-based ``line``?

        Without a ``rule_id`` (legacy call shape) only the blanket
        ``# lint: allow[*]`` comment matches. The retired
        ``# det: allow`` grammar is inert here by design.
        """
        ids = set(self.allow_tokens().get(line, ()))
        return "*" in ids or (bool(rule_id) and rule_id in ids)

    def allow_tokens(self) -> Dict[int, List[str]]:
        """{line: [token, ...]} for every ``# lint: allow[...]`` comment.

        Tokens are rule IDs or ``"*"``, in source order, duplicates
        kept — the engine matches findings against them and reports the
        tokens that suppressed nothing as ``LINT-UNUSED-SUPPRESS``.
        """
        cached = getattr(self, "_allow_tokens", None)
        if cached is None:
            cached = {}
            for line, comment in self.comments.items():
                tokens = [
                    part.strip()
                    for match in _ALLOW_RE.finditer(comment)
                    for part in match.group(1).split(",")
                    if part.strip()
                ]
                if tokens:
                    cached[line] = tokens
            self._allow_tokens = cached  # type: ignore[attr-defined]
        return cached

    def hot_annotations(self) -> Dict[int, str]:
        """{line: "hot" | "pure"} for every ``# hot`` comment."""
        cached = getattr(self, "_hot_annotations", None)
        if cached is None:
            cached = {}
            for line, comment in self.comments.items():
                match = _HOT_RE.match(comment)
                if match:
                    cached[line] = "pure" if match.group("pure") else "hot"
            self._hot_annotations = cached  # type: ignore[attr-defined]
        return cached

    def hot_mark(self, node: ast.AST) -> Optional[str]:
        """The hot annotation attached to a def/loop node, if any.

        The marker lives on the node's own line or the line directly
        above it (the decorator / lead-comment position).
        """
        marks = self.hot_annotations()
        line = getattr(node, "lineno", 0)
        return marks.get(line) or marks.get(line - 1)

    def shared_mark(self, node: ast.AST) -> bool:
        """Is a class definition annotated ``# shared``?"""
        line = getattr(node, "lineno", 0)
        for candidate in (line, line - 1):
            comment = self.comments.get(candidate)
            if comment is not None and _SHARED_RE.match(comment):
                return True
        return False

    def span(self, node: ast.AST) -> SourceSpan:
        return SourceSpan(
            file=self.doc.name,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
        )

    def line_text(self, node: ast.AST) -> str:
        try:
            return self.doc.line_text(getattr(node, "lineno", 1))
        except IndexError:
            return ""


def parse_python(doc: Document) -> PySource:
    """Parse a Python document; raises ``SyntaxError`` on bad source."""
    tree = ast.parse(doc.text, filename=doc.name)
    return PySource(doc, tree)


# -- dimension inference ----------------------------------------------------

#: Longest suffix first, so ``_kbps`` wins over ``_bps`` and
#: ``_bytes`` over ``_s``-free lookups.
_SUFFIXES_BY_LENGTH = sorted(
    DIMENSION_SUFFIXES, key=len, reverse=True
)

#: Single-argument builtins that preserve their argument's dimension.
_TRANSPARENT_CALLS = {"int", "float", "round", "abs"}

#: Variadic builtins that preserve a dimension when every dimensioned
#: argument agrees (``min(deadline_s, budget_s)``).
_AGGREGATING_CALLS = {"min", "max", "sum"}


def dim_of_identifier(name: str) -> Optional[str]:
    """The dimension an identifier's *name* declares, or ``None``.

    Matching is case-insensitive so constants follow the same
    convention (``_POLL_TICK_S`` is time-s).
    """
    lowered = name.lower()
    exact = DIMENSION_NAMES.get(lowered)
    if exact is not None:
        return exact
    for suffix in _SUFFIXES_BY_LENGTH:
        if lowered.endswith(suffix):
            return DIMENSION_SUFFIXES[suffix]
    return None


def _callee_name(func: ast.AST) -> Optional[str]:
    """The bare name a call's target goes by (``f`` or ``obj.f``)."""
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


class ScopeEnv:
    """Inferred dimensions of a scope's un-suffixed locals.

    Names whose *own* name declares a dimension never enter the env —
    the declared dimension is the contract (and the assignment rule
    checks writes against it). A local assigned conflicting dimensions
    across the scope is demoted to ambiguous and excluded from checks.
    """

    def __init__(self) -> None:
        self._dims: Dict[str, Optional[str]] = {}

    def record(self, name: str, dim: Optional[str]) -> None:
        if dim is None or dim_of_identifier(name) is not None:
            return
        if name in self._dims and self._dims[name] != dim:
            self._dims[name] = None  # ambiguous: repurposed local
        else:
            self._dims[name] = dim

    def get(self, name: str) -> Optional[str]:
        return self._dims.get(name)


def dim_of(
    node: ast.AST,
    imports: ImportTracker,
    env: Optional[ScopeEnv] = None,
    index: Optional["ProgramIndex"] = None,
) -> Optional[str]:
    """Infer the dimension of an expression, or ``None`` for unknown.

    Deliberately conservative: multiplication and division yield
    unknown (a product changes the unit, and a scale factor such as
    ``duration_ms / 1000`` is a legitimate manual conversion), so only
    same-unit operations — additive arithmetic, comparison, argument
    passing, assignment, return — are ever checked. With a
    :class:`ProgramIndex`, calls additionally resolve through the
    callee's *summarized* return dimension, making the flow
    interprocedural.
    """
    if isinstance(node, ast.Name):
        declared = dim_of_identifier(node.id)
        if declared is not None:
            return declared
        return env.get(node.id) if env is not None else None
    if isinstance(node, ast.Attribute):
        return dim_of_identifier(node.attr)
    if isinstance(node, ast.Subscript):
        # chunk_sizes_bits[i] carries its sequence's dimension.
        return dim_of(node.value, imports, env, index)
    if isinstance(node, ast.Call):
        return _dim_of_call(node, imports, env, index)
    if isinstance(node, ast.UnaryOp) and isinstance(
        node.op, (ast.UAdd, ast.USub)
    ):
        return dim_of(node.operand, imports, env, index)
    if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.Add, ast.Sub)):
        left = dim_of(node.left, imports, env, index)
        right = dim_of(node.right, imports, env, index)
        if left is not None and left == right:
            return left
        return None
    if isinstance(node, ast.IfExp):
        body = dim_of(node.body, imports, env, index)
        orelse = dim_of(node.orelse, imports, env, index)
        if body is not None and body == orelse:
            return body
        return None
    return None


def _dim_of_call(
    node: ast.Call,
    imports: ImportTracker,
    env: Optional[ScopeEnv],
    index: Optional["ProgramIndex"] = None,
) -> Optional[str]:
    name = _callee_name(node.func)
    if name is None:
        return None
    if isinstance(node.func, ast.Name) and node.func.id in imports.converters:
        return CONVERTER_SIGNATURES[imports.converters[node.func.id]][1]
    if name in CONVERTER_SIGNATURES:
        return CONVERTER_SIGNATURES[name][1]
    if name in _TRANSPARENT_CALLS and len(node.args) == 1:
        return dim_of(node.args[0], imports, env, index)
    if name in _AGGREGATING_CALLS and node.args:
        dims = {dim_of(arg, imports, env, index) for arg in node.args}
        dims.discard(None)
        if len(dims) == 1:
            return dims.pop()
        return None
    # Functions advertise their return dimension by name, the same
    # convention as variables: trace.average_kbps() is rate-kbps.
    declared = dim_of_identifier(name)
    if declared is not None:
        return declared
    # Interprocedural: an un-suffixed callee may still have a known
    # return dimension in the whole-program index (declared by the
    # callee's own returns, possibly through further calls).
    if index is not None:
        return index.return_dim(name)
    return None


def converter_signature(
    node: ast.Call, imports: ImportTracker
) -> Optional[Tuple[Tuple[str, ...], str]]:
    """The (param dims, return dim) of a call to a units.py converter."""
    if isinstance(node.func, ast.Name) and node.func.id in imports.converters:
        return CONVERTER_SIGNATURES[imports.converters[node.func.id]]
    name = _callee_name(node.func)
    if name in CONVERTER_SIGNATURES:
        return CONVERTER_SIGNATURES[name]
    return None


# -- scope iteration --------------------------------------------------------


def iter_scopes(
    tree: ast.Module,
) -> Iterator[Tuple[Optional[ast.AST], List[ast.stmt]]]:
    """Yield (scope node, body) for the module and every function.

    The module scope is yielded with ``None``; class bodies are not
    scopes of their own (their statements run in the module pass), but
    methods are.
    """
    yield None, tree.body
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node, node.body


def iter_scope_statements(body: List[ast.stmt]) -> Iterator[ast.stmt]:
    """Statements of one scope in source order, recursing into
    control-flow bodies but never into nested functions or classes."""
    for stmt in body:
        if isinstance(
            stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            continue
        yield stmt
        for attr in ("body", "orelse", "finalbody"):
            children = getattr(stmt, attr, None)
            if children:
                yield from iter_scope_statements(children)
        for handler in getattr(stmt, "handlers", ()):
            yield from iter_scope_statements(handler.body)


def _mutable_global_names(tree: ast.Module) -> Set[str]:
    """Module-level names bound to mutable containers (caches etc.)."""
    mutable_ctors = {
        "dict",
        "list",
        "set",
        "defaultdict",
        "deque",
        "OrderedDict",
        "Counter",
    }
    out: Set[str] = set()
    for stmt in iter_scope_statements(tree.body):
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        else:
            continue
        is_mutable = isinstance(
            value,
            (ast.Dict, ast.List, ast.Set, ast.DictComp, ast.SetComp,
             ast.ListComp),
        ) or (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Name)
            and value.func.id in mutable_ctors
        )
        if is_mutable:
            for target in targets:
                if isinstance(target, ast.Name):
                    out.add(target.id)
    return out


def iter_scope_expressions(body: List[ast.stmt]) -> Iterator[ast.AST]:
    """Every AST node of one scope, pruning nested function/class defs
    (they are checked as their own scopes, with their own env)."""
    for stmt in iter_scope_statements(body):
        stack: List[ast.AST] = [stmt]
        while stack:
            node = stack.pop()
            yield node
            for child in ast.iter_child_nodes(node):
                if isinstance(
                    child,
                    (
                        ast.FunctionDef,
                        ast.AsyncFunctionDef,
                        ast.ClassDef,
                        ast.Lambda,
                    ),
                ):
                    continue
                if isinstance(child, ast.stmt):
                    continue  # reached via iter_scope_statements
                stack.append(child)


# -- whole-program index ----------------------------------------------------


@dataclass(frozen=True)
class FunctionSummary:
    """Picklable per-function facts the interprocedural rules consume.

    ``return_dim`` is the dimension declared by the function's own name
    or locally inferred when every return statement agrees;
    ``return_calls`` names callees whose (not yet known) return
    dimension the function forwards — the fixed-point pass in
    :meth:`ProgramIndex.resolve` closes those. ``returns_opaque`` marks
    functions with at least one return no summary can type, which
    blocks inference entirely (never guess).
    """

    name: str
    qualname: str
    module: str
    line: int
    params: Tuple[str, ...]
    return_dim: Optional[str]
    return_calls: Tuple[str, ...]
    returns_opaque: bool
    callees: Tuple[str, ...]
    hot: bool
    #: Name of the class this function interns into a module-level
    #: cache (``""`` when the stored value's class is not syntactically
    #: evident); ``None`` when the function does not intern at all.
    interns: Optional[str]
    #: Direct ambient-nondeterminism facts (the DET machinery applied
    #: per function): does the body read the wall clock / draw from the
    #: process-global RNG? ``POLICY-NONDETERMINISM`` closes these over
    #: the call graph.
    wallclock: bool = False
    unseeded_random: bool = False


@dataclass(frozen=True)
class ClassSummary:
    """Picklable per-class facts: slots, frozen-ness, sharing."""

    name: str
    module: str
    line: int
    bases: Tuple[str, ...]
    #: Declared ``__slots__`` names (including ``dataclass(slots=True)``
    #: fields); ``None`` when the class has no slots declaration.
    slots: Optional[Tuple[str, ...]]
    frozen: bool
    shared: bool
    is_dataclass: bool
    #: Annotated class-body fields as ``(name, annotation source)``
    #: pairs in declaration order — the compatibility surface of a spec
    #: dataclass (``SURF-KEY-CHURN`` compares these against the
    #: committed snapshot).
    fields: Tuple[Tuple[str, str], ...] = ()
    #: Does the class define a ``key()`` method? Marks the roots of the
    #: content-addressed spec closure.
    has_key: bool = False
    #: String keys of the dict literal a ``spec_dict()`` method
    #: returns — the canonical-JSON key layout feeding ``key()``;
    #: ``None`` when there is no such method (or its return is not a
    #: plain dict literal).
    spec_dict_keys: Optional[Tuple[str, ...]] = None
    #: Names of methods defined directly on the class body — the
    #: POLICY rules walk these across module boundaries to decide
    #: whether a player inherits a failure hook from a real base.
    methods: Tuple[str, ...] = ()


@dataclass(frozen=True)
class ModuleSummary:
    """Everything one module contributes to the program index."""

    module: str
    functions: Tuple[FunctionSummary, ...]
    classes: Tuple[ClassSummary, ...]
    mutable_globals: Tuple[str, ...]
    #: Module-level ``*_SCHEMA_VERSION`` integer constants as
    #: ``(name, value)`` pairs — the versions that gate the module's
    #: compatibility surfaces.
    schema_versions: Tuple[Tuple[str, int], ...] = ()


def _dataclass_facts(node: ast.ClassDef) -> Tuple[bool, bool, bool]:
    """(is_dataclass, slots=True, frozen=True) from the decorators."""
    is_dc = has_slots = frozen = False
    for deco in node.decorator_list:
        target = deco.func if isinstance(deco, ast.Call) else deco
        name = None
        if isinstance(target, ast.Name):
            name = target.id
        elif isinstance(target, ast.Attribute):
            name = target.attr
        if name != "dataclass":
            continue
        is_dc = True
        if isinstance(deco, ast.Call):
            for kw in deco.keywords:
                if not isinstance(kw.value, ast.Constant):
                    continue
                if kw.arg == "slots" and kw.value.value is True:
                    has_slots = True
                elif kw.arg == "frozen" and kw.value.value is True:
                    frozen = True
    return is_dc, has_slots, frozen


def _class_slots(node: ast.ClassDef) -> Optional[Tuple[str, ...]]:
    """The class's declared slot names, or ``None`` without slots."""
    is_dc, dc_slots, _frozen = _dataclass_facts(node)
    names: List[str] = []
    found = False
    for stmt in node.body:
        if (
            isinstance(stmt, ast.Assign)
            and len(stmt.targets) == 1
            and isinstance(stmt.targets[0], ast.Name)
            and stmt.targets[0].id == "__slots__"
        ):
            found = True
            if isinstance(stmt.value, (ast.Tuple, ast.List, ast.Set)):
                for elt in stmt.value.elts:
                    if isinstance(elt, ast.Constant) and isinstance(
                        elt.value, str
                    ):
                        names.append(elt.value)
                    else:
                        return None  # non-literal slots: unknowable
            elif isinstance(stmt.value, ast.Constant) and isinstance(
                stmt.value.value, str
            ):
                names.append(stmt.value.value)
            else:
                return None
    if found:
        return tuple(names)
    if is_dc and dc_slots:
        # dataclass(slots=True): the synthesized slots are the fields.
        fields = [
            stmt.target.id
            for stmt in node.body
            if isinstance(stmt, ast.AnnAssign)
            and isinstance(stmt.target, ast.Name)
        ]
        return tuple(fields)
    return None


def _class_fields(node: ast.ClassDef) -> Tuple[Tuple[str, str], ...]:
    """Annotated class-body fields as (name, annotation source) pairs."""
    fields: List[Tuple[str, str]] = []
    for stmt in node.body:
        if isinstance(stmt, ast.AnnAssign) and isinstance(
            stmt.target, ast.Name
        ):
            fields.append((stmt.target.id, ast.unparse(stmt.annotation)))
    return tuple(fields)


def _spec_dict_keys(node: ast.ClassDef) -> Optional[Tuple[str, ...]]:
    """Keys of the dict literal a ``spec_dict`` method returns.

    ``None`` when the class has no ``spec_dict`` or when any return is
    not a plain dict literal with constant string keys (unknowable —
    the surface rule then falls back to the field set alone).
    """
    for stmt in node.body:
        if not (
            isinstance(stmt, ast.FunctionDef) and stmt.name == "spec_dict"
        ):
            continue
        for sub in iter_scope_statements(stmt.body):
            if not isinstance(sub, ast.Return) or sub.value is None:
                continue
            if not isinstance(sub.value, ast.Dict):
                return None
            keys: List[str] = []
            for key in sub.value.keys:
                if isinstance(key, ast.Constant) and isinstance(
                    key.value, str
                ):
                    keys.append(key.value)
                else:
                    return None
            return tuple(keys)
    return None


def _has_method(node: ast.ClassDef, name: str) -> bool:
    return any(
        isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
        and stmt.name == name
        for stmt in node.body
    )


def _module_schema_versions(tree: ast.Module) -> Tuple[Tuple[str, int], ...]:
    """Module-level ``*_SCHEMA_VERSION = <int>`` constants, in order."""
    versions: List[Tuple[str, int]] = []
    for stmt in tree.body:
        if (
            isinstance(stmt, ast.Assign)
            and len(stmt.targets) == 1
            and isinstance(stmt.targets[0], ast.Name)
            and stmt.targets[0].id.endswith("_SCHEMA_VERSION")
            and isinstance(stmt.value, ast.Constant)
            and isinstance(stmt.value.value, int)
            and not isinstance(stmt.value.value, bool)
        ):
            versions.append((stmt.targets[0].id, stmt.value.value))
    return tuple(versions)


def _base_names(node: ast.ClassDef) -> Tuple[str, ...]:
    names: List[str] = []
    for base in node.bases:
        if isinstance(base, ast.Name):
            names.append(base.id)
        elif isinstance(base, ast.Attribute):
            names.append(base.attr)
        else:
            names.append("?")  # unresolvable base expression
    return tuple(names)


def _function_env(
    node: ast.AST, imports: ImportTracker
) -> ScopeEnv:
    """A cheap locals env for summarization (assignment pass only)."""
    env = ScopeEnv()
    for stmt in iter_scope_statements(node.body):
        if isinstance(stmt, ast.Assign):
            value_dim = dim_of(stmt.value, imports, env)
            for target in stmt.targets:
                for name_node in ast.walk(target):
                    if isinstance(name_node, ast.Name):
                        env.record(name_node.id, value_dim)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            if isinstance(stmt.target, ast.Name):
                env.record(
                    stmt.target.id, dim_of(stmt.value, imports, env)
                )
    return env


def _summarize_function(
    node: ast.AST,
    qualname: str,
    module: str,
    src: PySource,
    mutable_globals: Set[str],
) -> FunctionSummary:
    imports = src.imports
    params = [a.arg for a in node.args.posonlyargs + node.args.args]
    if params and params[0] in ("self", "cls"):
        params = params[1:]
    declared = dim_of_identifier(node.name)
    return_dim: Optional[str] = declared
    return_calls: List[str] = []
    returns_opaque = False
    if declared is None:
        env = _function_env(node, imports)
        local_dims: Set[str] = set()
        for stmt in iter_scope_statements(node.body):
            if not isinstance(stmt, ast.Return) or stmt.value is None:
                continue
            d = dim_of(stmt.value, imports, env)
            if d is not None:
                local_dims.add(d)
            elif isinstance(stmt.value, ast.Call):
                callee = _callee_name(stmt.value.func)
                if callee is None:
                    returns_opaque = True
                else:
                    return_calls.append(callee)
            elif isinstance(stmt.value, ast.Constant):
                pass  # dimensionless literal: never blocks inference
            else:
                returns_opaque = True
        if not returns_opaque and local_dims and not return_calls:
            if len(local_dims) == 1:
                return_dim = local_dims.pop()
            else:
                returns_opaque = True
        elif local_dims and return_calls:
            # Mixed known/deferred returns: resolved at fixed point
            # only if the callees end up agreeing with the known dims;
            # encode the known dims as pseudo-deferred via opaqueness
            # when they already disagree.
            if len(local_dims) > 1:
                returns_opaque = True
                return_calls = []
    callees = []
    wallclock = False
    unseeded_random = False
    for sub in ast.walk(node):
        if isinstance(sub, ast.Call):
            callee = _callee_name(sub.func)
            if callee is not None:
                callees.append(callee)
            if not wallclock and wallclock_call(sub, imports) is not None:
                wallclock = True
            if (
                not unseeded_random
                and unseeded_random_call(sub, imports) is not None
            ):
                unseeded_random = True
    interns: Optional[str] = None
    has_return_value = any(
        isinstance(stmt, ast.Return) and stmt.value is not None
        for stmt in iter_scope_statements(node.body)
    )
    if has_return_value and mutable_globals:
        for stmt in iter_scope_statements(node.body):
            targets: List[ast.expr] = []
            if isinstance(stmt, ast.Assign):
                targets = stmt.targets
                value = stmt.value
            elif isinstance(stmt, ast.AugAssign):
                targets = [stmt.target]
                value = stmt.value
            else:
                continue
            for target in targets:
                if (
                    isinstance(target, ast.Subscript)
                    and isinstance(target.value, ast.Name)
                    and target.value.id in mutable_globals
                ):
                    stored = ""
                    if isinstance(value, ast.Call):
                        stored = _callee_name(value.func) or ""
                    interns = stored
    return FunctionSummary(
        name=node.name,
        qualname=qualname,
        module=module,
        line=node.lineno,
        params=tuple(params),
        return_dim=return_dim,
        return_calls=tuple(return_calls),
        returns_opaque=returns_opaque,
        callees=tuple(callees),
        hot=src.hot_mark(node) is not None,
        interns=interns,
        wallclock=wallclock,
        unseeded_random=unseeded_random,
    )


def summarize_module(src: PySource, module: str) -> ModuleSummary:
    """Summarize one parsed module for the program index.

    Summaries are plain picklable dataclasses: a parallel lint run
    computes them per worker batch and merges them in the parent into
    the same :class:`ProgramIndex` a serial run builds.
    """
    mutable_globals = _mutable_global_names(src.tree)
    functions: List[FunctionSummary] = []
    classes: List[ClassSummary] = []

    def visit(body: List[ast.stmt], prefix: str) -> None:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{prefix}{stmt.name}"
                functions.append(
                    _summarize_function(
                        stmt, qualname, module, src, mutable_globals
                    )
                )
                visit(stmt.body, f"{qualname}.<locals>.")
            elif isinstance(stmt, ast.ClassDef):
                is_dc, _dc_slots, frozen = _dataclass_facts(stmt)
                classes.append(
                    ClassSummary(
                        name=stmt.name,
                        module=module,
                        line=stmt.lineno,
                        bases=_base_names(stmt),
                        slots=_class_slots(stmt),
                        frozen=frozen,
                        shared=src.shared_mark(stmt),
                        is_dataclass=is_dc,
                        fields=_class_fields(stmt),
                        has_key=_has_method(stmt, "key"),
                        spec_dict_keys=_spec_dict_keys(stmt),
                        methods=tuple(
                            inner.name
                            for inner in stmt.body
                            if isinstance(
                                inner, (ast.FunctionDef, ast.AsyncFunctionDef)
                            )
                        ),
                    )
                )
                visit(stmt.body, f"{prefix}{stmt.name}.")

    visit(src.tree.body, "")
    return ModuleSummary(
        module=module,
        functions=tuple(functions),
        classes=tuple(classes),
        mutable_globals=tuple(sorted(mutable_globals)),
        schema_versions=_module_schema_versions(src.tree),
    )


def _merge_function(
    existing: Optional[FunctionSummary], new: FunctionSummary
) -> Optional[FunctionSummary]:
    """Name-collision policy: keep only facts every definition shares."""
    if existing is None:
        return None
    if (
        existing.params == new.params
        and existing.return_dim == new.return_dim
        and existing.return_calls == new.return_calls
        and existing.returns_opaque == new.returns_opaque
    ):
        if (new.wallclock and not existing.wallclock) or (
            new.unseeded_random and not existing.unseeded_random
        ):
            # Taint is OR-merged (commutative, so merge order still
            # does not matter): one nondeterministic namesake taints
            # the bare name for every caller.
            return replace(
                existing,
                wallclock=existing.wallclock or new.wallclock,
                unseeded_random=existing.unseeded_random
                or new.unseeded_random,
            )
        return existing
    return None


class ProgramIndex:
    """The merged whole-program view: call graph + summaries by name.

    Resolution is by *bare name*, matching the house style of
    ``_module_param_table``: a name defined more than once with
    conflicting facts is ambiguous and answers ``None`` to every query
    (conservative — never checked). The index is picklable, so the
    parallel lint path ships it into worker processes.
    """

    def __init__(
        self,
        functions: Dict[str, Optional[FunctionSummary]],
        classes: Dict[str, Optional[ClassSummary]],
        schema_versions: Optional[Dict[str, Tuple[Tuple[str, int], ...]]] = None,
    ) -> None:
        self.functions = functions
        self.classes = classes
        #: ``{module: ((constant name, value), ...)}`` for modules that
        #: define ``*_SCHEMA_VERSION`` constants (the SURF-* rules read
        #: these to tell a version bump from silent churn).
        self.schema_versions = schema_versions or {}

    @classmethod
    def build(cls, summaries: Iterable["ModuleSummary"]) -> "ProgramIndex":
        functions: Dict[str, Optional[FunctionSummary]] = {}
        classes: Dict[str, Optional[ClassSummary]] = {}
        schema_versions: Dict[str, Tuple[Tuple[str, int], ...]] = {}
        for summary in summaries:
            if summary.schema_versions:
                schema_versions[summary.module] = summary.schema_versions
            for fn in summary.functions:
                if fn.name in functions:
                    functions[fn.name] = _merge_function(
                        functions[fn.name], fn
                    )
                else:
                    functions[fn.name] = fn
            for klass in summary.classes:
                if klass.name in classes:
                    if classes[klass.name] != klass:
                        classes[klass.name] = None
                else:
                    classes[klass.name] = klass
        index = cls(functions, classes, schema_versions)
        index.resolve()
        return index

    def resolve(self) -> None:
        """Fixed point: push return dimensions through the call graph.

        A function whose returns all forward calls picks up its
        callees' dimensions once those are known; iteration stops when
        a full pass changes nothing (monotone — dims only ever go from
        unknown to known — so termination is by |functions| passes).
        """
        changed = True
        while changed:
            changed = False
            for name, fn in self.functions.items():
                if (
                    fn is None
                    or fn.return_dim is not None
                    or fn.returns_opaque
                    or not fn.return_calls
                ):
                    continue
                dims: Set[str] = set()
                resolved = True
                for callee in fn.return_calls:
                    d = self.return_dim(callee)
                    if d is None:
                        resolved = False
                        break
                    dims.add(d)
                if resolved and len(dims) == 1:
                    self.functions[name] = replace(
                        fn, return_dim=dims.pop()
                    )
                    changed = True

    # -- queries ------------------------------------------------------

    def function(self, name: str) -> Optional[FunctionSummary]:
        return self.functions.get(name)

    def class_summary(self, name: str) -> Optional[ClassSummary]:
        return self.classes.get(name)

    def return_dim(self, name: str) -> Optional[str]:
        declared = dim_of_identifier(name)
        if declared is not None:
            return declared
        fn = self.functions.get(name)
        return fn.return_dim if fn is not None else None

    def param_names(self, name: str) -> Optional[Tuple[str, ...]]:
        fn = self.functions.get(name)
        return fn.params if fn is not None else None

    def intern_class(self, name: str) -> Optional[str]:
        """The class ``name()`` interns, ``""`` unknown, None: not an
        interning function."""
        fn = self.functions.get(name)
        return fn.interns if fn is not None else None

    def slots_union(self, class_name: str) -> Optional[frozenset]:
        """All slot names of a *fully slotted* class hierarchy.

        ``None`` when the class (or any base) lacks slots or cannot be
        resolved — instances then carry a ``__dict__`` and arbitrary
        attribute writes are legal, so slot checks must stay silent.
        """
        seen: Set[str] = set()

        def walk(name: str) -> Optional[frozenset]:
            if name == "object":
                return frozenset()
            if name in seen:
                return None  # cycle: be conservative
            seen.add(name)
            klass = self.classes.get(name)
            if klass is None or klass.slots is None:
                return None
            union = set(klass.slots)
            for base in klass.bases:
                base_slots = walk(base)
                if base_slots is None:
                    return None
                union |= base_slots
            return frozenset(union)

        return walk(class_name)


def build_program_index(
    sources: Mapping[str, PySource]
) -> ProgramIndex:
    """Summarize and merge every parsed module of one analysis run."""
    return ProgramIndex.build(
        summarize_module(src, name) for name, src in sources.items()
    )
