"""Shared-state and hot-path rules over the whole-program index.

The PR-7 kernel overhaul bought its ~10x session throughput with
exactly the constructs that go wrong first at multi-client scale:
memoized cursors on shared trace objects, interned decision singletons,
``__slots__`` hot objects, and a closed-form fast-forward loop that is
only correct while its body stays pure. These rules encode those
contracts so the analyzer — not a flaky population sweep — is what
catches a violation.

**Shared-state safety (``SHARE-*``)** — a class marked ``# shared``
(on its ``class`` line or the line above) promises to be safely usable
from several consumers at once: read-only after ``__init__``, with all
per-consumer state pushed into cursor/view objects. The family flags
post-init mutation of shared classes, mutation of values returned by
interning caches (every holder sees the write), interning caches whose
value class is not frozen, and mutable default parameter values (one
shared instance per *definition*, not per call).

**Hot-path discipline (``HOT-*``)** — a function or loop marked
``# hot`` (or ``# hot: pure``) is on the per-chunk simulator fast
path. The family flags mutable-container allocation inside hot loops,
construction of ``__dict__``-carrying classes in hot code, attribute
writes that miss a fully slotted hierarchy's ``__slots__`` union
(an ``AttributeError`` at runtime), and side-effecting calls — ABR
policy hooks, RNG — inside ``# hot: pure`` fast-forward regions whose
closed form must be derivable from trace state alone.

Both families lean on :class:`~repro.analysis.code_engine.ProgramIndex`
— slots unions resolve base classes across modules, and interning
functions are visible from every call site, not just their defining
module.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set, TYPE_CHECKING

from .code_engine import (
    PySource,
    _callee_name,
    iter_scope_statements,
    iter_scopes,
)
from .findings import Finding, Severity
from .registry import Category, Kind, rule

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from .code_engine import ProgramIndex

# -- shared helpers ---------------------------------------------------------

#: Methods that may legitimately write ``self`` state on a shared class:
#: construction and (un)pickling, which happen before any sharing.
_INIT_METHODS = {"__init__", "__post_init__", "__new__", "__setstate__"}

#: Container-mutator method names: calling one on a ``self`` attribute
#: mutates shared state just as surely as an attribute assignment.
_MUTATOR_METHODS = {
    "append",
    "extend",
    "insert",
    "add",
    "update",
    "setdefault",
    "pop",
    "popitem",
    "popleft",
    "appendleft",
    "remove",
    "discard",
    "clear",
    "sort",
    "reverse",
}

#: Constructors whose result is a fresh mutable container.
_MUTABLE_CTORS = {"list", "dict", "set", "bytearray", "defaultdict", "deque"}

#: ABR policy hooks + RNG: the calls a ``# hot: pure`` fast-forward
#: region must not make. The closed form replays network state from the
#: trace alone; a policy hook or RNG draw inside it would observe
#: (or perturb) state the replay does not reproduce.
_IMPURE_CALLS = {
    # policy/estimator entry points (sim.abr / sim.estimator protocol)
    "choose_next",
    "on_chunk_start",
    "on_chunk_complete",
    "on_failure",
    "consider_abort",
    "on_session_start",
    "on_session_end",
    "update",
    "add_sample",
    "observe",
    # random-module surface (module functions and Random methods)
    "random",
    "randint",
    "randrange",
    "uniform",
    "choice",
    "choices",
    "shuffle",
    "sample",
    "gauss",
    "normalvariate",
    "expovariate",
    "betavariate",
    "triangular",
    "vonmisesvariate",
}


def _program(ctx) -> Optional["ProgramIndex"]:
    return getattr(ctx, "program", None)


def _self_attr_target(node: ast.expr) -> Optional[ast.Attribute]:
    """``self.<attr>`` (the Attribute node) if ``node`` stores into one.

    Handles plain attributes and subscript stores (``self.x[i] = v``
    mutates ``self.x`` just the same).
    """
    if isinstance(node, ast.Subscript):
        node = node.value
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node
    return None


def _iter_methods(klass: ast.ClassDef) -> Iterator[ast.FunctionDef]:
    for stmt in klass.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield stmt


def _self_writes(method: ast.AST) -> Iterator[ast.Attribute]:
    """Every ``self.<attr>`` store or mutator call inside ``method``."""
    for node in ast.walk(method):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                attr = _self_attr_target(target)
                if attr is not None:
                    yield attr
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            attr = _self_attr_target(node.target)
            if attr is not None and (
                isinstance(node, ast.AugAssign) or node.value is not None
            ):
                yield attr
        elif isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _MUTATOR_METHODS
            ):
                attr = _self_attr_target(func.value)
                if attr is not None:
                    yield attr


# -- SHARE-* ---------------------------------------------------------------


@rule(
    "SHARE-MUTATES-SHARED",
    Severity.ERROR,
    Category.SHARE,
    Kind.PYTHON,
    summary="a '# shared' class must not mutate itself after __init__",
    reference="docs/static_analysis.md (shared-state contract); "
    "BandwidthTrace cursor hazard",
)
def check_mutates_shared(src: PySource, ctx) -> Iterator[Finding]:
    """Post-construction ``self`` mutation in a shared class.

    The canonical bug: ``BandwidthTrace`` memoized a ``_cursor`` on the
    *trace*, so two sessions walking one trace object invalidated each
    other's fast path. Per-consumer state belongs in a cursor/view
    object the shared class hands out.
    """
    for scope in ast.walk(src.tree):
        if not isinstance(scope, ast.ClassDef) or not src.shared_mark(scope):
            continue
        for method in _iter_methods(scope):
            if method.name in _INIT_METHODS:
                continue
            for attr in _self_writes(method):
                yield check_mutates_shared.rule.finding(
                    f"{scope.name} is marked '# shared' but "
                    f"{method.name}() mutates self.{attr.attr}; move "
                    "per-consumer state into a cursor/view object "
                    "(e.g. BandwidthTrace.cursor())",
                    src.span(attr),
                    line_text=src.line_text(attr),
                )


@rule(
    "SHARE-INTERN-MUTATE",
    Severity.ERROR,
    Category.SHARE,
    Kind.PYTHON,
    summary="values returned by interning caches must not be mutated",
    reference="sim.decisions interned decision objects",
)
def check_intern_mutate(src: PySource, ctx) -> Iterator[Finding]:
    """Attribute stores on objects obtained from an interning function.

    ``download_for(track)`` returns the *same* object for every caller;
    writing to it edits every holder's copy at once. Flags stores on
    locals bound from an interning call and on the call result
    directly.
    """
    index = _program(ctx)
    if index is None:
        return
    for _scope, body in iter_scopes(src.tree):
        interned: Set[str] = set()
        for stmt in iter_scope_statements(body):
            if isinstance(stmt, ast.Assign) and isinstance(
                stmt.value, ast.Call
            ):
                callee = _callee_name(stmt.value.func)
                if callee and index.intern_class(callee) is not None:
                    for target in stmt.targets:
                        if isinstance(target, ast.Name):
                            interned.add(target.id)
            targets: List[ast.expr] = []
            if isinstance(stmt, ast.Assign):
                targets = stmt.targets
            elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
                targets = [stmt.target]
            for target in targets:
                if isinstance(target, ast.Subscript):
                    target = target.value
                if not isinstance(target, ast.Attribute):
                    continue
                base = target.value
                bad = None
                if isinstance(base, ast.Name) and base.id in interned:
                    bad = base.id
                elif isinstance(base, ast.Call):
                    callee = _callee_name(base.func)
                    if callee and index.intern_class(callee) is not None:
                        bad = f"{callee}(...)"
                if bad is not None:
                    yield check_intern_mutate.rule.finding(
                        f"{bad} is interned — every holder shares this "
                        f"object, so writing .{target.attr} edits all of "
                        "them; build a new value instead",
                        src.span(target),
                        line_text=src.line_text(target),
                    )


@rule(
    "SHARE-INTERN-UNFROZEN",
    Severity.WARNING,
    Category.SHARE,
    Kind.PYTHON,
    summary="an interning cache should store frozen instances",
    reference="sim.decisions frozen decision dataclasses",
)
def check_intern_unfrozen(src: PySource, ctx) -> Iterator[Finding]:
    """An interning function whose cached class is not frozen.

    SHARE-INTERN-MUTATE only sees syntactically evident writes; a
    frozen dataclass closes the hole at runtime for everything else.
    """
    index = _program(ctx)
    if index is None:
        return
    for scope, _body in iter_scopes(src.tree):
        if not isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        fn = index.function(scope.name)
        if (
            fn is None
            or fn.module != src.doc.name
            or fn.line != scope.lineno
            or not fn.interns  # None (no interning) or "" (class unknown)
        ):
            continue
        klass = index.class_summary(fn.interns)
        if klass is not None and not klass.frozen:
            yield check_intern_unfrozen.rule.finding(
                f"{scope.name}() interns {fn.interns} instances but "
                f"{fn.interns} is not frozen; any holder can mutate the "
                "shared value — declare it "
                "@dataclass(frozen=True)",
                src.span(scope),
                line_text=src.line_text(scope),
            )


@rule(
    "SHARE-MUTABLE-DEFAULT",
    Severity.ERROR,
    Category.SHARE,
    Kind.PYTHON,
    summary="default parameter values must not be mutable objects",
    reference="one default instance per definition, shared by every call",
)
def check_mutable_default(src: PySource, ctx) -> Iterator[Finding]:
    for scope, _body in iter_scopes(src.tree):
        if not isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        defaults = list(scope.args.defaults) + [
            d for d in scope.args.kw_defaults if d is not None
        ]
        for default in defaults:
            mutable = isinstance(
                default,
                (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp,
                 ast.SetComp),
            )
            if isinstance(default, ast.Call):
                callee = _callee_name(default.func)
                mutable = callee in _MUTABLE_CTORS
            if mutable:
                yield check_mutable_default.rule.finding(
                    f"mutable default in {scope.name}(): the object is "
                    "created once and shared by every call that omits "
                    "the argument; default to None (or use "
                    "dataclasses.field(default_factory=...))",
                    src.span(default),
                    line_text=src.line_text(default),
                )


# -- HOT-* ------------------------------------------------------------------


def _hot_functions(src: PySource) -> Iterator[ast.AST]:
    for scope, _body in iter_scopes(src.tree):
        if isinstance(
            scope, (ast.FunctionDef, ast.AsyncFunctionDef)
        ) and src.hot_mark(scope):
            yield scope


@rule(
    "HOT-ALLOC-IN-LOOP",
    Severity.WARNING,
    Category.HOT,
    Kind.PYTHON,
    summary="hot loops should not allocate mutable containers per iteration",
    reference="PR-7 kernel overhaul (allocation-free fast paths)",
)
def check_alloc_in_loop(src: PySource, ctx) -> Iterator[Finding]:
    """Container literals/constructors inside a loop of a hot function.

    Appending to a pre-allocated list is fine; building a fresh
    list/dict/set every iteration is the allocation churn the kernel
    overhaul removed. Hoist the container out of the loop or switch to
    tuples/scalars.
    """
    for fn in _hot_functions(src):
        seen: Set[ast.AST] = set()  # nested loops walk shared nodes
        for loop in ast.walk(fn):
            if not isinstance(loop, (ast.For, ast.While)):
                continue
            for node in ast.walk(loop):
                if node is loop or node in seen:
                    continue
                alloc = isinstance(
                    node,
                    (ast.List, ast.Dict, ast.Set, ast.ListComp,
                     ast.DictComp, ast.SetComp),
                )
                if isinstance(node, ast.Call):
                    alloc = _callee_name(node.func) in _MUTABLE_CTORS
                if alloc:
                    seen.add(node)
                    yield check_alloc_in_loop.rule.finding(
                        f"mutable container allocated inside a loop of "
                        f"hot function {fn.name}(); hoist it out of the "
                        "loop or use an immutable value",
                        src.span(node),
                        line_text=src.line_text(node),
                    )


@rule(
    "HOT-NONSLOT-CONSTRUCT",
    Severity.WARNING,
    Category.HOT,
    Kind.PYTHON,
    summary="hot code should construct __slots__ classes",
    reference="PR-7 kernel overhaul (__slots__ hot objects)",
)
def check_nonslot_construct(src: PySource, ctx) -> Iterator[Finding]:
    """Constructing a ``__dict__``-carrying class in a hot function.

    Only fires when the whole-program index knows the class and knows
    it has no slots declaration; exception classes are exempt (the
    raise path is off the fast path by definition).
    """
    index = _program(ctx)
    if index is None:
        return
    for fn in _hot_functions(src):
        raised = {
            stmt.exc
            for stmt in ast.walk(fn)
            if isinstance(stmt, ast.Raise) and stmt.exc is not None
        }
        for node in ast.walk(fn):
            if not isinstance(node, ast.Call) or node in raised:
                continue
            callee = _callee_name(node.func)
            if not callee or not callee[:1].isupper():
                continue  # house style: classes are CapWords
            if callee.endswith(("Error", "Exception", "Warning")):
                continue
            klass = index.class_summary(callee)
            if klass is not None and klass.slots is None:
                yield check_nonslot_construct.rule.finding(
                    f"hot function {fn.name}() constructs {callee}, "
                    "which has no __slots__ — each instance carries a "
                    "__dict__; add __slots__ or "
                    "@dataclass(slots=True)",
                    src.span(node),
                    line_text=src.line_text(node),
                )


@rule(
    "HOT-SLOTS-VIOLATION",
    Severity.ERROR,
    Category.HOT,
    Kind.PYTHON,
    summary="attribute writes must stay inside the __slots__ union",
    reference="AttributeError at runtime on fully slotted hierarchies",
)
def check_slots_violation(src: PySource, ctx) -> Iterator[Finding]:
    """``self.<attr> = ...`` missing a fully slotted hierarchy's slots.

    Uses the index's cross-module slots union, so a base class in
    another file still counts. Silent whenever any class in the
    hierarchy is unslotted or unresolvable (instances then have a
    ``__dict__`` and the write is legal), and whenever the name could
    be a property/descriptor defined in the class body.
    """
    index = _program(ctx)
    if index is None:
        return
    for scope in ast.walk(src.tree):
        if not isinstance(scope, ast.ClassDef):
            continue
        union = index.slots_union(scope.name)
        if union is None:
            continue
        # Descriptors (properties, methods assigned in the body) are
        # legal write targets even though they are not slots.
        allowed = set(union)
        for stmt in scope.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                allowed.add(stmt.name)
            elif isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        allowed.add(target.id)
        for method in _iter_methods(scope):
            for attr in _self_writes(method):
                if attr.attr not in allowed:
                    yield check_slots_violation.rule.finding(
                        f"{scope.name}.{method.name}() writes "
                        f"self.{attr.attr}, which is not in the "
                        "hierarchy's __slots__ union — this raises "
                        "AttributeError at runtime; declare the slot "
                        "or drop the write",
                        src.span(attr),
                        line_text=src.line_text(attr),
                    )


@rule(
    "HOT-IMPURE-FASTFORWARD",
    Severity.ERROR,
    Category.HOT,
    Kind.PYTHON,
    summary="'# hot: pure' regions must not call policy hooks or RNG",
    reference="PR-7 quiet micro-loop fast-forward (closed-form replay)",
)
def check_impure_fastforward(src: PySource, ctx) -> Iterator[Finding]:
    """Side-effecting calls inside a ``# hot: pure`` loop.

    The fast-forward loop advances time in closed form from trace
    state; an ABR policy hook or RNG draw inside it would observe or
    perturb state the closed form does not replay, silently diverging
    from the stepped simulation it replaces.
    """
    for node in ast.walk(src.tree):
        if not isinstance(node, (ast.For, ast.While)):
            continue
        if src.hot_mark(node) != "pure":
            continue
        for sub in ast.walk(node):
            if not isinstance(sub, ast.Call):
                continue
            callee = _callee_name(sub.func)
            if callee in _IMPURE_CALLS:
                yield check_impure_fastforward.rule.finding(
                    f"call to {callee}() inside a '# hot: pure' "
                    "fast-forward loop; policy hooks and RNG must run "
                    "in the stepped path, not the closed-form region",
                    src.span(sub),
                    line_text=src.line_text(sub),
                )
