"""Rule registry: stable IDs, severities, categories, references.

Every check the analyzer can perform is a registered :class:`Rule` with

* a stable ID (``HLS-TARGETDURATION``, ``DASH-REP-BANDWIDTH``, ...)
  that CI configs and baselines can rely on across releases,
* a default :class:`~repro.analysis.findings.Severity`,
* a category tying it to what it enforces — RFC 8216 conformance,
  DASH-IF conformance, a paper best practice (Section 4.1), or a
  simulator determinism invariant,
* a ``reference`` naming the RFC clause or paper section, and
* the document *kind* it applies to, so the engine only runs HLS rules
  on playlists, DASH rules on MPDs, and determinism rules on Python.

Rules register themselves via the :func:`rule` decorator; the check
function receives a parsed syntax view plus a :class:`RuleContext` and
yields findings. Severity/enablement can be overridden per run through
:class:`repro.analysis.engine.AnalyzerConfig`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional

from .findings import Finding, Severity


class Category:
    """Rule categories (string constants, not an enum, so configs can
    extend them without touching this module)."""

    RFC8216 = "rfc8216-conformance"
    DASHIF = "dashif-conformance"
    PAPER = "paper-best-practice"
    DETERMINISM = "simulator-determinism"
    UNITS = "units-dimension-flow"
    POOL = "pickle-fork-safety"
    HYGIENE = "lint-hygiene"
    SHARE = "shared-state-safety"
    HOT = "hot-path-discipline"
    SURF = "compatibility-surface"
    POLICY = "player-contract"


class Kind:
    """Document kinds a rule can apply to."""

    HLS_ANY = "hls-any"  # both playlist levels
    HLS_MASTER = "hls-master"
    HLS_MEDIA = "hls-media"
    HLS_PACKAGE = "hls-package"  # master resolved against media playlists
    DASH = "dash"
    PYTHON = "python"


@dataclass(frozen=True)
class Rule:
    """Metadata + check function for one rule."""

    rule_id: str
    severity: Severity
    category: str
    kind: str
    summary: str
    reference: str
    fixable: bool
    check: Callable[..., Iterator[Finding]]

    def finding(self, message: str, span, line_text: str = "") -> Finding:
        """Build a finding carrying this rule's metadata."""
        return Finding(
            rule=self.rule_id,
            severity=self.severity,
            message=message,
            span=span,
            category=self.category,
            line_text=line_text,
            fixable=self.fixable,
        )


class RuleRegistry:
    """All known rules, in registration order (stable output order)."""

    def __init__(self) -> None:
        self._rules: Dict[str, Rule] = {}

    def register(self, rule: Rule) -> None:
        if rule.rule_id in self._rules:
            raise ValueError(f"duplicate rule id {rule.rule_id!r}")
        self._rules[rule.rule_id] = rule

    def get(self, rule_id: str) -> Rule:
        try:
            return self._rules[rule_id]
        except KeyError:
            raise KeyError(f"unknown rule {rule_id!r}") from None

    def __contains__(self, rule_id: str) -> bool:
        return rule_id in self._rules

    def __iter__(self) -> Iterator[Rule]:
        return iter(self._rules.values())

    def __len__(self) -> int:
        return len(self._rules)

    def ids(self) -> List[str]:
        return list(self._rules)

    def for_kind(self, kind: str) -> List[Rule]:
        return [r for r in self._rules.values() if r.kind == kind]

    def by_category(self, category: str) -> List[Rule]:
        return [r for r in self._rules.values() if r.category == category]


#: The process-wide registry. Importing :mod:`repro.analysis` populates
#: it with the built-in HLS/DASH/determinism rules.
REGISTRY = RuleRegistry()


def rule(
    rule_id: str,
    severity: Severity,
    category: str,
    kind: str,
    summary: str,
    reference: str,
    fixable: bool = False,
    registry: Optional[RuleRegistry] = None,
):
    """Decorator registering a check function as a rule.

    The decorated function keeps its original signature; the engine
    looks it up through the registry and calls it with the parsed
    document view and a context object.
    """

    def decorate(check: Callable[..., Iterator[Finding]]):
        entry = Rule(
            rule_id=rule_id,
            severity=severity,
            category=category,
            kind=kind,
            summary=summary,
            reference=reference,
            fixable=fixable,
            check=check,
        )
        (registry or REGISTRY).register(entry)
        check.rule = entry  # type: ignore[attr-defined]
        return check

    return decorate
