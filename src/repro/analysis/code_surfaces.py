"""Compatibility-surface extraction and the ``SURF-*`` drift rules.

The repo has four externally observable surfaces whose silent drift has
historically been the most expensive class of bug:

* **spec keys** — the field set and canonical-JSON key layout of every
  dataclass feeding a sha256 ``key()`` (``SimulationJob``,
  ``CohortJob`` and the spec dataclasses they transitively embed).
  Adding, removing, renaming or re-annotating a field changes every
  content-addressed cache key without any test noticing.
* **event log** — the :class:`~repro.replay.events.EventKind` registry,
  the ``*_META_FIELDS`` tier routing and the
  ``EVENT_SCHEMA_VERSION`` reader ceiling. Recorded logs outlive the
  writer that produced them.
* **framing** — the on-disk magics and struct formats in
  :mod:`repro.framing`. These are *forever*: bytes already written to
  disk do not migrate.
* **CLI grammar** — the ``repro-abr`` subcommand/flag surface scripts
  and CI pipelines depend on.

Each surface is extracted from source into a canonical JSON snapshot
committed under ``surfaces/``. The ``SURF-*`` rules re-extract on every
lint run and fire on any mismatch; ``repro-abr lint --update-surfaces``
regenerates the snapshots once a change is *deliberate*. The
bump-vs-refresh decision is intentionally **not** auto-fixable — only a
human can decide whether a drift is a semantic change (bump the
governing ``*_SCHEMA_VERSION``, then refresh) or a refactor that must
be reverted.

Snapshot comparisons are scoped so that linting a file set that does
not contain the snapshot's recorded module still works (fixtures,
partial lints): a snapshot entry is compared against a document when
the document *is* the recorded module, or when the recorded module is
absent from the run entirely (name-matched fallback). When the
recorded module is in the run, other documents never shadow it.
"""

from __future__ import annotations

import ast
import json
import os
import re
from typing import Dict, List, Mapping, Optional, Set, Tuple

from .code_engine import ClassSummary, ProgramIndex, PySource
from .context import RuleContext
from .findings import Severity
from .registry import Category, Kind, rule

#: Snapshot files, by surface name. ``load_surfaces`` returns a dict
#: keyed by the left column.
SURFACE_FILES = {
    "spec_keys": "spec_keys.json",
    "events": "events.json",
    "framing": "framing.json",
    "cli": "cli.json",
}

_UPDATE_HINT = "refresh with `repro-abr lint --update-surfaces`"
_IDENT_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")


def _norm(path: str) -> str:
    """Normalize a document/module path for snapshot comparison."""
    return os.path.normpath(path).replace(os.sep, "/")


def load_surfaces(directory: str) -> Dict[str, dict]:
    """Load committed snapshots; missing/unreadable files are absent.

    Tolerating a broken file as *missing* keeps a half-written snapshot
    from masking drift findings behind a parse crash — the rules then
    report "no committed snapshot" instead.
    """
    out: Dict[str, dict] = {}
    for name, filename in SURFACE_FILES.items():
        path = os.path.join(directory, filename)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
        except (OSError, ValueError):
            continue
        if isinstance(data, dict):
            out[name] = data
    return out


# ---------------------------------------------------------------------------
# Spec-key closure (whole-program, from the index)
# ---------------------------------------------------------------------------


def keyed_spec_closure(program: ProgramIndex) -> Dict[str, ClassSummary]:
    """Dataclasses whose layout feeds a content-addressed ``key()``.

    Roots are dataclasses defining ``key()``; the closure follows field
    *annotations* through the program index (``Optional[FailureSpec]``
    reaches ``FailureSpec``), so a nested spec edited three modules
    away from ``SimulationJob`` still counts as key-churn.
    """
    cached = getattr(program, "_surf_keyed_closure", None)
    if cached is not None:
        return cached
    classes = {
        name: summary
        for name, summary in program.classes.items()
        if summary is not None and summary.is_dataclass
    }
    pending = sorted(
        name for name, summary in classes.items() if summary.has_key
    )
    closure: Dict[str, ClassSummary] = {}
    while pending:
        name = pending.pop(0)
        if name in closure:
            continue
        summary = classes[name]
        closure[name] = summary
        referenced: Set[str] = set()
        for _field, annotation in summary.fields:
            referenced.update(_IDENT_RE.findall(annotation))
        pending.extend(
            sorted(ref for ref in referenced if ref in classes)
        )
    program._surf_keyed_closure = closure  # type: ignore[attr-defined]
    return closure


def _spec_snapshot(program: ProgramIndex) -> dict:
    closure = keyed_spec_closure(program)
    modules = {_norm(summary.module) for summary in closure.values()}
    versions: Dict[str, dict] = {}
    for module, constants in sorted(program.schema_versions.items()):
        if _norm(module) not in modules:
            continue
        for name, value in constants:
            versions[name] = {"value": value, "module": _norm(module)}
    entries: Dict[str, dict] = {}
    for name in sorted(closure):
        summary = closure[name]
        module = _norm(summary.module)
        governing = sorted(
            vname
            for vname, ventry in versions.items()
            if ventry["module"] == module
        )
        entries[name] = {
            "module": module,
            "fields": [f"{fname}: {ann}" for fname, ann in summary.fields],
            "spec_keys": (
                list(summary.spec_dict_keys)
                if summary.spec_dict_keys is not None
                else None
            ),
            "versions": governing,
        }
    return {"surface": "spec-keys", "versions": versions, "classes": entries}


# ---------------------------------------------------------------------------
# Per-document extraction: events / framing / CLI grammar
# ---------------------------------------------------------------------------


class EventsSurface:
    """Extracted event-log surface of one document (+ anchor nodes)."""

    def __init__(self) -> None:
        self.kinds: Dict[str, str] = {}
        self.schema_version: Optional[int] = None
        self.base_version: Optional[int] = None
        self.meta_fields: Dict[str, List[str]] = {}
        self.writer_max: Optional[int] = None
        self.class_node: Optional[ast.ClassDef] = None
        self.version_node: Optional[ast.AST] = None
        self.writer_max_node: Optional[ast.AST] = None

    def snapshot(self, module: str) -> dict:
        return {
            "surface": "events",
            "module": _norm(module),
            "schema_version": self.schema_version,
            "base_version": self.base_version,
            "writer_max": self.writer_max,
            "kinds": dict(sorted(self.kinds.items())),
            "meta_fields": {
                name: list(fields)
                for name, fields in sorted(self.meta_fields.items())
            },
        }


def _str_sequence(node: ast.AST) -> Optional[List[str]]:
    if not isinstance(node, (ast.Tuple, ast.List)):
        return None
    items: List[str] = []
    for element in node.elts:
        if not (
            isinstance(element, ast.Constant)
            and isinstance(element.value, str)
        ):
            return None
        items.append(element.value)
    return items


def extract_events(src: PySource) -> Optional[EventsSurface]:
    """The event-log surface, or None when the document has none.

    A document is an event-log domain when it defines both a class
    named ``EventKind`` with string members and an
    ``EVENT_SCHEMA_VERSION`` integer constant.
    """
    surface = EventsSurface()
    int_constants: Dict[str, int] = {}
    for stmt in src.tree.body:
        if isinstance(stmt, ast.ClassDef) and stmt.name == "EventKind":
            surface.class_node = stmt
            for inner in stmt.body:
                if (
                    isinstance(inner, ast.Assign)
                    and len(inner.targets) == 1
                    and isinstance(inner.targets[0], ast.Name)
                    and isinstance(inner.value, ast.Constant)
                    and isinstance(inner.value.value, str)
                ):
                    surface.kinds[inner.targets[0].id] = inner.value.value
        elif isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target = stmt.targets[0]
            if not isinstance(target, ast.Name):
                continue
            value = stmt.value
            if isinstance(value, ast.Constant) and isinstance(
                value.value, int
            ) and not isinstance(value.value, bool):
                int_constants[target.id] = value.value
                if target.id == "EVENT_SCHEMA_VERSION":
                    surface.schema_version = value.value
                    surface.version_node = stmt
                elif target.id == "EVENT_SCHEMA_BASE_VERSION":
                    surface.base_version = value.value
            elif target.id.endswith("_META_FIELDS"):
                fields = _str_sequence(value)
                if fields is not None:
                    surface.meta_fields[target.id] = fields
    if not surface.kinds or surface.schema_version is None:
        return None
    for stmt in src.tree.body:
        if (
            isinstance(stmt, ast.FunctionDef)
            and stmt.name == "schema_for_meta"
        ):
            for node in ast.walk(stmt):
                if not isinstance(node, ast.Return) or node.value is None:
                    continue
                returned: Optional[int] = None
                if isinstance(node.value, ast.Constant) and isinstance(
                    node.value.value, int
                ):
                    returned = node.value.value
                elif isinstance(node.value, ast.Name):
                    returned = int_constants.get(node.value.id)
                if returned is None:
                    continue
                if surface.writer_max is None or returned > surface.writer_max:
                    surface.writer_max = returned
                    surface.writer_max_node = node
    return surface


class FramingSurface:
    """Extracted framing constants of one document (+ anchor nodes)."""

    def __init__(self) -> None:
        self.magics: Dict[str, str] = {}  # name -> hex bytes
        self.structs: Dict[str, str] = {}  # name -> format string
        self.nodes: Dict[str, ast.AST] = {}

    def snapshot(self, module: str) -> dict:
        return {
            "surface": "framing",
            "module": _norm(module),
            "magics": dict(sorted(self.magics.items())),
            "structs": dict(sorted(self.structs.items())),
        }


def extract_framing(src: PySource) -> Optional[FramingSurface]:
    """Framing surface: ``*_MAGIC`` bytes + ``struct.Struct`` formats."""
    surface = FramingSurface()
    for stmt in src.tree.body:
        if not (
            isinstance(stmt, ast.Assign)
            and len(stmt.targets) == 1
            and isinstance(stmt.targets[0], ast.Name)
        ):
            continue
        name = stmt.targets[0].id
        value = stmt.value
        if (
            name.endswith("_MAGIC")
            and isinstance(value, ast.Constant)
            and isinstance(value.value, bytes)
        ):
            surface.magics[name] = value.value.hex()
            surface.nodes[name] = stmt
        elif isinstance(value, ast.Call):
            func = value.func
            is_struct = (
                isinstance(func, ast.Attribute) and func.attr == "Struct"
            ) or (isinstance(func, ast.Name) and func.id == "Struct")
            if (
                is_struct
                and value.args
                and isinstance(value.args[0], ast.Constant)
                and isinstance(value.args[0].value, str)
            ):
                surface.structs[name] = value.args[0].value
                surface.nodes[name] = stmt
    if not surface.magics:
        return None
    return surface


class CliSurface:
    """Extracted ``repro-abr`` subcommand/flag grammar (+ anchors)."""

    def __init__(self) -> None:
        #: subcommand -> {argument name -> record}
        self.subcommands: Dict[str, Dict[str, dict]] = {}
        self.command_nodes: Dict[str, ast.AST] = {}
        self.argument_nodes: Dict[Tuple[str, str], ast.AST] = {}

    def snapshot(self, module: str) -> dict:
        return {
            "surface": "cli",
            "module": _norm(module),
            "subcommands": {
                command: {
                    "arguments": dict(sorted(arguments.items()))
                }
                for command, arguments in sorted(self.subcommands.items())
            },
        }


def _constant_value(node: ast.AST):
    """JSON-safe constant value, or the marker ``"<expr>"``."""
    if isinstance(node, ast.Constant) and isinstance(
        node.value, (str, int, float, bool, type(None))
    ):
        return node.value
    return "<expr>"


def _argument_record(call: ast.Call) -> Optional[Tuple[str, dict]]:
    names = [
        arg.value
        for arg in call.args
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str)
    ]
    if not names:
        return None
    record: dict = {}
    if len(names) > 1:
        record["aliases"] = names[1:]
    for keyword in call.keywords:
        if keyword.arg == "choices":
            record["choices"] = _str_sequence(keyword.value)
        elif keyword.arg == "default":
            record["default"] = _constant_value(keyword.value)
        elif keyword.arg == "action":
            record["action"] = _constant_value(keyword.value)
        elif keyword.arg == "nargs":
            record["nargs"] = _constant_value(keyword.value)
        elif keyword.arg == "type" and isinstance(keyword.value, ast.Name):
            record["type"] = keyword.value.id
    return names[0], record


def extract_cli(src: PySource) -> Optional[CliSurface]:
    """CLI grammar: ``add_parser``/``add_argument`` calls, including
    flags attached through helper functions (``add_runner_flags``)."""
    surface = CliSurface()
    var_to_command: Dict[str, str] = {}
    # Pass 1: subcommands (assigned or bare add_parser calls).
    for node in ast.walk(src.tree):
        call = None
        var = None
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            if isinstance(node.targets[0], ast.Name) and isinstance(
                node.value, ast.Call
            ):
                call = node.value
                var = node.targets[0].id
        elif isinstance(node, ast.Call):
            call = node
        if call is None or not (
            isinstance(call.func, ast.Attribute)
            and call.func.attr == "add_parser"
            and call.args
            and isinstance(call.args[0], ast.Constant)
            and isinstance(call.args[0].value, str)
        ):
            continue
        command = call.args[0].value
        surface.subcommands.setdefault(command, {})
        surface.command_nodes.setdefault(command, call)
        if var is not None:
            var_to_command[var] = command
    if not surface.subcommands:
        return None
    # Pass 2: helper functions whose first parameter receives
    # add_argument calls (e.g. ``def add_runner_flags(parser): ...``).
    helpers: Dict[str, List[Tuple[str, dict, ast.AST]]] = {}
    for node in ast.walk(src.tree):
        if not isinstance(node, ast.FunctionDef) or not node.args.args:
            continue
        param = node.args.args[0].arg
        records: List[Tuple[str, dict, ast.AST]] = []
        for inner in ast.walk(node):
            if (
                isinstance(inner, ast.Call)
                and isinstance(inner.func, ast.Attribute)
                and inner.func.attr == "add_argument"
                and isinstance(inner.func.value, ast.Name)
                and inner.func.value.id == param
            ):
                entry = _argument_record(inner)
                if entry is not None:
                    records.append((entry[0], entry[1], inner))
        if records:
            helpers[node.name] = records
    # Pass 3: direct add_argument calls on subcommand variables, and
    # helper invocations ``add_runner_flags(run_parser)``.
    for node in ast.walk(src.tree):
        if not isinstance(node, ast.Call):
            continue
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "add_argument"
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id in var_to_command
        ):
            command = var_to_command[node.func.value.id]
            entry = _argument_record(node)
            if entry is not None:
                surface.subcommands[command][entry[0]] = entry[1]
                surface.argument_nodes[(command, entry[0])] = node
        elif (
            isinstance(node.func, ast.Name)
            and node.func.id in helpers
            and node.args
            and isinstance(node.args[0], ast.Name)
            and node.args[0].id in var_to_command
        ):
            command = var_to_command[node.args[0].id]
            for arg_name, record, anchor in helpers[node.func.id]:
                surface.subcommands[command][arg_name] = dict(record)
                surface.argument_nodes[(command, arg_name)] = anchor
    return surface


# ---------------------------------------------------------------------------
# Snapshot writing (the ``--update-surfaces`` path)
# ---------------------------------------------------------------------------


def build_snapshots(
    sources: Mapping[str, PySource], program: Optional[ProgramIndex]
) -> Dict[str, dict]:
    """Extract every surface present in the given sources.

    When several documents define the same domain the lexically first
    one wins, keeping the output deterministic.
    """
    snapshots: Dict[str, dict] = {}
    if program is not None and keyed_spec_closure(program):
        snapshots["spec_keys"] = _spec_snapshot(program)
    for name in sorted(sources):
        src = sources[name]
        if "events" not in snapshots:
            events = extract_events(src)
            if events is not None:
                snapshots["events"] = events.snapshot(name)
        if "framing" not in snapshots:
            framing = extract_framing(src)
            if framing is not None:
                snapshots["framing"] = framing.snapshot(name)
        if "cli" not in snapshots:
            cli = extract_cli(src)
            if cli is not None:
                snapshots["cli"] = cli.snapshot(name)
    return snapshots


def write_surfaces(
    directory: str,
    sources: Mapping[str, PySource],
    program: Optional[ProgramIndex],
) -> List[str]:
    """Write canonical snapshot JSON; returns the filenames written.

    Output is byte-deterministic (sorted keys, two-space indent,
    trailing newline), so re-running on an unchanged tree is a no-op
    and snapshots diff cleanly in review.
    """
    snapshots = build_snapshots(sources, program)
    os.makedirs(directory, exist_ok=True)
    written: List[str] = []
    for name in sorted(snapshots):
        path = os.path.join(directory, SURFACE_FILES[name])
        payload = (
            json.dumps(snapshots[name], indent=2, sort_keys=True) + "\n"
        )
        existing: Optional[str] = None
        try:
            with open(path, "r", encoding="utf-8") as handle:
                existing = handle.read()
        except OSError:
            pass
        if existing != payload:
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(payload)
        written.append(SURFACE_FILES[name])
    return written


# ---------------------------------------------------------------------------
# Comparison helpers shared by the rules
# ---------------------------------------------------------------------------


def _run_docs(ctx: RuleContext) -> Set[str]:
    return {_norm(name) for name in ctx.documents}


def _snapshot_for(
    ctx: RuleContext, surface: str, doc_name: str
) -> Tuple[Optional[dict], bool]:
    """(snapshot, applicable): the snapshot to compare this doc against.

    Not applicable when the snapshot's recorded module is a *different*
    document of the same run — the recorded module's own lint pass does
    the comparison, so partial lints and fixtures never double-report.
    """
    if ctx.surfaces is None:
        return None, False
    snap = ctx.surfaces.get(surface)
    if snap is None:
        return None, True  # configured but missing: report it
    module = _norm(str(snap.get("module", "")))
    if module and module != doc_name and module in _run_docs(ctx):
        return None, False
    return snap, True


def _diff_names(
    current: Set[str], recorded: Set[str]
) -> Tuple[List[str], List[str]]:
    """(added, removed), sorted."""
    return sorted(current - recorded), sorted(recorded - current)


# ---------------------------------------------------------------------------
# SURF-KEY-CHURN
# ---------------------------------------------------------------------------


def _class_node(src: PySource, name: str) -> Optional[ast.ClassDef]:
    for stmt in src.tree.body:
        if isinstance(stmt, ast.ClassDef) and stmt.name == name:
            return stmt
    return None


def _doc_version_nodes(src: PySource) -> Dict[str, Tuple[int, ast.AST]]:
    out: Dict[str, Tuple[int, ast.AST]] = {}
    for stmt in src.tree.body:
        if (
            isinstance(stmt, ast.Assign)
            and len(stmt.targets) == 1
            and isinstance(stmt.targets[0], ast.Name)
            and stmt.targets[0].id.endswith("_SCHEMA_VERSION")
            and isinstance(stmt.value, ast.Constant)
            and isinstance(stmt.value.value, int)
            and not isinstance(stmt.value.value, bool)
        ):
            out[stmt.targets[0].id] = (stmt.value.value, stmt)
    return out


def _field_drift(current: List[str], recorded: List[str]) -> str:
    cur_names = {entry.split(":", 1)[0] for entry in current}
    rec_names = {entry.split(":", 1)[0] for entry in recorded}
    added, removed = _diff_names(cur_names, rec_names)
    parts = []
    if added:
        parts.append("adds " + ", ".join(added))
    if removed:
        parts.append("removes " + ", ".join(removed))
    if not parts:
        retyped = sorted(
            entry.split(":", 1)[0]
            for entry in set(current) - set(recorded)
        )
        if retyped:
            parts.append("re-annotates " + ", ".join(retyped))
        else:
            parts.append("reorders fields")
    return "; ".join(parts)


@rule(
    "SURF-KEY-CHURN",
    Severity.ERROR,
    Category.SURF,
    Kind.PYTHON,
    summary="keyed spec dataclasses must match the committed surface",
    reference="runner cache contract (PR 2); surfaces/spec_keys.json",
)
def check_key_churn(src: PySource, ctx: RuleContext):
    program = ctx.program
    if program is None:
        return
    closure = keyed_spec_closure(program)
    doc_name = _norm(src.doc.name)
    local = {
        name: summary
        for name, summary in closure.items()
        if _norm(summary.module) == doc_name
    }
    if ctx.surfaces is None:
        return
    snap = ctx.surfaces.get("spec_keys")
    if snap is None:
        if local:
            first = closure[sorted(local)[0]]
            node = _class_node(src, first.name) or src.tree
            yield check_key_churn.rule.finding(
                "no committed spec-keys surface found; content-addressed "
                f"key layouts are unguarded — {_UPDATE_HINT} and commit "
                "surfaces/spec_keys.json",
                src.span(node),
                line_text=src.line_text(node),
            )
        return
    snap_classes = snap.get("classes", {})
    snap_versions = snap.get("versions", {})
    snap_modules = {
        _norm(str(entry.get("module", "")))
        for entry in list(snap_classes.values()) + list(snap_versions.values())
    }
    run_docs = _run_docs(ctx)
    doc_versions = _doc_version_nodes(src)

    for name in sorted(local):
        summary = local[name]
        node = _class_node(src, name)
        if node is None:
            continue
        entry = snap_classes.get(name)
        if entry is None:
            if doc_name in snap_modules:
                yield check_key_churn.rule.finding(
                    f"keyed dataclass {name} is not in the committed "
                    "spec-keys surface; its cache keys are unguarded — "
                    f"{_UPDATE_HINT}",
                    src.span(node),
                    line_text=src.line_text(node),
                )
            continue
        recorded_module = _norm(str(entry.get("module", "")))
        if recorded_module != doc_name and recorded_module in run_docs:
            continue
        current_fields = [f"{n}: {a}" for n, a in summary.fields]
        current_keys = (
            list(summary.spec_dict_keys)
            if summary.spec_dict_keys is not None
            else None
        )
        drifted = []
        if current_fields != list(entry.get("fields", [])):
            drifted.append(
                "field layout "
                + _field_drift(current_fields, list(entry.get("fields", [])))
            )
        if current_keys != entry.get("spec_keys"):
            drifted.append("spec_dict() key layout changed")
        if not drifted:
            continue
        governing = [str(v) for v in entry.get("versions", [])]
        bumped = any(
            vname in doc_versions
            and isinstance(snap_versions.get(vname), dict)
            and doc_versions[vname][0] != snap_versions[vname].get("value")
            for vname in governing
        )
        what = "; ".join(drifted)
        if bumped:
            yield check_key_churn.rule.finding(
                f"{name} drifted from the committed spec-keys surface "
                f"({what}) and its schema version was bumped — "
                f"{_UPDATE_HINT} to record the new layout",
                src.span(node),
                line_text=src.line_text(node),
            )
        else:
            version_hint = (
                " and ".join(governing)
                if governing
                else "the governing *_SCHEMA_VERSION"
            )
            yield check_key_churn.rule.finding(
                f"{name} drifted from the committed spec-keys surface "
                f"({what}); this silently changes every content-addressed "
                f"cache key. If the change is semantic, bump {version_hint} "
                f"then {_UPDATE_HINT}; if not, revert it. The bump-vs-"
                "refresh decision is deliberately not auto-fixable",
                src.span(node),
                line_text=src.line_text(node),
            )

    # Classes the snapshot records in THIS module but that left the
    # keyed closure (renamed, deleted, or lost @dataclass/key()).
    doc_class_names = {
        stmt.name
        for stmt in src.tree.body
        if isinstance(stmt, ast.ClassDef)
    }
    for name in sorted(snap_classes):
        entry = snap_classes[name]
        if _norm(str(entry.get("module", ""))) != doc_name:
            continue
        if name in local:
            continue
        if name in doc_class_names:
            node = _class_node(src, name) or src.tree
            yield check_key_churn.rule.finding(
                f"{name} left the keyed-spec surface (lost its key() "
                "method, dataclass decorator, or reachability from a "
                "keyed root) but surfaces/spec_keys.json still records "
                f"it; {_UPDATE_HINT} if deliberate",
                src.span(node),
                line_text=src.line_text(node),
            )
        else:
            yield check_key_churn.rule.finding(
                f"keyed dataclass {name} recorded in "
                "surfaces/spec_keys.json no longer exists in this module; "
                "existing cache entries keyed by it are orphaned — "
                f"{_UPDATE_HINT} if the removal is deliberate",
                src.span(src.tree),
                line_text=src.doc.line_text(1),
            )

    # Version constants this module owns: a bump without a snapshot
    # refresh (or a deleted constant) is stale-surface drift too.
    for vname in sorted(snap_versions):
        ventry = snap_versions[vname]
        if not isinstance(ventry, dict):
            continue
        if _norm(str(ventry.get("module", ""))) != doc_name:
            continue
        if vname not in doc_versions:
            yield check_key_churn.rule.finding(
                f"schema version constant {vname} recorded in "
                "surfaces/spec_keys.json was removed; keyed specs in this "
                "module lost their version gate",
                src.span(src.tree),
                line_text=src.doc.line_text(1),
            )
            continue
        value, node = doc_versions[vname]
        if value != ventry.get("value"):
            yield check_key_churn.rule.finding(
                f"{vname} is {value} but surfaces/spec_keys.json records "
                f"{ventry.get('value')}; once the accompanying layout "
                f"change is deliberate, {_UPDATE_HINT}",
                src.span(node),
                line_text=src.line_text(node),
            )


# ---------------------------------------------------------------------------
# SURF-EVENT-DRIFT and SURF-READER-CEILING
# ---------------------------------------------------------------------------


@rule(
    "SURF-EVENT-DRIFT",
    Severity.ERROR,
    Category.SURF,
    Kind.PYTHON,
    summary="event-log schema must match the committed surface",
    reference="repro.replay versioning policy; surfaces/events.json",
)
def check_event_drift(src: PySource, ctx: RuleContext):
    surface = extract_events(src)
    if surface is None:
        return
    doc_name = _norm(src.doc.name)
    snap, applicable = _snapshot_for(ctx, "events", doc_name)
    if not applicable:
        return
    anchor = surface.class_node or src.tree
    if snap is None:
        yield check_event_drift.rule.finding(
            "no committed event-log surface found; recorded logs are "
            f"unguarded against schema drift — {_UPDATE_HINT} and commit "
            "surfaces/events.json",
            src.span(anchor),
            line_text=src.line_text(anchor),
        )
        return
    recorded_kinds = {
        str(k): str(v) for k, v in (snap.get("kinds") or {}).items()
    }
    added, removed = _diff_names(
        set(surface.kinds), set(recorded_kinds)
    )
    changed = sorted(
        name
        for name in set(surface.kinds) & set(recorded_kinds)
        if surface.kinds[name] != recorded_kinds[name]
    )
    if removed or changed:
        details = []
        if removed:
            details.append("removed " + ", ".join(removed))
        if changed:
            details.append("re-valued " + ", ".join(changed))
        yield check_event_drift.rule.finding(
            "event kinds " + "; ".join(details) + " vs the committed "
            "surface; recorded logs on disk still carry the old kinds — "
            "this is a breaking schema change: bump EVENT_SCHEMA_VERSION, "
            f"keep readers accepting the old kinds, then {_UPDATE_HINT}",
            src.span(anchor),
            line_text=src.line_text(anchor),
        )
    elif added:
        yield check_event_drift.rule.finding(
            "new event kind(s) " + ", ".join(added) + " are not in the "
            "committed surface; per the versioning policy additions are "
            f"backward compatible (no version bump) — {_UPDATE_HINT} to "
            "record them",
            src.span(anchor),
            line_text=src.line_text(anchor),
        )
    recorded_meta = {
        str(k): [str(x) for x in v]
        for k, v in (snap.get("meta_fields") or {}).items()
    }
    if surface.meta_fields != recorded_meta:
        yield check_event_drift.rule.finding(
            "meta-field tier routing changed vs the committed surface "
            f"({', '.join(sorted(set(surface.meta_fields) | set(recorded_meta)))}); "
            "schema_for_meta assigns versions from these tuples, so old "
            "logs may now parse under the wrong schema tier — bump the "
            f"schema version if semantics changed, then {_UPDATE_HINT}",
            src.span(anchor),
            line_text=src.line_text(anchor),
        )
    for attr, label in (
        ("schema_version", "EVENT_SCHEMA_VERSION"),
        ("base_version", "EVENT_SCHEMA_BASE_VERSION"),
    ):
        current = getattr(surface, attr)
        recorded = snap.get(attr)
        if recorded is not None and current != recorded:
            node = surface.version_node or anchor
            yield check_event_drift.rule.finding(
                f"{label} is {current} but the committed surface records "
                f"{recorded}; once the accompanying schema change is "
                f"deliberate, {_UPDATE_HINT}",
                src.span(node),
                line_text=src.line_text(node),
            )


@rule(
    "SURF-READER-CEILING",
    Severity.ERROR,
    Category.SURF,
    Kind.PYTHON,
    summary="writers must never emit past the reader version ceiling",
    reference="repro.replay versioning policy (PR 4)",
)
def check_reader_ceiling(src: PySource, ctx: RuleContext):
    surface = extract_events(src)
    if surface is None:
        return
    if (
        surface.writer_max is not None
        and surface.schema_version is not None
        and surface.writer_max > surface.schema_version
    ):
        node = surface.writer_max_node or surface.class_node or src.tree
        yield check_reader_ceiling.rule.finding(
            f"schema_for_meta can stamp v{surface.writer_max} events but "
            f"EVENT_SCHEMA_VERSION (the reader ceiling) is "
            f"v{surface.schema_version}; readers will refuse logs this "
            "writer just produced — raise EVENT_SCHEMA_VERSION in the "
            "same change that adds the new tier",
            src.span(node),
            line_text=src.line_text(node),
        )


# ---------------------------------------------------------------------------
# SURF-FRAMING-CONST
# ---------------------------------------------------------------------------


@rule(
    "SURF-FRAMING-CONST",
    Severity.ERROR,
    Category.SURF,
    Kind.PYTHON,
    summary="on-disk framing constants are forever",
    reference="repro.framing (PR 4); surfaces/framing.json",
)
def check_framing_const(src: PySource, ctx: RuleContext):
    surface = extract_framing(src)
    if surface is None:
        return
    doc_name = _norm(src.doc.name)
    snap, applicable = _snapshot_for(ctx, "framing", doc_name)
    if not applicable:
        return
    first_magic = sorted(surface.magics)[0]
    default_anchor = surface.nodes.get(first_magic, src.tree)
    if snap is None:
        yield check_framing_const.rule.finding(
            "no committed framing surface found; on-disk magics are "
            f"unguarded — {_UPDATE_HINT} and commit surfaces/framing.json",
            src.span(default_anchor),
            line_text=src.line_text(default_anchor),
        )
        return
    for kind, current, recorded in (
        ("magic", surface.magics, snap.get("magics") or {}),
        ("struct format", surface.structs, snap.get("structs") or {}),
    ):
        recorded = {str(k): str(v) for k, v in recorded.items()}
        for name in sorted(set(current) | set(recorded)):
            node = surface.nodes.get(name, default_anchor)
            if name not in recorded:
                if _norm(str(snap.get("module", ""))) == doc_name:
                    yield check_framing_const.rule.finding(
                        f"new framing {kind} {name} is not in the "
                        "committed surface; new on-disk formats must be "
                        f"recorded — {_UPDATE_HINT}",
                        src.span(node),
                        line_text=src.line_text(node),
                    )
            elif name not in current:
                yield check_framing_const.rule.finding(
                    f"framing {kind} {name} recorded in "
                    "surfaces/framing.json was removed; files already on "
                    "disk still use it — keep decoding the old format or "
                    "document the compatibility break, then "
                    f"{_UPDATE_HINT}",
                    src.span(default_anchor),
                    line_text=src.line_text(default_anchor),
                )
            elif current[name] != recorded[name]:
                yield check_framing_const.rule.finding(
                    f"framing {kind} {name} changed "
                    f"({recorded[name]!r} -> {current[name]!r}); bytes "
                    "already written to disk do not migrate — revert, or "
                    "introduce a NEW versioned constant alongside and "
                    "keep decoding the old one; refresh the snapshot "
                    "only with a deliberate compatibility story",
                    src.span(node),
                    line_text=src.line_text(node),
                )


# ---------------------------------------------------------------------------
# SURF-CLI-DRIFT
# ---------------------------------------------------------------------------

_SURFACE_ARG_KEYS = ("aliases", "choices", "default", "action", "nargs", "type")


@rule(
    "SURF-CLI-DRIFT",
    Severity.ERROR,
    Category.SURF,
    Kind.PYTHON,
    summary="the repro-abr CLI grammar must match the committed surface",
    reference="surfaces/cli.json; PR-3 manifest-lint deprecation window",
)
def check_cli_drift(src: PySource, ctx: RuleContext):
    surface = extract_cli(src)
    if surface is None:
        return
    doc_name = _norm(src.doc.name)
    # Snapshot-independent contract: the retired repro.manifest.validate
    # entry points promised `lint --format dash|hls` keeps parsing for a
    # release after their removal.
    lint_args = surface.subcommands.get("lint")
    if lint_args and "--format" in lint_args:
        choices = lint_args["--format"].get("choices")
        if choices is not None and not {"dash", "hls"} <= set(choices):
            node = surface.argument_nodes.get(("lint", "--format"), src.tree)
            yield check_cli_drift.rule.finding(
                "lint --format dropped the deprecated 'dash'/'hls' "
                "aliases; the repro.manifest.validate retirement promised "
                "they keep parsing (mapped to text) for one more release "
                "— restore the aliases",
                src.span(node),
                line_text=src.line_text(node),
            )
    snap, applicable = _snapshot_for(ctx, "cli", doc_name)
    if not applicable:
        return
    if snap is None:
        first = sorted(surface.subcommands)[0]
        node = surface.command_nodes.get(first, src.tree)
        yield check_cli_drift.rule.finding(
            "no committed CLI surface found; the repro-abr flag grammar "
            f"is unguarded against drift — {_UPDATE_HINT} and commit "
            "surfaces/cli.json",
            src.span(node),
            line_text=src.line_text(node),
        )
        return
    recorded_subs = snap.get("subcommands") or {}
    added, removed = _diff_names(
        set(surface.subcommands), set(recorded_subs)
    )
    is_snap_module = _norm(str(snap.get("module", ""))) == doc_name
    if added:
        first = added[0]
        node = surface.command_nodes.get(first, src.tree)
        yield check_cli_drift.rule.finding(
            "new subcommand(s) " + ", ".join(added) + " are not in the "
            f"committed CLI surface; {_UPDATE_HINT} to record them",
            src.span(node),
            line_text=src.line_text(node),
        )
    if removed and is_snap_module:
        yield check_cli_drift.rule.finding(
            "subcommand(s) " + ", ".join(removed) + " recorded in "
            "surfaces/cli.json no longer exist; scripts invoking them "
            f"break — restore them or {_UPDATE_HINT} if the removal is "
            "deliberate",
            src.span(src.tree),
            line_text=src.doc.line_text(1),
        )
    for command in sorted(set(surface.subcommands) & set(recorded_subs)):
        current_args = surface.subcommands[command]
        recorded_args = (recorded_subs[command] or {}).get("arguments") or {}
        arg_added, arg_removed = _diff_names(
            set(current_args), set(recorded_args)
        )
        arg_changed = sorted(
            name
            for name in set(current_args) & set(recorded_args)
            if any(
                current_args[name].get(key) != recorded_args[name].get(key)
                for key in _SURFACE_ARG_KEYS
            )
        )
        details = []
        if arg_removed:
            details.append("removed " + ", ".join(arg_removed))
        if arg_changed:
            details.append(
                "changed choices/default/type of " + ", ".join(arg_changed)
            )
        if details:
            anchor_name = (arg_changed or [command])[0]
            node = surface.argument_nodes.get(
                (command, anchor_name),
                surface.command_nodes.get(command, src.tree),
            )
            yield check_cli_drift.rule.finding(
                f"`repro-abr {command}` grammar drifted from the "
                "committed surface: " + "; ".join(details) + "; removing "
                "or re-typing flags breaks scripts and CI pipelines — "
                f"restore them or {_UPDATE_HINT} if deliberate",
                src.span(node),
                line_text=src.line_text(node),
            )
        elif arg_added:
            node = surface.argument_nodes.get(
                (command, arg_added[0]),
                surface.command_nodes.get(command, src.tree),
            )
            yield check_cli_drift.rule.finding(
                f"`repro-abr {command}` grew flag(s) "
                + ", ".join(arg_added)
                + " not in the committed surface; additions are "
                f"compatible but must be recorded — {_UPDATE_HINT}",
                src.span(node),
                line_text=src.line_text(node),
            )
