"""Shared rule context: the documents of one analysis run.

Cross-manifest rules (a master playlist resolved against its media
playlists) need to see the whole file set, not just the document they
fire on. :class:`RuleContext` carries every document and scanned view
of the run plus the active configuration, and implements the URI
resolution conventions the packager uses:

* an ``EXT-X-MEDIA`` rendition's ``URI`` names its media playlist
  directly (``A1.m3u8``);
* a variant URI ``V2_A1.m3u8`` resolves to the *video* media playlist
  ``V2.m3u8`` (the packager keeps muxed-style variant names for
  readability while media playlists are per-track).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, TYPE_CHECKING

from .hls_syntax import ScannedPlaylist
from .spans import Document

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .code_engine import ProgramIndex
    from .engine import AnalyzerConfig


@dataclass
class RuleContext:
    """Everything a rule may look at beyond its own document."""

    documents: Dict[str, Document] = field(default_factory=dict)
    playlists: Dict[str, ScannedPlaylist] = field(default_factory=dict)
    config: Optional["AnalyzerConfig"] = None
    #: Whole-program index over the run's Python documents (call graph,
    #: function/class summaries); None for manifest-only runs.
    program: Optional["ProgramIndex"] = None
    #: Committed compatibility-surface snapshots loaded from
    #: ``AnalyzerConfig.surfaces_dir`` (``{surface name: parsed JSON}``);
    #: None when no snapshot directory is configured — the ``SURF-*``
    #: drift rules then skip their snapshot comparisons.
    surfaces: Optional[Dict[str, dict]] = None

    @property
    def media_playlists(self) -> Dict[str, ScannedPlaylist]:
        """Scanned media playlists of the run, by document name."""
        return {
            name: scanned
            for name, scanned in self.playlists.items()
            if scanned.is_media
        }

    def _lookup(self, uri: str) -> Optional[ScannedPlaylist]:
        if uri in self.playlists:
            return self.playlists[uri]
        # Tolerate path prefixes: match on basename.
        base = uri.rsplit("/", 1)[-1]
        if base != uri and base in self.playlists:
            return self.playlists[base]
        return None

    def resolve_rendition(self, uri: str) -> Optional[ScannedPlaylist]:
        """The media playlist a rendition URI names, if present."""
        scanned = self._lookup(uri)
        if scanned is not None and scanned.is_media:
            return scanned
        return None

    def resolve_variant_video(self, uri: str) -> Optional[ScannedPlaylist]:
        """The video media playlist behind a variant URI.

        Tries the exact URI first, then the packager convention
        ``<video>_<audio>.m3u8 -> <video>.m3u8``.
        """
        scanned = self._lookup(uri)
        if scanned is not None and scanned.is_media:
            return scanned
        stem = uri.rsplit("/", 1)[-1]
        if stem.endswith(".m3u8"):
            stem = stem[: -len(".m3u8")]
        if "_" in stem:
            video_id = stem.split("_", 1)[0]
            if video_id:
                return self.resolve_rendition(f"{video_id}.m3u8")
        return None

    @property
    def has_media_playlists(self) -> bool:
        """True when the run includes any media playlist.

        Cross-manifest rules only fire in package mode — linting a
        master in isolation must not report every reference missing.
        """
        return any(s.is_media for s in self.playlists.values())
