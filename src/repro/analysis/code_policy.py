"""``POLICY-*`` rules: the player/replay kernel contract.

Every :class:`~repro.players.base.BasePlayer` subclass runs inside the
session kernel's record/replay and fast-forward machinery. That
machinery is only sound if players keep a narrow contract:

* ``choose_next`` returns *interned* decision objects
  (:func:`repro.sim.decisions.download_for`, ``WAIT_FOREVER``) — the
  fast-forward kernel and the replay differ compare decisions by
  identity-stable canonical values, and fresh ``Download(...)``
  construction defeats the intern cache on the hottest call path.
* player methods never consult ambient nondeterminism (wall clock,
  process-global RNG) — directly *or through helper functions*. The
  direct case is ``DET-WALLCLOCK`` / ``DET-UNSEEDED-RANDOM``'s job;
  ``POLICY-NONDETERMINISM`` closes the same facts over the call graph
  so a helper three calls away still convicts the player.
* state mutation is confined to the declared lifecycle hooks. Public
  non-hook methods (``rung_of``, ``choose_variant``, ...) are the
  replay introspection surface — observers call them *between* events,
  and a mutating getter would make replay outcomes depend on observer
  presence.
* a concrete player handles failures: it defines ``on_failure`` or
  ``on_download_failed`` somewhere in its real base chain, or carries
  an explicit ``# policy: inherit-failure`` annotation acknowledging
  that ``BasePlayer``'s silent default is intended.
* overridden hooks keep the base signature's parameter names — the
  kernel and tests call hooks by keyword, and the suffixed names
  (``track_id``, ``medium``) carry the unit/dimension conventions the
  UNIT rules check.

Like the other code rules, findings suppress with the unified
``# lint: allow[POLICY-...]`` grammar.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from .code_engine import ProgramIndex, PySource
from .context import RuleContext
from .findings import Severity
from .registry import Category, Kind, rule

#: The lifecycle hooks BasePlayer declares; mutation is legal only here.
PLAYER_HOOKS = frozenset(
    {
        "__init__",
        "on_session_start",
        "on_session_end",
        "choose_next",
        "on_chunk_start",
        "on_chunk_complete",
        "on_download_failed",
        "on_failure",
        "consider_abort",
    }
)

#: Positional parameter names of every overridable hook, as declared by
#: BasePlayer. ``tests/test_analysis_policy.py`` asserts this table
#: matches ``inspect.signature`` of the real class, so the lint cannot
#: silently drift from the code it polices.
HOOK_SIGNATURES: Dict[str, Tuple[str, ...]] = {
    "on_session_start": ("self", "ctx"),
    "on_session_end": ("self", "ctx"),
    "choose_next": ("self", "medium", "ctx"),
    "on_chunk_start": ("self", "medium", "track_id", "index", "ctx"),
    "on_chunk_complete": ("self", "record", "ctx"),
    "on_download_failed": ("self", "record", "ctx"),
    "on_failure": ("self", "medium", "failure", "ctx"),
    "consider_abort": ("self", "medium", "download", "ctx"),
}

#: Method calls on ``self.<attr>`` that mutate the receiver.
_MUTATOR_NAMES = frozenset(
    {
        "append",
        "extend",
        "insert",
        "add",
        "update",
        "setdefault",
        "pop",
        "popitem",
        "remove",
        "discard",
        "clear",
        "appendleft",
        "popleft",
    }
)

#: The inherit-failure acknowledgement annotation.
INHERIT_FAILURE_MARK = "policy: inherit-failure"


def _base_name(node: ast.expr) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Subscript):  # Generic[...] style bases
        return _base_name(node.value)
    return None


def _bases_of(node: ast.ClassDef) -> List[str]:
    names = []
    for base in node.bases:
        name = _base_name(base)
        if name is not None:
            names.append(name)
    return names


def _player_chain(
    node: ast.ClassDef, program: Optional[ProgramIndex]
) -> Optional[List[str]]:
    """Base-class chain (bare names, BFS order) when the class is a
    BasePlayer subclass; None otherwise.

    Walks the program index across modules; unknown or colliding base
    names end the walk conservatively (the class is then only a player
    if a known path reaches ``BasePlayer``).
    """
    chain: List[str] = []
    seen: Set[str] = {node.name}
    pending = _bases_of(node)
    is_player = False
    while pending:
        name = pending.pop(0)
        if name in seen:
            continue
        seen.add(name)
        if name == "BasePlayer":
            is_player = True
            continue
        chain.append(name)
        if program is not None:
            summary = program.classes.get(name)
            if summary is not None:
                pending.extend(summary.bases)
    return chain if is_player else None


def _methods_of(node: ast.ClassDef) -> Dict[str, ast.FunctionDef]:
    return {
        stmt.name: stmt
        for stmt in node.body
        if isinstance(stmt, ast.FunctionDef)
    }


def _chain_defines(
    chain: List[str],
    method_names: Set[str],
    src: PySource,
    program: Optional[ProgramIndex],
) -> bool:
    """Does any real base in the chain define one of ``method_names``?"""
    local_classes = {
        stmt.name: stmt
        for stmt in src.tree.body
        if isinstance(stmt, ast.ClassDef)
    }
    for base in chain:
        if base in local_classes:
            if method_names & set(_methods_of(local_classes[base])):
                return True
            continue
        if program is not None:
            summary = program.classes.get(base)
            if summary is not None and method_names & set(summary.methods):
                return True
    return False


def _iter_player_classes(
    src: PySource, ctx: RuleContext
) -> Iterator[Tuple[ast.ClassDef, List[str]]]:
    for stmt in src.tree.body:
        if not isinstance(stmt, ast.ClassDef):
            continue
        if stmt.name == "BasePlayer":
            continue
        chain = _player_chain(stmt, ctx.program)
        if chain is not None:
            yield stmt, chain


def _own_returns(func: ast.FunctionDef) -> Iterator[ast.Return]:
    """Return statements of ``func`` itself, not of nested functions."""
    stack: List[ast.AST] = list(func.body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        if isinstance(node, ast.Return):
            yield node
        stack.extend(ast.iter_child_nodes(node))


# ---------------------------------------------------------------------------
# POLICY-DECISION-TYPE
# ---------------------------------------------------------------------------


def _bad_return_reason(value: ast.expr) -> Optional[str]:
    if isinstance(value, ast.Constant):
        return f"the constant {ast.unparse(value)}"
    if isinstance(value, (ast.List, ast.Tuple, ast.Dict, ast.Set)):
        return "a literal container"
    if isinstance(value, (ast.JoinedStr, ast.BinOp, ast.UnaryOp, ast.Compare)):
        return "a computed scalar"
    if isinstance(value, ast.Call) and isinstance(value.func, ast.Name):
        if value.func.id in {"Download", "Wait"}:
            return (
                f"a freshly constructed {value.func.id}(...) — use the "
                "interned decisions (download_for(track_id) / "
                "WAIT_FOREVER) so identical decisions stay "
                "identity-stable and allocation-free"
            )
    return None


@rule(
    "POLICY-DECISION-TYPE",
    Severity.ERROR,
    Category.POLICY,
    Kind.PYTHON,
    summary="choose_next must return interned decision objects",
    reference="repro.sim.decisions intern cache (PR 3); players/base.py",
)
def check_decision_type(src: PySource, ctx: RuleContext):
    for node, _chain in _iter_player_classes(src, ctx):
        methods = _methods_of(node)
        chooser = methods.get("choose_next")
        if chooser is None:
            continue
        for ret in _own_returns(chooser):
            if ret.value is None:
                continue
            reason = _bad_return_reason(ret.value)
            if reason is None:
                continue
            yield check_decision_type.rule.finding(
                f"{node.name}.choose_next returns {reason}; the replay "
                "and fast-forward kernels compare decisions by canonical "
                "interned value, so choose_next must return "
                "download_for(...) / WAIT_FOREVER / buffer_gate(...) "
                "decisions, never raw values",
                src.span(ret),
                line_text=src.line_text(ret),
            )


# ---------------------------------------------------------------------------
# POLICY-NONDETERMINISM
# ---------------------------------------------------------------------------


def _impure_path(
    start_callees: Tuple[str, ...], program: ProgramIndex
) -> Optional[Tuple[str, str]]:
    """(helper name, vice) for the first reachable impure free function.

    Deterministic BFS over bare-name callees; unknown names (no
    summary, or colliding summaries merged to None) are skipped rather
    than guessed at.
    """
    seen: Set[str] = set()
    pending = sorted(set(start_callees))
    while pending:
        name = pending.pop(0)
        if name in seen:
            continue
        seen.add(name)
        summary = program.functions.get(name)
        if summary is None:
            continue
        if summary.wallclock:
            return name, "reads the wall clock"
        if summary.unseeded_random:
            return name, "draws from the process-global RNG"
        pending.extend(sorted(set(summary.callees) - seen))
    return None


@rule(
    "POLICY-NONDETERMINISM",
    Severity.ERROR,
    Category.POLICY,
    Kind.PYTHON,
    summary="player methods must be deterministic, transitively",
    reference="repro.runner cache contract (PR 2); docs/architecture.md",
)
def check_policy_nondeterminism(src: PySource, ctx: RuleContext):
    program = ctx.program
    if program is None:
        return
    for node, _chain in _iter_player_classes(src, ctx):
        for name, method in sorted(_methods_of(node).items()):
            # Direct impure calls are DET-WALLCLOCK /
            # DET-UNSEEDED-RANDOM's job; this rule adds the
            # *transitive* conviction through named callees (free
            # functions and ``self.``-methods, matched bare-name
            # through the index), so the two never report one line
            # twice.
            callees: Set[str] = set()
            for inner in ast.walk(method):
                if not isinstance(inner, ast.Call):
                    continue
                if isinstance(inner.func, ast.Name):
                    callees.add(inner.func.id)
                elif (
                    isinstance(inner.func, ast.Attribute)
                    and isinstance(inner.func.value, ast.Name)
                    and inner.func.value.id == "self"
                ):
                    callees.add(inner.func.attr)
            hit = _impure_path(tuple(sorted(callees)), program)
            if hit is None:
                continue
            helper, vice = hit
            yield check_policy_nondeterminism.rule.finding(
                f"{node.name}.{name} reaches {helper}(), which {vice}; "
                "player decisions must be a pure function of session "
                "state or replayed logs diverge from live runs — thread "
                "seeded randomness / event-loop time through the "
                "session context instead",
                src.span(method),
                line_text=src.line_text(method),
            )


# ---------------------------------------------------------------------------
# POLICY-HOOK-MUTATION
# ---------------------------------------------------------------------------


def _self_mutation(method: ast.FunctionDef) -> Optional[ast.AST]:
    """First statement mutating ``self`` state, or None."""

    def is_self_attr(expr: ast.AST) -> bool:
        if isinstance(expr, ast.Attribute):
            return is_self_attr(expr.value) or (
                isinstance(expr.value, ast.Name) and expr.value.id == "self"
            )
        if isinstance(expr, ast.Subscript):
            return is_self_attr(expr.value)
        return False

    for node in ast.walk(method):
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (
                node.targets
                if isinstance(node, ast.Assign)
                else [node.target]
            )
            for target in targets:
                if is_self_attr(target):
                    return node
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                if is_self_attr(target):
                    return node
        elif isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _MUTATOR_NAMES
                and is_self_attr(func.value)
            ):
                return node
    return None


@rule(
    "POLICY-HOOK-MUTATION",
    Severity.ERROR,
    Category.POLICY,
    Kind.PYTHON,
    summary="players mutate state only inside declared lifecycle hooks",
    reference="repro.sim.session replay soundness (PR 4)",
)
def check_hook_mutation(src: PySource, ctx: RuleContext):
    for node, _chain in _iter_player_classes(src, ctx):
        for name, method in sorted(_methods_of(node).items()):
            if name in PLAYER_HOOKS:
                continue
            if name.startswith("_"):
                continue
            mutation = _self_mutation(method)
            if mutation is None:
                continue
            yield check_hook_mutation.rule.finding(
                f"{node.name}.{name} writes player state outside the "
                "declared lifecycle hooks; public non-hook methods are "
                "the replay introspection surface and must stay "
                "read-only, or replay outcomes depend on whether an "
                "observer happened to call them",
                src.span(mutation),
                line_text=src.line_text(mutation),
            )


# ---------------------------------------------------------------------------
# POLICY-MISSING-FAILURE-HOOK
# ---------------------------------------------------------------------------


def _has_inherit_failure_mark(src: PySource, node: ast.ClassDef) -> bool:
    for line in (node.lineno, node.lineno - 1):
        comment = src.comments.get(line, "")
        if INHERIT_FAILURE_MARK in comment:
            return True
    return False


@rule(
    "POLICY-MISSING-FAILURE-HOOK",
    Severity.ERROR,
    Category.POLICY,
    Kind.PYTHON,
    summary="concrete players must handle (or explicitly inherit) failures",
    reference="players/base.py failure model (PR 6)",
)
def check_missing_failure_hook(src: PySource, ctx: RuleContext):
    failure_hooks = {"on_failure", "on_download_failed"}
    for node, chain in _iter_player_classes(src, ctx):
        methods = _methods_of(node)
        concrete = "choose_next" in methods or _chain_defines(
            chain, {"choose_next"}, src, ctx.program
        )
        if not concrete:
            continue
        if failure_hooks & set(methods):
            continue
        if _chain_defines(chain, failure_hooks, src, ctx.program):
            continue
        if _has_inherit_failure_mark(src, node):
            continue
        yield check_missing_failure_hook.rule.finding(
            f"{node.name} defines choose_next but no failure hook; "
            "BasePlayer's default silently swallows download failures. "
            "Implement on_failure/on_download_failed, or annotate the "
            "class with `# policy: inherit-failure` to record that the "
            "silent default is intended",
            src.span(node),
            line_text=src.line_text(node),
        )


# ---------------------------------------------------------------------------
# POLICY-HOOK-SIGNATURE
# ---------------------------------------------------------------------------


@rule(
    "POLICY-HOOK-SIGNATURE",
    Severity.ERROR,
    Category.POLICY,
    Kind.PYTHON,
    summary="overridden hooks keep BasePlayer's parameter names",
    reference="players/base.py; UNIT suffix conventions (PR 5)",
)
def check_hook_signature(src: PySource, ctx: RuleContext):
    for node, _chain in _iter_player_classes(src, ctx):
        for name, method in sorted(_methods_of(node).items()):
            expected = HOOK_SIGNATURES.get(name)
            if expected is None:
                continue
            actual = tuple(arg.arg for arg in method.args.args)
            if actual == expected:
                continue
            yield check_hook_signature.rule.finding(
                f"{node.name}.{name} signature is "
                f"({', '.join(actual)}) but BasePlayer declares "
                f"({', '.join(expected)}); the kernel and tests call "
                "hooks by keyword, and the suffixed names carry the "
                "unit conventions — keep the base parameter names",
                src.span(method),
                line_text=src.line_text(method),
            )
