"""Whole-program code rules: units/dimension flow and pickle/fork safety.

The paper's failure modes are largely *unit* bugs — aggregate vs
per-track ``BANDWIDTH``, Kbps ladders (Table 1) vs bps estimators, KB
sample filters — and the same silent-conversion class of bug can
corrupt our own sweeps. These rules point the analyzer at ``src/repro``
itself.

**Units/dimension flow (``UNIT-*``)** — every identifier declares a
dimension through its name (``*_kbps``, ``*_bps``, ``*_bits``,
``*_bytes``, ``*_s``, ``*_ms``; tables in :mod:`repro.units`), and the
converters in ``units.py`` declare full signatures. The lint infers a
dimension for every expression — propagating through locals,
converters and name-suffixed calls — and flags the five places two
dimensions can silently collide: additive arithmetic, comparisons,
assignments, argument passing, and return statements. Multiplication
and division intentionally yield *unknown* (they change the unit, and
``duration_ms / 1000`` is a legitimate manual conversion), so the lint
never second-guesses scale factors. The flow is **interprocedural**:
through the run's :class:`~repro.analysis.code_engine.ProgramIndex`,
calls resolve the callee's summarized return dimension (fixed-point
across the call graph) and arguments are checked against parameter
names of functions defined in *other* modules, not just the current
one.

**Pickle/fork safety (``POOL-*``)** — the runner ships job specs to
``ProcessPoolExecutor`` workers by pickle; a spec dataclass (any class
named ``*Spec`` / ``*Job`` by the runner's convention) must be
picklable by construction, worker-executed code must not capture
lambdas or open handles, and module-level mutable state mutated inside
functions diverges silently between forked workers.

**Suppression hygiene (``LINT-*``)** — ``LINT-DEPRECATED-SUPPRESS``
flags the retired ``# det: allow`` grammar (inert since the PR-5
deprecation window closed), and ``LINT-UNUSED-SUPPRESS`` flags
``# lint: allow[...]`` tokens that suppressed nothing this run (the
engine tracks token usage centrally; the rule registered here carries
the metadata and the autofix hook).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, TYPE_CHECKING, Tuple

from .code_engine import (
    PySource,
    ScopeEnv,
    converter_signature,
    dim_of,
    dim_of_identifier,
    iter_scope_expressions,
    iter_scope_statements,
    iter_scopes,
)
from .findings import Finding, Severity
from .registry import Category, Kind, rule

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from .code_engine import ProgramIndex

# -- units/dimension flow ---------------------------------------------------

_COMPARE_OPS = (ast.Lt, ast.LtE, ast.Gt, ast.GtE, ast.Eq, ast.NotEq)

#: (rule_id, message, node) events, computed once per module and shared
#: by the five UNIT rules.
_UnitEvent = Tuple[str, str, ast.AST]


def _module_param_table(tree: ast.Module) -> Dict[str, Optional[List[str]]]:
    """Positional parameter names of every function defined in the
    module (``self``/``cls`` stripped); ``None`` marks a name defined
    twice with different signatures (ambiguous — never checked)."""
    table: Dict[str, Optional[List[str]]] = {}
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        params = [a.arg for a in node.args.posonlyargs + node.args.args]
        if params and params[0] in ("self", "cls"):
            params = params[1:]
        if node.name in table and table[node.name] != params:
            table[node.name] = None
        else:
            table[node.name] = params
    return table


def _mismatch(a: Optional[str], b: Optional[str]) -> bool:
    return a is not None and b is not None and a != b


def _check_call(
    node: ast.Call,
    src: PySource,
    env: ScopeEnv,
    params: Dict[str, Optional[List[str]]],
    events: List[_UnitEvent],
    index: Optional["ProgramIndex"] = None,
) -> None:
    """Argument passing: positional args against known signatures
    (units.py converters, then same-module functions, then any function
    the whole-program index knows), keyword args against the dimension
    their own name declares."""
    imports = src.imports
    signature = converter_signature(node, imports)
    if signature is not None:
        param_dims: List[Optional[str]] = list(signature[0])
        param_names: Optional[List[str]] = None
    else:
        callee = None
        if isinstance(node.func, ast.Name):
            callee = node.func.id
        elif isinstance(node.func, ast.Attribute):
            callee = node.func.attr
        param_names = params.get(callee) if callee else None
        if param_names is None and callee and index is not None:
            # Interprocedural: the callee lives in another module of
            # the run; its (unambiguous) signature comes from the index.
            param_names = index.param_names(callee)
        param_dims = (
            [dim_of_identifier(p) for p in param_names]
            if param_names is not None
            else []
        )
    if not any(isinstance(a, ast.Starred) for a in node.args):
        for i, arg in enumerate(node.args):
            if i >= len(param_dims) or param_dims[i] is None:
                continue
            arg_dim = dim_of(arg, imports, env, index=index)
            if _mismatch(param_dims[i], arg_dim):
                target = (
                    f"parameter {param_names[i]!r}"
                    if param_names
                    else f"parameter {i + 1}"
                )
                events.append(
                    (
                        "UNIT-ARG-MISMATCH",
                        f"argument {i + 1} is {arg_dim} but {target} is "
                        f"{param_dims[i]}",
                        arg,
                    )
                )
    for kw in node.keywords:
        if kw.arg is None:
            continue
        kw_dim = dim_of_identifier(kw.arg)
        arg_dim = dim_of(kw.value, imports, env, index=index)
        if _mismatch(kw_dim, arg_dim):
            events.append(
                (
                    "UNIT-ARG-MISMATCH",
                    f"keyword {kw.arg}= declares {kw_dim} but receives "
                    f"{arg_dim}",
                    kw.value,
                )
            )


def _unit_events(
    src: PySource, index: Optional["ProgramIndex"] = None
) -> List[_UnitEvent]:
    """Run the dimension-flow analysis once per module (memoized on the
    parsed source, so each UNIT rule filters a shared result).

    ``index`` is the run's whole-program index: it resolves return
    dimensions of calls into other modules and the parameter names of
    cross-module callees. A parsed source belongs to exactly one run,
    so memoizing on the source is safe even though the index varies
    between runs.
    """
    cached = getattr(src, "_unit_events", None)
    if cached is not None:
        return cached
    imports = src.imports
    params = _module_param_table(src.tree)
    events: List[_UnitEvent] = []
    for scope, body in iter_scopes(src.tree):
        env = ScopeEnv()
        # Pass 1 — assignments: check writes into dimensioned names,
        # and teach the env the dimension of un-suffixed locals.
        for stmt in iter_scope_statements(body):
            if isinstance(stmt, ast.Assign):
                value_dim = dim_of(stmt.value, imports, env, index=index)
                for target in stmt.targets:
                    for name_node in ast.walk(target):
                        if not isinstance(name_node, ast.Name):
                            continue
                        declared = dim_of_identifier(name_node.id)
                        if _mismatch(declared, value_dim):
                            events.append(
                                (
                                    "UNIT-ASSIGN-MISMATCH",
                                    f"{name_node.id} is {declared} but is "
                                    f"assigned a {value_dim} value",
                                    stmt.value,
                                )
                            )
                        env.record(name_node.id, value_dim)
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                if isinstance(stmt.target, ast.Name):
                    value_dim = dim_of(stmt.value, imports, env, index=index)
                    declared = dim_of_identifier(stmt.target.id)
                    if _mismatch(declared, value_dim):
                        events.append(
                            (
                                "UNIT-ASSIGN-MISMATCH",
                                f"{stmt.target.id} is {declared} but is "
                                f"assigned a {value_dim} value",
                                stmt.value,
                            )
                        )
                    env.record(stmt.target.id, value_dim)
            elif isinstance(stmt, ast.AugAssign) and isinstance(
                stmt.op, (ast.Add, ast.Sub)
            ):
                target_dim = dim_of(stmt.target, imports, env, index=index)
                value_dim = dim_of(stmt.value, imports, env, index=index)
                if _mismatch(target_dim, value_dim):
                    events.append(
                        (
                            "UNIT-MIX-ARITH",
                            f"augmented assignment mixes {target_dim} and "
                            f"{value_dim}",
                            stmt,
                        )
                    )
        # Pass 2 — expressions: additive mixes, comparisons, calls.
        for node in iter_scope_expressions(body):
            if isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.Add, ast.Sub)
            ):
                left = dim_of(node.left, imports, env, index=index)
                right = dim_of(node.right, imports, env, index=index)
                if _mismatch(left, right):
                    op = "+" if isinstance(node.op, ast.Add) else "-"
                    events.append(
                        (
                            "UNIT-MIX-ARITH",
                            f"'{op}' mixes {left} and {right}",
                            node,
                        )
                    )
            elif isinstance(node, ast.Compare):
                operands = [node.left] + list(node.comparators)
                for op, (a, b) in zip(
                    node.ops, zip(operands, operands[1:])
                ):
                    if not isinstance(op, _COMPARE_OPS):
                        continue
                    left = dim_of(a, imports, env, index=index)
                    right = dim_of(b, imports, env, index=index)
                    if _mismatch(left, right):
                        events.append(
                            (
                                "UNIT-MIX-COMPARE",
                                f"comparison mixes {left} and {right}",
                                node,
                            )
                        )
            elif isinstance(node, ast.Call):
                _check_call(node, src, env, params, events, index=index)
        # Pass 3 — returns: a function named for a dimension must
        # return it.
        if isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
            ret_dim = dim_of_identifier(scope.name)
            if ret_dim is not None:
                for stmt in iter_scope_statements(body):
                    if not isinstance(stmt, ast.Return) or stmt.value is None:
                        continue
                    value_dim = dim_of(stmt.value, imports, env, index=index)
                    if _mismatch(ret_dim, value_dim):
                        events.append(
                            (
                                "UNIT-RETURN-MISMATCH",
                                f"{scope.name}() is named {ret_dim} but "
                                f"returns a {value_dim} value",
                                stmt,
                            )
                        )
    src._unit_events = events  # type: ignore[attr-defined]
    return events


def _emit_unit(src: PySource, check, rule_id: str, ctx) -> Iterator[Finding]:
    index = getattr(ctx, "program", None)
    for event_rule, message, node in _unit_events(src, index):
        if event_rule == rule_id:
            yield check.rule.finding(
                f"{message}; convert explicitly with repro.units "
                "(kbps_to_bps, chunk_bits, ...) or rename the identifier",
                src.span(node),
                line_text=src.line_text(node),
            )


@rule(
    "UNIT-MIX-ARITH",
    Severity.ERROR,
    Category.UNITS,
    Kind.PYTHON,
    summary="additive arithmetic must not mix dimensions",
    reference="repro.units conventions; paper Table 1 (Kbps ladder)",
)
def check_unit_mix_arith(src: PySource, ctx) -> Iterator[Finding]:
    return _emit_unit(src, check_unit_mix_arith, "UNIT-MIX-ARITH", ctx)


@rule(
    "UNIT-MIX-COMPARE",
    Severity.ERROR,
    Category.UNITS,
    Kind.PYTHON,
    summary="comparisons must not mix dimensions",
    reference="repro.units conventions; paper §3.3 (16 KB sample filter)",
)
def check_unit_mix_compare(src: PySource, ctx) -> Iterator[Finding]:
    return _emit_unit(src, check_unit_mix_compare, "UNIT-MIX-COMPARE", ctx)


@rule(
    "UNIT-ASSIGN-MISMATCH",
    Severity.ERROR,
    Category.UNITS,
    Kind.PYTHON,
    summary="a dimensioned name must not be assigned another dimension",
    reference="repro.units conventions",
)
def check_unit_assign(src: PySource, ctx) -> Iterator[Finding]:
    return _emit_unit(src, check_unit_assign, "UNIT-ASSIGN-MISMATCH", ctx)


@rule(
    "UNIT-ARG-MISMATCH",
    Severity.ERROR,
    Category.UNITS,
    Kind.PYTHON,
    summary="arguments must match the dimension a parameter declares",
    reference="repro.units CONVERTER_SIGNATURES",
)
def check_unit_arg(src: PySource, ctx) -> Iterator[Finding]:
    return _emit_unit(src, check_unit_arg, "UNIT-ARG-MISMATCH", ctx)


@rule(
    "UNIT-RETURN-MISMATCH",
    Severity.ERROR,
    Category.UNITS,
    Kind.PYTHON,
    summary="a function named for a dimension must return that dimension",
    reference="repro.units conventions",
)
def check_unit_return(src: PySource, ctx) -> Iterator[Finding]:
    return _emit_unit(src, check_unit_return, "UNIT-RETURN-MISMATCH", ctx)


# -- pickle/fork safety -----------------------------------------------------

#: Type names that are never picklable-by-construction when they
#: appear in a spec dataclass field annotation.
_UNPICKLABLE_TYPES = {
    "Callable",
    "IO",
    "TextIO",
    "BinaryIO",
    "Iterator",
    "Generator",
    "Lock",
    "RLock",
    "Condition",
    "Semaphore",
    "Thread",
    "socket",
    "Connection",
}

#: Methods that mutate a list/dict/set/deque in place.
_MUTATOR_METHODS = {
    "append",
    "appendleft",
    "add",
    "update",
    "extend",
    "insert",
    "setdefault",
    "pop",
    "popleft",
    "popitem",
    "remove",
    "discard",
    "clear",
}

_EXECUTOR_SUBMIT_METHODS = {
    "submit",
    "map",
    "imap",
    "imap_unordered",
    "apply_async",
    "starmap",
}


def _decorated_dataclass(node: ast.ClassDef) -> bool:
    for deco in node.decorator_list:
        target = deco.func if isinstance(deco, ast.Call) else deco
        name = None
        if isinstance(target, ast.Name):
            name = target.id
        elif isinstance(target, ast.Attribute):
            name = target.attr
        if name == "dataclass":
            return True
    return False


def _is_spec_class(node: ast.ClassDef) -> bool:
    """The runner's convention: picklable-by-construction job-spec
    dataclasses are named ``*Spec`` or ``*Job``."""
    return node.name.endswith(("Spec", "Job"))


@rule(
    "POOL-UNPICKLABLE-FIELD",
    Severity.ERROR,
    Category.POOL,
    Kind.PYTHON,
    summary="job-spec dataclass fields must be picklable by construction",
    reference="repro.runner.jobs spec contract (PR 2); docs/runner_robustness.md",
)
def check_unpicklable_field(src: PySource, ctx) -> Iterator[Finding]:
    for node in ast.walk(src.tree):
        if not isinstance(node, ast.ClassDef):
            continue
        if not (_decorated_dataclass(node) and _is_spec_class(node)):
            continue
        for stmt in node.body:
            if isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name
            ):
                bad = None
                for ann in ast.walk(stmt.annotation):
                    name = None
                    if isinstance(ann, ast.Name):
                        name = ann.id
                    elif isinstance(ann, ast.Attribute):
                        name = ann.attr
                    if name in _UNPICKLABLE_TYPES:
                        bad = name
                        break
                if bad is not None:
                    yield check_unpicklable_field.rule.finding(
                        f"field {stmt.target.id!r} of spec dataclass "
                        f"{node.name} is annotated {bad}, which cannot "
                        "cross the worker process boundary by pickle; "
                        "store a registry name or an importable "
                        "(module, function) pair instead",
                        src.span(stmt),
                        line_text=src.line_text(stmt),
                    )
                elif isinstance(stmt.value, ast.Lambda):
                    yield check_unpicklable_field.rule.finding(
                        f"field {stmt.target.id!r} of spec dataclass "
                        f"{node.name} defaults to a lambda, which cannot "
                        "be pickled into a worker",
                        src.span(stmt),
                        line_text=src.line_text(stmt),
                    )


@rule(
    "POOL-LAMBDA-SUBMIT",
    Severity.ERROR,
    Category.POOL,
    Kind.PYTHON,
    summary="lambdas and open handles must not be captured into worker jobs",
    reference="repro.runner.engine (ProcessPoolExecutor pickles submissions)",
)
def check_lambda_submit(src: PySource, ctx) -> Iterator[Finding]:
    for node in ast.walk(src.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        is_submit = (
            isinstance(func, ast.Attribute)
            and func.attr in _EXECUTOR_SUBMIT_METHODS
        )
        callee = None
        if isinstance(func, ast.Name):
            callee = func.id
        elif isinstance(func, ast.Attribute):
            callee = func.attr
        is_spec_ctor = callee is not None and callee.endswith(("Spec", "Job"))
        if not (is_submit or is_spec_ctor):
            continue
        where = (
            f"{callee}(...)" if is_spec_ctor and not is_submit else
            f".{func.attr}(...)"
        )
        args = list(node.args) + [kw.value for kw in node.keywords]
        for arg in args:
            if isinstance(arg, ast.Lambda):
                yield check_lambda_submit.rule.finding(
                    f"lambda passed to {where} cannot be pickled into a "
                    "worker process; use a module-level function",
                    src.span(arg),
                    line_text=src.line_text(arg),
                )
            elif (
                isinstance(arg, ast.Call)
                and isinstance(arg.func, ast.Name)
                and arg.func.id == "open"
            ):
                yield check_lambda_submit.rule.finding(
                    f"open file handle passed to {where} cannot be "
                    "pickled into a worker process; pass the path and "
                    "open inside the worker",
                    src.span(arg),
                    line_text=src.line_text(arg),
                )


def _module_level_names(tree: ast.Module) -> Tuple[set, set]:
    """(all module-level assigned names, the mutable-container subset)."""
    assigned, mutable = set(), set()
    mutable_ctors = {
        "dict",
        "list",
        "set",
        "defaultdict",
        "deque",
        "OrderedDict",
        "Counter",
    }
    for stmt in iter_scope_statements(tree.body):
        targets: List[ast.expr] = []
        if isinstance(stmt, ast.Assign):
            targets = stmt.targets
            value = stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets = [stmt.target]
            value = stmt.value
        else:
            continue
        is_mutable = isinstance(
            value, (ast.Dict, ast.List, ast.Set, ast.DictComp, ast.SetComp,
                    ast.ListComp)
        ) or (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Name)
            and value.func.id in mutable_ctors
        )
        for target in targets:
            if isinstance(target, ast.Name):
                assigned.add(target.id)
                if is_mutable:
                    mutable.add(target.id)
    return assigned, mutable


@rule(
    "POOL-GLOBAL-MUTABLE",
    Severity.WARNING,
    Category.POOL,
    Kind.PYTHON,
    summary="module-level mutable state must not be mutated inside functions",
    reference="repro.runner.engine worker model (fork/spawn divergence)",
)
def check_global_mutable(src: PySource, ctx) -> Iterator[Finding]:
    assigned, mutable = _module_level_names(src.tree)
    if not assigned:
        return
    for scope, body in iter_scopes(src.tree):
        if scope is None:
            continue  # module scope mutates its own namespace freely
        declared_global = set()
        for stmt in iter_scope_statements(body):
            if isinstance(stmt, ast.Global):
                declared_global.update(stmt.names)
        for stmt in iter_scope_statements(body):
            targets: List[ast.expr] = []
            if isinstance(stmt, ast.Assign):
                targets = stmt.targets
            elif isinstance(stmt, ast.AugAssign):
                targets = [stmt.target]
            for target in targets:
                if (
                    isinstance(target, ast.Name)
                    and target.id in declared_global
                    and target.id in assigned
                ):
                    yield check_global_mutable.rule.finding(
                        f"function {scope.name}() rebinds module-level "
                        f"{target.id!r} via 'global'; each worker process "
                        "mutates its own copy, so the change silently "
                        "diverges across the pool",
                        src.span(stmt),
                        line_text=src.line_text(stmt),
                    )
                elif (
                    isinstance(target, ast.Subscript)
                    and isinstance(target.value, ast.Name)
                    and target.value.id in mutable
                ):
                    yield check_global_mutable.rule.finding(
                        f"function {scope.name}() writes into module-level "
                        f"{target.value.id!r}; worker processes each mutate "
                        "their own copy, so state written here never "
                        "reaches the parent or other workers",
                        src.span(stmt),
                        line_text=src.line_text(stmt),
                    )
        for node in iter_scope_expressions(body):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id in mutable
                and node.func.attr in _MUTATOR_METHODS
            ):
                yield check_global_mutable.rule.finding(
                    f"function {scope.name}() calls "
                    f"{node.func.value.id}.{node.func.attr}() on "
                    "module-level mutable state; mutations made inside a "
                    "worker never propagate back to the parent",
                    src.span(node),
                    line_text=src.line_text(node),
                )


@rule(
    "POOL-FORK-UNSAFE",
    Severity.WARNING,
    Category.POOL,
    Kind.PYTHON,
    summary="avoid fork-unsafe process management patterns",
    reference="repro.runner.engine pool lifecycle; CPython fork caveats",
)
def check_fork_unsafe(src: PySource, ctx) -> Iterator[Finding]:
    imports = src.imports
    for node in ast.walk(src.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id in imports.os_modules
            and func.attr == "fork"
        ) or (isinstance(func, ast.Name) and func.id in imports.fork_funcs):
            yield check_fork_unsafe.rule.finding(
                "raw os.fork() bypasses the executor's worker lifecycle "
                "(no crash isolation, no watchdog); use the runner engine",
                src.span(node),
                line_text=src.line_text(node),
            )
        elif (
            isinstance(func, ast.Attribute)
            and func.attr == "set_start_method"
            and node.args
            and isinstance(node.args[0], ast.Constant)
            and node.args[0].value == "fork"
        ):
            yield check_fork_unsafe.rule.finding(
                "forcing the 'fork' start method copies parent locks and "
                "open handles into workers; the engine relies on the "
                "platform default",
                src.span(node),
                line_text=src.line_text(node),
            )
    # Executors constructed at import time are inherited by every
    # process that imports the module — including the workers a parent
    # pool spawns, which then recursively own pools. The module-scope
    # expression iterator prunes nested function bodies, where pool
    # construction is fine.
    for node in iter_scope_expressions(src.tree.body):
        if not isinstance(node, ast.Call):
            continue
        callee = None
        if isinstance(node.func, ast.Name):
            callee = node.func.id
        elif isinstance(node.func, ast.Attribute):
            callee = node.func.attr
        if callee == "ProcessPoolExecutor" or (
            callee == "Pool"
            and isinstance(node.func, ast.Attribute)
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id in imports.multiprocessing_modules
        ):
            yield check_fork_unsafe.rule.finding(
                f"{callee} constructed at module import time: every "
                "importer (including pool workers) spawns processes "
                "as a side effect; construct pools inside functions",
                src.span(node),
                line_text=src.line_text(node),
            )


# -- suppression hygiene ----------------------------------------------------


@rule(
    "LINT-DEPRECATED-SUPPRESS",
    Severity.INFO,
    Category.HYGIENE,
    Kind.PYTHON,
    summary="the retired '# det: allow' grammar is inert; delete or migrate it",
    reference="docs/static_analysis.md (suppression grammar)",
)
def check_deprecated_suppress(src: PySource, ctx) -> Iterator[Finding]:
    for line in sorted(src.comments):
        comment = src.comments[line]
        if "det: allow" in comment:
            yield check_deprecated_suppress.rule.finding(
                "'# det: allow' is inert (its deprecation window closed); "
                "it no longer suppresses anything — delete it or migrate "
                "to '# lint: allow[DET-...]' with the rule IDs to waive",
                src.doc.find_in_line(line, "det: allow"),
                line_text=src.doc.line_text(line),
            )


@rule(
    "LINT-UNUSED-SUPPRESS",
    Severity.WARNING,
    Category.HYGIENE,
    Kind.PYTHON,
    summary="a '# lint: allow[...]' token that suppresses nothing is stale",
    reference="docs/static_analysis.md (suppression grammar); "
    "flake8 unused-noqa precedent",
    fixable=True,
)
def check_unused_suppress(src: PySource, ctx) -> Iterator[Finding]:
    """Emitted centrally by the engine, not here.

    Staleness is only decidable *after* every other rule has run and
    inline suppression has been applied — the engine tracks which
    ``(line, token)`` pairs matched a finding and reports the rest
    (see ``engine._stale_suppress_findings``). This registration
    carries the rule's metadata, severity, and the autofix hook.
    """
    return iter(())
