"""Line-aware m3u8 scanner.

The object models in :mod:`repro.manifest.hls` are built for players:
they validate eagerly and discard positions. A linter needs the
opposite — a *lenient* scan that keeps every line number and records
syntax problems as data instead of raising — so this module re-parses
playlist text into light "scanned" views that rules consume.

The scan never throws on malformed attribute lists, missing URIs, or
unknown tags; it accumulates :class:`SyntaxIssue` records that the
``HLS-ATTR-SYNTAX`` / ``HLS-URI-PRESENT`` rules turn into findings.
Only a document that is not a playlist at all (empty text) is rejected
upstream by the engine as a parse failure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..manifest.hls import _ids_from_uri
from .spans import Document


@dataclass(frozen=True)
class SyntaxIssue:
    line: int
    message: str
    #: "attr" for malformed tag payloads, "uri" for missing/orphan URIs.
    code: str = "attr"


@dataclass(frozen=True)
class ScannedTag:
    """One ``#EXT...`` tag line."""

    line: int
    name: str  # e.g. "EXT-X-STREAM-INF"
    value: str  # raw text after the first ':' ("" when absent)
    attrs: Dict[str, str] = field(default_factory=dict)


@dataclass(frozen=True)
class ScannedRendition:
    """An ``EXT-X-MEDIA`` entry with its source line."""

    line: int
    attrs: Dict[str, str]

    @property
    def media_type(self) -> str:
        return self.attrs.get("TYPE", "")

    @property
    def group_id(self) -> str:
        return self.attrs.get("GROUP-ID", "")

    @property
    def name(self) -> str:
        return self.attrs.get("NAME", "")

    @property
    def uri(self) -> str:
        return self.attrs.get("URI", "")


@dataclass(frozen=True)
class ScannedVariant:
    """An ``EXT-X-STREAM-INF`` + URI pair with source lines."""

    line: int  # the EXT-X-STREAM-INF line
    uri_line: int  # the following URI line (0 when missing)
    uri: str
    attrs: Dict[str, str]

    @property
    def bandwidth_bps(self) -> Optional[int]:
        try:
            return int(self.attrs["BANDWIDTH"])
        except (KeyError, ValueError):
            return None

    @property
    def average_bandwidth_bps(self) -> Optional[int]:
        try:
            return int(self.attrs["AVERAGE-BANDWIDTH"])
        except (KeyError, ValueError):
            return None

    @property
    def codecs(self) -> str:
        return self.attrs.get("CODECS", "")

    @property
    def audio_group(self) -> Optional[str]:
        return self.attrs.get("AUDIO")

    @property
    def track_ids(self) -> Tuple[Optional[str], Optional[str]]:
        """(video_id, audio_id) recovered from the URI convention."""
        if not self.uri:
            return None, None
        return _ids_from_uri(self.uri)

    @property
    def video_id(self) -> Optional[str]:
        return self.track_ids[0]

    @property
    def audio_id(self) -> Optional[str]:
        return self.track_ids[1]


@dataclass(frozen=True)
class ScannedSegment:
    """One media-playlist segment: EXTINF (+ optional companions) + URI."""

    extinf_line: int
    uri_line: int
    uri: str
    duration_s: Optional[float]
    duration_is_float: bool
    byterange_line: int = 0  # 0 when absent
    byterange: Optional[Tuple[int, Optional[int]]] = None  # (length, offset)
    bitrate_line: int = 0
    bitrate_kbps: Optional[float] = None


@dataclass
class ScannedPlaylist:
    """A leniently scanned playlist of either level."""

    doc: Document
    has_extm3u: bool = False
    version: Optional[int] = None
    version_line: int = 0
    target_duration: Optional[int] = None
    target_duration_line: int = 0
    playlist_type: Optional[str] = None
    has_endlist: bool = False
    tags: List[ScannedTag] = field(default_factory=list)
    renditions: List[ScannedRendition] = field(default_factory=list)
    variants: List[ScannedVariant] = field(default_factory=list)
    segments: List[ScannedSegment] = field(default_factory=list)
    issues: List[SyntaxIssue] = field(default_factory=list)

    @property
    def is_master(self) -> bool:
        return bool(self.variants) or any(
            t.name == "EXT-X-STREAM-INF" for t in self.tags
        )

    @property
    def is_media(self) -> bool:
        return not self.is_master

    def variants_for_video(self, video_id: str) -> List[ScannedVariant]:
        return [v for v in self.variants if v.video_id == video_id]


def parse_attribute_list(text: str) -> Tuple[Dict[str, str], List[str]]:
    """Parse an HLS attribute list leniently.

    Returns (attrs, problems). Quoted values keep their content but drop
    the quotes; malformed pieces are reported, not raised.
    """
    attrs: Dict[str, str] = {}
    problems: List[str] = []
    key = ""
    value = ""
    state = "key"
    in_quotes = False
    for char in text + ",":
        if state == "key":
            if char == "=":
                state = "value"
            elif char == ",":
                if key.strip():
                    problems.append(f"attribute {key.strip()!r} has no value")
                key = ""
            else:
                key += char
        else:
            if char == '"':
                in_quotes = not in_quotes
                value += char
            elif char == "," and not in_quotes:
                attrs[key.strip()] = value.strip().strip('"')
                key, value, state = "", "", "key"
            else:
                value += char
    if in_quotes:
        problems.append(f"unterminated quote in attribute list: {text.strip()!r}")
        if key.strip():
            attrs[key.strip()] = value.strip().strip('"')
    return attrs, problems


#: Tags whose payload is an attribute list (the ones we scan).
_ATTR_TAGS = {"EXT-X-STREAM-INF", "EXT-X-MEDIA", "EXT-X-I-FRAME-STREAM-INF"}


def scan_playlist(doc: Document) -> ScannedPlaylist:
    """Scan playlist text into a line-indexed view. Never raises."""
    scanned = ScannedPlaylist(doc=doc)
    pending_inf: Optional[ScannedTag] = None
    pending_extinf: Optional[Tuple[int, Optional[float], bool]] = None
    pending_byterange: Optional[Tuple[int, Tuple[int, Optional[int]]]] = None
    pending_bitrate: Optional[Tuple[int, Optional[float]]] = None

    for line_no in range(1, doc.n_lines + 1):
        raw = doc.line_text(line_no).strip()
        if not raw:
            continue
        if line_no == 1 or (not scanned.tags and not scanned.has_extm3u):
            if raw == "#EXTM3U":
                scanned.has_extm3u = True
                continue
        if raw == "#EXTM3U":
            scanned.has_extm3u = True
            continue
        if not raw.startswith("#"):
            # A URI line: closes a pending STREAM-INF or EXTINF.
            if pending_inf is not None:
                scanned.variants.append(
                    ScannedVariant(
                        line=pending_inf.line,
                        uri_line=line_no,
                        uri=raw,
                        attrs=pending_inf.attrs,
                    )
                )
                pending_inf = None
            elif pending_extinf is not None:
                extinf_line, duration, is_float = pending_extinf
                byterange_line, byterange = (
                    pending_byterange if pending_byterange else (0, None)
                )
                bitrate_line, bitrate = (
                    pending_bitrate if pending_bitrate else (0, None)
                )
                scanned.segments.append(
                    ScannedSegment(
                        extinf_line=extinf_line,
                        uri_line=line_no,
                        uri=raw,
                        duration_s=duration,
                        duration_is_float=is_float,
                        byterange_line=byterange_line,
                        byterange=byterange,
                        bitrate_line=bitrate_line,
                        bitrate_kbps=bitrate,
                    )
                )
                pending_extinf = None
                pending_byterange = None
                pending_bitrate = None
            else:
                scanned.issues.append(
                    SyntaxIssue(
                        line=line_no,
                        message=f"URI {raw!r} is not preceded by "
                        "EXT-X-STREAM-INF or EXTINF",
                        code="uri",
                    )
                )
            continue

        name, _, payload = raw[1:].partition(":")
        attrs: Dict[str, str] = {}
        if name in _ATTR_TAGS:
            attrs, problems = parse_attribute_list(payload)
            for problem in problems:
                scanned.issues.append(SyntaxIssue(line=line_no, message=problem))
        tag = ScannedTag(line=line_no, name=name, value=payload, attrs=attrs)
        scanned.tags.append(tag)

        if name == "EXT-X-VERSION":
            try:
                scanned.version = int(payload)
            except ValueError:
                scanned.issues.append(
                    SyntaxIssue(line=line_no, message=f"bad version {payload!r}")
                )
            scanned.version_line = line_no
        elif name == "EXT-X-TARGETDURATION":
            try:
                scanned.target_duration = int(payload)
            except ValueError:
                scanned.issues.append(
                    SyntaxIssue(
                        line=line_no, message=f"bad target duration {payload!r}"
                    )
                )
            scanned.target_duration_line = line_no
        elif name == "EXT-X-PLAYLIST-TYPE":
            scanned.playlist_type = payload.strip()
        elif name == "EXT-X-ENDLIST":
            scanned.has_endlist = True
        elif name == "EXT-X-MEDIA":
            scanned.renditions.append(ScannedRendition(line=line_no, attrs=attrs))
        elif name == "EXT-X-STREAM-INF":
            if pending_inf is not None:
                scanned.issues.append(
                    SyntaxIssue(
                        line=pending_inf.line,
                        message="EXT-X-STREAM-INF without a following URI",
                        code="uri",
                    )
                )
            pending_inf = tag
        elif name == "EXTINF":
            duration: Optional[float] = None
            duration_text = payload.split(",", 1)[0].strip()
            try:
                duration = float(duration_text)
            except ValueError:
                scanned.issues.append(
                    SyntaxIssue(
                        line=line_no, message=f"bad EXTINF duration {payload!r}"
                    )
                )
            pending_extinf = (line_no, duration, "." in duration_text)
        elif name == "EXT-X-BYTERANGE":
            body = payload.strip()
            try:
                if "@" in body:
                    length_s, offset_s = body.split("@", 1)
                    pending_byterange = (line_no, (int(length_s), int(offset_s)))
                else:
                    pending_byterange = (line_no, (int(body), None))
            except ValueError:
                scanned.issues.append(
                    SyntaxIssue(line=line_no, message=f"bad byterange {body!r}")
                )
        elif name == "EXT-X-BITRATE":
            try:
                pending_bitrate = (line_no, float(payload))
            except ValueError:
                scanned.issues.append(
                    SyntaxIssue(line=line_no, message=f"bad bitrate {payload!r}")
                )

    if pending_inf is not None:
        scanned.issues.append(
            SyntaxIssue(
                line=pending_inf.line,
                message="EXT-X-STREAM-INF without a following URI",
                code="uri",
            )
        )
    if pending_extinf is not None:
        scanned.issues.append(
            SyntaxIssue(
                line=pending_extinf[0],
                message="EXTINF without a following URI",
                code="uri",
            )
        )
    return scanned


def derived_segment_bitrates_kbps(
    scanned: ScannedPlaylist,
) -> Optional[List[float]]:
    """Per-segment bitrates derivable from a scanned media playlist.

    Mirrors :meth:`repro.manifest.hls.HlsMediaPlaylist.derived_bitrates_kbps`
    over the text view: ``EXT-X-BITRATE`` wins, then ``EXT-X-BYTERANGE``;
    ``None`` when any segment has neither (the paper's "blind" case).
    """
    rates: List[float] = []
    for segment in scanned.segments:
        if segment.bitrate_kbps is not None:
            rates.append(segment.bitrate_kbps)
        elif segment.byterange is not None and segment.duration_s:
            length_bytes = segment.byterange[0]
            rates.append(length_bytes * 8.0 / segment.duration_s / 1000.0)
        else:
            return None
    return rates
