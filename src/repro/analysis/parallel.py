"""File-parallel lint: two-phase fan-out, byte-identical to serial.

Interprocedural rules need the whole-program index, so a naive
per-file fan-out would either rebuild the index in every worker
(quadratic parsing) or silently lose cross-module facts. The split
here mirrors how distributed analyzers shard:

1. **Summarize** — workers parse batches of Python sources and return
   picklable :class:`~repro.analysis.code_engine.ModuleSummary` lists.
2. **Merge** — the parent builds one
   :class:`~repro.analysis.code_engine.ProgramIndex` from every
   summary, exactly the index a serial run would build (merging is
   order-independent: collisions resolve by fact equality, not
   arrival order).
3. **Lint** — workers re-lint their file batches with the merged
   index shipped in, so every rule sees the same whole-program view
   as a serial run.

Manifest documents (MPD/m3u8) are kept together in a single batch:
cross-manifest HLS rules resolve renditions across the whole package,
which sharding would break. Python files are split round-robin.

The contract — asserted by ``tests/test_analysis_parallel.py`` and
timed by ``benchmarks/test_bench_lint.py`` — is that
``analyze_files_parallel(files, config, jobs)`` returns the exact
finding list of ``analyze_files(files, config)`` for every ``jobs``.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import Dict, List, Mapping, Optional, Tuple

from .code_engine import (
    ModuleSummary,
    ProgramIndex,
    parse_python,
    summarize_module,
)
from .engine import (
    AnalysisParseFailure,
    AnalyzerConfig,
    analyze_files,
)
from .findings import Finding, sort_findings
from .spans import Document


def _summarize_batch(
    batch: List[Tuple[str, str]]
) -> Tuple[str, object]:
    """Worker, phase 1: parse + summarize a batch of Python sources."""
    summaries: List[ModuleSummary] = []
    for name, text in batch:
        try:
            src = parse_python(Document(name=name, text=text))
        except SyntaxError as exc:
            # Phase 2 reports the parse failure with full context;
            # phase 1 just skips the module (no summary, no facts).
            return ("parse_failure", (name, exc.msg or "syntax error",
                                      exc.lineno or 0))
        summaries.append(summarize_module(src, name))
    return ("ok", summaries)


def _lint_batch(
    args: Tuple[Dict[str, str], Optional[AnalyzerConfig], ProgramIndex]
) -> Tuple[str, object]:
    """Worker, phase 2: lint a file batch against the shipped index."""
    files, config, index = args
    try:
        return ("ok", analyze_files(files, config, program=index))
    except AnalysisParseFailure as exc:
        # AnalysisParseFailure's formatted args don't round-trip
        # through pickle; ship the fields and re-raise in the parent.
        return ("parse_failure", (exc.file, exc.message, exc.line))


def _partition(
    files: Mapping[str, str], jobs: int
) -> List[Dict[str, str]]:
    """Round-robin Python batches plus one batch for all manifests."""
    manifest_batch: Dict[str, str] = {}
    python_batches: List[Dict[str, str]] = [{} for _ in range(jobs)]
    i = 0
    for name, text in files.items():
        if name.lower().endswith(".py"):
            python_batches[i % jobs][name] = text
            i += 1
        else:
            manifest_batch[name] = text
    batches = [b for b in python_batches if b]
    if manifest_batch:
        batches.append(manifest_batch)
    return batches


def analyze_files_parallel(
    files: Mapping[str, str],
    config: Optional[AnalyzerConfig] = None,
    jobs: int = 1,
) -> List[Finding]:
    """``analyze_files`` fanned out over ``jobs`` worker processes.

    Byte-identical to the serial entry point for every ``jobs`` value;
    ``jobs <= 1`` (or a single batch) short-circuits to it directly.
    """
    if jobs <= 1 or len(files) <= 1:
        return analyze_files(files, config)
    batches = _partition(files, jobs)
    if len(batches) <= 1:
        return analyze_files(files, config)
    python_items = [
        [(n, t) for n, t in batch.items() if n.lower().endswith(".py")]
        for batch in batches
    ]
    with ProcessPoolExecutor(max_workers=jobs) as pool:
        # Phase 1: per-batch module summaries.
        all_summaries: List[ModuleSummary] = []
        for status, payload in pool.map(
            _summarize_batch, [b for b in python_items if b]
        ):
            if status == "ok":
                all_summaries.extend(payload)
            # parse failures surface in phase 2 with full context
        index = ProgramIndex.build(all_summaries)
        # Phase 2: lint every batch against the merged index.
        findings: List[Finding] = []
        for status, payload in pool.map(
            _lint_batch, [(batch, config, index) for batch in batches]
        ):
            if status == "parse_failure":
                name, message, line = payload
                raise AnalysisParseFailure(name, message, line=line)
            findings.extend(payload)
    return sort_findings(findings)
