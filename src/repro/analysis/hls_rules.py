"""HLS playlist rules: RFC 8216 conformance + the paper's Section 4.1.

Each rule is a generator over a :class:`~repro.analysis.hls_syntax.ScannedPlaylist`
(plus the run-wide :class:`~repro.analysis.context.RuleContext`) and
yields findings anchored to the offending line. The eight rules of the
original object-level linter (``repro.manifest.validate``) are ported
here with their IDs and semantics intact; the rest are new text-level
conformance checks.

Rule kinds:

* ``hls-any`` — apply to both playlist levels (syntax, version gates);
* ``hls-master`` / ``hls-media`` — level-specific checks;
* ``hls-package`` — cross-manifest checks that resolve a master
  against the media playlists present in the same run.
"""

from __future__ import annotations

from typing import Iterator

from .context import RuleContext
from .findings import Finding, Severity
from .hls_syntax import ScannedPlaylist, derived_segment_bitrates_kbps
from .registry import Category, Kind, rule

# ---------------------------------------------------------------------------
# Syntax / structural conformance (both levels)
# ---------------------------------------------------------------------------


@rule(
    "HLS-EXTM3U",
    Severity.ERROR,
    Category.RFC8216,
    Kind.HLS_ANY,
    summary="playlists must begin with the #EXTM3U tag",
    reference="RFC 8216 §4.3.1.1",
    fixable=True,
)
def check_extm3u(scanned: ScannedPlaylist, ctx: RuleContext) -> Iterator[Finding]:
    if not scanned.has_extm3u:
        doc = scanned.doc
        yield check_extm3u.rule.finding(
            "playlist does not begin with #EXTM3U",
            doc.span_of_line(1),
            line_text=doc.line_text(1),
        )


@rule(
    "HLS-ATTR-SYNTAX",
    Severity.ERROR,
    Category.RFC8216,
    Kind.HLS_ANY,
    summary="tag payloads must be well-formed attribute lists / values",
    reference="RFC 8216 §4.2",
)
def check_attr_syntax(
    scanned: ScannedPlaylist, ctx: RuleContext
) -> Iterator[Finding]:
    for issue in scanned.issues:
        if issue.code != "attr":
            continue
        yield check_attr_syntax.rule.finding(
            issue.message,
            scanned.doc.span_of_line(issue.line),
            line_text=scanned.doc.line_text(issue.line),
        )


@rule(
    "HLS-URI-PRESENT",
    Severity.ERROR,
    Category.RFC8216,
    Kind.HLS_ANY,
    summary="EXT-X-STREAM-INF/EXTINF must be followed by a URI line",
    reference="RFC 8216 §4.3.2.1, §4.3.4.2",
)
def check_uri_present(
    scanned: ScannedPlaylist, ctx: RuleContext
) -> Iterator[Finding]:
    for issue in scanned.issues:
        if issue.code != "uri":
            continue
        yield check_uri_present.rule.finding(
            issue.message,
            scanned.doc.span_of_line(issue.line),
            line_text=scanned.doc.line_text(issue.line),
        )


def required_version(scanned: ScannedPlaylist) -> int:
    """The minimum EXT-X-VERSION the playlist's features demand."""
    required = 1
    if any(s.duration_is_float for s in scanned.segments):
        required = max(required, 3)
    if any(s.byterange is not None for s in scanned.segments):
        required = max(required, 4)
    return required


@rule(
    "HLS-VERSION-GATE",
    Severity.ERROR,
    Category.RFC8216,
    Kind.HLS_ANY,
    summary="EXT-X-VERSION must cover the features the playlist uses",
    reference="RFC 8216 §7",
    fixable=True,
)
def check_version_gate(
    scanned: ScannedPlaylist, ctx: RuleContext
) -> Iterator[Finding]:
    required = required_version(scanned)
    declared = scanned.version if scanned.version is not None else 1
    if declared >= required:
        return
    reasons = []
    if any(s.duration_is_float for s in scanned.segments):
        reasons.append("floating-point EXTINF needs version >= 3")
    if any(s.byterange is not None for s in scanned.segments):
        reasons.append("EXT-X-BYTERANGE needs version >= 4")
    line = scanned.version_line or 1
    yield check_version_gate.rule.finding(
        f"declared version {declared} but {'; '.join(reasons)}",
        scanned.doc.span_of_line(line),
        line_text=scanned.doc.line_text(line),
    )


# ---------------------------------------------------------------------------
# Master-playlist conformance
# ---------------------------------------------------------------------------


@rule(
    "HLS-BANDWIDTH-PRESENT",
    Severity.ERROR,
    Category.RFC8216,
    Kind.HLS_MASTER,
    summary="every EXT-X-STREAM-INF must declare an integer BANDWIDTH",
    reference="RFC 8216 §4.3.4.2",
)
def check_bandwidth_present(
    scanned: ScannedPlaylist, ctx: RuleContext
) -> Iterator[Finding]:
    for variant in scanned.variants:
        if variant.bandwidth_bps is None or variant.bandwidth_bps <= 0:
            raw = variant.attrs.get("BANDWIDTH")
            detail = "lacks BANDWIDTH" if raw is None else f"has BANDWIDTH={raw!r}"
            yield check_bandwidth_present.rule.finding(
                f"variant {variant.uri!r} {detail}; players cannot rank it",
                scanned.doc.span_of_line(variant.line),
                line_text=scanned.doc.line_text(variant.line),
            )


@rule(
    "HLS-CODECS-PRESENT",
    Severity.WARNING,
    Category.RFC8216,
    Kind.HLS_MASTER,
    summary="every EXT-X-STREAM-INF should declare CODECS",
    reference="RFC 8216 §4.3.4.2",
)
def check_codecs_present(
    scanned: ScannedPlaylist, ctx: RuleContext
) -> Iterator[Finding]:
    for variant in scanned.variants:
        if not variant.codecs:
            yield check_codecs_present.rule.finding(
                f"variant {variant.uri!r} lacks CODECS; players must probe "
                "the media to know whether they can play it",
                scanned.doc.span_of_line(variant.line),
                line_text=scanned.doc.line_text(variant.line),
            )


@rule(
    "HLS-GROUP-INTEGRITY",
    Severity.ERROR,
    Category.RFC8216,
    Kind.HLS_MASTER,
    summary="AUDIO group references must name an existing EXT-X-MEDIA group",
    reference="RFC 8216 §4.3.4.2",
)
def check_group_integrity(
    scanned: ScannedPlaylist, ctx: RuleContext
) -> Iterator[Finding]:
    audio_groups = {
        r.group_id for r in scanned.renditions if r.media_type == "AUDIO"
    }
    for variant in scanned.variants:
        group = variant.audio_group
        if group is not None and group not in audio_groups:
            yield check_group_integrity.rule.finding(
                f"variant {variant.uri!r} references AUDIO group {group!r} "
                "but no EXT-X-MEDIA rendition declares that GROUP-ID",
                scanned.doc.find_in_line(variant.line, f'AUDIO="{group}"'),
                line_text=scanned.doc.line_text(variant.line),
            )


@rule(
    "HLS-RENDITION-NAMES",
    Severity.ERROR,
    Category.RFC8216,
    Kind.HLS_MASTER,
    summary="renditions in one group must carry distinct NAME attributes",
    reference="RFC 8216 §4.3.4.1.1",
)
def check_rendition_names(
    scanned: ScannedPlaylist, ctx: RuleContext
) -> Iterator[Finding]:
    seen = {}
    for rendition in scanned.renditions:
        key = (rendition.media_type, rendition.group_id, rendition.name)
        if key in seen:
            yield check_rendition_names.rule.finding(
                f"duplicate NAME {rendition.name!r} in group "
                f"{rendition.group_id!r} (first declared on line {seen[key]})",
                scanned.doc.span_of_line(rendition.line),
                line_text=scanned.doc.line_text(rendition.line),
            )
        else:
            seen[key] = rendition.line


# ---------------------------------------------------------------------------
# Paper best practices (Section 4.1) — ports of the original 8 rules
# ---------------------------------------------------------------------------


@rule(
    "HLS-CURATED",
    Severity.WARNING,
    Category.PAPER,
    Kind.HLS_MASTER,
    summary="list a curated subset of combinations, not the cross product",
    reference="paper Section 4.1 (server-side practice 1)",
)
def check_curated(scanned: ScannedPlaylist, ctx: RuleContext) -> Iterator[Finding]:
    video_ids = {v.video_id for v in scanned.variants if v.video_id}
    audio_ids = {v.audio_id for v in scanned.variants if v.audio_id}
    if (
        video_ids
        and audio_ids
        and len(scanned.variants) >= len(video_ids) * len(audio_ids)
    ):
        line = scanned.variants[0].line
        yield check_curated.rule.finding(
            f"master lists all {len(scanned.variants)} combinations of "
            f"{len(video_ids)} video x {len(audio_ids)} audio tracks; "
            "curate the desirable subset instead (Section 4.1)",
            scanned.doc.span_of_line(line),
            line_text=scanned.doc.line_text(line),
        )


@rule(
    "HLS-AVERAGE-BANDWIDTH",
    Severity.INFO,
    Category.PAPER,
    Kind.HLS_MASTER,
    summary="variants should declare AVERAGE-BANDWIDTH next to peak BANDWIDTH",
    reference="paper Section 4.1; RFC 8216 §4.3.4.2",
    fixable=True,
)
def check_average_bandwidth(
    scanned: ScannedPlaylist, ctx: RuleContext
) -> Iterator[Finding]:
    for variant in scanned.variants:
        if "AVERAGE-BANDWIDTH" not in variant.attrs:
            yield check_average_bandwidth.rule.finding(
                f"variant {variant.uri!r} lacks AVERAGE-BANDWIDTH "
                "(peak-only budgeting over-constrains VBR ladders)",
                scanned.doc.span_of_line(variant.line),
                line_text=scanned.doc.line_text(variant.line),
            )


@rule(
    "HLS-VARIANT-ORDER",
    Severity.WARNING,
    Category.PAPER,
    Kind.HLS_MASTER,
    summary="list each video's cheapest variant first (bitrate-estimate cap)",
    reference="paper Sections 3.2, 4.1",
    fixable=True,
)
def check_variant_order(
    scanned: ScannedPlaylist, ctx: RuleContext
) -> Iterator[Finding]:
    video_ids = sorted({v.video_id for v in scanned.variants if v.video_id})
    for video_id in video_ids:
        variants = scanned.variants_for_video(video_id)
        rated = [v for v in variants if v.bandwidth_bps is not None]
        if not rated:
            continue
        first = variants[0]
        if first.bandwidth_bps is None:
            continue
        cheapest = min(v.bandwidth_bps for v in rated)
        if first.bandwidth_bps > cheapest:
            yield check_variant_order.rule.finding(
                f"the first variant containing {video_id} is not its "
                "cheapest; players that price the track by its first "
                "variant will overestimate it more than necessary",
                scanned.doc.span_of_line(first.line),
                line_text=scanned.doc.line_text(first.line),
            )


@rule(
    "HLS-AUDIO-COVERAGE",
    Severity.ERROR,
    Category.PAPER,
    Kind.HLS_MASTER,
    summary="every audio track a variant references needs a rendition",
    reference="paper Section 4.1; RFC 8216 §4.3.4.2",
)
def check_audio_coverage(
    scanned: ScannedPlaylist, ctx: RuleContext
) -> Iterator[Finding]:
    rendition_names = {r.name for r in scanned.renditions}
    group_ids = {r.group_id for r in scanned.renditions}
    for variant in scanned.variants:
        group_covered = (
            variant.audio_group is not None and variant.audio_group in group_ids
        )
        name_covered = variant.audio_id in rendition_names
        if variant.audio_id and not (group_covered or name_covered):
            yield check_audio_coverage.rule.finding(
                f"variant {variant.uri!r} references audio "
                f"{variant.audio_id!r} with no EXT-X-MEDIA rendition",
                scanned.doc.span_of_line(variant.line),
                line_text=scanned.doc.line_text(variant.line),
            )


# ---------------------------------------------------------------------------
# Media-playlist conformance
# ---------------------------------------------------------------------------


@rule(
    "HLS-TARGETDURATION-PRESENT",
    Severity.ERROR,
    Category.RFC8216,
    Kind.HLS_MEDIA,
    summary="media playlists must declare EXT-X-TARGETDURATION",
    reference="RFC 8216 §4.3.3.1",
    fixable=True,
)
def check_targetduration_present(
    scanned: ScannedPlaylist, ctx: RuleContext
) -> Iterator[Finding]:
    if scanned.target_duration is None and scanned.segments:
        yield check_targetduration_present.rule.finding(
            "media playlist lacks EXT-X-TARGETDURATION",
            scanned.doc.span_of_line(1),
            line_text=scanned.doc.line_text(1),
        )


@rule(
    "HLS-TARGETDURATION",
    Severity.ERROR,
    Category.RFC8216,
    Kind.HLS_MEDIA,
    summary="no segment may exceed EXT-X-TARGETDURATION after rounding",
    reference="RFC 8216 §4.3.3.1",
    fixable=True,
)
def check_targetduration(
    scanned: ScannedPlaylist, ctx: RuleContext
) -> Iterator[Finding]:
    if scanned.target_duration is None:
        return
    for segment in scanned.segments:
        if segment.duration_s is None:
            continue
        # RFC 8216: EXTINF duration, rounded to the nearest integer,
        # MUST be <= the target duration.
        if round(segment.duration_s) > scanned.target_duration:
            yield check_targetduration.rule.finding(
                f"segment {segment.uri!r} lasts {segment.duration_s:g}s but "
                f"EXT-X-TARGETDURATION is {scanned.target_duration}; players "
                "size their live/step timers from the target duration",
                scanned.doc.span_of_line(segment.extinf_line),
                line_text=scanned.doc.line_text(segment.extinf_line),
            )


@rule(
    "HLS-ENDLIST",
    Severity.WARNING,
    Category.RFC8216,
    Kind.HLS_MEDIA,
    summary="VOD playlists should terminate with EXT-X-ENDLIST",
    reference="RFC 8216 §4.3.3.4, §6.2.1",
    fixable=True,
)
def check_endlist(scanned: ScannedPlaylist, ctx: RuleContext) -> Iterator[Finding]:
    if scanned.playlist_type == "VOD" and not scanned.has_endlist:
        last = scanned.doc.n_lines
        yield check_endlist.rule.finding(
            "playlist is typed VOD but carries no EXT-X-ENDLIST; players "
            "will keep polling it for new segments",
            scanned.doc.span_of_line(max(last, 1)),
            line_text=scanned.doc.line_text(max(last, 1)) if last else "",
        )


@rule(
    "HLS-TRACK-BITRATES",
    Severity.ERROR,
    Category.PAPER,
    Kind.HLS_MEDIA,
    summary="per-track bitrates must be derivable from the media playlist",
    reference="paper Section 4.1 (server-side practice 2)",
)
def check_track_bitrates(
    scanned: ScannedPlaylist, ctx: RuleContext
) -> Iterator[Finding]:
    if not scanned.segments:
        return
    if derived_segment_bitrates_kbps(scanned) is None:
        blind = next(
            s
            for s in scanned.segments
            if s.bitrate_kbps is None and s.byterange is None
        )
        yield check_track_bitrates.rule.finding(
            "per-track bitrates are not derivable: segment "
            f"{blind.uri!r} carries neither EXT-X-BYTERANGE nor "
            "EXT-X-BITRATE, so players cannot budget each medium "
            "(Section 4.1)",
            scanned.doc.span_of_line(blind.extinf_line),
            line_text=scanned.doc.line_text(blind.extinf_line),
        )


@rule(
    "HLS-BITRATE-TAG",
    Severity.INFO,
    Category.PAPER,
    Kind.HLS_MEDIA,
    summary="emit EXT-X-BITRATE on every segment (make the tag mandatory)",
    reference="paper Section 4.1 (server-side practice 3)",
    fixable=True,
)
def check_bitrate_tag(
    scanned: ScannedPlaylist, ctx: RuleContext
) -> Iterator[Finding]:
    if not scanned.segments:
        return
    if derived_segment_bitrates_kbps(scanned) is None:
        return  # HLS-TRACK-BITRATES already covers the blind case
    has_byteranges = all(s.byterange is not None for s in scanned.segments)
    has_tags = all(s.bitrate_kbps is not None for s in scanned.segments)
    if not has_byteranges and not has_tags:
        partial = next(s for s in scanned.segments if s.bitrate_kbps is None)
        yield check_bitrate_tag.rule.finding(
            "bitrates derive only partially (mixed byte ranges and tags); "
            "emit EXT-X-BITRATE on every segment",
            scanned.doc.span_of_line(partial.extinf_line),
            line_text=scanned.doc.line_text(partial.extinf_line),
        )


# ---------------------------------------------------------------------------
# Cross-manifest (package) rules
# ---------------------------------------------------------------------------


@rule(
    "HLS-MEDIA-PLAYLIST-MISSING",
    Severity.ERROR,
    Category.RFC8216,
    Kind.HLS_PACKAGE,
    summary="URIs in the master must resolve to media playlists in the package",
    reference="RFC 8216 §4.3.4.1, §4.3.4.2",
)
def check_media_playlist_missing(
    scanned: ScannedPlaylist, ctx: RuleContext
) -> Iterator[Finding]:
    if not ctx.has_media_playlists:
        return
    for rendition in scanned.renditions:
        if rendition.media_type != "AUDIO" or not rendition.uri:
            continue
        if ctx.resolve_rendition(rendition.uri) is None:
            yield check_media_playlist_missing.rule.finding(
                f"rendition {rendition.name!r} points at {rendition.uri!r} "
                "but no such media playlist is in the package",
                scanned.doc.find_in_line(rendition.line, rendition.uri),
                line_text=scanned.doc.line_text(rendition.line),
            )
    for variant in scanned.variants:
        if not variant.uri:
            continue
        if ctx.resolve_variant_video(variant.uri) is None:
            line = variant.uri_line or variant.line
            yield check_media_playlist_missing.rule.finding(
                f"variant URI {variant.uri!r} resolves to no media playlist "
                "in the package (neither directly nor via the "
                "<video>.m3u8 convention)",
                scanned.doc.span_of_line(line),
                line_text=scanned.doc.line_text(line),
            )


@rule(
    "HLS-BANDWIDTH-CONSISTENT",
    Severity.WARNING,
    Category.PAPER,
    Kind.HLS_PACKAGE,
    summary="declared BANDWIDTH should match the derived aggregate peak",
    reference="paper Section 2.3, Appendix A",
    fixable=True,
)
def check_bandwidth_consistent(
    scanned: ScannedPlaylist, ctx: RuleContext
) -> Iterator[Finding]:
    if not ctx.has_media_playlists:
        return
    for variant in scanned.variants:
        declared = variant.bandwidth_bps
        if declared is None:
            continue
        derived = derived_variant_peak_bps(variant, ctx)
        if derived is None:
            continue
        if abs(declared - derived) > 0.25 * derived:
            yield check_bandwidth_consistent.rule.finding(
                f"variant {variant.uri!r} declares BANDWIDTH={declared} but "
                f"its tracks' derived aggregate peak is ~{derived}; players "
                "budget combinations from the declared value",
                scanned.doc.find_in_line(variant.line, f"BANDWIDTH={declared}"),
                line_text=scanned.doc.line_text(variant.line),
            )


def derived_variant_peak_bps(variant, ctx: RuleContext):
    """Aggregate (video + audio) peak bps derived from media playlists."""
    video = ctx.resolve_variant_video(variant.uri)
    if video is None:
        return None
    rates = derived_segment_bitrates_kbps(video)
    if not rates:
        return None
    total_kbps = max(rates)
    audio_id = variant.audio_id
    if audio_id is not None:
        # Only judge the aggregate when the audio side is resolvable too
        # (per-rung multi-language groups keep audio in per-language
        # playlists this convention cannot reach).
        audio = ctx.resolve_rendition(f"{audio_id}.m3u8")
        if audio is None:
            return None
        audio_rates = derived_segment_bitrates_kbps(audio)
        if not audio_rates:
            return None
        total_kbps += max(audio_rates)
    return int(round(total_kbps * 1000))


def derived_variant_average_bps(variant, ctx: RuleContext):
    """Aggregate (video + audio) average bps derived from media playlists."""

    def avg_kbps(scanned: ScannedPlaylist):
        rates = derived_segment_bitrates_kbps(scanned)
        if not rates:
            return None
        durations = [s.duration_s or 0.0 for s in scanned.segments]
        total_s = sum(durations)
        if total_s <= 0:
            return None
        bits = sum(r * 1000.0 * d for r, d in zip(rates, durations))
        return bits / total_s / 1000.0

    video = ctx.resolve_variant_video(variant.uri)
    if video is None:
        return None
    total = avg_kbps(video)
    if total is None:
        return None
    audio_id = variant.audio_id
    if audio_id is not None:
        audio = ctx.resolve_rendition(f"{audio_id}.m3u8")
        if audio is None:
            return None
        audio_avg = avg_kbps(audio)
        if audio_avg is None:
            return None
        total += audio_avg
    return int(round(total * 1000))
