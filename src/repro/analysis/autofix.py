"""Autofix: minimal text edits that repair fixable findings.

The contract is **idempotence**: running :func:`fix_files` on its own
output is a no-op, and the fixed text re-lints clean for every rule a
fixer handled. Fixes are *minimal* — they insert or rewrite the
smallest span that satisfies the rule and never reflow untouched lines.

Mechanics: each fixer maps one finding to a list of character-offset
:class:`TextEdit`\\ s. Edits are applied per file, non-overlapping,
right-to-left; edits that would overlap are deferred to the next pass,
and the engine re-lints between passes so fixers always see a fresh
scan. The loop converges because every fixer strictly reduces its
rule's finding count and no fixer introduces text another fixer
rewrites differently.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Tuple

from .code_engine import _ALLOW_RE
from .context import RuleContext
from .engine import AnalyzedDocument, AnalyzerConfig, prepare, run_rules
from .findings import Finding, sort_findings
from .hls_rules import (
    derived_variant_average_bps,
    required_version,
)
from .hls_syntax import ScannedPlaylist
from .spans import Document

#: One pass per fixable rule plus slack: each pass repairs at least one
#: whole rule per file, so this bounds every convergent input.
MAX_PASSES = 12


@dataclass(frozen=True)
class TextEdit:
    """Replace ``text[start:end]`` with ``replacement`` (start==end inserts)."""

    start: int
    end: int
    replacement: str

    def __post_init__(self) -> None:
        if self.start < 0 or self.end < self.start:
            raise ValueError(f"bad edit range [{self.start}, {self.end})")


def apply_edits(text: str, edits: List[TextEdit]) -> Tuple[str, int]:
    """Apply non-overlapping edits; returns (new_text, n_applied).

    Edits are applied right-to-left; an edit overlapping an already
    accepted one is skipped (the caller re-lints and retries).
    """
    applied = 0
    accepted_start: Optional[int] = None
    for edit in sorted(edits, key=lambda e: (e.start, e.end), reverse=True):
        if accepted_start is not None and edit.end > accepted_start:
            continue  # overlap: defer to the next pass
        text = text[: edit.start] + edit.replacement + text[edit.end :]
        accepted_start = edit.start
        applied += 1
    return text, applied


def _replace_line(doc: Document, line: int, new_text: str) -> TextEdit:
    start = doc.offset_of(line, 1)
    return TextEdit(start, start + len(doc.line_text(line)), new_text)


def _insert_line_before(doc: Document, line: int, new_line: str) -> TextEdit:
    start = doc.offset_of(line, 1)
    return TextEdit(start, start, new_line + "\n")


def _append_line(doc: Document, new_line: str) -> TextEdit:
    text = doc.text
    if text.endswith("\n") or not text:
        return TextEdit(len(text), len(text), new_line + "\n")
    return TextEdit(len(text), len(text), "\n" + new_line + "\n")


def _header_insert_line(scanned: ScannedPlaylist) -> int:
    """The 1-based line *before* which header tags should be inserted."""
    # After #EXTM3U (line 1 by convention) and EXT-X-VERSION when present.
    anchor = 1
    for line_no in range(1, scanned.doc.n_lines + 1):
        text = scanned.doc.line_text(line_no).strip()
        if text == "#EXTM3U" or text.startswith("#EXT-X-VERSION:"):
            anchor = line_no
            continue
        if text:
            break
    return anchor + 1


def _variant_at(scanned: ScannedPlaylist, line: int):
    for variant in scanned.variants:
        if variant.line == line:
            return variant
    return None


def _required_target_duration(scanned: ScannedPlaylist) -> int:
    durations = [s.duration_s for s in scanned.segments if s.duration_s]
    if not durations:
        return 1
    # RFC 8216: target duration must be >= every EXTINF duration rounded
    # to the nearest integer.
    return max(int(round(d)) for d in durations)


def _find_peak_bandwidth_attr(line_text: str) -> Optional[Tuple[int, int]]:
    """(start, end) column span of the peak BANDWIDTH value in a line.

    Skips ``AVERAGE-BANDWIDTH`` occurrences.
    """
    idx = 0
    while True:
        idx = line_text.find("BANDWIDTH=", idx)
        if idx < 0:
            return None
        if line_text[:idx].endswith("AVERAGE-"):
            idx += len("BANDWIDTH=")
            continue
        value_start = idx + len("BANDWIDTH=")
        value_end = value_start
        while value_end < len(line_text) and line_text[value_end].isdigit():
            value_end += 1
        return value_start, value_end


# ---------------------------------------------------------------------------
# Fixers: finding -> edits
# ---------------------------------------------------------------------------

Fixer = Callable[[Finding, AnalyzedDocument, RuleContext], List[TextEdit]]


def fix_extm3u(finding, analyzed, ctx) -> List[TextEdit]:
    return [TextEdit(0, 0, "#EXTM3U\n")]


def fix_version_gate(finding, analyzed, ctx) -> List[TextEdit]:
    scanned = analyzed.playlist
    required = required_version(scanned)
    new_line = f"#EXT-X-VERSION:{required}"
    if scanned.version_line:
        return [_replace_line(analyzed.doc, scanned.version_line, new_line)]
    anchor = 2 if scanned.has_extm3u else 1
    if anchor > analyzed.doc.n_lines:
        return [_append_line(analyzed.doc, new_line)]
    return [_insert_line_before(analyzed.doc, anchor, new_line)]


def fix_targetduration_present(finding, analyzed, ctx) -> List[TextEdit]:
    scanned = analyzed.playlist
    target = _required_target_duration(scanned)
    new_line = f"#EXT-X-TARGETDURATION:{target}"
    anchor = _header_insert_line(scanned)
    if anchor > analyzed.doc.n_lines:
        return [_append_line(analyzed.doc, new_line)]
    return [_insert_line_before(analyzed.doc, anchor, new_line)]


def fix_targetduration(finding, analyzed, ctx) -> List[TextEdit]:
    scanned = analyzed.playlist
    if not scanned.target_duration_line:
        return []
    target = _required_target_duration(scanned)
    return [
        _replace_line(
            analyzed.doc,
            scanned.target_duration_line,
            f"#EXT-X-TARGETDURATION:{target}",
        )
    ]


def fix_endlist(finding, analyzed, ctx) -> List[TextEdit]:
    return [_append_line(analyzed.doc, "#EXT-X-ENDLIST")]


def fix_average_bandwidth(finding, analyzed, ctx) -> List[TextEdit]:
    scanned = analyzed.playlist
    variant = _variant_at(scanned, finding.line)
    if variant is None or variant.bandwidth_bps is None:
        return []
    value = derived_variant_average_bps(variant, ctx)
    if value is None:
        # Without media playlists the best conservative average is the
        # declared peak itself (never *under*-budgets).
        value = variant.bandwidth_bps
    line_text = analyzed.doc.line_text(variant.line)
    attr_span = _find_peak_bandwidth_attr(line_text)
    if attr_span is None:
        return []
    _, value_end = attr_span
    offset = analyzed.doc.offset_of(variant.line, 1) + value_end
    return [TextEdit(offset, offset, f",AVERAGE-BANDWIDTH={value}")]


def fix_bandwidth_consistent(finding, analyzed, ctx) -> List[TextEdit]:
    from .hls_rules import derived_variant_peak_bps

    scanned = analyzed.playlist
    variant = _variant_at(scanned, finding.line)
    if variant is None:
        return []
    derived = derived_variant_peak_bps(variant, ctx)
    if derived is None:
        return []
    line_text = analyzed.doc.line_text(variant.line)
    attr_span = _find_peak_bandwidth_attr(line_text)
    if attr_span is None:
        return []
    value_start, value_end = attr_span
    line_offset = analyzed.doc.offset_of(variant.line, 1)
    return [
        TextEdit(line_offset + value_start, line_offset + value_end, str(derived))
    ]


def fix_variant_order(finding, analyzed, ctx) -> List[TextEdit]:
    """Reorder variant blocks ascending by aggregate BANDWIDTH.

    Runs once per document (the engine dedupes per-video findings): the
    global ascending order satisfies the rule for every video track,
    because the first variant containing a video is then its cheapest.
    """
    scanned = analyzed.playlist
    doc = analyzed.doc
    blocks = []
    for index, variant in enumerate(scanned.variants):
        if not variant.uri_line:
            return []  # malformed master; let HLS-URI-PRESENT report it
        start = doc.offset_of(variant.line, 1)
        end = doc.offset_of(variant.uri_line, 1) + len(
            doc.line_text(variant.uri_line)
        )
        blocks.append((start, end, doc.text[start:end], variant, index))
    slots = sorted(blocks, key=lambda b: b[0])
    ordered = sorted(
        blocks,
        key=lambda b: (
            b[3].bandwidth_bps is None,
            b[3].bandwidth_bps or 0,
            b[4],
        ),
    )
    edits = []
    for (start, end, old_text, _v, _i), (_s, _e, new_text, _nv, _ni) in zip(
        slots, ordered
    ):
        if old_text != new_text:
            edits.append(TextEdit(start, end, new_text))
    return edits


def fix_bitrate_tag(finding, analyzed, ctx) -> List[TextEdit]:
    """Insert derived ``EXT-X-BITRATE`` tags on untagged segments."""
    scanned = analyzed.playlist
    edits = []
    for segment in scanned.segments:
        if segment.bitrate_kbps is not None:
            continue
        if segment.byterange is None or not segment.duration_s:
            continue
        rate_kbps = segment.byterange[0] * 8.0 / segment.duration_s / 1000.0
        edits.append(
            _insert_line_before(
                analyzed.doc,
                segment.extinf_line,
                f"#EXT-X-BITRATE:{int(round(rate_kbps))}",
            )
        )
    return edits


_STALE_TOKEN_RE = re.compile(r"suppression (?:blanket )?'([^']*)'")


def fix_unused_suppress(finding, analyzed, ctx) -> List[TextEdit]:
    """Remove one stale allow-token; drops the comment when it empties.

    Each finding names one token; the bracket list is rewritten without
    it. When the last token goes and nothing but the allow grammar is
    left in the comment, the whole comment goes too (the whole line, if
    the comment stood alone). Overlapping same-line edits defer to the
    next pass via the engine's re-lint loop.
    """
    token_match = _STALE_TOKEN_RE.search(finding.message)
    if token_match is None:
        return []
    token = token_match.group(1)
    doc = analyzed.doc
    line_text = doc.line_text(finding.line)
    line_offset = doc.offset_of(finding.line, 1)
    for match in _ALLOW_RE.finditer(line_text):
        tokens = [t.strip() for t in match.group(1).split(",") if t.strip()]
        if token not in tokens:
            continue
        remaining = [t for t in tokens if t != token]
        if remaining:
            return [
                TextEdit(
                    line_offset + match.start(1),
                    line_offset + match.end(1),
                    ", ".join(remaining),
                )
            ]
        try:
            comment_start = line_text.rindex("#", 0, match.start())
        except ValueError:
            comment_start = match.start()
        comment = line_text[comment_start:]
        rest = comment.replace(line_text[match.start() : match.end()], "")
        if rest.strip("#;, \t"):
            # The comment carries prose beyond the allow grammar: strip
            # just the grammar (plus a dangling separator before it).
            start = match.start()
            while start > comment_start + 1 and line_text[start - 1] in "; \t":
                start -= 1
            return [
                TextEdit(line_offset + start, line_offset + match.end(), "")
            ]
        if not line_text[:comment_start].strip():
            # Comment-only line: remove the line entirely.
            end = line_offset + len(line_text)
            if doc.text[end : end + 1] == "\n":
                end += 1
            return [TextEdit(line_offset, end, "")]
        start = comment_start
        while start > 0 and line_text[start - 1] in " \t":
            start -= 1
        return [
            TextEdit(line_offset + start, line_offset + len(line_text), "")
        ]
    return []


FIXERS: Dict[str, Fixer] = {
    "LINT-UNUSED-SUPPRESS": fix_unused_suppress,
    "HLS-EXTM3U": fix_extm3u,
    "HLS-VERSION-GATE": fix_version_gate,
    "HLS-TARGETDURATION-PRESENT": fix_targetduration_present,
    "HLS-TARGETDURATION": fix_targetduration,
    "HLS-ENDLIST": fix_endlist,
    "HLS-AVERAGE-BANDWIDTH": fix_average_bandwidth,
    "HLS-BANDWIDTH-CONSISTENT": fix_bandwidth_consistent,
    "HLS-VARIANT-ORDER": fix_variant_order,
    "HLS-BITRATE-TAG": fix_bitrate_tag,
}

#: Per-file application order. One rule's edits are applied per file per
#: pass: two fixers computing insert anchors from the same pre-fix text
#: would interleave (e.g. EXT-X-VERSION landing above #EXTM3U), so each
#: pass applies only the highest-priority rule with findings and the
#: multi-pass loop picks up the rest against fresh text.
_FIX_ORDER = [
    "HLS-EXTM3U",
    "HLS-VERSION-GATE",
    "HLS-TARGETDURATION-PRESENT",
    "HLS-TARGETDURATION",
    "HLS-ENDLIST",
    "HLS-VARIANT-ORDER",
    "HLS-BITRATE-TAG",
    "HLS-AVERAGE-BANDWIDTH",
    "HLS-BANDWIDTH-CONSISTENT",
    "LINT-UNUSED-SUPPRESS",
]
_FIX_PRIORITY = {rule_id: i for i, rule_id in enumerate(_FIX_ORDER)}

#: Rules whose fixer repairs the whole document from one finding.
_ONCE_PER_DOC = {
    "HLS-VARIANT-ORDER",
    "HLS-BITRATE-TAG",
    "HLS-EXTM3U",
    "HLS-VERSION-GATE",
    "HLS-TARGETDURATION-PRESENT",
    "HLS-TARGETDURATION",
    "HLS-ENDLIST",
}


@dataclass
class FixResult:
    """Outcome of :func:`fix_files`."""

    files: Dict[str, str]
    #: Findings a fixer produced edits for, across all passes.
    fixed: List[Finding] = field(default_factory=list)
    passes: int = 0

    @property
    def n_fixed(self) -> int:
        return len(self.fixed)


def fix_files(
    files: Mapping[str, str], config: Optional[AnalyzerConfig] = None
) -> FixResult:
    """Fix every fixable finding; idempotent (fix(fix(x)) == fix(x))."""
    current: Dict[str, str] = dict(files)
    result = FixResult(files=current)
    for _pass in range(MAX_PASSES):
        prepared, ctx = prepare(current, config)
        findings = sort_findings(run_rules(prepared, ctx))
        if config is not None and config.baseline is not None:
            findings = config.baseline.filter(findings)
        by_name = {a.name: a for a in prepared}
        # Per file, fix only the highest-priority rule this pass; its
        # edits all come from one fixer over one consistent text view.
        active_rule: Dict[str, str] = {}
        for finding in findings:
            if finding.rule not in FIXERS or finding.file not in by_name:
                continue
            best = active_rule.get(finding.file)
            if best is None or (
                _FIX_PRIORITY[finding.rule] < _FIX_PRIORITY[best]
            ):
                active_rule[finding.file] = finding.rule
        edits_by_file: Dict[str, List[TextEdit]] = {}
        handled = set()
        fixed_now: List[Finding] = []
        for finding in findings:
            if active_rule.get(finding.file) != finding.rule:
                continue
            key = (finding.rule, finding.file)
            if finding.rule in _ONCE_PER_DOC and key in handled:
                continue
            handled.add(key)
            analyzed = by_name[finding.file]
            edits = FIXERS[finding.rule](finding, analyzed, ctx)
            if edits:
                edits_by_file.setdefault(finding.file, []).extend(edits)
                fixed_now.append(finding)
        if not edits_by_file:
            break
        changed = False
        for name, edits in edits_by_file.items():
            new_text, applied = apply_edits(current[name], edits)
            if applied and new_text != current[name]:
                current[name] = new_text
                changed = True
        result.passes += 1
        if not changed:
            break
        result.fixed.extend(fixed_now)
    result.files = current
    return result
