"""AST-based determinism lint for the simulator's own source.

The runner's content-addressed result cache (``repro.runner``) replays
sessions by spec hash: two runs of the same :class:`SimulationJob` must
produce byte-identical results, on any worker, under any
``PYTHONHASHSEED``. That only holds if simulation code never consults
ambient nondeterminism. This lint walks Python source and flags the
three ways that invariant historically breaks:

* ``DET-UNSEEDED-RANDOM`` — calls to the ``random`` *module's* global
  functions (``random.random()``, ``random.choice``, ...), or
  ``random.Random()`` / ``random.seed()`` with no seed argument. All
  stochastic simulator inputs must thread an explicit seed
  (``random.Random(seed)``).
* ``DET-WALLCLOCK`` — ``time.time()`` / ``time.time_ns()`` /
  ``datetime.now()`` / ``utcnow()`` / ``today()``: wall-clock reads
  make results depend on when the job ran. (``time.perf_counter`` is
  deliberately allowed — it only feeds measurement metadata, never
  simulated behaviour.)
* ``DET-SET-ORDER`` — order-sensitive consumption of an unordered set:
  iterating a set literal/constructor in a ``for`` or comprehension,
  materializing one with ``list()``/``tuple()``/``enumerate()``/
  ``join()``, or ``max()``/``min()`` *with a key function* over a set
  (ties break by hash order). ``sorted(set(...))`` and membership
  tests are fine and not flagged.

A line opts out with the unified suppression grammar shared by every
code rule — ``# lint: allow[DET-SET-ORDER]`` — applied centrally by the
analysis engine (see :mod:`repro.analysis.code_engine`). The legacy
``# det: allow`` comment still works for ``DET-*`` rules for one
release, at the cost of a ``LINT-DEPRECATED-SUPPRESS`` note.

The shared parsing/import-tracking infrastructure these rules grew in
PR 3 now lives in :mod:`repro.analysis.code_engine`; the public names
(:class:`PySource`, :func:`parse_python`) are re-exported here for
backwards compatibility.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .code_engine import (  # noqa: F401  (re-exported for back-compat)
    ImportTracker,
    LEGACY_SUPPRESS_COMMENT,
    PySource,
    RANDOM_MODULE_FUNCS,
    WALLCLOCK_DATETIME_FUNCS,
    WALLCLOCK_TIME_FUNCS,
    parse_python,
    unseeded_random_call,
    wallclock_call,
)
from .findings import Finding, Severity
from .registry import Category, Kind, rule

#: Legacy name kept for back-compat with PR 3 callers.
SUPPRESS_COMMENT = "# " + LEGACY_SUPPRESS_COMMENT

#: Builtins that materialize their iterable in iteration order.
_ORDER_SENSITIVE_BUILTINS = {"list", "tuple", "enumerate", "iter"}


def _is_set_expr(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in {"set", "frozenset"}
    return False


def _describe_set(node: ast.AST) -> str:
    if isinstance(node, ast.Set):
        return "a set literal"
    if isinstance(node, ast.SetComp):
        return "a set comprehension"
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return f"{node.func.id}(...)"
    return "a set"


@rule(
    "DET-UNSEEDED-RANDOM",
    Severity.ERROR,
    Category.DETERMINISM,
    Kind.PYTHON,
    summary="simulation code must not use the global random module state",
    reference="repro.runner cache contract (PR 2); docs/architecture.md",
)
def check_unseeded_random(src: PySource, ctx) -> Iterator[Finding]:
    imports = src.imports
    for node in ast.walk(src.tree):
        if not isinstance(node, ast.Call):
            continue
        # Detection lives in code_engine.unseeded_random_call so the
        # function summaries (and POLICY-NONDETERMINISM) share it.
        flagged = unseeded_random_call(node, imports)
        if flagged:
            yield check_unseeded_random.rule.finding(
                f"{flagged} draws from the process-global RNG; thread an "
                "explicit random.Random(seed) through the simulation "
                "instead",
                src.span(node),
                line_text=src.line_text(node),
            )


@rule(
    "DET-WALLCLOCK",
    Severity.ERROR,
    Category.DETERMINISM,
    Kind.PYTHON,
    summary="simulation code must not read the wall clock",
    reference="repro.runner cache contract (PR 2)",
)
def check_wallclock(src: PySource, ctx) -> Iterator[Finding]:
    imports = src.imports
    for node in ast.walk(src.tree):
        if not isinstance(node, ast.Call):
            continue
        # Detection lives in code_engine.wallclock_call; see above.
        flagged = wallclock_call(node, imports)
        if flagged:
            yield check_wallclock.rule.finding(
                f"{flagged} reads the wall clock; simulated time must come "
                "from the event loop, and timestamps belong in result "
                "metadata stamped outside the simulation",
                src.span(node),
                line_text=src.line_text(node),
            )


@rule(
    "DET-SET-ORDER",
    Severity.WARNING,
    Category.DETERMINISM,
    Kind.PYTHON,
    summary="do not consume unordered sets in an order-sensitive way",
    reference="repro.runner cache contract (PR 2); PYTHONHASHSEED",
)
def check_set_order(src: PySource, ctx) -> Iterator[Finding]:
    for node in ast.walk(src.tree):
        target = None
        detail = ""
        if isinstance(node, ast.For) and _is_set_expr(node.iter):
            target = node.iter
            detail = f"for-loop iterates {_describe_set(node.iter)}"
        elif isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.DictComp)):
            for comp in node.generators:
                if _is_set_expr(comp.iter):
                    target = comp.iter
                    detail = (
                        f"comprehension iterates {_describe_set(comp.iter)}"
                    )
                    break
        elif isinstance(node, ast.Call):
            func = node.func
            first = node.args[0] if node.args else None
            if (
                isinstance(func, ast.Name)
                and func.id in _ORDER_SENSITIVE_BUILTINS
                and first is not None
                and _is_set_expr(first)
            ):
                target = first
                detail = f"{func.id}() materializes {_describe_set(first)}"
            elif (
                isinstance(func, ast.Name)
                and func.id in {"max", "min"}
                and first is not None
                and _is_set_expr(first)
                and any(k.arg == "key" for k in node.keywords)
            ):
                target = first
                detail = (
                    f"{func.id}(..., key=...) over {_describe_set(first)} "
                    "breaks ties by hash order"
                )
            elif (
                isinstance(func, ast.Attribute)
                and func.attr == "join"
                and first is not None
                and _is_set_expr(first)
            ):
                target = first
                detail = f"str.join() concatenates {_describe_set(first)}"
        if target is not None:
            yield check_set_order.rule.finding(
                f"{detail}; set iteration order depends on PYTHONHASHSEED — "
                "sort first (sorted(...)) or use a deterministic tie-break "
                "(collections.Counter preserves insertion order)",
                src.span(target),
                line_text=src.line_text(target),
            )
