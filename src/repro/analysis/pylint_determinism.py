"""AST-based determinism lint for the simulator's own source.

The runner's content-addressed result cache (``repro.runner``) replays
sessions by spec hash: two runs of the same :class:`SimulationJob` must
produce byte-identical results, on any worker, under any
``PYTHONHASHSEED``. That only holds if simulation code never consults
ambient nondeterminism. This lint walks Python source and flags the
three ways that invariant historically breaks:

* ``DET-UNSEEDED-RANDOM`` — calls to the ``random`` *module's* global
  functions (``random.random()``, ``random.choice``, ...), or
  ``random.Random()`` / ``random.seed()`` with no seed argument. All
  stochastic simulator inputs must thread an explicit seed
  (``random.Random(seed)``).
* ``DET-WALLCLOCK`` — ``time.time()`` / ``time.time_ns()`` /
  ``datetime.now()`` / ``utcnow()`` / ``today()``: wall-clock reads
  make results depend on when the job ran. (``time.perf_counter`` is
  deliberately allowed — it only feeds measurement metadata, never
  simulated behaviour.)
* ``DET-SET-ORDER`` — order-sensitive consumption of an unordered set:
  iterating a set literal/constructor in a ``for`` or comprehension,
  materializing one with ``list()``/``tuple()``/``enumerate()``/
  ``join()``, or ``max()``/``min()`` *with a key function* over a set
  (ties break by hash order). ``sorted(set(...))`` and membership
  tests are fine and not flagged.

A line can opt out with a ``# det: allow`` comment (e.g. code that is
genuinely outside any simulation path).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Set

from .findings import Finding, Severity
from .registry import Category, Kind, rule
from .spans import Document, SourceSpan

SUPPRESS_COMMENT = "# det: allow"

#: ``random`` module-level functions whose use implies the shared,
#: unseeded global RNG.
_RANDOM_MODULE_FUNCS = {
    "random",
    "randint",
    "randrange",
    "uniform",
    "triangular",
    "choice",
    "choices",
    "shuffle",
    "sample",
    "gauss",
    "normalvariate",
    "lognormvariate",
    "expovariate",
    "vonmisesvariate",
    "gammavariate",
    "betavariate",
    "paretovariate",
    "weibullvariate",
    "getrandbits",
    "randbytes",
}

_WALLCLOCK_TIME_FUNCS = {"time", "time_ns"}
_WALLCLOCK_DATETIME_FUNCS = {"now", "utcnow", "today"}

#: Builtins that materialize their iterable in iteration order.
_ORDER_SENSITIVE_BUILTINS = {"list", "tuple", "enumerate", "iter"}


class _ImportTracker:
    """What local names refer to the modules/classes we care about."""

    def __init__(self) -> None:
        self.random_modules: Set[str] = set()
        self.time_modules: Set[str] = set()
        self.datetime_modules: Set[str] = set()
        self.datetime_classes: Set[str] = set()
        #: local name -> random module function it aliases
        self.random_funcs: Dict[str, str] = {}
        #: local name -> time module function it aliases
        self.time_funcs: Dict[str, str] = {}

    def visit_imports(self, tree: ast.AST) -> None:
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    if alias.name == "random":
                        self.random_modules.add(local)
                    elif alias.name == "time":
                        self.time_modules.add(local)
                    elif alias.name == "datetime":
                        self.datetime_modules.add(local)
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random":
                    for alias in node.names:
                        if alias.name in _RANDOM_MODULE_FUNCS | {"seed"}:
                            self.random_funcs[alias.asname or alias.name] = (
                                alias.name
                            )
                elif node.module == "time":
                    for alias in node.names:
                        if alias.name in _WALLCLOCK_TIME_FUNCS:
                            self.time_funcs[alias.asname or alias.name] = (
                                alias.name
                            )
                elif node.module == "datetime":
                    for alias in node.names:
                        if alias.name in {"datetime", "date"}:
                            self.datetime_classes.add(alias.asname or alias.name)


def _is_set_expr(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in {"set", "frozenset"}
    return False


def _describe_set(node: ast.AST) -> str:
    if isinstance(node, ast.Set):
        return "a set literal"
    if isinstance(node, ast.SetComp):
        return "a set comprehension"
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return f"{node.func.id}(...)"
    return "a set"


class PySource:
    """A parsed Python document: AST + import context + raw lines."""

    def __init__(self, doc: Document, tree: ast.Module) -> None:
        self.doc = doc
        self.tree = tree
        self.imports = _ImportTracker()
        self.imports.visit_imports(tree)

    def suppressed(self, line: int) -> bool:
        try:
            return SUPPRESS_COMMENT in self.doc.line_text(line)
        except IndexError:
            return False

    def span(self, node: ast.AST) -> SourceSpan:
        return SourceSpan(
            file=self.doc.name,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
        )

    def line_text(self, node: ast.AST) -> str:
        try:
            return self.doc.line_text(getattr(node, "lineno", 1))
        except IndexError:
            return ""


@rule(
    "DET-UNSEEDED-RANDOM",
    Severity.ERROR,
    Category.DETERMINISM,
    Kind.PYTHON,
    summary="simulation code must not use the global random module state",
    reference="repro.runner cache contract (PR 2); docs/architecture.md",
)
def check_unseeded_random(src: PySource, ctx) -> Iterator[Finding]:
    imports = src.imports
    for node in ast.walk(src.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        flagged = None
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id in imports.random_modules
        ):
            if func.attr in _RANDOM_MODULE_FUNCS:
                flagged = f"random.{func.attr}()"
            elif func.attr in {"Random", "seed"} and not (
                node.args or node.keywords
            ):
                flagged = f"random.{func.attr}() without a seed"
        elif isinstance(func, ast.Name) and func.id in imports.random_funcs:
            original = imports.random_funcs[func.id]
            if original == "seed":
                if not (node.args or node.keywords):
                    flagged = "seed() without a seed value"
            else:
                flagged = f"{original}() imported from random"
        if flagged and not src.suppressed(node.lineno):
            yield check_unseeded_random.rule.finding(
                f"{flagged} draws from the process-global RNG; thread an "
                "explicit random.Random(seed) through the simulation "
                "instead",
                src.span(node),
                line_text=src.line_text(node),
            )


@rule(
    "DET-WALLCLOCK",
    Severity.ERROR,
    Category.DETERMINISM,
    Kind.PYTHON,
    summary="simulation code must not read the wall clock",
    reference="repro.runner cache contract (PR 2)",
)
def check_wallclock(src: PySource, ctx) -> Iterator[Finding]:
    imports = src.imports
    for node in ast.walk(src.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        flagged = None
        if isinstance(func, ast.Attribute):
            base = func.value
            if (
                isinstance(base, ast.Name)
                and base.id in imports.time_modules
                and func.attr in _WALLCLOCK_TIME_FUNCS
            ):
                flagged = f"time.{func.attr}()"
            elif (
                isinstance(base, ast.Name)
                and base.id in imports.datetime_classes
                and func.attr in _WALLCLOCK_DATETIME_FUNCS
            ):
                flagged = f"datetime.{func.attr}()"
            elif (
                isinstance(base, ast.Attribute)
                and isinstance(base.value, ast.Name)
                and base.value.id in imports.datetime_modules
                and base.attr in {"datetime", "date"}
                and func.attr in _WALLCLOCK_DATETIME_FUNCS
            ):
                flagged = f"datetime.{base.attr}.{func.attr}()"
        elif isinstance(func, ast.Name) and func.id in imports.time_funcs:
            flagged = f"{imports.time_funcs[func.id]}() imported from time"
        if flagged and not src.suppressed(node.lineno):
            yield check_wallclock.rule.finding(
                f"{flagged} reads the wall clock; simulated time must come "
                "from the event loop, and timestamps belong in result "
                "metadata stamped outside the simulation",
                src.span(node),
                line_text=src.line_text(node),
            )


@rule(
    "DET-SET-ORDER",
    Severity.WARNING,
    Category.DETERMINISM,
    Kind.PYTHON,
    summary="do not consume unordered sets in an order-sensitive way",
    reference="repro.runner cache contract (PR 2); PYTHONHASHSEED",
)
def check_set_order(src: PySource, ctx) -> Iterator[Finding]:
    for node in ast.walk(src.tree):
        target = None
        detail = ""
        if isinstance(node, ast.For) and _is_set_expr(node.iter):
            target = node.iter
            detail = f"for-loop iterates {_describe_set(node.iter)}"
        elif isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.DictComp)):
            for comp in node.generators:
                if _is_set_expr(comp.iter):
                    target = comp.iter
                    detail = (
                        f"comprehension iterates {_describe_set(comp.iter)}"
                    )
                    break
        elif isinstance(node, ast.Call):
            func = node.func
            first = node.args[0] if node.args else None
            if (
                isinstance(func, ast.Name)
                and func.id in _ORDER_SENSITIVE_BUILTINS
                and first is not None
                and _is_set_expr(first)
            ):
                target = first
                detail = f"{func.id}() materializes {_describe_set(first)}"
            elif (
                isinstance(func, ast.Name)
                and func.id in {"max", "min"}
                and first is not None
                and _is_set_expr(first)
                and any(k.arg == "key" for k in node.keywords)
            ):
                target = first
                detail = (
                    f"{func.id}(..., key=...) over {_describe_set(first)} "
                    "breaks ties by hash order"
                )
            elif (
                isinstance(func, ast.Attribute)
                and func.attr == "join"
                and first is not None
                and _is_set_expr(first)
            ):
                target = first
                detail = f"str.join() concatenates {_describe_set(first)}"
        if target is not None and not src.suppressed(
            getattr(target, "lineno", 1)
        ):
            yield check_set_order.rule.finding(
                f"{detail}; set iteration order depends on PYTHONHASHSEED — "
                "sort first (sorted(...)) or use a deterministic tie-break "
                "(collections.Counter preserves insertion order)",
                src.span(target),
                line_text=src.line_text(target),
            )


def parse_python(doc: Document) -> PySource:
    """Parse a Python document; raises ``SyntaxError`` on bad source."""
    tree = ast.parse(doc.text, filename=doc.name)
    return PySource(doc, tree)
