"""Source documents and spans.

The analyzer lints raw manifest *text*, so every finding must be able
to point at the exact file, line and column it came from — the way a
compiler or a real linter does. :class:`Document` wraps one text file
and provides offset <-> (line, column) conversion; :class:`SourceSpan`
is the half-open region a finding or a text edit covers.

Lines and columns are 1-based (editor convention, and what SARIF's
``region`` object expects); offsets are 0-based character offsets into
the document text.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import List, Optional, Tuple


@dataclass(frozen=True)
class SourceSpan:
    """A half-open [start, end) region of a document, in line/column."""

    file: str
    line: int  # 1-based start line
    col: int = 1  # 1-based start column
    end_line: Optional[int] = None
    end_col: Optional[int] = None

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.file}:{self.line}:{self.col}"


@dataclass
class Document:
    """One text document under analysis: name + content + line index."""

    name: str
    text: str
    _line_starts: List[int] = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        starts = [0]
        for i, char in enumerate(self.text):
            if char == "\n":
                starts.append(i + 1)
        self._line_starts = starts

    @property
    def n_lines(self) -> int:
        return len(self._line_starts)

    def line_text(self, line: int) -> str:
        """The text of 1-based ``line``, without its newline."""
        if not 1 <= line <= self.n_lines:
            raise IndexError(f"line {line} out of range 1..{self.n_lines}")
        start = self._line_starts[line - 1]
        end = (
            self._line_starts[line] - 1
            if line < self.n_lines
            else len(self.text)
        )
        return self.text[start:end]

    def lines(self) -> List[str]:
        return [self.line_text(i) for i in range(1, self.n_lines + 1)]

    def offset_of(self, line: int, col: int = 1) -> int:
        """Character offset of 1-based (line, col)."""
        return self._line_starts[line - 1] + (col - 1)

    def position_of(self, offset: int) -> Tuple[int, int]:
        """1-based (line, col) of a character offset."""
        if offset < 0 or offset > len(self.text):
            raise IndexError(f"offset {offset} out of range 0..{len(self.text)}")
        line = bisect.bisect_right(self._line_starts, offset)
        return line, offset - self._line_starts[line - 1] + 1

    def span_of_line(self, line: int, col: int = 1) -> SourceSpan:
        """A span covering 1-based ``line`` from ``col`` to its end."""
        text = self.line_text(line)
        return SourceSpan(
            file=self.name,
            line=line,
            col=col,
            end_line=line,
            end_col=len(text) + 1,
        )

    def find_in_line(self, line: int, needle: str) -> SourceSpan:
        """Span of the first occurrence of ``needle`` in ``line``.

        Falls back to the whole line when the needle is absent, so rules
        can point at an attribute without hard-failing on odd input.
        """
        text = self.line_text(line)
        idx = text.find(needle)
        if idx < 0:
            return self.span_of_line(line)
        return SourceSpan(
            file=self.name,
            line=line,
            col=idx + 1,
            end_line=line,
            end_col=idx + 1 + len(needle),
        )
