"""Findings: what a rule reports when a document violates it.

A :class:`Finding` ties a rule ID and severity to a
:class:`~repro.analysis.spans.SourceSpan`, so output can be rendered
like a compiler diagnostic (``file:line:col [SEVERITY] RULE message``)
and exported to SARIF. The stable :meth:`Finding.fingerprint` keys the
suppression baseline: it hashes the rule, the file and the *text* of
the offending line rather than its number, so a baseline survives
unrelated edits above the finding.
"""

from __future__ import annotations

import enum
import hashlib
import json
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence

from .spans import SourceSpan


class Severity(enum.Enum):
    ERROR = "error"  # a player will misbehave (spec- or paper-documented)
    WARNING = "warning"  # risky practice
    INFO = "info"  # improvement opportunity

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


_SEVERITY_ORDER = {Severity.INFO: 0, Severity.WARNING: 1, Severity.ERROR: 2}

#: SARIF ``level`` values for each severity.
SARIF_LEVELS = {
    Severity.ERROR: "error",
    Severity.WARNING: "warning",
    Severity.INFO: "note",
}


@dataclass(frozen=True)
class Finding:
    """One rule violation, anchored to a source span."""

    rule: str
    severity: Severity
    message: str
    span: SourceSpan
    #: Rule category (see :mod:`repro.analysis.registry`).
    category: str = ""
    #: The text of the offending line (used for fingerprints and
    #: context rendering; empty when the finding is document-level).
    line_text: str = ""
    #: True when the autofix layer knows how to repair this finding.
    fixable: bool = False

    @property
    def file(self) -> str:
        return self.span.file

    @property
    def line(self) -> int:
        return self.span.line

    @property
    def col(self) -> int:
        return self.span.col

    def fingerprint(self) -> str:
        """Stable identity for baselines: rule + file + line content."""
        payload = f"{self.rule}|{self.span.file}|{self.line_text.strip()}"
        return hashlib.sha1(payload.encode("utf-8")).hexdigest()

    def as_dict(self) -> dict:
        out = {
            "rule": self.rule,
            "severity": self.severity.value,
            "category": self.category,
            "message": self.message,
            "file": self.span.file,
            "line": self.span.line,
            "col": self.span.col,
            "fingerprint": self.fingerprint(),
            "fixable": self.fixable,
        }
        if self.span.end_line is not None:
            out["end_line"] = self.span.end_line
        if self.span.end_col is not None:
            out["end_col"] = self.span.end_col
        return out

    def __str__(self) -> str:
        return (
            f"{self.span.file}:{self.span.line}:{self.span.col} "
            f"[{self.severity.value.upper()}] {self.rule}: {self.message}"
        )


def worst_severity(findings: Iterable[Finding]) -> Optional[Severity]:
    """The most severe level present, or ``None`` for a clean run."""
    severities = [f.severity for f in findings]
    if not severities:
        return None
    return max(severities, key=_SEVERITY_ORDER.__getitem__)


def sort_findings(findings: Iterable[Finding]) -> List[Finding]:
    """Deterministic reporting order: file, line, column, rule."""
    return sorted(
        findings, key=lambda f: (f.span.file, f.span.line, f.span.col, f.rule)
    )


@dataclass
class Baseline:
    """A suppression file: known-finding fingerprints to ignore.

    The on-disk format is JSON: ``{"version": 1, "fingerprints": [...]}``.
    """

    fingerprints: frozenset = frozenset()

    @classmethod
    def from_findings(cls, findings: Sequence[Finding]) -> "Baseline":
        return cls(fingerprints=frozenset(f.fingerprint() for f in findings))

    @classmethod
    def loads(cls, text: str) -> "Baseline":
        data = json.loads(text)
        return cls(fingerprints=frozenset(data.get("fingerprints", ())))

    def dumps(self) -> str:
        return (
            json.dumps(
                {"version": 1, "fingerprints": sorted(self.fingerprints)},
                indent=2,
            )
            + "\n"
        )

    def filter(self, findings: Iterable[Finding]) -> List[Finding]:
        return [f for f in findings if f.fingerprint() not in self.fingerprints]
