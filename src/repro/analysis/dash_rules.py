"""DASH MPD rules: ISO/IEC 23009-1 sanity + the paper's Section 4.1.

These operate on the position-annotated XML view from
:mod:`repro.analysis.dash_syntax`, so findings point at the element
that violates the rule. The two object-level DASH rules of
``repro.manifest.validate`` (``DASH-COMBINATIONS``,
``DASH-BANDWIDTH-SANITY``) are ported with identical semantics.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

from ..manifest.dash import REPRO_NS
from .context import RuleContext
from .dash_syntax import XmlElement
from .findings import Finding, Severity
from .registry import Category, Kind, rule
from .spans import Document, SourceSpan


def _span(doc: Document, element: XmlElement) -> SourceSpan:
    return SourceSpan(file=doc.name, line=element.line, col=element.col)


def _line_text(doc: Document, element: XmlElement) -> str:
    try:
        return doc.line_text(element.line)
    except IndexError:  # single-line XML dumps
        return ""


def _content_type(aset: XmlElement) -> str:
    """contentType, inferred from mimeType like real parsers do."""
    declared = aset.get("contentType")
    if declared:
        return declared
    mime = aset.get("mimeType", "") or ""
    if mime.startswith("video"):
        return "video"
    if mime.startswith("audio"):
        return "audio"
    return ""


def _representations(root: XmlElement) -> List[Tuple[XmlElement, XmlElement]]:
    """(adaptation_set, representation) pairs across all Periods."""
    out: List[Tuple[XmlElement, XmlElement]] = []
    for period in root.findall("Period"):
        for aset in period.findall("AdaptationSet"):
            for rep in aset.findall("Representation"):
                out.append((aset, rep))
    return out


@rule(
    "DASH-DURATION",
    Severity.ERROR,
    Category.DASHIF,
    Kind.DASH,
    summary="static MPDs must declare mediaPresentationDuration",
    reference="ISO/IEC 23009-1 §5.3.1.2",
)
def check_duration(doc: Document, root: XmlElement, ctx: RuleContext) -> Iterator[Finding]:
    mpd_type = root.get("type", "static")
    if mpd_type == "static" and not root.get("mediaPresentationDuration"):
        yield check_duration.rule.finding(
            "static MPD lacks mediaPresentationDuration; players cannot "
            "size the seek range or detect end of stream",
            _span(doc, root),
            line_text=_line_text(doc, root),
        )


@rule(
    "DASH-PROFILES",
    Severity.WARNING,
    Category.DASHIF,
    Kind.DASH,
    summary="the MPD should declare the profiles it conforms to",
    reference="ISO/IEC 23009-1 §5.3.1.2, §8",
)
def check_profiles(doc: Document, root: XmlElement, ctx: RuleContext) -> Iterator[Finding]:
    if not root.get("profiles"):
        yield check_profiles.rule.finding(
            "MPD lacks @profiles; interoperability checkers cannot pick "
            "a conformance target",
            _span(doc, root),
            line_text=_line_text(doc, root),
        )


@rule(
    "DASH-MIME-TYPE",
    Severity.WARNING,
    Category.DASHIF,
    Kind.DASH,
    summary="AdaptationSets need contentType or mimeType",
    reference="ISO/IEC 23009-1 §5.3.3.2",
)
def check_mime_type(doc: Document, root: XmlElement, ctx: RuleContext) -> Iterator[Finding]:
    for period in root.findall("Period"):
        for aset in period.findall("AdaptationSet"):
            if not _content_type(aset):
                yield check_mime_type.rule.finding(
                    "AdaptationSet declares neither contentType nor a "
                    "medium-identifying mimeType; players cannot tell "
                    "audio from video without probing",
                    _span(doc, aset),
                    line_text=_line_text(doc, aset),
                )


@rule(
    "DASH-REP-BANDWIDTH",
    Severity.ERROR,
    Category.DASHIF,
    Kind.DASH,
    summary="every Representation needs a positive integer @bandwidth",
    reference="ISO/IEC 23009-1 §5.3.5.2",
)
def check_rep_bandwidth(doc: Document, root: XmlElement, ctx: RuleContext) -> Iterator[Finding]:
    for _aset, rep in _representations(root):
        raw = rep.get("bandwidth")
        rep_id = rep.get("id", "?")
        if raw is None:
            yield check_rep_bandwidth.rule.finding(
                f"Representation {rep_id!r} lacks @bandwidth; rate "
                "adaptation has nothing to rank",
                _span(doc, rep),
                line_text=_line_text(doc, rep),
            )
            continue
        try:
            value = int(raw)
        except ValueError:
            value = -1
        if value <= 0:
            yield check_rep_bandwidth.rule.finding(
                f"Representation {rep_id!r} declares bandwidth={raw!r}; "
                "it must be a positive integer in bits per second",
                _span(doc, rep),
                line_text=_line_text(doc, rep),
            )


@rule(
    "DASH-REP-ID-UNIQUE",
    Severity.ERROR,
    Category.DASHIF,
    Kind.DASH,
    summary="Representation ids must be unique within a Period",
    reference="ISO/IEC 23009-1 §5.3.5.2",
)
def check_rep_id_unique(doc: Document, root: XmlElement, ctx: RuleContext) -> Iterator[Finding]:
    for period in root.findall("Period"):
        seen = {}
        for aset in period.findall("AdaptationSet"):
            for rep in aset.findall("Representation"):
                rep_id = rep.get("id")
                if rep_id is None:
                    continue
                if rep_id in seen:
                    yield check_rep_id_unique.rule.finding(
                        f"duplicate Representation id {rep_id!r} (first "
                        f"declared on line {seen[rep_id]})",
                        _span(doc, rep),
                        line_text=_line_text(doc, rep),
                    )
                else:
                    seen[rep_id] = rep.line


@rule(
    "DASH-SEGMENT-TEMPLATE",
    Severity.ERROR,
    Category.DASHIF,
    Kind.DASH,
    summary="SegmentTemplate needs $Number$/$Time$ media and sane timing",
    reference="ISO/IEC 23009-1 §5.3.9.4",
)
def check_segment_template(doc: Document, root: XmlElement, ctx: RuleContext) -> Iterator[Finding]:
    for template in root.iter("SegmentTemplate"):
        media = template.get("media", "") or ""
        if "$Number$" not in media and "$Time$" not in media:
            yield check_segment_template.rule.finding(
                f"SegmentTemplate media={media!r} contains neither $Number$ "
                "nor $Time$; every segment would share one URL",
                _span(doc, template),
                line_text=_line_text(doc, template),
            )
        for attr in ("duration", "timescale"):
            raw = template.get(attr)
            if raw is None:
                continue
            try:
                value = int(raw)
            except ValueError:
                value = -1
            if value <= 0:
                yield check_segment_template.rule.finding(
                    f"SegmentTemplate @{attr}={raw!r} must be a positive "
                    "integer",
                    _span(doc, template),
                    line_text=_line_text(doc, template),
                )


@rule(
    "DASH-COMBINATIONS",
    Severity.WARNING,
    Category.PAPER,
    Kind.DASH,
    summary="carry an allowed audio/video combination restriction",
    reference="paper Section 4.1 (server-side practice 1 for DASH)",
)
def check_combinations(doc: Document, root: XmlElement, ctx: RuleContext) -> Iterator[Finding]:
    has_extension = any(
        child.tag == f"{{{REPRO_NS}}}AllowedCombinations"
        for child in root.children
    )
    if not has_extension:
        yield check_combinations.rule.finding(
            "no allowed-combinations restriction: players must invent "
            "their own pairing policy (ExoPlayer) or allow everything "
            "(Shaka); embed the combination list (Section 4.1 suggests "
            "expanding the DASH spec; this library's extension element "
            "or an out-of-band channel works today)",
            _span(doc, root),
            line_text=_line_text(doc, root),
        )


@rule(
    "DASH-BANDWIDTH-SANITY",
    Severity.WARNING,
    Category.PAPER,
    Kind.DASH,
    summary="list Representations in ascending bandwidth order",
    reference="paper Sections 2.3, 4.1",
)
def check_bandwidth_sanity(doc: Document, root: XmlElement, ctx: RuleContext) -> Iterator[Finding]:
    for period in root.findall("Period"):
        for aset in period.findall("AdaptationSet"):
            bandwidths: List[int] = []
            for rep in aset.findall("Representation"):
                raw = rep.get("bandwidth")
                try:
                    bandwidths.append(int(raw))  # type: ignore[arg-type]
                except (TypeError, ValueError):
                    continue
            if bandwidths != sorted(bandwidths):
                content_type = _content_type(aset) or "?"
                yield check_bandwidth_sanity.rule.finding(
                    f"{content_type} representations are not listed "
                    "in ascending bandwidth order",
                    _span(doc, aset),
                    line_text=_line_text(doc, aset),
                )
