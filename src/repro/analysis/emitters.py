"""Finding emitters: plain text, JSON, and SARIF 2.1.0.

SARIF output follows the OASIS SARIF 2.1.0 schema closely enough for
GitHub code scanning ingestion: one run, one tool driver, a ``rules``
array carrying the registry metadata for every referenced rule, and
``results`` with physical locations and stable partial fingerprints.
"""

from __future__ import annotations

import json
from typing import Dict, List

from .findings import SARIF_LEVELS, Finding
from .registry import REGISTRY

SARIF_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)
SARIF_VERSION = "2.1.0"
TOOL_NAME = "repro-abr-lint"
TOOL_INFO_URI = "https://example.invalid/repro-abr/docs/static_analysis.md"


def render_text(findings: List[Finding]) -> str:
    """One human-readable line per finding."""
    if not findings:
        return "clean: no findings\n"
    lines = [str(f) for f in findings]
    lines.append(f"{len(findings)} finding(s)")
    return "\n".join(lines) + "\n"


def render_json(findings: List[Finding]) -> str:
    """Stable machine-readable JSON (sorted keys, trailing newline)."""
    payload = {
        "version": 1,
        "tool": TOOL_NAME,
        "findings": [f.as_dict() for f in findings],
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def _sarif_rules(findings: List[Finding]) -> List[dict]:
    """Registry metadata for every rule referenced by ``findings``."""
    referenced = sorted({f.rule for f in findings})
    rules = []
    for rule_id in referenced:
        descriptor: Dict[str, object] = {"id": rule_id}
        if rule_id in REGISTRY:
            entry = REGISTRY.get(rule_id)
            descriptor["shortDescription"] = {"text": entry.summary}
            descriptor["helpUri"] = TOOL_INFO_URI
            descriptor["defaultConfiguration"] = {
                "level": SARIF_LEVELS[entry.severity]
            }
            descriptor["properties"] = {
                "category": entry.category,
                "reference": entry.reference,
                "fixable": entry.fixable,
            }
        rules.append(descriptor)
    return rules


def _sarif_result(finding: Finding, rule_index: Dict[str, int]) -> dict:
    region: Dict[str, int] = {
        "startLine": finding.span.line,
        "startColumn": finding.span.col,
    }
    if finding.span.end_line:
        region["endLine"] = finding.span.end_line
    if finding.span.end_col:
        region["endColumn"] = finding.span.end_col
    result = {
        "ruleId": finding.rule,
        "ruleIndex": rule_index[finding.rule],
        "level": SARIF_LEVELS[finding.severity],
        "message": {"text": finding.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {"uri": finding.span.file},
                    "region": region,
                }
            }
        ],
        "partialFingerprints": {
            "reproLintFingerprint/v1": finding.fingerprint()
        },
    }
    return result


def render_sarif(findings: List[Finding]) -> str:
    """SARIF 2.1.0 log for the finding set."""
    rules = _sarif_rules(findings)
    rule_index = {d["id"]: i for i, d in enumerate(rules)}
    log = {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": TOOL_NAME,
                        "informationUri": TOOL_INFO_URI,
                        "rules": rules,
                    }
                },
                "results": [_sarif_result(f, rule_index) for f in findings],
                "columnKind": "utf16CodeUnits",
            }
        ],
    }
    return json.dumps(log, indent=2) + "\n"


RENDERERS = {
    "text": render_text,
    "json": render_json,
    "sarif": render_sarif,
}
