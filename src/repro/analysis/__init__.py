"""Static analysis for streaming manifests and the simulator's source.

``repro.analysis`` lints raw manifest *text* — MPD XML and m3u8
playlists — with file/line/column source spans, unlike the object-level
checks it supersedes in :mod:`repro.manifest.validate`. It also ships a
determinism lint for the simulator's own Python source (see
:mod:`repro.analysis.pylint_determinism`).

Entry points:

* :func:`analyze_files` / :func:`analyze_text` — lint documents, get
  back sorted :class:`Finding` objects.
* :func:`fix_files` — apply the autofix layer (idempotent; fixed
  output re-lints clean for every handled rule).
* :mod:`repro.analysis.emitters` — text / JSON / SARIF 2.1.0 output.
* ``REGISTRY`` — every known rule with its ID, severity, category and
  RFC/paper reference (documented in ``docs/static_analysis.md``).
"""

from __future__ import annotations

from .autofix import FixResult, fix_files
from .emitters import render_json, render_sarif, render_text
from .engine import (
    AnalysisParseFailure,
    AnalyzerConfig,
    analyze_files,
    analyze_text,
)
from .findings import Baseline, Finding, Severity, sort_findings, worst_severity
from .registry import REGISTRY, Category, Kind, Rule

# Importing the rule modules populates REGISTRY (autofix pulls in
# hls_rules; dash_rules and pylint_determinism are imported here).
from . import dash_rules as _dash_rules  # noqa: F401
from . import hls_rules as _hls_rules  # noqa: F401
from . import pylint_determinism as _pylint_determinism  # noqa: F401

__all__ = [
    "AnalysisParseFailure",
    "AnalyzerConfig",
    "Baseline",
    "Category",
    "Finding",
    "FixResult",
    "Kind",
    "REGISTRY",
    "Rule",
    "Severity",
    "analyze_files",
    "analyze_text",
    "fix_files",
    "render_json",
    "render_sarif",
    "render_text",
    "sort_findings",
    "worst_severity",
]
