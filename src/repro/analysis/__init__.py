"""Static analysis for streaming manifests and the simulator's source.

``repro.analysis`` lints raw manifest *text* — MPD XML and m3u8
playlists — with file/line/column source spans, unlike the object-level
checks it supersedes in :mod:`repro.manifest.validate`. It is also a
whole-program analyzer for the simulator's own Python source: a
determinism lint (``DET-*``, :mod:`repro.analysis.pylint_determinism`),
a units/dimension-flow lint (``UNIT-*``) and a pickle/fork-safety lint
(``POOL-*``) (both in :mod:`repro.analysis.code_rules`), shared-state
and hot-path lints (``SHARE-*``/``HOT-*``), compatibility-surface
drift rules (``SURF-*``, :mod:`repro.analysis.code_surfaces`) checked
against committed ``surfaces/*.json`` snapshots, and player-contract
rules (``POLICY-*``, :mod:`repro.analysis.code_policy`), all sharing
one registry, one config, one baseline format and one inline
suppression grammar (``# lint: allow[RULE-ID]``, see
:mod:`repro.analysis.code_engine`).

Entry points:

* :func:`analyze_files` / :func:`analyze_text` — lint documents, get
  back sorted :class:`Finding` objects.
* :func:`fix_files` — apply the autofix layer (idempotent; fixed
  output re-lints clean for every handled rule).
* :mod:`repro.analysis.emitters` — text / JSON / SARIF 2.1.0 output.
* ``REGISTRY`` — every known rule with its ID, severity, category and
  RFC/paper reference (documented in ``docs/static_analysis.md``).
"""

from __future__ import annotations

from .autofix import FixResult, fix_files
from .emitters import render_json, render_sarif, render_text
from .engine import (
    AnalysisParseFailure,
    AnalyzerConfig,
    analyze_files,
    analyze_text,
)
from .findings import Baseline, Finding, Severity, sort_findings, worst_severity
from .registry import REGISTRY, Category, Kind, Rule

# Importing the rule modules populates REGISTRY (autofix pulls in
# hls_rules; dash_rules, pylint_determinism and code_rules are
# imported here).
from . import dash_rules as _dash_rules  # noqa: F401
from . import hls_rules as _hls_rules  # noqa: F401
from . import pylint_determinism as _pylint_determinism  # noqa: F401
from . import code_rules as _code_rules  # noqa: F401
from . import code_share_hot as _code_share_hot  # noqa: F401
from . import code_surfaces as _code_surfaces  # noqa: F401
from . import code_policy as _code_policy  # noqa: F401

__all__ = [
    "AnalysisParseFailure",
    "AnalyzerConfig",
    "Baseline",
    "Category",
    "Finding",
    "FixResult",
    "Kind",
    "REGISTRY",
    "Rule",
    "Severity",
    "analyze_files",
    "analyze_text",
    "fix_files",
    "render_json",
    "render_sarif",
    "render_text",
    "sort_findings",
    "worst_severity",
]
