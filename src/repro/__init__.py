"""repro — reproduction of "ABR Streaming with Separate Audio and Video
Tracks: Measurements and Best Practices" (Qin, Sen, Wang; CoNEXT 2019).

The library simulates ABR streaming of *demuxed* audio and video tracks
through behavioural models of ExoPlayer, Shaka Player and dash.js, plus
a best-practices player implementing the paper's Section-4
recommendations. Quick start::

    from repro import drama_show, simulate, constant, shared
    from repro.manifest import package_dash
    from repro.players import ExoPlayerDash

    content = drama_show()
    player = ExoPlayerDash(package_dash(content))
    result = simulate(content, player, shared(constant(900)))
    print(result.summary())
"""

from .errors import (
    ExperimentError,
    ManifestError,
    ManifestParseError,
    MediaError,
    PlayerError,
    ReproError,
    SimulationError,
    TraceError,
)
from .media import Content, MediaType, drama_show, synthetic_content
from .net import constant, from_pairs, random_walk, shared, square_wave
from .sim import Session, SessionConfig, SessionResult, simulate

__version__ = "1.0.0"

__all__ = [
    "Content",
    "ExperimentError",
    "ManifestError",
    "ManifestParseError",
    "MediaError",
    "MediaType",
    "PlayerError",
    "ReproError",
    "Session",
    "SessionConfig",
    "SessionResult",
    "SimulationError",
    "TraceError",
    "__version__",
    "constant",
    "drama_show",
    "from_pairs",
    "random_walk",
    "shared",
    "simulate",
    "square_wave",
    "synthetic_content",
]
