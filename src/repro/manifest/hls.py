"""HLS master/media playlist model, writer and parser.

Implements the HLS constructs the paper analyses (Section 2.3, 4.1):

* ``EXT-X-STREAM-INF`` variant streams in the master playlist, each one
  an audio+video *combination* whose ``BANDWIDTH`` attribute is "the sum
  of the peak bitrates of the audio and video tracks in the combination";
* ``EXT-X-MEDIA`` audio renditions grouped by ``GROUP-ID`` (their order
  matters: ExoPlayer locks onto the first rendition);
* second-level media playlists with ``EXTINF`` chunk durations, optional
  ``EXT-X-BYTERANGE`` (single-file packaging) and the optional
  ``EXT-X-BITRATE`` tag the paper recommends making mandatory.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import ManifestError, ManifestParseError


@dataclass(frozen=True)
class HlsRendition:
    """An ``EXT-X-MEDIA`` entry (we model TYPE=AUDIO renditions)."""

    group_id: str
    name: str
    uri: str
    channels: Optional[int] = None
    default: bool = False
    autoselect: bool = True
    language: Optional[str] = None  # BCP-47, e.g. "en"

    def __post_init__(self) -> None:
        if not self.group_id or not self.name or not self.uri:
            raise ManifestError("rendition needs group_id, name and uri")


@dataclass(frozen=True)
class HlsVariant:
    """An ``EXT-X-STREAM-INF`` entry: one audio+video combination.

    ``bandwidth_bps`` is the aggregate *peak* bandwidth of the pair;
    ``average_bandwidth_bps`` the aggregate average (both per RFC 8216).
    The variant's URI points at the *video* media playlist; the audio
    rendition group is referenced via ``AUDIO=group-id``.
    """

    bandwidth_bps: int
    uri: str
    average_bandwidth_bps: Optional[int] = None
    resolution: Optional[Tuple[int, int]] = None
    codecs: str = ""
    audio_group: Optional[str] = None
    #: Which (video_track, audio_track) pair this variant represents.
    #: Real playlists carry this only implicitly (via URI and group);
    #: we keep it explicit for analysis and round-trip it through URIs.
    video_id: Optional[str] = None
    audio_id: Optional[str] = None

    def __post_init__(self) -> None:
        if self.bandwidth_bps <= 0:
            raise ManifestError(
                f"variant bandwidth must be positive, got {self.bandwidth_bps}"
            )
        if not self.uri:
            raise ManifestError("variant needs a URI")

    @property
    def bandwidth_kbps(self) -> float:
        return self.bandwidth_bps / 1000.0

    @property
    def average_bandwidth_kbps(self) -> Optional[float]:
        if self.average_bandwidth_bps is None:
            return None
        return self.average_bandwidth_bps / 1000.0

    @property
    def name(self) -> Optional[str]:
        """Paper-style combination name when track ids are known."""
        if self.video_id and self.audio_id:
            return f"{self.video_id}+{self.audio_id}"
        return None


@dataclass(frozen=True)
class HlsMasterPlaylist:
    """A top-level master playlist: variants + audio renditions."""

    variants: Tuple[HlsVariant, ...]
    renditions: Tuple[HlsRendition, ...] = ()
    version: int = 6

    def __post_init__(self) -> None:
        if not self.variants:
            raise ManifestError("master playlist needs at least one variant")

    def audio_renditions(self, group_id: str) -> Tuple[HlsRendition, ...]:
        """Renditions of one group, in playlist order (order matters!)."""
        return tuple(r for r in self.renditions if r.group_id == group_id)

    @property
    def audio_group_ids(self) -> Tuple[str, ...]:
        seen: List[str] = []
        for r in self.renditions:
            if r.group_id not in seen:
                seen.append(r.group_id)
        return tuple(seen)

    def variants_for_video(self, video_id: str) -> Tuple[HlsVariant, ...]:
        return tuple(v for v in self.variants if v.video_id == video_id)

    def first_variant_bandwidth(self, video_id: str) -> int:
        """Aggregate bandwidth of the *first* variant containing a video.

        This is exactly the (over)estimate ExoPlayer uses as the video
        track's bitrate under HLS (Section 3.2): "it uses the aggregate
        bitrate of the first variant in the top-level manifest file that
        contains this video track as its bitrate, which is clearly an
        overestimation."
        """
        for variant in self.variants:
            if variant.video_id == video_id:
                return variant.bandwidth_bps
        raise ManifestError(f"no variant contains video track {video_id!r}")

    @property
    def combination_names(self) -> Tuple[str, ...]:
        return tuple(v.name for v in self.variants if v.name is not None)


@dataclass(frozen=True)
class HlsSegment:
    """One ``EXTINF`` entry of a media playlist."""

    duration_s: float
    uri: str
    byterange: Optional[Tuple[int, int]] = None  # (length, offset) bytes
    bitrate_kbps: Optional[float] = None  # EXT-X-BITRATE, kbps

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise ManifestError(f"segment duration must be positive: {self.duration_s}")
        if not self.uri:
            raise ManifestError("segment needs a URI")


@dataclass(frozen=True)
class HlsMediaPlaylist:
    """A second-level media playlist for a single track."""

    track_id: str
    segments: Tuple[HlsSegment, ...]
    version: int = 6

    def __post_init__(self) -> None:
        if not self.segments:
            raise ManifestError("media playlist needs at least one segment")

    @property
    def target_duration_s(self) -> int:
        return int(-(-max(s.duration_s for s in self.segments) // 1))  # ceil

    @property
    def total_duration_s(self) -> float:
        return sum(s.duration_s for s in self.segments)

    def derived_bitrates_kbps(self) -> Optional[List[float]]:
        """Per-chunk bitrates derivable from this playlist, if any.

        Section 4.1's recommendation: per-track bitrates are not in the
        master playlist but can be derived from the media playlist,
        either from ``EXT-X-BYTERANGE`` (case i) or ``EXT-X-BITRATE``
        (case ii). Returns ``None`` when neither is present — the
        situation the paper's best practices exist to eliminate.
        """
        rates: List[float] = []
        for segment in self.segments:
            if segment.bitrate_kbps is not None:
                rates.append(segment.bitrate_kbps)
            elif segment.byterange is not None:
                length_bytes, _ = segment.byterange
                rates.append(length_bytes * 8.0 / segment.duration_s / 1000.0)
            else:
                return None
        return rates

    def derived_peak_kbps(self) -> Optional[float]:
        rates = self.derived_bitrates_kbps()
        return None if rates is None else max(rates)

    def derived_avg_kbps(self) -> Optional[float]:
        rates = self.derived_bitrates_kbps()
        if rates is None:
            return None
        total_bits = sum(
            r * 1000.0 * s.duration_s for r, s in zip(rates, self.segments)
        )
        return total_bits / self.total_duration_s / 1000.0


def _attr_string(pairs: Sequence[Tuple[str, str]]) -> str:
    return ",".join(f"{key}={value}" for key, value in pairs)


def _quote(value: str) -> str:
    return f'"{value}"'


def write_master_playlist(master: HlsMasterPlaylist) -> str:
    """Serialize a master playlist to m3u8 text."""
    lines: List[str] = ["#EXTM3U", f"#EXT-X-VERSION:{master.version}"]
    for rendition in master.renditions:
        pairs: List[Tuple[str, str]] = [
            ("TYPE", "AUDIO"),
            ("GROUP-ID", _quote(rendition.group_id)),
            ("NAME", _quote(rendition.name)),
            ("DEFAULT", "YES" if rendition.default else "NO"),
            ("AUTOSELECT", "YES" if rendition.autoselect else "NO"),
        ]
        if rendition.language is not None:
            pairs.append(("LANGUAGE", _quote(rendition.language)))
        if rendition.channels is not None:
            pairs.append(("CHANNELS", _quote(str(rendition.channels))))
        pairs.append(("URI", _quote(rendition.uri)))
        lines.append(f"#EXT-X-MEDIA:{_attr_string(pairs)}")
    for variant in master.variants:
        pairs = [("BANDWIDTH", str(variant.bandwidth_bps))]
        if variant.average_bandwidth_bps is not None:
            pairs.append(("AVERAGE-BANDWIDTH", str(variant.average_bandwidth_bps)))
        if variant.resolution is not None:
            width, height = variant.resolution
            pairs.append(("RESOLUTION", f"{width}x{height}"))
        if variant.codecs:
            pairs.append(("CODECS", _quote(variant.codecs)))
        if variant.audio_group is not None:
            pairs.append(("AUDIO", _quote(variant.audio_group)))
        lines.append(f"#EXT-X-STREAM-INF:{_attr_string(pairs)}")
        lines.append(variant.uri)
    return "\n".join(lines) + "\n"


def write_media_playlist(playlist: HlsMediaPlaylist) -> str:
    """Serialize a media playlist to m3u8 text."""
    lines = [
        "#EXTM3U",
        f"#EXT-X-VERSION:{playlist.version}",
        f"#EXT-X-TARGETDURATION:{playlist.target_duration_s}",
        "#EXT-X-MEDIA-SEQUENCE:0",
        "#EXT-X-PLAYLIST-TYPE:VOD",
    ]
    for segment in playlist.segments:
        if segment.bitrate_kbps is not None:
            lines.append(f"#EXT-X-BITRATE:{int(round(segment.bitrate_kbps))}")
        lines.append(f"#EXTINF:{segment.duration_s:.5f},")
        if segment.byterange is not None:
            length_bytes, offset = segment.byterange
            lines.append(f"#EXT-X-BYTERANGE:{length_bytes}@{offset}")
        lines.append(segment.uri)
    lines.append("#EXT-X-ENDLIST")
    return "\n".join(lines) + "\n"


def _parse_attributes(text: str) -> Dict[str, str]:
    """Parse an HLS attribute list, honouring quoted strings."""
    attrs: Dict[str, str] = {}
    key = ""
    value = ""
    state = "key"
    in_quotes = False
    for char in text + ",":
        if state == "key":
            if char == "=":
                state = "value"
            elif char == ",":
                if key.strip():
                    raise ManifestParseError(f"attribute {key!r} has no value")
            else:
                key += char
        else:  # value
            if char == '"':
                in_quotes = not in_quotes
                value += char
            elif char == "," and not in_quotes:
                attrs[key.strip()] = value.strip().strip('"')
                key, value, state = "", "", "key"
            else:
                value += char
    if in_quotes:
        raise ManifestParseError(f"unterminated quote in attribute list: {text!r}")
    return attrs


def _ids_from_uri(uri: str) -> Tuple[Optional[str], Optional[str]]:
    """Recover (video_id, audio_id) from packager URI conventions.

    The packager names variant URIs ``<video>_<audio>.m3u8`` (muxed
    naming kept for readability) or ``<video>.m3u8`` plus an audio group.
    """
    stem = uri.rsplit("/", 1)[-1]
    if stem.endswith(".m3u8"):
        stem = stem[: -len(".m3u8")]
    if "_" in stem:
        video_id, audio_id = stem.split("_", 1)
        return video_id or None, audio_id or None
    return stem or None, None


def parse_master_playlist(text: str) -> HlsMasterPlaylist:
    """Parse master playlist m3u8 text."""
    lines = [line.strip() for line in text.splitlines() if line.strip()]
    if not lines or lines[0] != "#EXTM3U":
        raise ManifestParseError("master playlist must start with #EXTM3U")
    version = 1
    renditions: List[HlsRendition] = []
    variants: List[HlsVariant] = []
    pending_inf: Optional[Dict[str, str]] = None
    for line in lines[1:]:
        if line.startswith("#EXT-X-VERSION:"):
            version = int(line.split(":", 1)[1])
        elif line.startswith("#EXT-X-MEDIA:"):
            attrs = _parse_attributes(line.split(":", 1)[1])
            if attrs.get("TYPE") != "AUDIO":
                continue  # only audio renditions are modelled
            renditions.append(
                HlsRendition(
                    group_id=attrs.get("GROUP-ID", ""),
                    name=attrs.get("NAME", ""),
                    uri=attrs.get("URI", ""),
                    channels=int(attrs["CHANNELS"]) if "CHANNELS" in attrs else None,
                    default=attrs.get("DEFAULT") == "YES",
                    autoselect=attrs.get("AUTOSELECT", "YES") == "YES",
                    language=attrs.get("LANGUAGE"),
                )
            )
        elif line.startswith("#EXT-X-STREAM-INF:"):
            pending_inf = _parse_attributes(line.split(":", 1)[1])
        elif line.startswith("#"):
            continue
        else:  # a URI line closing a pending EXT-X-STREAM-INF
            if pending_inf is None:
                raise ManifestParseError(f"URI {line!r} without EXT-X-STREAM-INF")
            if "BANDWIDTH" not in pending_inf:
                raise ManifestParseError("EXT-X-STREAM-INF lacks BANDWIDTH")
            resolution: Optional[Tuple[int, int]] = None
            if "RESOLUTION" in pending_inf:
                try:
                    width_s, height_s = pending_inf["RESOLUTION"].split("x")
                    resolution = (int(width_s), int(height_s))
                except ValueError as exc:
                    raise ManifestParseError(
                        f"bad RESOLUTION {pending_inf['RESOLUTION']!r}"
                    ) from exc
            video_id, audio_id = _ids_from_uri(line)
            variants.append(
                HlsVariant(
                    bandwidth_bps=int(pending_inf["BANDWIDTH"]),
                    average_bandwidth_bps=(
                        int(pending_inf["AVERAGE-BANDWIDTH"])
                        if "AVERAGE-BANDWIDTH" in pending_inf
                        else None
                    ),
                    uri=line,
                    resolution=resolution,
                    codecs=pending_inf.get("CODECS", ""),
                    audio_group=pending_inf.get("AUDIO"),
                    video_id=video_id,
                    audio_id=audio_id,
                )
            )
            pending_inf = None
    if pending_inf is not None:
        raise ManifestParseError("EXT-X-STREAM-INF without a following URI")
    return HlsMasterPlaylist(
        variants=tuple(variants), renditions=tuple(renditions), version=version
    )


def parse_media_playlist(text: str, track_id: str = "") -> HlsMediaPlaylist:
    """Parse media playlist m3u8 text."""
    lines = [line.strip() for line in text.splitlines() if line.strip()]
    if not lines or lines[0] != "#EXTM3U":
        raise ManifestParseError("media playlist must start with #EXTM3U")
    version = 1
    segments: List[HlsSegment] = []
    pending_duration: Optional[float] = None
    pending_byterange: Optional[Tuple[int, int]] = None
    pending_bitrate: Optional[float] = None
    for line in lines[1:]:
        if line.startswith("#EXT-X-VERSION:"):
            version = int(line.split(":", 1)[1])
        elif line.startswith("#EXT-X-BITRATE:"):
            pending_bitrate = float(line.split(":", 1)[1])
        elif line.startswith("#EXTINF:"):
            body = line.split(":", 1)[1]
            pending_duration = float(body.split(",", 1)[0])
        elif line.startswith("#EXT-X-BYTERANGE:"):
            body = line.split(":", 1)[1]
            if "@" in body:
                length_s, offset_s = body.split("@", 1)
                pending_byterange = (int(length_s), int(offset_s))
            else:
                previous_end = (
                    segments[-1].byterange[0] + segments[-1].byterange[1]
                    if segments and segments[-1].byterange
                    else 0
                )
                pending_byterange = (int(body), previous_end)
        elif line.startswith("#"):
            continue
        else:
            if pending_duration is None:
                raise ManifestParseError(f"URI {line!r} without EXTINF")
            segments.append(
                HlsSegment(
                    duration_s=pending_duration,
                    uri=line,
                    byterange=pending_byterange,
                    bitrate_kbps=pending_bitrate,
                )
            )
            pending_duration = None
            pending_byterange = None
            pending_bitrate = None
    if not segments:
        raise ManifestParseError("media playlist has no segments")
    track = track_id or segments[0].uri.split("_", 1)[0].rsplit("/", 1)[-1]
    return HlsMediaPlaylist(track_id=track, segments=tuple(segments), version=version)
