"""Packager: builds DASH and HLS manifests from a :class:`Content`.

Plays the role of the Bento4 toolkit in the paper's setup (Section 3.1):
"We use the Bento4 toolkit to create two sets of manifest files,
complying respectively with DASH and HLS standards."

* :func:`package_dash` emits one MPD with two Adaptation Sets.
* :func:`package_hls` emits a master playlist whose variants are the
  given combination set (H_all, H_sub, or any curated set), plus one
  media playlist per track. ``BANDWIDTH`` is the aggregate peak bitrate
  and ``AVERAGE-BANDWIDTH`` the aggregate average, per the paper's
  Appendix A.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.combinations import CombinationSet, all_combinations
from ..errors import ManifestError
from ..media.content import Content
from ..media.tracks import Track
from .dash import DashManifest, build_dash_manifest, write_mpd
from .hls import (
    HlsMasterPlaylist,
    HlsMediaPlaylist,
    HlsRendition,
    HlsSegment,
    HlsVariant,
    write_master_playlist,
    write_media_playlist,
)

AUDIO_GROUP_ID = "audio"


@dataclass(frozen=True)
class HlsPackage:
    """A complete HLS packaging: master playlist + per-track playlists."""

    master: HlsMasterPlaylist
    media_playlists: Dict[str, HlsMediaPlaylist] = field(default_factory=dict)

    def media_playlist(self, track_id: str) -> HlsMediaPlaylist:
        try:
            return self.media_playlists[track_id]
        except KeyError:
            raise ManifestError(f"no media playlist for track {track_id!r}") from None

    def write_all(self) -> Dict[str, str]:
        """Serialize everything: filename -> document text."""
        files = {"master.m3u8": write_master_playlist(self.master)}
        for track_id, playlist in self.media_playlists.items():
            files[f"{track_id}.m3u8"] = write_media_playlist(playlist)
        return files

    def derived_track_bitrates(self) -> Dict[str, Tuple[float, float]]:
        """Per-track (avg, peak) kbps derived from media playlists.

        Implements the Section-4.1 client-side recommendation: "the
        player should download these [second-level] files and read the
        information before making rate adaptation decisions". Raises if
        the packaging carries neither byte ranges nor bitrate tags.
        """
        out: Dict[str, Tuple[float, float]] = {}
        for track_id, playlist in self.media_playlists.items():
            avg = playlist.derived_avg_kbps()
            peak = playlist.derived_peak_kbps()
            if avg is None or peak is None:
                raise ManifestError(
                    f"media playlist for {track_id!r} carries no byte ranges "
                    "or EXT-X-BITRATE tags; per-track bitrates unavailable"
                )
            out[track_id] = (avg, peak)
        return out


def _self_lint(files: Dict[str, str]) -> None:
    """Run the static analyzer over serialized output; raise on ERROR.

    Used by the packagers' ``self_lint`` flag: a guard that the emitted
    text conforms to what :mod:`repro.analysis` enforces, catching
    writer regressions at packaging time instead of in a player.
    """
    from .. import analysis

    findings = analysis.analyze_files(files)
    errors = [f for f in findings if f.severity is analysis.Severity.ERROR]
    if errors:
        detail = "; ".join(str(f) for f in errors[:5])
        raise ManifestError(
            f"packager output fails its own lint with {len(errors)} "
            f"error(s): {detail}"
        )


def package_dash(
    content: Content,
    allowed_combinations: Optional[CombinationSet] = None,
    self_lint: bool = False,
) -> DashManifest:
    """Build a DASH MPD for the content.

    ``allowed_combinations`` embeds the Section-4.1 extension element;
    leave it ``None`` to model standard DASH (no combination restriction
    — the deficiency the paper critiques).

    ``self_lint`` serializes the manifest and runs
    :mod:`repro.analysis` over it, raising :class:`ManifestError` if
    any ERROR-severity finding comes back.
    """
    pairs = None
    if allowed_combinations is not None:
        pairs = [(c.video.track_id, c.audio.track_id) for c in allowed_combinations]
    manifest = build_dash_manifest(content, allowed_combinations=pairs)
    if self_lint:
        _self_lint({"manifest.mpd": write_mpd(manifest)})
    return manifest


def _media_playlist_for(
    content: Content,
    track: Track,
    single_file: bool,
    include_bitrate_tag: bool,
) -> HlsMediaPlaylist:
    segments: List[HlsSegment] = []
    offset = 0
    for index in range(content.n_chunks):
        chunk = content.chunk(track.track_id, index)
        length_bytes = int(round(chunk.size_bits / 8.0))
        byterange = (length_bytes, offset) if single_file else None
        if single_file:
            uri = f"{track.track_id}.mp4"
            offset += length_bytes
        else:
            uri = f"{track.track_id}_{index:05d}.mp4"
        segments.append(
            HlsSegment(
                duration_s=chunk.duration_s,
                uri=uri,
                byterange=byterange,
                bitrate_kbps=chunk.bitrate_kbps if include_bitrate_tag else None,
            )
        )
    return HlsMediaPlaylist(track_id=track.track_id, segments=tuple(segments))


def package_hls(
    content: Content,
    combinations: Optional[CombinationSet] = None,
    audio_order: Optional[Sequence[str]] = None,
    variant_order: str = "bandwidth",
    single_file: bool = True,
    include_bitrate_tag: bool = False,
    self_lint: bool = False,
) -> HlsPackage:
    """Build an HLS package for the content.

    :param combinations: the variants to list. Defaults to *all*
        combinations — the paper's H_all. Pass
        :func:`repro.core.combinations.hsub_combinations` for H_sub.
    :param audio_order: audio track ids in the order their
        ``EXT-X-MEDIA`` renditions should be listed. The paper shows the
        order is behaviourally significant: ExoPlayer locks onto the
        first rendition. Defaults to ladder order (lowest first).
    :param variant_order: ``"bandwidth"`` (ascending aggregate peak,
        Table-2 order) or ``"manifest"`` (the order of the combination
        set as given).
    :param single_file: package each track as a single file with
        ``EXT-X-BYTERANGE`` (case i of Section 4.1) rather than one file
        per chunk (case ii).
    :param include_bitrate_tag: emit ``EXT-X-BITRATE`` per chunk — the
        optional tag the paper recommends making mandatory. Only
        meaningful with ``single_file=False`` (with byte ranges the
        bitrate is already derivable), but allowed in both modes.
    :param self_lint: run :mod:`repro.analysis` over the serialized
        package and raise :class:`ManifestError` on any ERROR finding.
    """
    combos = combinations if combinations is not None else all_combinations(content)
    if audio_order is None:
        audio_ids = [t.track_id for t in combos.audio_tracks()]
        audio_ids.sort(key=content.audio.index_of)
    else:
        audio_ids = list(audio_order)
        known = {t.track_id for t in combos.audio_tracks()}
        missing = known - set(audio_ids)
        if missing:
            raise ManifestError(
                f"audio_order omits tracks used by variants: {sorted(missing)}"
            )

    renditions = tuple(
        HlsRendition(
            group_id=AUDIO_GROUP_ID,
            name=audio_id,
            uri=f"{audio_id}.m3u8",
            channels=content.audio.by_id(audio_id).channels,
            default=(i == 0),
        )
        for i, audio_id in enumerate(audio_ids)
    )

    ordered = list(combos)
    if variant_order == "bandwidth":
        ordered.sort(key=lambda c: (c.peak_kbps, c.avg_kbps))
    elif variant_order != "manifest":
        raise ManifestError(
            f"variant_order must be 'bandwidth' or 'manifest', got {variant_order!r}"
        )

    variants = tuple(
        HlsVariant(
            bandwidth_bps=int(round(c.peak_kbps * 1000)),
            average_bandwidth_bps=int(round(c.avg_kbps * 1000)),
            uri=f"{c.video.track_id}_{c.audio.track_id}.m3u8",
            resolution=(
                None
                if c.video.height is None
                else (int(round(c.video.height * 16 / 9)), c.video.height)
            ),
            codecs="avc1.640028,mp4a.40.2",
            audio_group=AUDIO_GROUP_ID,
            video_id=c.video.track_id,
            audio_id=c.audio.track_id,
        )
        for c in ordered
    )

    track_ids = {c.video.track_id for c in combos} | set(audio_ids)
    playlists = {
        track_id: _media_playlist_for(
            content,
            content.track(track_id),
            single_file=single_file,
            include_bitrate_tag=include_bitrate_tag,
        )
        for track_id in sorted(track_ids)
    }
    master = HlsMasterPlaylist(variants=variants, renditions=renditions)
    package = HlsPackage(master=master, media_playlists=playlists)
    if self_lint:
        _self_lint(package.write_all())
    return package


def write_dash_package(content: Content, **kwargs) -> Dict[str, str]:
    """Package DASH and serialize: filename -> document text."""
    return {"manifest.mpd": write_mpd(package_dash(content, **kwargs))}


def package_hls_multilanguage(
    catalog: "LanguageCatalog",
    combinations: Optional[CombinationSet] = None,
    single_file: bool = True,
    include_bitrate_tag: bool = False,
) -> HlsPackage:
    """Package a multi-language catalogue, Apple-authoring style.

    One ``EXT-X-MEDIA`` *group per audio quality rung* (``audio-A1``,
    ``audio-A2``, ...), each group carrying every language at that rung;
    variants pair a video track with a rung's group, so the player's
    rate adaptation moves across groups while the user's language choice
    selects the rendition *within* the group. This is the authoring
    pattern Apple's HLS spec recommends for multi-language ladders.

    :param combinations: allowed (video, audio-rung) combinations over
        the catalogue's *base* content; defaults to the curated subset
        being absent, i.e. all combinations (as with :func:`package_hls`).
    """
    from ..core.combinations import all_combinations as _all

    base = catalog.base
    combos = combinations if combinations is not None else _all(base)

    renditions = []
    for rung in base.audio:
        group_id = f"audio-{rung.track_id}"
        for lang in catalog.languages:
            renditions.append(
                HlsRendition(
                    group_id=group_id,
                    name=f"{rung.track_id}-{lang}",
                    uri=f"{rung.track_id}-{lang}.m3u8",
                    channels=rung.channels,
                    default=(lang == catalog.default_lang),
                    language=lang,
                )
            )

    ordered = sorted(combos, key=lambda c: (c.peak_kbps, c.avg_kbps))
    variants = tuple(
        HlsVariant(
            bandwidth_bps=int(round(c.peak_kbps * 1000)),
            average_bandwidth_bps=int(round(c.avg_kbps * 1000)),
            uri=f"{c.video.track_id}_{c.audio.track_id}.m3u8",
            resolution=(
                None
                if c.video.height is None
                else (int(round(c.video.height * 16 / 9)), c.video.height)
            ),
            codecs="avc1.640028,mp4a.40.2",
            audio_group=f"audio-{c.audio.track_id}",
            video_id=c.video.track_id,
            audio_id=c.audio.track_id,
        )
        for c in ordered
    )

    playlists: Dict[str, HlsMediaPlaylist] = {}
    for track in base.video:
        playlists[track.track_id] = _media_playlist_for(
            base, track, single_file=single_file, include_bitrate_tag=include_bitrate_tag
        )
    for lang in catalog.languages:
        lang_content = catalog.content_for(lang)
        for track in lang_content.audio:
            playlists[track.track_id] = _media_playlist_for(
                lang_content,
                track,
                single_file=single_file,
                include_bitrate_tag=include_bitrate_tag,
            )

    master = HlsMasterPlaylist(variants=variants, renditions=tuple(renditions))
    return HlsPackage(master=master, media_playlists=playlists)


# Imported late to avoid a cycle (media.languages has no manifest deps,
# but keeping the type import local documents the optional coupling).
from ..media.languages import LanguageCatalog  # noqa: E402
