"""Manifest substrate: DASH MPD and HLS playlist models, writers, parsers.

Manifest *linting* lives in :mod:`repro.analysis` (text-level, with
source spans, SARIF output and a rule registry). The old object-level
``repro.manifest.validate`` shim is gone; its rules live on in the
analyzer under their original IDs, and the legacy CLI spelling
``repro-abr lint --format dash|hls`` still parses for one more release
(guarded by the ``SURF-CLI-DRIFT`` rule).
"""

from .dash import (
    DashAdaptationSet,
    DashManifest,
    DashRepresentation,
    DashSegmentTemplate,
    build_dash_manifest,
    parse_mpd,
    write_mpd,
)
from .hls import (
    HlsMasterPlaylist,
    HlsMediaPlaylist,
    HlsRendition,
    HlsSegment,
    HlsVariant,
    parse_master_playlist,
    parse_media_playlist,
    write_master_playlist,
    write_media_playlist,
)
from .packager import (
    AUDIO_GROUP_ID,
    HlsPackage,
    package_dash,
    package_hls,
    package_hls_multilanguage,
    write_dash_package,
)
__all__ = [
    "AUDIO_GROUP_ID",
    "DashAdaptationSet",
    "DashManifest",
    "DashRepresentation",
    "DashSegmentTemplate",
    "HlsMasterPlaylist",
    "HlsMediaPlaylist",
    "HlsPackage",
    "HlsRendition",
    "HlsSegment",
    "HlsVariant",
    "build_dash_manifest",
    "package_dash",
    "package_hls",
    "package_hls_multilanguage",
    "parse_master_playlist",
    "parse_media_playlist",
    "parse_mpd",
    "write_dash_package",
    "write_master_playlist",
    "write_media_playlist",
    "write_mpd",
]
