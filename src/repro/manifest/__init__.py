"""Manifest substrate: DASH MPD and HLS playlist models, writers, parsers."""

from .dash import (
    DashAdaptationSet,
    DashManifest,
    DashRepresentation,
    DashSegmentTemplate,
    build_dash_manifest,
    parse_mpd,
    write_mpd,
)
from .hls import (
    HlsMasterPlaylist,
    HlsMediaPlaylist,
    HlsRendition,
    HlsSegment,
    HlsVariant,
    parse_master_playlist,
    parse_media_playlist,
    write_master_playlist,
    write_media_playlist,
)
from .packager import (
    AUDIO_GROUP_ID,
    HlsPackage,
    package_dash,
    package_hls,
    package_hls_multilanguage,
    write_dash_package,
)
from .validate import (
    Finding,
    Severity,
    lint_dash_manifest,
    lint_hls_master,
    lint_hls_package,
    worst_severity,
)

__all__ = [
    "AUDIO_GROUP_ID",
    "DashAdaptationSet",
    "DashManifest",
    "DashRepresentation",
    "DashSegmentTemplate",
    "Finding",
    "Severity",
    "lint_dash_manifest",
    "lint_hls_master",
    "lint_hls_package",
    "worst_severity",
    "HlsMasterPlaylist",
    "HlsMediaPlaylist",
    "HlsPackage",
    "HlsRendition",
    "HlsSegment",
    "HlsVariant",
    "build_dash_manifest",
    "package_dash",
    "package_hls",
    "package_hls_multilanguage",
    "parse_master_playlist",
    "parse_media_playlist",
    "parse_mpd",
    "write_dash_package",
    "write_master_playlist",
    "write_media_playlist",
    "write_mpd",
]
