"""DASH MPD model, writer and parser.

Implements the subset of ISO/IEC 23009-1 the paper exercises: a single
Period containing one video Adaptation Set and one audio Adaptation Set,
each Representation carrying a ``bandwidth`` attribute (bits per second)
"which is close to the peak bitrate" (Section 2.3, Table 1's *Declared
Bitrate for DASH* column).

The model is also the vehicle for the paper's Section 4.1 proposal:
DASH has no standard way to restrict audio/video combinations, so we
provide an *extension* element (``repro:AllowedCombinations``) that a
server may embed; standard-compliant parsers ignore it, while the
best-practices player honours it. This mirrors the paper's suggestion
that "the DASH specification can be expanded to support this feature."
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..errors import ManifestError, ManifestParseError
from ..media.content import Content
from ..media.tracks import MediaType

MPD_NS = "urn:mpeg:dash:schema:mpd:2011"
REPRO_NS = "urn:repro:dash:extensions:2019"


@dataclass(frozen=True)
class DashRepresentation:
    """One Representation: a single audio or video track."""

    rep_id: str
    bandwidth_bps: int
    codecs: str = ""
    width: Optional[int] = None
    height: Optional[int] = None
    audio_channels: Optional[int] = None
    audio_sampling_rate_hz: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.rep_id:
            raise ManifestError("Representation id must be non-empty")
        if self.bandwidth_bps <= 0:
            raise ManifestError(
                f"Representation {self.rep_id}: bandwidth must be positive, "
                f"got {self.bandwidth_bps}"
            )

    @property
    def bandwidth_kbps(self) -> float:
        return self.bandwidth_bps / 1000.0


@dataclass(frozen=True)
class DashSegmentTemplate:
    """A ``SegmentTemplate`` element (number-based addressing).

    The common live/VOD packaging: segment URLs are generated from a
    template with ``$RepresentationID$`` and ``$Number$`` substitutions,
    and every segment has a fixed duration in ``timescale`` units.
    """

    media: str = "$RepresentationID$_$Number$.m4s"
    initialization: str = "$RepresentationID$_init.mp4"
    duration: int = 5000  # in timescale units
    timescale: int = 1000
    start_number: int = 1

    def __post_init__(self) -> None:
        if self.duration <= 0 or self.timescale <= 0:
            raise ManifestError("SegmentTemplate duration/timescale must be positive")
        if self.start_number < 0:
            raise ManifestError("SegmentTemplate startNumber must be non-negative")
        if "$Number$" not in self.media:
            raise ManifestError("media template must contain $Number$")

    @property
    def segment_duration_s(self) -> float:
        return self.duration / self.timescale

    def media_url(self, rep_id: str, index: int) -> str:
        """URL of chunk ``index`` (0-based) for a representation."""
        if index < 0:
            raise ManifestError(f"chunk index must be non-negative, got {index}")
        return self.media.replace("$RepresentationID$", rep_id).replace(
            "$Number$", str(self.start_number + index)
        )

    def init_url(self, rep_id: str) -> str:
        return self.initialization.replace("$RepresentationID$", rep_id)


@dataclass(frozen=True)
class DashAdaptationSet:
    """One Adaptation Set: "a set of interchangeable encoded versions"."""

    content_type: str  # "video" or "audio"
    representations: Tuple[DashRepresentation, ...]
    mime_type: str = ""
    lang: Optional[str] = None
    segment_template: Optional[DashSegmentTemplate] = None

    def __post_init__(self) -> None:
        if self.content_type not in ("video", "audio"):
            raise ManifestError(
                f"content_type must be 'video' or 'audio', got {self.content_type!r}"
            )
        if not self.representations:
            raise ManifestError(
                f"{self.content_type} AdaptationSet needs at least one Representation"
            )
        ids = [r.rep_id for r in self.representations]
        if len(set(ids)) != len(ids):
            raise ManifestError(f"duplicate Representation ids: {ids}")

    @property
    def media_type(self) -> MediaType:
        return MediaType.VIDEO if self.content_type == "video" else MediaType.AUDIO


@dataclass(frozen=True)
class DashManifest:
    """A single-period MPD with demuxed audio and video Adaptation Sets."""

    duration_s: float
    adaptation_sets: Tuple[DashAdaptationSet, ...]
    min_buffer_time_s: float = 2.0
    #: Optional Section-4.1 extension: explicit allowed (video_id, audio_id)
    #: combinations. ``None`` means the manifest does not restrict pairs
    #: (the standard-DASH situation the paper critiques).
    allowed_combinations: Optional[Tuple[Tuple[str, str], ...]] = None

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise ManifestError(f"duration must be positive, got {self.duration_s}")
        types = [a.content_type for a in self.adaptation_sets]
        if len(set(types)) != len(types):
            raise ManifestError(f"duplicate AdaptationSet content types: {types}")

    def adaptation_set(self, content_type: str) -> DashAdaptationSet:
        for aset in self.adaptation_sets:
            if aset.content_type == content_type:
                return aset
        raise ManifestError(f"no {content_type!r} AdaptationSet in MPD")

    @property
    def video(self) -> DashAdaptationSet:
        return self.adaptation_set("video")

    @property
    def audio(self) -> DashAdaptationSet:
        return self.adaptation_set("audio")


def build_dash_manifest(
    content: Content,
    allowed_combinations: Optional[Sequence[Tuple[str, str]]] = None,
) -> DashManifest:
    """Build an MPD for a title, declaring Table-1-style bitrates.

    The per-track ``bandwidth`` is the track's *declared* bitrate (the
    value Table 1 lists in its "Declared Bitrate for DASH" column).
    """
    video_reps = tuple(
        DashRepresentation(
            rep_id=t.track_id,
            bandwidth_bps=int(round(t.declared_kbps * 1000)),
            codecs="avc1.640028",
            height=t.height,
            width=None if t.height is None else int(round(t.height * 16 / 9)),
        )
        for t in content.video
    )
    audio_reps = tuple(
        DashRepresentation(
            rep_id=t.track_id,
            bandwidth_bps=int(round(t.declared_kbps * 1000)),
            codecs="mp4a.40.2",
            audio_channels=t.channels,
            audio_sampling_rate_hz=(
                None if t.sampling_khz is None else int(round(t.sampling_khz * 1000))
            ),
        )
        for t in content.audio
    )
    template = DashSegmentTemplate(
        duration=int(round(content.chunk_duration_s * 1000)), timescale=1000
    )
    return DashManifest(
        duration_s=content.duration_s,
        adaptation_sets=(
            DashAdaptationSet(
                content_type="video",
                representations=video_reps,
                mime_type="video/mp4",
                segment_template=template,
            ),
            DashAdaptationSet(
                content_type="audio",
                representations=audio_reps,
                mime_type="audio/mp4",
                segment_template=template,
            ),
        ),
        allowed_combinations=(
            None if allowed_combinations is None else tuple(allowed_combinations)
        ),
    )


def _format_duration(seconds: float) -> str:
    """ISO 8601 duration, e.g. 300.0 -> ``PT5M0.000S``."""
    if seconds < 0:
        raise ManifestError(f"duration must be non-negative, got {seconds}")
    hours = int(seconds // 3600)
    minutes = int((seconds % 3600) // 60)
    secs = seconds - hours * 3600 - minutes * 60
    out = "PT"
    if hours:
        out += f"{hours}H"
    if minutes or hours:
        out += f"{minutes}M"
    out += f"{secs:.3f}S"
    return out


def _parse_duration(text: str) -> float:
    """Parse the ISO 8601 durations :func:`_format_duration` emits."""
    if not text.startswith("PT"):
        raise ManifestParseError(f"unsupported duration format: {text!r}")
    remainder = text[2:]
    seconds = 0.0
    number = ""
    for char in remainder:
        if char.isdigit() or char == ".":
            number += char
        elif char == "H":
            seconds += float(number) * 3600
            number = ""
        elif char == "M":
            seconds += float(number) * 60
            number = ""
        elif char == "S":
            seconds += float(number)
            number = ""
        else:
            raise ManifestParseError(f"bad duration component {char!r} in {text!r}")
    if number:
        raise ManifestParseError(f"trailing number in duration {text!r}")
    return seconds


def write_mpd(manifest: DashManifest) -> str:
    """Serialize to MPD XML text."""
    ET.register_namespace("", MPD_NS)
    ET.register_namespace("repro", REPRO_NS)
    root = ET.Element(
        f"{{{MPD_NS}}}MPD",
        attrib={
            "type": "static",
            "mediaPresentationDuration": _format_duration(manifest.duration_s),
            "minBufferTime": _format_duration(manifest.min_buffer_time_s),
            "profiles": "urn:mpeg:dash:profile:isoff-on-demand:2011",
        },
    )
    if manifest.allowed_combinations is not None:
        combos_el = ET.SubElement(root, f"{{{REPRO_NS}}}AllowedCombinations")
        for video_id, audio_id in manifest.allowed_combinations:
            ET.SubElement(
                combos_el,
                f"{{{REPRO_NS}}}Combination",
                attrib={"video": video_id, "audio": audio_id},
            )
    period = ET.SubElement(root, f"{{{MPD_NS}}}Period", attrib={"id": "0"})
    for aset in manifest.adaptation_sets:
        aset_attrib = {"contentType": aset.content_type}
        if aset.mime_type:
            aset_attrib["mimeType"] = aset.mime_type
        if aset.lang:
            aset_attrib["lang"] = aset.lang
        aset_el = ET.SubElement(
            period, f"{{{MPD_NS}}}AdaptationSet", attrib=aset_attrib
        )
        if aset.segment_template is not None:
            template = aset.segment_template
            ET.SubElement(
                aset_el,
                f"{{{MPD_NS}}}SegmentTemplate",
                attrib={
                    "media": template.media,
                    "initialization": template.initialization,
                    "duration": str(template.duration),
                    "timescale": str(template.timescale),
                    "startNumber": str(template.start_number),
                },
            )
        for rep in aset.representations:
            rep_attrib = {"id": rep.rep_id, "bandwidth": str(rep.bandwidth_bps)}
            if rep.codecs:
                rep_attrib["codecs"] = rep.codecs
            if rep.width is not None:
                rep_attrib["width"] = str(rep.width)
            if rep.height is not None:
                rep_attrib["height"] = str(rep.height)
            if rep.audio_sampling_rate_hz is not None:
                rep_attrib["audioSamplingRate"] = str(rep.audio_sampling_rate_hz)
            rep_el = ET.SubElement(
                aset_el, f"{{{MPD_NS}}}Representation", attrib=rep_attrib
            )
            if rep.audio_channels is not None:
                ET.SubElement(
                    rep_el,
                    f"{{{MPD_NS}}}AudioChannelConfiguration",
                    attrib={
                        "schemeIdUri": (
                            "urn:mpeg:dash:23003:3:audio_channel_configuration:2011"
                        ),
                        "value": str(rep.audio_channels),
                    },
                )
    return '<?xml version="1.0" encoding="utf-8"?>\n' + ET.tostring(
        root, encoding="unicode"
    )


def parse_mpd(text: str) -> DashManifest:
    """Parse MPD XML text back into a :class:`DashManifest`."""
    try:
        root = ET.fromstring(text)
    except ET.ParseError as exc:
        raise ManifestParseError(f"invalid MPD XML: {exc}") from exc
    if root.tag != f"{{{MPD_NS}}}MPD":
        raise ManifestParseError(f"root element is {root.tag}, expected MPD")
    duration_attr = root.get("mediaPresentationDuration")
    if duration_attr is None:
        raise ManifestParseError("MPD lacks mediaPresentationDuration")
    duration_s = _parse_duration(duration_attr)
    min_buffer = root.get("minBufferTime")
    min_buffer_s = _parse_duration(min_buffer) if min_buffer else 2.0

    allowed: Optional[Tuple[Tuple[str, str], ...]] = None
    combos_el = root.find(f"{{{REPRO_NS}}}AllowedCombinations")
    if combos_el is not None:
        pairs: List[Tuple[str, str]] = []
        for combo_el in combos_el.findall(f"{{{REPRO_NS}}}Combination"):
            video_id, audio_id = combo_el.get("video"), combo_el.get("audio")
            if not video_id or not audio_id:
                raise ManifestParseError("Combination element missing video/audio id")
            pairs.append((video_id, audio_id))
        allowed = tuple(pairs)

    period = root.find(f"{{{MPD_NS}}}Period")
    if period is None:
        raise ManifestParseError("MPD has no Period")
    asets: List[DashAdaptationSet] = []
    for aset_el in period.findall(f"{{{MPD_NS}}}AdaptationSet"):
        content_type = aset_el.get("contentType")
        mime = aset_el.get("mimeType", "")
        if content_type is None:
            # Infer from mimeType like real parsers do.
            if mime.startswith("video"):
                content_type = "video"
            elif mime.startswith("audio"):
                content_type = "audio"
            else:
                raise ManifestParseError(
                    "AdaptationSet lacks contentType and mimeType is "
                    f"{mime!r}; cannot infer medium"
                )
        template: Optional[DashSegmentTemplate] = None
        template_el = aset_el.find(f"{{{MPD_NS}}}SegmentTemplate")
        if template_el is not None:
            try:
                template = DashSegmentTemplate(
                    media=template_el.get("media", "$RepresentationID$_$Number$.m4s"),
                    initialization=template_el.get(
                        "initialization", "$RepresentationID$_init.mp4"
                    ),
                    duration=int(template_el.get("duration", "5000")),
                    timescale=int(template_el.get("timescale", "1000")),
                    start_number=int(template_el.get("startNumber", "1")),
                )
            except (ValueError, ManifestError) as exc:
                raise ManifestParseError(f"bad SegmentTemplate: {exc}") from exc
        reps: List[DashRepresentation] = []
        for rep_el in aset_el.findall(f"{{{MPD_NS}}}Representation"):
            rep_id = rep_el.get("id")
            bandwidth = rep_el.get("bandwidth")
            if rep_id is None or bandwidth is None:
                raise ManifestParseError("Representation lacks id or bandwidth")
            channels: Optional[int] = None
            chan_el = rep_el.find(f"{{{MPD_NS}}}AudioChannelConfiguration")
            if chan_el is not None and chan_el.get("value"):
                channels = int(chan_el.get("value"))
            sampling = rep_el.get("audioSamplingRate")
            width = rep_el.get("width")
            height = rep_el.get("height")
            reps.append(
                DashRepresentation(
                    rep_id=rep_id,
                    bandwidth_bps=int(bandwidth),
                    codecs=rep_el.get("codecs", ""),
                    width=int(width) if width else None,
                    height=int(height) if height else None,
                    audio_channels=channels,
                    audio_sampling_rate_hz=int(sampling) if sampling else None,
                )
            )
        asets.append(
            DashAdaptationSet(
                content_type=content_type,
                representations=tuple(reps),
                mime_type=mime,
                lang=aset_el.get("lang"),
                segment_template=template,
            )
        )
    return DashManifest(
        duration_s=duration_s,
        adaptation_sets=tuple(asets),
        min_buffer_time_s=min_buffer_s,
        allowed_combinations=allowed,
    )
