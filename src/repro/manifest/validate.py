"""Deprecated object-level manifest linter (compat shim).

.. deprecated::
    This module is superseded by :mod:`repro.analysis`, which lints the
    *serialized* manifest text with file/line/column source spans, a
    rule registry, autofix, and SARIF output. These wrappers serialize
    the given objects, run the analyzer, and map the findings that
    correspond to the original eight rules back onto the legacy
    :class:`Finding` shape. New code should call
    :func:`repro.analysis.analyze_files` directly.

The legacy rule set (all ported to the analyzer under the same IDs):
``HLS-CURATED``, ``HLS-TRACK-BITRATES``, ``HLS-BITRATE-TAG``,
``HLS-AVERAGE-BANDWIDTH``, ``HLS-VARIANT-ORDER``,
``HLS-AUDIO-COVERAGE``, ``DASH-COMBINATIONS``,
``DASH-BANDWIDTH-SANITY``.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import List

# Severity and worst_severity are shared with the analyzer so that
# identity checks (``severity is Severity.ERROR``) keep working across
# old and new call sites.
from ..analysis.findings import Severity, worst_severity  # noqa: F401
from .dash import DashManifest
from .hls import HlsMasterPlaylist
from .packager import HlsPackage

#: Rule IDs this legacy API ever reported, per entry point.
_MASTER_RULES = frozenset(
    {
        "HLS-CURATED",
        "HLS-AVERAGE-BANDWIDTH",
        "HLS-VARIANT-ORDER",
        "HLS-AUDIO-COVERAGE",
    }
)
_PACKAGE_RULES = _MASTER_RULES | {"HLS-TRACK-BITRATES", "HLS-BITRATE-TAG"}
_DASH_RULES = frozenset({"DASH-COMBINATIONS", "DASH-BANDWIDTH-SANITY"})


@dataclass(frozen=True)
class Finding:
    """Legacy span-less finding (see :class:`repro.analysis.Finding`)."""

    rule: str
    severity: Severity
    message: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.severity.value.upper()}] {self.rule}: {self.message}"


def _deprecation_message(name: str) -> str:
    return (
        f"repro.manifest.validate.{name} is deprecated; use "
        "repro.analysis.analyze_files (text-level linting with source "
        "spans) instead"
    )


def _run(files, allowed_rules) -> List[Finding]:
    # Imported lazily: repro.analysis imports repro.manifest.hls for the
    # URI convention, so a module-level import would cycle.
    from ..analysis import AnalyzerConfig, analyze_files

    config = AnalyzerConfig(selected=frozenset(allowed_rules))
    return [
        Finding(rule=f.rule, severity=f.severity, message=f.message)
        for f in analyze_files(files, config)
    ]


def lint_hls_master(master: HlsMasterPlaylist) -> List[Finding]:
    """Lint a master playlist in isolation (no media playlists)."""
    from .hls import write_master_playlist

    # warnings.warn is called directly from the deprecated function
    # (not through a helper) so that stacklevel=2 attributes the
    # warning to the *caller's* file and line.
    warnings.warn(
        _deprecation_message("lint_hls_master"), DeprecationWarning, stacklevel=2
    )
    return _run({"master.m3u8": write_master_playlist(master)}, _MASTER_RULES)


def lint_hls_package(package: HlsPackage) -> List[Finding]:
    """Lint a full packaging: master + media playlists."""
    warnings.warn(
        _deprecation_message("lint_hls_package"), DeprecationWarning, stacklevel=2
    )
    return _run(package.write_all(), _PACKAGE_RULES)


def lint_dash_manifest(manifest: DashManifest) -> List[Finding]:
    """Lint a DASH manifest object."""
    from .dash import write_mpd

    warnings.warn(
        _deprecation_message("lint_dash_manifest"), DeprecationWarning, stacklevel=2
    )
    return _run({"manifest.mpd": write_mpd(manifest)}, _DASH_RULES)
