"""Best-practices manifest linter.

Section 4.1 tells content providers what their manifests should carry;
this module turns those recommendations into machine-checkable rules.
Run :func:`lint_hls_package` / :func:`lint_dash_manifest` over a
packaging and get a list of findings, each tied to the practice it
violates. The CLI exposes this as ``repro-abr lint``.

Rules (HLS):

* ``HLS-CURATED`` — the master playlist should list a *curated subset*
  of combinations, not the full cross product ("not specify all
  possible combinations unless they are all desirable").
* ``HLS-TRACK-BITRATES`` — per-track bitrates must be derivable from
  the media playlists (byte ranges or ``EXT-X-BITRATE``), otherwise a
  player cannot budget audio and video individually.
* ``HLS-BITRATE-TAG`` — in chunk-per-file packaging the optional
  ``EXT-X-BITRATE`` tag "should be made mandatory".
* ``HLS-AVERAGE-BANDWIDTH`` — variants should declare
  ``AVERAGE-BANDWIDTH`` alongside the peak ``BANDWIDTH`` (VBR ladders
  overstate requirements otherwise).
* ``HLS-VARIANT-ORDER`` — the first variant containing a video track
  determines some players' bitrate estimate for it; listing variants in
  ascending bandwidth order keeps that overestimation minimal.
* ``HLS-AUDIO-COVERAGE`` — every audio rendition referenced by a
  variant must exist in the rendition group.

Rules (DASH):

* ``DASH-COMBINATIONS`` — the MPD carries no allowed-combinations
  restriction; DASH today cannot express one, so this flags the gap the
  paper recommends the spec close (our extension element satisfies it).
* ``DASH-BANDWIDTH-SANITY`` — declared bandwidths must ascend within an
  adaptation set and be positive.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional

from .dash import DashManifest
from .hls import HlsMasterPlaylist
from .packager import HlsPackage


class Severity(enum.Enum):
    ERROR = "error"  # a player will misbehave (paper-documented failure)
    WARNING = "warning"  # risky practice
    INFO = "info"  # improvement opportunity

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class Finding:
    rule: str
    severity: Severity
    message: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.severity.value.upper()}] {self.rule}: {self.message}"


def lint_hls_master(master: HlsMasterPlaylist) -> List[Finding]:
    """Lint a master playlist in isolation (no media playlists)."""
    findings: List[Finding] = []

    # HLS-CURATED: full cross product?
    video_ids = {v.video_id for v in master.variants if v.video_id}
    audio_ids = {v.audio_id for v in master.variants if v.audio_id}
    if video_ids and audio_ids and len(master.variants) >= len(video_ids) * len(
        audio_ids
    ):
        findings.append(
            Finding(
                rule="HLS-CURATED",
                severity=Severity.WARNING,
                message=(
                    f"master lists all {len(master.variants)} combinations of "
                    f"{len(video_ids)} video x {len(audio_ids)} audio tracks; "
                    "curate the desirable subset instead (Section 4.1)"
                ),
            )
        )

    # HLS-AVERAGE-BANDWIDTH.
    missing_avg = [
        v.uri for v in master.variants if v.average_bandwidth_bps is None
    ]
    if missing_avg:
        findings.append(
            Finding(
                rule="HLS-AVERAGE-BANDWIDTH",
                severity=Severity.INFO,
                message=(
                    f"{len(missing_avg)} variants lack AVERAGE-BANDWIDTH "
                    "(peak-only budgeting over-constrains VBR ladders)"
                ),
            )
        )

    # HLS-VARIANT-ORDER: is the first variant per video its cheapest?
    for video_id in sorted(video_ids):
        variants = master.variants_for_video(video_id)
        if variants and variants[0].bandwidth_bps > min(
            v.bandwidth_bps for v in variants
        ):
            findings.append(
                Finding(
                    rule="HLS-VARIANT-ORDER",
                    severity=Severity.WARNING,
                    message=(
                        f"the first variant containing {video_id} is not its "
                        "cheapest; players that price the track by its first "
                        "variant will overestimate it more than necessary"
                    ),
                )
            )

    # HLS-AUDIO-COVERAGE. A variant's audio is covered either by a
    # rendition of the same name (single-group packaging) or by its
    # referenced rendition group (per-rung multi-language packaging).
    rendition_names = {r.name for r in master.renditions}
    group_ids = {r.group_id for r in master.renditions}
    for variant in master.variants:
        group_covered = variant.audio_group is not None and (
            variant.audio_group in group_ids
        )
        name_covered = variant.audio_id in rendition_names
        if variant.audio_id and not (group_covered or name_covered):
            findings.append(
                Finding(
                    rule="HLS-AUDIO-COVERAGE",
                    severity=Severity.ERROR,
                    message=(
                        f"variant {variant.uri!r} references audio "
                        f"{variant.audio_id!r} with no EXT-X-MEDIA rendition"
                    ),
                )
            )
    return findings


def lint_hls_package(package: HlsPackage) -> List[Finding]:
    """Lint a full packaging: master + media playlists."""
    findings = lint_hls_master(package.master)

    blind_tracks = []
    untagged_tracks = []
    for track_id, playlist in sorted(package.media_playlists.items()):
        rates = playlist.derived_bitrates_kbps()
        if rates is None:
            blind_tracks.append(track_id)
        else:
            has_byteranges = all(s.byterange is not None for s in playlist.segments)
            has_tags = all(s.bitrate_kbps is not None for s in playlist.segments)
            if not has_byteranges and not has_tags:
                untagged_tracks.append(track_id)
    if blind_tracks:
        findings.append(
            Finding(
                rule="HLS-TRACK-BITRATES",
                severity=Severity.ERROR,
                message=(
                    f"per-track bitrates are not derivable for {blind_tracks}; "
                    "add EXT-X-BYTERANGE or EXT-X-BITRATE so players can "
                    "budget each medium (Section 4.1)"
                ),
            )
        )
    if untagged_tracks:
        findings.append(
            Finding(
                rule="HLS-BITRATE-TAG",
                severity=Severity.INFO,
                message=(
                    f"tracks {untagged_tracks} derive bitrates only partially; "
                    "emit EXT-X-BITRATE on every segment"
                ),
            )
        )
    return findings


def lint_dash_manifest(manifest: DashManifest) -> List[Finding]:
    findings: List[Finding] = []
    if manifest.allowed_combinations is None:
        findings.append(
            Finding(
                rule="DASH-COMBINATIONS",
                severity=Severity.WARNING,
                message=(
                    "no allowed-combinations restriction: players must invent "
                    "their own pairing policy (ExoPlayer) or allow everything "
                    "(Shaka); embed the combination list (Section 4.1 suggests "
                    "expanding the DASH spec; this library's extension element "
                    "or an out-of-band channel works today)"
                ),
            )
        )
    for aset in manifest.adaptation_sets:
        bandwidths = [r.bandwidth_bps for r in aset.representations]
        if bandwidths != sorted(bandwidths):
            findings.append(
                Finding(
                    rule="DASH-BANDWIDTH-SANITY",
                    severity=Severity.WARNING,
                    message=(
                        f"{aset.content_type} representations are not listed "
                        "in ascending bandwidth order"
                    ),
                )
            )
    return findings


def worst_severity(findings: List[Finding]) -> Optional[Severity]:
    """The most severe level present, or ``None`` for a clean manifest."""
    order = {Severity.INFO: 0, Severity.WARNING: 1, Severity.ERROR: 2}
    if not findings:
        return None
    return max((f.severity for f in findings), key=order.__getitem__)
