"""Unit conventions and conversion helpers.

The whole library sticks to one set of units so that quantities can be
combined without ambiguity:

* **time** — seconds (``float``)
* **bitrate** — kilobits per second, *kbps* (``float``); this matches the
  units used throughout the paper (Table 1 declares bitrates in Kbps)
* **data size** — bits (``float``); helpers convert to/from bytes,
  kilobytes and megabits where external interfaces (e.g. Shaka's 16 KB
  sample filter) are specified in other units

Sizes are floats rather than ints because they are produced by
integrating piecewise-constant bandwidth over time; rounding is applied
only at presentation boundaries.
"""

from __future__ import annotations

BITS_PER_BYTE = 8.0
BITS_PER_KILOBIT = 1000.0
BYTES_PER_KILOBYTE = 1024.0

#: One kilobyte expressed in bits (Shaka's sample filter is in KB).
BITS_PER_KILOBYTE = BITS_PER_BYTE * BYTES_PER_KILOBYTE


def kbps_to_bps(kbps: float) -> float:
    """Convert kilobits per second to bits per second."""
    return kbps * BITS_PER_KILOBIT


def bps_to_kbps(bps: float) -> float:
    """Convert bits per second to kilobits per second."""
    return bps / BITS_PER_KILOBIT


def bits_to_bytes(bits: float) -> float:
    """Convert bits to bytes."""
    return bits / BITS_PER_BYTE


def bytes_to_bits(nbytes: float) -> float:
    """Convert bytes to bits."""
    return nbytes * BITS_PER_BYTE


def bits_to_kilobytes(bits: float) -> float:
    """Convert bits to kilobytes (1 KB = 1024 bytes)."""
    return bits / BITS_PER_KILOBYTE


def kilobytes_to_bits(kilobytes: float) -> float:
    """Convert kilobytes (1 KB = 1024 bytes) to bits."""
    return kilobytes * BITS_PER_KILOBYTE


def chunk_bits(bitrate_kbps: float, duration_s: float) -> float:
    """Size in bits of a chunk encoded at ``bitrate_kbps`` for ``duration_s``."""
    if bitrate_kbps < 0:
        raise ValueError(f"bitrate must be non-negative, got {bitrate_kbps}")
    if duration_s < 0:
        raise ValueError(f"duration must be non-negative, got {duration_s}")
    return kbps_to_bps(bitrate_kbps) * duration_s


def bitrate_of(bits: float, duration_s: float) -> float:
    """Average bitrate in kbps of ``bits`` transferred over ``duration_s``."""
    if duration_s <= 0:
        raise ValueError(f"duration must be positive, got {duration_s}")
    return bps_to_kbps(bits / duration_s)


# -- dimension vocabulary ---------------------------------------------------
#
# The units lint (repro.analysis.code_rules, UNIT-* rules) infers a
# dimension for every identifier from these tables, so the naming
# convention and the converter signatures live next to the converters
# they describe. Dimension names are "<quantity>-<unit>"; two
# dimensions are compatible only when they are identical — mixing
# time-s with time-ms is as much a bug as mixing time with size.

#: Identifier suffix -> dimension (matched case-insensitively, longest
#: suffix first, so ``ladder_kbps`` is rate-kbps, not rate-bps).
DIMENSION_SUFFIXES = {
    "_s": "time-s",
    "_ms": "time-ms",
    "_kbps": "rate-kbps",
    "_bps": "rate-bps",
    "_bits": "size-bits",
    "_bytes": "size-bytes",
    "_kilobytes": "size-kilobytes",
}

#: Bare identifiers that carry a dimension without a suffix — the
#: parameter names of the converters above.
DIMENSION_NAMES = {
    "kbps": "rate-kbps",
    "bps": "rate-bps",
    "bits": "size-bits",
    "nbytes": "size-bytes",
    "kilobytes": "size-kilobytes",
}

#: Converter signatures: function name -> (positional parameter
#: dimensions, return dimension). The lint checks call sites against
#: these and propagates the return dimension through assignments.
CONVERTER_SIGNATURES = {
    "kbps_to_bps": (("rate-kbps",), "rate-bps"),
    "bps_to_kbps": (("rate-bps",), "rate-kbps"),
    "bits_to_bytes": (("size-bits",), "size-bytes"),
    "bytes_to_bits": (("size-bytes",), "size-bits"),
    "bits_to_kilobytes": (("size-bits",), "size-kilobytes"),
    "kilobytes_to_bits": (("size-kilobytes",), "size-bits"),
    "chunk_bits": (("rate-kbps", "time-s"), "size-bits"),
    "bitrate_of": (("size-bits", "time-s"), "rate-kbps"),
}
