"""Crash-safe on-disk framing shared by the cache, chaos and replay logs.

Two framings live here, both built on the same CRC32+length idea: a
reader must be able to tell *truncation* (a writer died mid-write, or
the disk filled — the well-formed prefix is still trustworthy) apart
from *corruption* (bit rot, a hostile or confused writer — nothing
after the damage can be trusted).

**Entry framing** wraps one binary payload (a whole file):
``magic | 8-byte big-endian length | 4-byte CRC32 | payload``. The
:class:`~repro.runner.cache.ResultCache` frames every cache entry this
way so a worker killed mid-write is classified and evicted correctly.

**Line framing** wraps one UTF-8 JSON document per line for append-only
event logs (:mod:`repro.replay`)::

    REV1 <length:08x> <crc32:08x> <json>\\n

Each line is a self-contained frame written with a single ``write``
call, so a crashed recorder tears at most the final line; everything
before the tear replays. The payload after the third space is plain
JSON — ``awk '{print $4}'`` or a line split recovers it without this
module.

:func:`append_line` is the O_APPEND single-write append idiom proven by
the chaos event log: concurrent writers (worker processes and their
parent) interleave whole lines, never fragments.

The magics and header ``struct`` formats in this module are a guarded
compatibility surface: they are snapshotted in ``surfaces/framing.json``
and any edit fails ``repro-abr lint`` (``SURF-FRAMING-CONST``). On-disk
framing constants are forever — a new format gets a *new* magic, and
readers keep accepting the old one.
"""

from __future__ import annotations

import os
import struct
import zlib
from dataclasses import dataclass
from typing import List, Optional, Tuple

# -- entry framing (one binary payload per file) ----------------------------

#: Magic of a framed cache entry. Kept byte-identical to the value the
#: cache has always written so existing caches stay readable.
ENTRY_MAGIC = b"RPRC1"
_ENTRY_HEADER = struct.Struct(">QI")
ENTRY_HEADER_SIZE = len(ENTRY_MAGIC) + _ENTRY_HEADER.size

#: Damage classifications returned by the unframe helpers.
OK = "ok"
TRUNCATED = "truncated"
CORRUPT = "corrupt"


def frame_payload(payload: bytes) -> bytes:
    """Wrap a binary payload in the entry framing."""
    return (
        ENTRY_MAGIC
        + _ENTRY_HEADER.pack(len(payload), zlib.crc32(payload))
        + payload
    )


def unframe_payload(data: bytes) -> Tuple[Optional[bytes], str]:
    """``(payload, OK)`` for a well-formed entry, else ``(None, kind)``.

    A file that is a strict prefix of a well-formed entry (cut-off
    magic, short header, or payload shorter than the declared length)
    is ``TRUNCATED``; anything else — wrong magic, surplus bytes, CRC
    mismatch — is ``CORRUPT``.
    """
    if len(data) < ENTRY_HEADER_SIZE:
        prefix_of_magic = ENTRY_MAGIC.startswith(data[: len(ENTRY_MAGIC)])
        return None, (TRUNCATED if prefix_of_magic else CORRUPT)
    if not data.startswith(ENTRY_MAGIC):
        return None, CORRUPT
    length, crc = _ENTRY_HEADER.unpack_from(data, len(ENTRY_MAGIC))
    payload = data[ENTRY_HEADER_SIZE:]
    if len(payload) < length:
        return None, TRUNCATED
    if len(payload) > length or zlib.crc32(payload) != crc:
        return None, CORRUPT
    return payload, OK


# -- line framing (one JSON document per line) ------------------------------

#: Magic of one framed event-log line (replay log schema rides on the
#: JSON payload's own ``schema`` field; this only versions the frame).
LINE_MAGIC = b"REV1"
#: ``REV1 xxxxxxxx yyyyyyyy `` — magic, length hex, CRC hex, 3 spaces.
_LINE_PREFIX_LEN = len(LINE_MAGIC) + 1 + 8 + 1 + 8 + 1


def frame_line(payload: bytes) -> bytes:
    """One framed log line (terminator included) for a JSON payload."""
    if b"\n" in payload:
        raise ValueError("framed line payload must not contain newlines")
    return b"%s %08x %08x %s\n" % (
        LINE_MAGIC,
        len(payload),
        zlib.crc32(payload),
        payload,
    )


@dataclass
class LineScan:
    """The well-formed prefix of a framed line log, plus its damage.

    ``payloads`` holds the JSON payload bytes of every intact line in
    order. ``damage`` is ``None`` for a clean log, else ``TRUNCATED``
    (the final line is a torn prefix — everything scanned is good) or
    ``CORRUPT`` (a line fails its CRC or frame; the scan stops there
    and nothing after ``damage_line`` was read). Lines are 1-based.
    """

    payloads: List[bytes]
    damage: Optional[str] = None
    damage_line: Optional[int] = None
    damage_detail: Optional[str] = None

    @property
    def intact(self) -> bool:
        return self.damage is None


def _classify_line(line: bytes) -> Tuple[Optional[bytes], str, str]:
    """``(payload, kind, detail)`` for one line without its newline."""
    prefix = line[:_LINE_PREFIX_LEN]
    well_formed_prefix = (
        len(prefix) == _LINE_PREFIX_LEN
        and prefix.startswith(LINE_MAGIC + b" ")
        and prefix[len(LINE_MAGIC) + 9 : len(LINE_MAGIC) + 10] == b" "
        and prefix.endswith(b" ")
    )
    if not well_formed_prefix:
        # A short prefix of a valid header reads as truncation; junk as
        # corruption. Build the longest header this line could be a
        # prefix of and compare.
        if len(line) < _LINE_PREFIX_LEN:
            template = (
                LINE_MAGIC + b" " + b"00000000" + b" " + b"00000000" + b" "
            )
            plausible = all(
                a == b or (a in b"0123456789abcdef" and b in b"0123456789abcdef")
                for a, b in zip(line, template)
            )
            if plausible:
                return None, TRUNCATED, "line ends inside the frame header"
        return None, CORRUPT, "malformed frame header"
    try:
        length = int(line[len(LINE_MAGIC) + 1 : len(LINE_MAGIC) + 9], 16)
        crc = int(line[len(LINE_MAGIC) + 10 : len(LINE_MAGIC) + 18], 16)
    except ValueError:
        return None, CORRUPT, "non-hex length/CRC in frame header"
    payload = line[_LINE_PREFIX_LEN:]
    if len(payload) < length:
        return None, TRUNCATED, (
            f"payload holds {len(payload)} of {length} declared bytes"
        )
    if len(payload) > length:
        return None, CORRUPT, (
            f"payload holds {len(payload)} bytes, {length} declared"
        )
    if zlib.crc32(payload) != crc:
        return None, CORRUPT, "payload CRC mismatch"
    return payload, OK, ""


def scan_lines(data: bytes) -> LineScan:
    """Scan a framed line log, stopping cleanly at the first damage.

    A torn *final* line (no terminating newline, or a newline-less
    prefix of a frame) is ``TRUNCATED``; a damaged line followed by
    more data — or any mid-log CRC/frame failure — is ``CORRUPT``.
    """
    scan = LineScan(payloads=[])
    if not data:
        return scan
    lines = data.split(b"\n")
    unterminated = lines[-1] != b""
    complete = lines[:-1]  # the final element is b"" or a torn tail
    for number, line in enumerate(complete, 1):
        payload, kind, detail = _classify_line(line)
        if kind is not OK:
            # Damage on a newline-terminated line: the writer finished
            # the line, so a short payload here is not a tear.
            scan.damage = CORRUPT
            scan.damage_line = number
            scan.damage_detail = detail or "damaged line"
            return scan
        scan.payloads.append(payload)
    if unterminated:
        payload, kind, detail = _classify_line(lines[-1])
        if kind is OK:
            # Complete frame, missing only the terminator: the tear hit
            # between payload and newline. The payload is whole.
            scan.payloads.append(payload)
            scan.damage = TRUNCATED
            scan.damage_detail = "final line missing its terminator"
        else:
            scan.damage = kind
            scan.damage_detail = detail
        scan.damage_line = len(complete) + 1
    return scan


def scan_line_file(path: str) -> LineScan:
    """:func:`scan_lines` over a file's bytes."""
    with open(path, "rb") as f:
        return scan_lines(f.read())


# -- append-only writing ----------------------------------------------------


def append_line(path: str, line: bytes, best_effort: bool = False) -> None:
    """Append one pre-framed line with a single O_APPEND write.

    One ``write`` call per line is what makes concurrent writers safe
    (POSIX appends are atomic per call) and bounds crash damage to a
    torn final line. ``best_effort`` swallows OS errors — the chaos
    log's contract, where a lost line must never fail the run.
    """
    try:
        fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
        try:
            os.write(fd, line)
        finally:
            os.close(fd)
    except OSError:
        if not best_effort:
            raise
