"""QoE metrics for demuxed A/V streaming sessions."""

from .aggregate import CohortAggregate, OnlineStats, QoEAggregate, percentile
from .diagnosis import Diagnosis, DiagnosisThresholds, Pathology, diagnose
from .metrics import (
    DEFAULT_WEIGHTS,
    QoEReport,
    QoEWeights,
    combination_utility,
    compute_qoe,
    is_undesirable,
    track_utility,
)
from .rescore import rescore_log, rescore_logs

__all__ = [
    "CohortAggregate",
    "DEFAULT_WEIGHTS",
    "Diagnosis",
    "OnlineStats",
    "DiagnosisThresholds",
    "Pathology",
    "QoEAggregate",
    "QoEReport",
    "diagnose",
    "percentile",
    "QoEWeights",
    "combination_utility",
    "compute_qoe",
    "is_undesirable",
    "rescore_log",
    "rescore_logs",
    "track_utility",
]
