"""Population-level QoE statistics.

One session is an anecdote; services care about distributions — mean
and tail QoE, the fraction of sessions that stall at all, switch rates.
:class:`QoEAggregate` folds many :class:`~repro.qoe.metrics.QoEReport`
objects into those statistics for the corpus experiments.

:class:`QoEAggregate` keeps every report, which is fine for dozens of
sessions and wrong for cohorts of thousands: a flash-crowd grid cell
would hold the whole population in memory just to compute means. The
streaming pair — :class:`OnlineStats` (Welford's single-pass moments
with Chan's parallel merge) and :class:`CohortAggregate` (a fixed set
of :class:`OnlineStats` plus counters) — folds each finished session
in O(1) time and keeps O(1) total state regardless of cohort size, and
merges across shards exactly: fold-one-by-one and merge-of-partials
produce identical statistics, which is what lets parallel grid cells
aggregate without ever materializing the union of their sessions.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from ..errors import ReproError
from .metrics import QoEReport


def percentile(values: Sequence[float], fraction: float) -> float:
    """Linear-interpolated percentile (``fraction`` in [0, 1])."""
    if not values:
        raise ReproError("percentile of empty sequence")
    if not 0.0 <= fraction <= 1.0:
        raise ReproError(f"fraction must be in [0,1], got {fraction}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = fraction * (len(ordered) - 1)
    low = int(math.floor(rank))
    high = int(math.ceil(rank))
    weight = rank - low
    return ordered[low] * (1 - weight) + ordered[high] * weight


class OnlineStats:
    """Single-pass mean/variance/extrema (Welford), mergeable (Chan).

    ``add`` is O(1) and numerically stable; ``merge`` combines two
    partial aggregates exactly, so sharded cohorts reduce to the same
    numbers a single pass would produce. Empty stats are a valid merge
    identity.
    """

    __slots__ = ("n", "mean", "m2", "min", "max")

    def __init__(self) -> None:
        self.n = 0
        self.mean = 0.0
        self.m2 = 0.0
        self.min = math.inf
        self.max = -math.inf

    def add(self, value: float) -> None:
        if not math.isfinite(value):
            raise ReproError(f"non-finite sample {value!r} in online stats")
        self.n += 1
        delta = value - self.mean
        self.mean += delta / self.n
        self.m2 += delta * (value - self.mean)
        self.min = min(self.min, value)
        self.max = max(self.max, value)

    def merge(self, other: "OnlineStats") -> None:
        if other.n == 0:
            return
        if self.n == 0:
            self.n = other.n
            self.mean = other.mean
            self.m2 = other.m2
            self.min = other.min
            self.max = other.max
            return
        n = self.n + other.n
        delta = other.mean - self.mean
        self.m2 += other.m2 + delta * delta * self.n * other.n / n
        self.mean += delta * other.n / n
        self.n = n
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)

    def variance(self) -> float:
        """Population variance (0 for fewer than two samples)."""
        if self.n < 2:
            return 0.0
        return self.m2 / self.n

    def stddev(self) -> float:
        return math.sqrt(self.variance())

    def summary(self) -> Dict[str, float]:
        if self.n == 0:
            return {"n": 0, "mean": 0.0, "stddev": 0.0, "min": 0.0, "max": 0.0}
        return {
            "n": self.n,
            "mean": self.mean,
            "stddev": self.stddev(),
            "min": self.min,
            "max": self.max,
        }


#: The per-session metrics a cohort tracks distributions over.
_COHORT_METRICS = (
    "startup_delay_s",
    "stall_s",
    "stall_ratio",
    "switch_rate_per_min",
    "av_imbalance_s",
    "failovers",
    "retries",
    "wasted_fraction",
)


class CohortAggregate:
    """Streaming cohort QoE: O(1) memory however many sessions fold in.

    Accepts any object with the
    :class:`~repro.sim.cohort.CohortSessionSummary` fields (duck-typed
    so the qoe layer does not import the sim layer). Derived per-session
    metrics:

    * ``stall_ratio`` — stalled seconds over session lifetime;
    * ``switch_rate_per_min`` — A+V track switches per minute alive;
    * ``av_imbalance_s`` — time-mean ``|video buffer − audio buffer|``;
    * ``wasted_fraction`` — abandoned-transfer bits over all bits.
    """

    __slots__ = ("sessions", "completed", "degraded", "stalled_sessions",
                 "failover_sessions", "verdicts", "stats")

    def __init__(self) -> None:
        self.sessions = 0
        self.completed = 0
        self.degraded = 0
        self.stalled_sessions = 0
        self.failover_sessions = 0
        self.verdicts: Dict[str, int] = {}
        self.stats: Dict[str, OnlineStats] = {
            name: OnlineStats() for name in _COHORT_METRICS
        }

    def __len__(self) -> int:
        return self.sessions

    def add_session(self, summary) -> None:
        """Fold one finished session in (O(1) time and memory)."""
        self.sessions += 1
        if summary.completed:
            self.completed += 1
            verdict = "completed"
        else:
            self.degraded += 1
            verdict = summary.termination_reason or "no_verdict"
        self.verdicts[verdict] = self.verdicts.get(verdict, 0) + 1
        if summary.n_stalls > 0:
            self.stalled_sessions += 1
        if summary.failovers > 0:
            self.failover_sessions += 1
        lifetime = max(summary.end_s - summary.arrival_s, 1e-12)
        bits = summary.bits_useful + summary.bits_wasted
        switches = summary.video_switches + summary.audio_switches
        self.stats["startup_delay_s"].add(summary.startup_delay_s)
        self.stats["stall_s"].add(summary.stall_s)
        self.stats["stall_ratio"].add(summary.stall_s / lifetime)
        self.stats["switch_rate_per_min"].add(switches * 60.0 / lifetime)
        self.stats["av_imbalance_s"].add(summary.mean_av_imbalance_s)
        self.stats["failovers"].add(float(summary.failovers))
        self.stats["retries"].add(float(summary.retries))
        self.stats["wasted_fraction"].add(
            summary.bits_wasted / bits if bits > 0 else 0.0
        )

    def merge(self, other: "CohortAggregate") -> None:
        """Absorb another shard's partial aggregate exactly."""
        self.sessions += other.sessions
        self.completed += other.completed
        self.degraded += other.degraded
        self.stalled_sessions += other.stalled_sessions
        self.failover_sessions += other.failover_sessions
        for verdict, count in other.verdicts.items():
            self.verdicts[verdict] = self.verdicts.get(verdict, 0) + count
        for name, stats in other.stats.items():
            self.stats[name].merge(stats)

    def summary(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "sessions": self.sessions,
            "completed": self.completed,
            "degraded": self.degraded,
            "stalled_sessions": self.stalled_sessions,
            "failover_sessions": self.failover_sessions,
            "verdicts": dict(sorted(self.verdicts.items())),
        }
        for name in _COHORT_METRICS:
            out[name] = self.stats[name].summary()
        return out


@dataclass
class QoEAggregate:
    """Statistics over a set of session QoE reports."""

    reports: List[QoEReport] = field(default_factory=list)

    def add(self, report: QoEReport) -> None:
        self.reports.append(report)

    def __len__(self) -> int:
        return len(self.reports)

    def _require_reports(self) -> None:
        if not self.reports:
            raise ReproError("aggregate has no reports")

    @property
    def scores(self) -> List[float]:
        return [r.score for r in self.reports]

    def mean_score(self) -> float:
        self._require_reports()
        return sum(self.scores) / len(self.reports)

    def p10_score(self) -> float:
        """Tail QoE: the bottom-decile session."""
        self._require_reports()
        return percentile(self.scores, 0.10)

    def median_score(self) -> float:
        self._require_reports()
        return percentile(self.scores, 0.50)

    def stall_ratio(self) -> float:
        """Fraction of sessions that stalled at least once."""
        self._require_reports()
        return sum(1 for r in self.reports if r.n_stalls > 0) / len(self.reports)

    def mean_rebuffer_s(self) -> float:
        self._require_reports()
        return sum(r.rebuffer_s for r in self.reports) / len(self.reports)

    def mean_switches(self) -> float:
        self._require_reports()
        return sum(r.video_switches + r.audio_switches for r in self.reports) / len(
            self.reports
        )

    def undesirable_ratio(self) -> float:
        """Fraction of scored chunks across sessions with mismatched pairs."""
        self._require_reports()
        chunks = sum(r.chunks_scored for r in self.reports)
        if chunks == 0:
            return 0.0
        return sum(r.undesirable_chunks for r in self.reports) / chunks

    def summary(self) -> Dict[str, float]:
        return {
            "sessions": len(self.reports),
            "mean_qoe": round(self.mean_score(), 2),
            "median_qoe": round(self.median_score(), 2),
            "p10_qoe": round(self.p10_score(), 2),
            "stall_ratio": round(self.stall_ratio(), 3),
            "mean_rebuffer_s": round(self.mean_rebuffer_s(), 2),
            "mean_switches": round(self.mean_switches(), 2),
            "undesirable_ratio": round(self.undesirable_ratio(), 4),
        }
