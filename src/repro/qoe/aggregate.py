"""Population-level QoE statistics.

One session is an anecdote; services care about distributions — mean
and tail QoE, the fraction of sessions that stall at all, switch rates.
:class:`QoEAggregate` folds many :class:`~repro.qoe.metrics.QoEReport`
objects into those statistics for the corpus experiments.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from ..errors import ReproError
from .metrics import QoEReport


def percentile(values: Sequence[float], fraction: float) -> float:
    """Linear-interpolated percentile (``fraction`` in [0, 1])."""
    if not values:
        raise ReproError("percentile of empty sequence")
    if not 0.0 <= fraction <= 1.0:
        raise ReproError(f"fraction must be in [0,1], got {fraction}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = fraction * (len(ordered) - 1)
    low = int(math.floor(rank))
    high = int(math.ceil(rank))
    weight = rank - low
    return ordered[low] * (1 - weight) + ordered[high] * weight


@dataclass
class QoEAggregate:
    """Statistics over a set of session QoE reports."""

    reports: List[QoEReport] = field(default_factory=list)

    def add(self, report: QoEReport) -> None:
        self.reports.append(report)

    def __len__(self) -> int:
        return len(self.reports)

    def _require_reports(self) -> None:
        if not self.reports:
            raise ReproError("aggregate has no reports")

    @property
    def scores(self) -> List[float]:
        return [r.score for r in self.reports]

    def mean_score(self) -> float:
        self._require_reports()
        return sum(self.scores) / len(self.reports)

    def p10_score(self) -> float:
        """Tail QoE: the bottom-decile session."""
        self._require_reports()
        return percentile(self.scores, 0.10)

    def median_score(self) -> float:
        self._require_reports()
        return percentile(self.scores, 0.50)

    def stall_ratio(self) -> float:
        """Fraction of sessions that stalled at least once."""
        self._require_reports()
        return sum(1 for r in self.reports if r.n_stalls > 0) / len(self.reports)

    def mean_rebuffer_s(self) -> float:
        self._require_reports()
        return sum(r.rebuffer_s for r in self.reports) / len(self.reports)

    def mean_switches(self) -> float:
        self._require_reports()
        return sum(r.video_switches + r.audio_switches for r in self.reports) / len(
            self.reports
        )

    def undesirable_ratio(self) -> float:
        """Fraction of scored chunks across sessions with mismatched pairs."""
        self._require_reports()
        chunks = sum(r.chunks_scored for r in self.reports)
        if chunks == 0:
            return 0.0
        return sum(r.undesirable_chunks for r in self.reports) / chunks

    def summary(self) -> Dict[str, float]:
        return {
            "sessions": len(self.reports),
            "mean_qoe": round(self.mean_score(), 2),
            "median_qoe": round(self.median_score(), 2),
            "p10_qoe": round(self.p10_score(), 2),
            "stall_ratio": round(self.stall_ratio(), 3),
            "mean_rebuffer_s": round(self.mean_rebuffer_s(), 2),
            "mean_switches": round(self.mean_switches(), 2),
            "undesirable_ratio": round(self.undesirable_ratio(), 4),
        }
