"""QoE metrics for demuxed A/V sessions.

Extends the standard ABR QoE formulation (quality − rebuffering −
instability, cf. Yin et al. SIGCOMM'15) to two media: per-chunk quality
is a weighted sum of video and audio utilities, and instability counts
switches in *either* medium — reflecting the paper's goal of
"maximizing quality, minimizing stalls and minimizing quality variation"
for both tracks (Section 4.2).

Utilities are logarithmic in bitrate relative to the medium's lowest
rung, so one video ladder step counts comparably to one audio ladder
step regardless of absolute rates.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..errors import ReproError
from ..media.content import Content
from ..media.tracks import MediaType
from ..sim.records import SessionResult


@dataclass(frozen=True)
class QoEWeights:
    """Weights of the composite score.

    Defaults weight video quality highest, audio at a third (a common
    production weighting), penalize rebuffering at 4.3 per second (the
    MPC-lineage constant, cf. Yin et al. SIGCOMM'15), and charge
    switches their utility jump.
    """

    video_quality: float = 1.0
    audio_quality: float = 0.34
    rebuffer_per_s: float = 4.3
    switch: float = 1.0
    startup_per_s: float = 0.2

    def __post_init__(self) -> None:
        for name in (
            "video_quality",
            "audio_quality",
            "rebuffer_per_s",
            "switch",
            "startup_per_s",
        ):
            if getattr(self, name) < 0:
                raise ReproError(f"QoE weight {name} must be non-negative")


DEFAULT_WEIGHTS = QoEWeights()


@dataclass
class QoEReport:
    """Decomposed QoE for one session."""

    quality: float
    video_quality: float
    audio_quality: float
    rebuffer_s: float
    n_stalls: int
    startup_delay_s: float
    switch_cost: float
    video_switches: int
    audio_switches: int
    score: float
    chunks_scored: int
    undesirable_chunks: int = 0

    def as_dict(self) -> Dict[str, float]:
        return {
            "score": round(self.score, 3),
            "quality": round(self.quality, 3),
            "video_quality": round(self.video_quality, 3),
            "audio_quality": round(self.audio_quality, 3),
            "rebuffer_s": round(self.rebuffer_s, 3),
            "n_stalls": self.n_stalls,
            "startup_delay_s": round(self.startup_delay_s, 3),
            "switch_cost": round(self.switch_cost, 3),
            "video_switches": self.video_switches,
            "audio_switches": self.audio_switches,
            "undesirable_chunks": self.undesirable_chunks,
        }


def track_utility(content: Content, medium: MediaType, track_id: str) -> float:
    """Log utility of a track relative to its ladder's lowest rung."""
    ladder = content.ladder(medium)
    track = ladder.by_id(track_id)
    return math.log(track.avg_kbps / ladder.lowest.avg_kbps)


def combination_utility(
    content: Content,
    video_id: str,
    audio_id: str,
    weights: QoEWeights = DEFAULT_WEIGHTS,
) -> float:
    return weights.video_quality * track_utility(
        content, MediaType.VIDEO, video_id
    ) + weights.audio_quality * track_utility(content, MediaType.AUDIO, audio_id)


def is_undesirable(
    content: Content, video_id: str, audio_id: str, tolerance: float = 0.34
) -> bool:
    """Flag clearly mismatched pairs (Section 2.1's "lowest quality
    audio with highest quality video, or vice versa").

    A pair is undesirable when the relative ladder positions of its two
    tracks differ by more than ``tolerance`` (fraction of the ladder).
    """
    video_ladder, audio_ladder = content.video, content.audio
    video_pos = (
        video_ladder.index_of(video_id) / (len(video_ladder) - 1)
        if len(video_ladder) > 1
        else 0.5
    )
    audio_pos = (
        audio_ladder.index_of(audio_id) / (len(audio_ladder) - 1)
        if len(audio_ladder) > 1
        else 0.5
    )
    return abs(video_pos - audio_pos) > tolerance + 1e-9


def compute_qoe(
    result: SessionResult,
    content: Content,
    weights: QoEWeights = DEFAULT_WEIGHTS,
) -> QoEReport:
    """Score one finished session."""
    video_quality = 0.0
    audio_quality = 0.0
    chunks = 0
    undesirable = 0
    prev_utils: Dict[MediaType, Optional[float]] = {
        MediaType.VIDEO: None,
        MediaType.AUDIO: None,
    }
    switch_cost = 0.0
    video_switches = result.switch_count(MediaType.VIDEO)
    audio_switches = result.switch_count(MediaType.AUDIO)

    for index, video_id, audio_id in result.selected_combinations():
        if video_id is None and audio_id is None:
            continue
        if video_id is not None:
            util = track_utility(content, MediaType.VIDEO, video_id)
            video_quality += util
            prev = prev_utils[MediaType.VIDEO]
            if prev is not None:
                switch_cost += weights.switch * abs(util - prev)
            prev_utils[MediaType.VIDEO] = util
        if audio_id is not None:
            util = track_utility(content, MediaType.AUDIO, audio_id)
            audio_quality += util
            prev = prev_utils[MediaType.AUDIO]
            if prev is not None:
                switch_cost += weights.switch * abs(util - prev)
            prev_utils[MediaType.AUDIO] = util
        if video_id is not None and audio_id is not None:
            chunks += 1
            if is_undesirable(content, video_id, audio_id):
                undesirable += 1

    quality = (
        weights.video_quality * video_quality + weights.audio_quality * audio_quality
    )
    startup = result.startup_delay_s or 0.0
    score = (
        quality
        - weights.rebuffer_per_s * result.total_rebuffer_s
        - switch_cost
        - weights.startup_per_s * startup
    )
    return QoEReport(
        quality=quality,
        video_quality=video_quality,
        audio_quality=audio_quality,
        rebuffer_s=result.total_rebuffer_s,
        n_stalls=result.n_stalls,
        startup_delay_s=startup,
        switch_cost=switch_cost,
        video_switches=video_switches,
        audio_switches=audio_switches,
        score=score,
        chunks_scored=chunks,
        undesirable_chunks=undesirable,
    )
