"""Post-hoc QoE re-scoring over recorded event logs.

A recorded session (see :mod:`repro.replay`) carries everything the
QoE layer needs — the download/stall/buffer timelines plus the content
ladders with exact bitrates — so a corpus of logs can be re-scored
under *any* :class:`~repro.qoe.metrics.QoEWeights` without touching
the simulator. That turns weight sensitivity studies from "re-run the
grid per weighting" into "one recording pass, N cheap replays".
"""

from __future__ import annotations

from typing import Dict, Optional

from .metrics import DEFAULT_WEIGHTS, QoEReport, QoEWeights


def rescore_log(path: str, weights: Optional[QoEWeights] = None) -> QoEReport:
    """Re-derive the QoE report of one recorded event log.

    The replay import is deferred: :mod:`repro.replay` imports the QoE
    layer for the same derivation, and this keeps the cycle lazy.
    """
    from ..replay.replayer import replay_session

    return replay_session(path).qoe(weights or DEFAULT_WEIGHTS)


def rescore_logs(
    paths, weights: Optional[QoEWeights] = None
) -> Dict[str, QoEReport]:
    """:func:`rescore_log` over many logs, keyed by path."""
    return {path: rescore_log(path, weights) for path in paths}
