"""Automatic pathology diagnosis for streaming sessions.

The paper's methodology is detective work: run a controlled session,
inspect the timelines, name the root cause. This module packages that
detective work: :func:`diagnose` inspects a finished
:class:`~repro.sim.records.SessionResult` and reports which of the
paper's documented pathologies the session exhibits —

* ``FIXED_AUDIO`` — no audio adaptation despite multiple audio rungs
  (ExoPlayer under HLS, Section 3.2);
* ``ESTIMATOR_PINNED`` — the bandwidth estimate never moved off its
  initial value while downloads succeeded (Shaka's dead filter,
  Fig. 4a);
* ``ESTIMATE_OVERSHOOT`` — the estimate substantially exceeded what the
  session actually sustained, with rebuffering to match (Fig. 4b);
* ``UNDESIRABLE_PAIRS`` — mismatched audio/video combinations
  (Section 2.1's "clearly undesirable" pairs, Fig. 5);
* ``BUFFER_IMBALANCE`` — audio/video buffer divergence beyond a few
  chunks (Fig. 5b);
* ``FREQUENT_SWITCHING`` — track oscillation (Section 3.3's fluctuation);
* ``REBUFFERING`` — material stall time of any cause.

Each finding carries the evidence used, so a diagnosis reads like the
paper's analysis paragraphs.
"""

from __future__ import annotations

import enum
from collections import Counter
from dataclasses import dataclass
from typing import List, Optional

from ..media.content import Content
from ..media.tracks import MediaType
from ..sim.records import SessionResult
from .metrics import is_undesirable


class Pathology(enum.Enum):
    FIXED_AUDIO = "fixed-audio"
    ESTIMATOR_PINNED = "estimator-pinned"
    ESTIMATE_OVERSHOOT = "estimate-overshoot"
    UNDESIRABLE_PAIRS = "undesirable-pairs"
    BUFFER_IMBALANCE = "buffer-imbalance"
    FREQUENT_SWITCHING = "frequent-switching"
    REBUFFERING = "rebuffering"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class Diagnosis:
    """One detected pathology with its evidence."""

    pathology: Pathology
    evidence: str
    severity: float  # 0..1, how pronounced the symptom is

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.pathology.value} (severity {self.severity:.2f}): {self.evidence}"


@dataclass(frozen=True)
class DiagnosisThresholds:
    """Tunable symptom thresholds (defaults match the paper's cases)."""

    rebuffer_material_s: float = 2.0
    imbalance_chunks: float = 2.0
    switches_per_minute: float = 2.0
    overshoot_factor: float = 1.3
    undesirable_fraction: float = 0.1


def pooled_throughput_kbps(result: SessionResult) -> Optional[float]:
    """Wall-clock delivery rate: all bytes over merged busy intervals.

    This is what the link actually carried — per-transfer throughputs
    under-read it whenever audio and video downloaded concurrently.
    """
    intervals = []
    bits = 0.0
    for record in result.downloads:
        for segment in record.segments:
            if segment.bits > 0:
                intervals.append((segment.start_s, segment.end_s))
                bits += segment.bits
    if not intervals:
        return None
    intervals.sort()
    merged = []
    for start, end in intervals:
        if merged and start <= merged[-1][1] + 1e-9:
            merged[-1] = (merged[-1][0], max(merged[-1][1], end))
        else:
            merged.append((start, end))
    busy = sum(end - start for start, end in merged)
    if busy <= 0:
        return None
    return bits / busy / 1000.0


def _diagnose_fixed_audio(
    result: SessionResult, content: Content
) -> Optional[Diagnosis]:
    if len(content.audio) < 2:
        return None
    usage = result.track_usage(MediaType.AUDIO)
    if len(usage) != 1:
        return None
    # Only a pathology when the *video* side demonstrably adapted: a
    # session that had no reason to switch anything (steady link, one
    # sustainable combination) is not evidence of missing audio logic.
    if len(result.track_usage(MediaType.VIDEO)) < 2:
        return None
    (track_id,) = usage
    return Diagnosis(
        pathology=Pathology.FIXED_AUDIO,
        evidence=(
            f"all {sum(usage.values())} audio chunks used {track_id!r} while "
            f"video adapted across {len(result.track_usage(MediaType.VIDEO))} "
            f"tracks ({len(content.audio)} audio rungs exist)"
        ),
        severity=1.0,
    )


def _diagnose_estimator_pinned(result: SessionResult) -> Optional[Diagnosis]:
    estimates = [e.kbps for e in result.estimate_timeline]
    if len(estimates) < 5:
        return None
    if min(estimates) != max(estimates):
        return None
    # A pinned estimate is only pathological if the link demonstrably
    # delivered more. Per-transfer throughputs under-read a shared link
    # (concurrent downloads each see a share), so compare against the
    # pooled wall-clock rate.
    actual = pooled_throughput_kbps(result)
    if actual is None:
        return None
    pinned = estimates[0]
    if actual < pinned * 1.5:
        return None
    return Diagnosis(
        pathology=Pathology.ESTIMATOR_PINNED,
        evidence=(
            f"estimate stayed at {pinned:.0f} kbps for the whole session while "
            f"transfers reached {actual:.0f} kbps"
        ),
        severity=min(1.0, actual / pinned / 4.0),
    )


def _diagnose_overshoot(
    result: SessionResult, thresholds: DiagnosisThresholds
) -> Optional[Diagnosis]:
    estimates = [e.kbps for e in result.estimate_timeline]
    if not estimates or result.total_rebuffer_s < thresholds.rebuffer_material_s:
        return None
    sustained = [
        record.throughput_kbps
        for record in result.downloads
        if record.duration_s > 0.5
    ]
    if not sustained:
        return None
    typical = sorted(sustained)[len(sustained) // 2]
    peak_estimate = max(estimates)
    if peak_estimate < typical * thresholds.overshoot_factor:
        return None
    return Diagnosis(
        pathology=Pathology.ESTIMATE_OVERSHOOT,
        evidence=(
            f"peak estimate {peak_estimate:.0f} kbps vs median sustained "
            f"transfer {typical:.0f} kbps, with {result.total_rebuffer_s:.1f} s "
            "of rebuffering"
        ),
        severity=min(1.0, peak_estimate / typical / 3.0),
    )


def _diagnose_undesirable(
    result: SessionResult, content: Content, thresholds: DiagnosisThresholds
) -> Optional[Diagnosis]:
    pairs = [
        (video_id, audio_id)
        for _, video_id, audio_id in result.selected_combinations()
        if video_id is not None and audio_id is not None
    ]
    if not pairs:
        return None
    bad = [
        f"{video_id}+{audio_id}"
        for video_id, audio_id in pairs
        if is_undesirable(content, video_id, audio_id)
    ]
    fraction = len(bad) / len(pairs)
    if fraction < thresholds.undesirable_fraction:
        return None
    worst = Counter(bad).most_common(1)[0][0]
    return Diagnosis(
        pathology=Pathology.UNDESIRABLE_PAIRS,
        evidence=(
            f"{len(bad)}/{len(pairs)} chunk positions used mismatched pairs "
            f"(most common: {worst})"
        ),
        severity=min(1.0, fraction),
    )


def _diagnose_imbalance(
    result: SessionResult, content: Content, thresholds: DiagnosisThresholds
) -> Optional[Diagnosis]:
    limit = thresholds.imbalance_chunks * content.chunk_duration_s
    worst = result.max_buffer_imbalance_s()
    if worst <= limit:
        return None
    return Diagnosis(
        pathology=Pathology.BUFFER_IMBALANCE,
        evidence=(
            f"audio/video buffer levels diverged up to {worst:.1f} s "
            f"(mean {result.mean_buffer_imbalance_s():.1f} s)"
        ),
        severity=min(1.0, worst / (6 * content.chunk_duration_s)),
    )


def _diagnose_switching(
    result: SessionResult, content: Content, thresholds: DiagnosisThresholds
) -> Optional[Diagnosis]:
    switches = result.switch_count(MediaType.VIDEO) + result.switch_count(
        MediaType.AUDIO
    )
    minutes = content.duration_s / 60.0
    rate = switches / minutes if minutes > 0 else 0.0
    if rate <= thresholds.switches_per_minute:
        return None
    return Diagnosis(
        pathology=Pathology.FREQUENT_SWITCHING,
        evidence=f"{switches} track changes in {minutes:.1f} minutes "
        f"({rate:.1f}/min)",
        severity=min(1.0, rate / 10.0),
    )


def _diagnose_rebuffering(
    result: SessionResult, thresholds: DiagnosisThresholds
) -> Optional[Diagnosis]:
    if result.total_rebuffer_s < thresholds.rebuffer_material_s:
        return None
    return Diagnosis(
        pathology=Pathology.REBUFFERING,
        evidence=(
            f"{result.n_stalls} stalls totalling {result.total_rebuffer_s:.1f} s"
        ),
        severity=min(1.0, result.total_rebuffer_s / 60.0),
    )


def diagnose(
    result: SessionResult,
    content: Content,
    thresholds: Optional[DiagnosisThresholds] = None,
) -> List[Diagnosis]:
    """All pathologies a session exhibits, most severe first."""
    thresholds = thresholds or DiagnosisThresholds()
    candidates = [
        _diagnose_fixed_audio(result, content),
        _diagnose_estimator_pinned(result),
        _diagnose_overshoot(result, thresholds),
        _diagnose_undesirable(result, content, thresholds),
        _diagnose_imbalance(result, content, thresholds),
        _diagnose_switching(result, content, thresholds),
        _diagnose_rebuffering(result, thresholds),
    ]
    findings = [d for d in candidates if d is not None]
    findings.sort(key=lambda d: d.severity, reverse=True)
    return findings
