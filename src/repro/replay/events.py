"""The event-log schema: kinds, versioning, canonical JSON encoding.

One event is one JSON object with at minimum ``k`` (the kind, a value
of :class:`EventKind`) and ``seq`` (the recorder's 0-based sequence
number). Every log starts with a ``session_meta`` event carrying the
schema version, the content description (ladders with exact bitrates,
chunk geometry) and the session configuration — everything a replayer
needs to re-derive QoE without the original objects.

**Versioning policy** (see ``docs/event_log.md``): ``schema`` in the
header is bumped whenever an existing field changes meaning or type,
or a field a replayer depends on is removed. *Adding* event kinds or
optional fields is backward compatible and does not bump the version;
readers must ignore kinds and fields they do not know. A reader
refuses logs with ``schema`` greater than :data:`EVENT_SCHEMA_VERSION`.

Schema 2 adds the *optional* topology fields of
:data:`TOPOLOGY_META_FIELDS` to the ``session_meta`` header (which
edge served the session, its failover hops) for logs recorded from
cohort/topology runs. Writers stamp the lowest version their header
actually needs (:func:`schema_for_meta`): a log with no topology
fields is still written as schema 1, byte-identical to what a schema-1
writer produced — which is what keeps the pinned oracle logs stable —
while a schema-1 reader correctly refuses the topology logs it cannot
interpret.

Floats are encoded with :func:`repr` precision (Python's ``json``
default), which round-trips every IEEE-754 double exactly — the
property that makes replayed metrics *byte*-identical, not merely
close. Non-finite floats (a player waiting forever is ``inf``) are
encoded as the strings ``"inf"``/``"-inf"``/``"nan"`` so the payload
stays strict JSON.

The schema itself — the :class:`EventKind` members, the version
constants, the per-kind meta fields — is a guarded compatibility
surface, snapshotted in ``surfaces/events.json``. Drifting it without
``repro-abr lint --update-surfaces`` fails the lint
(``SURF-EVENT-DRIFT``), and a writer stamping a version above
:data:`EVENT_SCHEMA_VERSION` is caught snapshot-free
(``SURF-READER-CEILING``).
"""

from __future__ import annotations

import enum
import json
import math
from typing import Any, Dict

from ..errors import ReproError

#: Highest schema version this reader understands.
EVENT_SCHEMA_VERSION = 2

#: The version a header with no version-gated fields is written as.
EVENT_SCHEMA_BASE_VERSION = 1

#: Optional ``session_meta`` fields introduced by schema 2: the
#: topology context of a cohort-recorded log.
TOPOLOGY_META_FIELDS = ("edge_id", "edges", "failover_hops")


def schema_for_meta(meta: Dict[str, Any]) -> int:
    """The lowest schema version whose fields ``meta`` uses.

    Writers call this so a header without topology fields keeps the
    exact bytes a schema-1 writer produced (pinned oracles stay
    byte-identical), while topology-bearing headers are stamped 2.
    """
    if any(field in meta for field in TOPOLOGY_META_FIELDS):
        return 2
    return EVENT_SCHEMA_BASE_VERSION


class ReplayError(ReproError):
    """An event log cannot be decoded, replayed or diffed."""


class EventKind(str, enum.Enum):
    """Every event kind the session emits, in rough lifecycle order."""

    SESSION_META = "session_meta"
    DECISION = "decision"
    DOWNLOAD_START = "download_start"
    DOWNLOAD_PROGRESS = "download_progress"
    DOWNLOAD_COMPLETE = "download_complete"
    DOWNLOAD_ABORT = "download_abort"
    FAILURE = "failure"
    RETRY = "retry"
    SKIP = "skip"
    STALL_BEGIN = "stall_begin"
    STALL_END = "stall_end"
    PLAYBACK_START = "playback_start"
    BUFFER_SAMPLE = "buffer_sample"
    ESTIMATE = "estimate"
    VERDICT = "verdict"


_KNOWN_KINDS = frozenset(kind.value for kind in EventKind)


def is_known_kind(kind: str) -> bool:
    return kind in _KNOWN_KINDS


def _sanitize(value: Any) -> Any:
    """Make a payload strict-JSON safe without losing float precision."""
    if isinstance(value, float):
        if math.isnan(value):
            return "nan"
        if math.isinf(value):
            return "inf" if value > 0 else "-inf"
        return value
    if isinstance(value, dict):
        return {key: _sanitize(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_sanitize(item) for item in value]
    if isinstance(value, enum.Enum):
        return value.value
    return value


def encode_event(event: Dict[str, Any]) -> bytes:
    """Canonical UTF-8 JSON bytes for one event (sorted keys, compact)."""
    return json.dumps(
        _sanitize(event),
        sort_keys=True,
        separators=(",", ":"),
        allow_nan=False,
    ).encode("utf-8")


def decode_event(payload: bytes) -> Dict[str, Any]:
    """Parse one event payload; raises :class:`ReplayError` on garbage.

    The CRC frame already guards against bit damage, so a JSON error
    here means a writer bug or a hand-edited log — worth a loud error
    naming the payload rather than a silent skip.
    """
    try:
        event = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise ReplayError(
            f"CRC-valid event line holds invalid JSON: {payload[:80]!r}"
        ) from exc
    if not isinstance(event, dict) or "k" not in event:
        raise ReplayError(
            f"event line is not an object with a 'k' kind: {payload[:80]!r}"
        )
    return event


def decode_float(value: Any) -> float:
    """Undo the non-finite string encoding of :func:`_sanitize`."""
    if isinstance(value, str):
        if value == "inf":
            return math.inf
        if value == "-inf":
            return -math.inf
        if value == "nan":
            return math.nan
        raise ReplayError(f"not a float encoding: {value!r}")
    return float(value)


def check_schema(meta: Dict[str, Any]) -> int:
    """Validate a ``session_meta`` header; returns its schema version."""
    if meta.get("k") != EventKind.SESSION_META.value:
        raise ReplayError(
            "event log does not start with a session_meta header "
            f"(first event kind: {meta.get('k')!r})"
        )
    schema = meta.get("schema")
    if not isinstance(schema, int):
        raise ReplayError("session_meta header carries no integer schema")
    if schema > EVENT_SCHEMA_VERSION:
        raise ReplayError(
            f"event log schema {schema} is newer than this reader "
            f"(supports <= {EVENT_SCHEMA_VERSION}); upgrade to replay it"
        )
    return schema
