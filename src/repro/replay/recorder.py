"""The event recorder: a session observer that streams framed JSON lines.

``EventRecorder`` implements the :class:`~repro.sim.session.SessionObserver`
protocol: the session hands it ``(kind, payload)`` pairs and it writes
one CRC-framed JSON line per event (see :mod:`repro.framing`), each
with a single ``write`` call so a crash tears at most the final line.

The file is truncated when the recorder opens it — one log is one
session attempt — and then written append-only, the idiom proven by
the chaos event log. Runner workers key their logs by job hash via
:func:`record_path`, so a grid's recording directory is content
addressed the same way as its result cache.
"""

from __future__ import annotations

import os
from typing import Any, Dict, Optional

from ..framing import frame_line
from .events import EventKind, encode_event, schema_for_meta


def record_path(record_dir: str, key: str) -> str:
    """The event-log path for one job key inside a recording directory."""
    return os.path.join(record_dir, f"{key}.events.jsonl")


class EventRecorder:
    """Write a session's event stream to one JSON-lines file.

    :param path: the log file; created (parent directories too) and
        truncated on construction.
    :param extra_meta: merged into the ``session_meta`` header — the
        runner puts the job spec here (``job``/``key``/``label``) so a
        log is replayable *and* re-runnable.
    """

    def __init__(self, path: str, extra_meta: Optional[Dict[str, Any]] = None):
        parent = os.path.dirname(path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        self.path = path
        self._extra_meta = dict(extra_meta) if extra_meta else {}
        self._seq = 0
        self.events_written = 0
        self.bytes_written = 0
        # Truncate-then-append: this recorder owns the file (one log =
        # one attempt), but each line is still a single O_APPEND write
        # so the only possible damage is a torn final line.
        self._fd: Optional[int] = os.open(
            path, os.O_WRONLY | os.O_CREAT | os.O_TRUNC | os.O_APPEND, 0o644
        )

    # -- SessionObserver protocol -----------------------------------------

    def emit(self, kind: str, payload: Dict[str, Any]) -> None:
        if self._fd is None:
            raise ValueError(f"recorder for {self.path} is closed")
        event: Dict[str, Any] = {"k": kind, "seq": self._seq}
        if kind == EventKind.SESSION_META.value:
            # Stamp the lowest version the header's fields need, so
            # topology-free logs stay byte-identical to schema-1 logs.
            event["schema"] = schema_for_meta({**self._extra_meta, **payload})
            event.update(self._extra_meta)
        event.update(payload)
        line = frame_line(encode_event(event))
        os.write(self._fd, line)
        self._seq += 1
        self.events_written += 1
        self.bytes_written += len(line)

    def close(self) -> None:
        if self._fd is not None:
            os.close(self._fd)
            self._fd = None

    # -- lifecycle sugar ---------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._fd is None

    def __enter__(self) -> "EventRecorder":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except OSError:
            pass
