"""Engine-divergence diffing: align two event logs, find the first split.

Two runs of the same job on the same engine must produce identical
logs. After an engine or estimator change, the *first* divergent event
is the bug's coordinate: everything before it is provably unchanged,
and the event itself names the moment the behaviours parted — a
decision that picked a different rung, an estimate that read
differently, a download that finished a microsecond early. Aggregate
rows can hide such a change for an entire grid; the event diff cannot.

Floats compare with configurable ``rtol``/``atol`` (default exact,
because recorded floats round-trip exactly and determinism is the
contract); a kernel rewrite that legitimately reorders float math can
pass ``--rtol`` to accept ulp-level drift while still catching real
behaviour changes.

``repro-abr diff-events A.jsonl B.jsonl`` is the CLI;
:func:`diff_event_logs` the library entry.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .events import decode_float
from .replayer import scan_events

#: Meta fields that legitimately differ between two recordings of the
#: same session (provenance, not behaviour).
DEFAULT_IGNORE_FIELDS = frozenset({"label", "recorded_by"})


@dataclass(frozen=True)
class Divergence:
    """The first point where two event streams disagree."""

    index: int  # 0-based event position (== seq for intact logs)
    field: Optional[str]  # dotted path inside the event, None for kind/length
    reason: str
    a: Optional[Dict[str, Any]]  # the event in log A (None: A ended)
    b: Optional[Dict[str, Any]]

    def describe(self) -> str:
        where = f"event {self.index}"
        if self.field:
            where += f", field {self.field!r}"
        return f"first divergence at {where}: {self.reason}"


@dataclass
class DiffReport:
    """Outcome of one log-pair diff."""

    divergence: Optional[Divergence]
    events_compared: int
    damage_a: Optional[str] = None
    damage_b: Optional[str] = None
    #: The few events preceding the divergence, for context display.
    context: List[Dict[str, Any]] = field(default_factory=list)

    @property
    def identical(self) -> bool:
        return self.divergence is None


def _is_float_string(value: Any) -> bool:
    return value in ("inf", "-inf", "nan")


def _compare_values(
    a: Any, b: Any, path: str, rtol: float, atol: float
) -> Optional[Tuple[str, str]]:
    """``(field_path, reason)`` of the first mismatch, else ``None``."""
    a_num = isinstance(a, (int, float)) and not isinstance(a, bool)
    b_num = isinstance(b, (int, float)) and not isinstance(b, bool)
    if (a_num or _is_float_string(a)) and (b_num or _is_float_string(b)):
        x, y = decode_float(a), decode_float(b)
        if math.isnan(x) and math.isnan(y):
            return None
        if x == y:
            return None
        if math.isfinite(x) and math.isfinite(y):
            if abs(x - y) <= atol + rtol * max(abs(x), abs(y)):
                return None
            return path, f"{x!r} != {y!r} (|Δ|={abs(x - y):.3g})"
        return path, f"{a!r} != {b!r}"
    if type(a) is not type(b):
        return path, f"type {type(a).__name__} != {type(b).__name__}"
    if isinstance(a, dict):
        for key in sorted(set(a) | set(b)):
            sub = f"{path}.{key}" if path else key
            if key not in a:
                return sub, "field only in B"
            if key not in b:
                return sub, "field only in A"
            hit = _compare_values(a[key], b[key], sub, rtol, atol)
            if hit is not None:
                return hit
        return None
    if isinstance(a, list):
        if len(a) != len(b):
            return path, f"list length {len(a)} != {len(b)}"
        for i, (x, y) in enumerate(zip(a, b)):
            hit = _compare_values(x, y, f"{path}[{i}]", rtol, atol)
            if hit is not None:
                return hit
        return None
    if a != b:
        return path, f"{a!r} != {b!r}"
    return None


def canonicalize_events(
    events: Sequence[Dict[str, Any]],
) -> List[Dict[str, Any]]:
    """Normalize an event stream to its deduplicated canonical form.

    Mirrors the kernel's buffer-sample dedup: a ``buffer_sample`` whose
    ``(t, video_s, audio_s)`` equals the previously *kept* sample is
    dropped, regardless of unrelated events in between (the kernel
    compares against its last emitted sample the same way). ``seq``
    fields are stripped, since dropping events renumbers everything
    after them.

    Logs recorded before the kernel learned to dedup coincident
    samples compare clean against post-dedup recordings in this form;
    byte-identical logs are unaffected (their canonical forms are
    equal iff the originals are).
    """
    out: List[Dict[str, Any]] = []
    last_sample: Optional[Tuple[Any, Any, Any]] = None
    for event in events:
        if event.get("k") == "buffer_sample":
            key = (event.get("t"), event.get("video_s"), event.get("audio_s"))
            if key == last_sample:
                continue
            last_sample = key
        out.append({k: v for k, v in event.items() if k != "seq"})
    return out


def diff_event_streams(
    events_a: Sequence[Dict[str, Any]],
    events_b: Sequence[Dict[str, Any]],
    rtol: float = 0.0,
    atol: float = 0.0,
    ignore_fields: frozenset = DEFAULT_IGNORE_FIELDS,
    context: int = 3,
) -> DiffReport:
    """Align two event sequences and report the first divergence."""

    def strip(event: Dict[str, Any]) -> Dict[str, Any]:
        return {k: v for k, v in event.items() if k not in ignore_fields}

    report = DiffReport(divergence=None, events_compared=0)
    for index in range(max(len(events_a), len(events_b))):
        a = events_a[index] if index < len(events_a) else None
        b = events_b[index] if index < len(events_b) else None
        if a is None or b is None:
            ended, goes_on = ("A", "B") if a is None else ("B", "A")
            survivor = b if a is None else a
            report.divergence = Divergence(
                index=index,
                field=None,
                reason=(
                    f"log {ended} ends after {index} events while {goes_on} "
                    f"continues with {survivor.get('k')!r}"
                ),
                a=a,
                b=b,
            )
            break
        if a.get("k") != b.get("k"):
            report.divergence = Divergence(
                index=index,
                field="k",
                reason=f"event kind {a.get('k')!r} != {b.get('k')!r}",
                a=a,
                b=b,
            )
            break
        hit = _compare_values(strip(a), strip(b), "", rtol, atol)
        if hit is not None:
            field_path, reason = hit
            report.divergence = Divergence(
                index=index, field=field_path, reason=reason, a=a, b=b
            )
            break
        report.events_compared += 1
    if report.divergence is not None and context > 0:
        start = max(0, report.divergence.index - context)
        report.context = [dict(e) for e in events_a[start : report.divergence.index]]
    return report


def diff_event_logs(
    path_a: str,
    path_b: str,
    rtol: float = 0.0,
    atol: float = 0.0,
    ignore_fields: frozenset = DEFAULT_IGNORE_FIELDS,
    context: int = 3,
    canonical: bool = False,
) -> DiffReport:
    """Diff two recorded logs; torn logs compare over their prefixes.

    Damage is reported alongside the divergence so a tear is never
    mistaken for agreement: a truncated log that matches the other
    log's prefix yields a length divergence at the tear.

    ``canonical=True`` compares :func:`canonicalize_events` forms,
    accepting logs that differ only in coincident duplicate buffer
    samples (recordings made before the kernel deduplicated them).
    The default stays exact: determinism is the contract.
    """
    scan_a = scan_events(path_a)
    scan_b = scan_events(path_b)
    events_a: Sequence[Dict[str, Any]] = scan_a.events
    events_b: Sequence[Dict[str, Any]] = scan_b.events
    if canonical:
        events_a = canonicalize_events(events_a)
        events_b = canonicalize_events(events_b)
    report = diff_event_streams(
        events_a,
        events_b,
        rtol=rtol,
        atol=atol,
        ignore_fields=ignore_fields,
        context=context,
    )
    report.damage_a = scan_a.damage
    report.damage_b = scan_b.damage
    return report
