"""Session event-log record/replay.

Sessions normally flatten their dynamics into a
:class:`~repro.sim.records.SessionResult` and a handful of summary
metrics. This package makes the dynamics durable: a typed,
schema-versioned JSON-lines **event log** of everything the session
did (downloads starting, bytes flowing, decisions, stalls, buffer
samples, failures and retries), written with crash-safe CRC framing so
a killed run's log still replays up to the tear.

Three consumers:

* :class:`EventRecorder` — a :class:`~repro.sim.session.SessionObserver`
  that streams a live session's events to disk
  (``SessionConfig(observer=EventRecorder(path))``).
* :func:`replay_session` — reconstructs the full
  :class:`~repro.sim.records.SessionResult` (and enough content
  metadata to re-derive every :mod:`repro.qoe` metric byte-identically)
  from a log *without re-simulating*.
* :func:`diff_event_logs` — aligns two logs event-by-event with float
  tolerances and reports the first divergence: the regression guard
  every engine/estimator change must pass
  (``repro-abr diff-events A.jsonl B.jsonl``).

See ``docs/event_log.md`` for the schema and the compat policy.
"""

from .events import (
    EVENT_SCHEMA_BASE_VERSION,
    EVENT_SCHEMA_VERSION,
    TOPOLOGY_META_FIELDS,
    EventKind,
    ReplayError,
    decode_event,
    encode_event,
    schema_for_meta,
)
from .diff import (
    DiffReport,
    Divergence,
    canonicalize_events,
    diff_event_logs,
    diff_event_streams,
)
from .recorder import EventRecorder, record_path
from .replayer import ReplayContent, ReplayedSession, replay_session, scan_events

__all__ = [
    "EVENT_SCHEMA_BASE_VERSION",
    "EVENT_SCHEMA_VERSION",
    "TOPOLOGY_META_FIELDS",
    "DiffReport",
    "Divergence",
    "EventKind",
    "EventRecorder",
    "ReplayContent",
    "ReplayError",
    "ReplayedSession",
    "decode_event",
    "canonicalize_events",
    "diff_event_logs",
    "diff_event_streams",
    "encode_event",
    "record_path",
    "replay_session",
    "scan_events",
    "schema_for_meta",
]
