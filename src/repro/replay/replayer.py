"""Reconstruct a session — result, metrics, QoE — from its event log.

:func:`replay_session` turns a recorded log back into a full
:class:`~repro.sim.records.SessionResult` *without re-simulating*:
downloads (with their per-interval progress segments), aborts,
failures, skips, stalls, buffer and estimate timelines, startup delay
and the final verdict are all rebuilt from the events. Because floats
round-trip through the log exactly, every metric the result exposes —
and the whole :mod:`repro.qoe` score derived from it — is
byte-identical to the live run's.

The ``session_meta`` header carries the content ladders (exact
bitrates), so :meth:`ReplayedSession.qoe` can re-score a log with any
:class:`~repro.qoe.metrics.QoEWeights` — post-hoc QoE re-scoring over
a shared corpus of logs, no simulator required.

A torn log (recorder killed mid-write) replays cleanly up to the tear:
``damage`` reports the classification from :mod:`repro.framing`, the
reconstructed prefix is still valid, and ``has_verdict`` tells you
whether the session's end made it to disk.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..framing import CORRUPT, scan_line_file
from ..media.tracks import Ladder, MediaType, audio_track, make_ladder, video_track
from ..sim.records import (
    AbortRecord,
    BufferSample,
    DownloadRecord,
    FailureRecord,
    ProgressSegment,
    SessionResult,
    SkipRecord,
    StallEvent,
)
from .events import (
    EventKind,
    ReplayError,
    check_schema,
    decode_event,
    decode_float,
)


@dataclass(frozen=True)
class ReplayContent:
    """Just enough content metadata to re-derive QoE from a log.

    Mirrors the :class:`~repro.media.content.Content` surface the QoE
    layer consumes (``video``/``audio`` ladders, ``ladder()``, chunk
    geometry); it deliberately has no chunk-size table — sizes live in
    the download events themselves.
    """

    name: str
    video: Ladder
    audio: Ladder
    duration_s: float
    chunk_duration_s: float
    n_chunks: int

    def ladder(self, media_type: MediaType) -> Ladder:
        return self.video if media_type is MediaType.VIDEO else self.audio


def _ladder_from_meta(medium: MediaType, entries: List[Dict[str, Any]]) -> Ladder:
    tracks = []
    for entry in entries:
        if medium is MediaType.VIDEO:
            tracks.append(
                video_track(
                    entry["id"],
                    decode_float(entry["avg_kbps"]),
                    decode_float(entry["peak_kbps"]),
                    decode_float(entry["declared_kbps"]),
                    height=entry.get("height"),
                )
            )
        else:
            tracks.append(
                audio_track(
                    entry["id"],
                    decode_float(entry["avg_kbps"]),
                    decode_float(entry["peak_kbps"]),
                    decode_float(entry["declared_kbps"]),
                    channels=int(entry.get("channels", 2)),
                    sampling_khz=decode_float(entry.get("sampling_khz", 44.0)),
                )
            )
    return make_ladder(medium, tracks)


def scan_events(path: str, strict: bool = False) -> "EventScan":
    """Decode every intact event of a log, classifying any damage.

    ``strict=True`` raises :class:`ReplayError` on *corrupt* logs
    (truncation is always tolerated — a torn tail is the crash-safety
    contract working, not a failure).
    """
    scan = scan_line_file(path)
    if strict and scan.damage == CORRUPT:
        raise ReplayError(
            f"{path}: corrupt at line {scan.damage_line}: {scan.damage_detail}"
        )
    events = [decode_event(payload) for payload in scan.payloads]
    return EventScan(
        events=events,
        damage=scan.damage,
        damage_line=scan.damage_line,
        damage_detail=scan.damage_detail,
    )


@dataclass
class EventScan:
    """Decoded events of one log plus the framing damage report."""

    events: List[Dict[str, Any]]
    damage: Optional[str] = None
    damage_line: Optional[int] = None
    damage_detail: Optional[str] = None


@dataclass
class _OpenDownload:
    """A download being rebuilt between its start and terminal event."""

    track_id: str
    chunk_index: int
    size_bits: float
    started_at: float
    resumed_bits: float
    segments: List[ProgressSegment] = field(default_factory=list)


@dataclass
class ReplayedSession:
    """Everything reconstructed from one event log."""

    path: str
    meta: Dict[str, Any]
    events: List[Dict[str, Any]]
    result: SessionResult
    content: ReplayContent
    #: ``None`` for a clean log, else ``"truncated"``/``"corrupt"``.
    damage: Optional[str] = None
    damage_line: Optional[int] = None
    damage_detail: Optional[str] = None
    #: Did the session's final verdict event survive to disk?
    has_verdict: bool = False

    @property
    def intact(self) -> bool:
        return self.damage is None

    @property
    def job_spec(self) -> Optional[Dict[str, Any]]:
        """The runner job spec embedded by ``--record``, if any."""
        spec = self.meta.get("job")
        return spec if isinstance(spec, dict) else None

    def qoe(self, weights=None):
        """Re-derive the QoE report from the replayed result."""
        from ..qoe.metrics import DEFAULT_WEIGHTS, compute_qoe

        return compute_qoe(
            self.result, self.content, weights or DEFAULT_WEIGHTS
        )


def replay_session(path: str, strict: bool = False) -> ReplayedSession:
    """Rebuild a :class:`ReplayedSession` from a recorded event log."""
    scan = scan_events(path, strict=strict)
    if not scan.events:
        raise ReplayError(
            f"{path}: no replayable events"
            + (f" ({scan.damage}: {scan.damage_detail})" if scan.damage else "")
        )
    meta = scan.events[0]
    check_schema(meta)
    content_meta = meta.get("content")
    if not isinstance(content_meta, dict):
        raise ReplayError(f"{path}: session_meta carries no content description")
    content = ReplayContent(
        name=content_meta.get("name", "replayed"),
        video=_ladder_from_meta(MediaType.VIDEO, content_meta["video"]),
        audio=_ladder_from_meta(MediaType.AUDIO, content_meta["audio"]),
        duration_s=decode_float(content_meta["duration_s"]),
        chunk_duration_s=decode_float(content_meta["chunk_duration_s"]),
        n_chunks=int(content_meta["n_chunks"]),
    )
    result = SessionResult(
        content_duration_s=content.duration_s,
        chunk_duration_s=content.chunk_duration_s,
        n_chunks=content.n_chunks,
    )
    replayed = ReplayedSession(
        path=path,
        meta=meta,
        events=scan.events,
        result=result,
        content=content,
        damage=scan.damage,
        damage_line=scan.damage_line,
        damage_detail=scan.damage_detail,
    )

    open_downloads: Dict[str, _OpenDownload] = {}
    last_t = 0.0
    for event in scan.events[1:]:
        kind = event["k"]
        if "t" in event:
            last_t = decode_float(event["t"])
        if kind == EventKind.DOWNLOAD_START.value:
            open_downloads[event["medium"]] = _OpenDownload(
                track_id=event["track_id"],
                chunk_index=int(event["chunk_index"]),
                size_bits=decode_float(event["size_bits"]),
                started_at=decode_float(event["t"]),
                resumed_bits=decode_float(event.get("resumed_bits", 0.0)),
            )
        elif kind == EventKind.DOWNLOAD_PROGRESS.value:
            active = open_downloads.get(event["medium"])
            if active is not None:
                active.segments.append(
                    ProgressSegment(
                        start_s=decode_float(event["t0"]),
                        end_s=decode_float(event["t1"]),
                        bits=decode_float(event["bits"]),
                    )
                )
        elif kind == EventKind.DOWNLOAD_COMPLETE.value:
            active = open_downloads.pop(event["medium"], None)
            result.add_download(
                DownloadRecord(
                    medium=MediaType(event["medium"]),
                    track_id=event["track_id"],
                    chunk_index=int(event["chunk_index"]),
                    size_bits=decode_float(event["size_bits"]),
                    started_at=decode_float(event["started_at"]),
                    completed_at=decode_float(event["t"]),
                    segments=tuple(active.segments) if active else (),
                    resumed_bits=decode_float(event.get("resumed_bits", 0.0)),
                )
            )
        elif kind == EventKind.DOWNLOAD_ABORT.value:
            open_downloads.pop(event["medium"], None)
            result.add_abort(
                AbortRecord(
                    medium=MediaType(event["medium"]),
                    track_id=event["track_id"],
                    chunk_index=int(event["chunk_index"]),
                    aborted_at=decode_float(event["t"]),
                    bits_done=decode_float(event["bits_done"]),
                    size_bits=decode_float(event["size_bits"]),
                )
            )
        elif kind == EventKind.FAILURE.value:
            open_downloads.pop(event["medium"], None)
            retry_at = event.get("retry_at")
            result.add_failure(
                FailureRecord(
                    medium=MediaType(event["medium"]),
                    track_id=event["track_id"],
                    chunk_index=int(event["chunk_index"]),
                    failed_at=decode_float(event["t"]),
                    bits_done=decode_float(event["bits_done"]),
                    kind=event["kind"],
                    attempt=int(event.get("attempt", 1)),
                    resumable=bool(event.get("resumable", False)),
                    retry_at=None if retry_at is None else decode_float(retry_at),
                )
            )
        elif kind == EventKind.SKIP.value:
            result.add_skip(
                SkipRecord(
                    medium=MediaType(event["medium"]),
                    track_id=event["track_id"],
                    chunk_index=int(event["chunk_index"]),
                    skipped_at=decode_float(event["t"]),
                    attempts=int(event["attempts"]),
                )
            )
        elif kind == EventKind.STALL_BEGIN.value:
            result.stalls.append(StallEvent(start_s=decode_float(event["t"])))
        elif kind == EventKind.STALL_END.value:
            if not result.stalls or result.stalls[-1].end_s is not None:
                raise ReplayError(
                    f"{path}: stall_end at seq {event.get('seq')} "
                    "without an open stall"
                )
            result.stalls[-1].end_s = decode_float(event["t"])
        elif kind == EventKind.PLAYBACK_START.value:
            result.startup_delay_s = decode_float(event["t"])
        elif kind == EventKind.BUFFER_SAMPLE.value:
            result.add_buffer_sample(
                BufferSample(
                    t=decode_float(event["t"]),
                    video_level_s=decode_float(event["video_s"]),
                    audio_level_s=decode_float(event["audio_s"]),
                )
            )
        elif kind == EventKind.ESTIMATE.value:
            result.add_estimate(decode_float(event["t"]), decode_float(event["kbps"]))
        elif kind == EventKind.VERDICT.value:
            replayed.has_verdict = True
            result.completed = bool(event["completed"])
            result.ended_at_s = decode_float(event["t"])
            result.termination_reason = event.get("termination_reason")
            startup = event.get("startup_delay_s")
            result.startup_delay_s = (
                None if startup is None else decode_float(startup)
            )
        # Unknown kinds are skipped by design: newer writers may add
        # kinds without bumping the schema (see the compat policy).
    if not replayed.has_verdict:
        # Torn before the end: the prefix is still a valid partial
        # result. Close the clock at the last event seen.
        result.ended_at_s = last_t
    return replayed
