"""Chunk-size-aware joint adaptation.

The paper (following the authors' earlier CoNEXT'18 VBR study, its
reference [21]) points out that declared/peak bitrates misprice VBR
content: Table 1's V3 declares 473 kbps while its *average* chunk runs
at 362 and individual chunks range far wider. Section 4.1's manifest
practices make per-chunk sizes available to the client (byte ranges or
``EXT-X-BITRATE``); this player actually uses them.

:class:`ChunkAwarePlayer` extends the best-practices player by pricing
each combination *at each chunk position* with the real sizes of the
next ``lookahead`` chunks, so a VBR valley can be ridden at a higher
rung (and a VBR spike pre-emptively avoided) without changing anything
else about the joint/balanced machinery.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Mapping, Sequence

from ..errors import PlayerError
from .combinations import Combination, CombinationSet
from .player import RecommendedPlayer

if TYPE_CHECKING:  # avoid a core<->manifest import cycle at runtime
    from ..manifest.packager import HlsPackage


class ChunkAwarePlayer(RecommendedPlayer):
    """Best-practices player that budgets with real chunk sizes.

    :param chunk_bitrates_kbps: per-track list of per-chunk encoded
        bitrates (what :meth:`HlsMediaPlaylist.derived_bitrates_kbps`
        returns). Every track used by ``combinations`` must be present.
    :param lookahead: how many upcoming chunks to average when pricing a
        combination at a position. 1 = price only the next chunk
        (aggressive); larger values smooth single-chunk spikes.
    """

    name = "chunk-aware"

    def __init__(
        self,
        combinations: CombinationSet,
        chunk_bitrates_kbps: Mapping[str, Sequence[float]],
        lookahead: int = 3,
        **kwargs,
    ):
        super().__init__(combinations, **kwargs)
        if lookahead < 1:
            raise PlayerError(f"lookahead must be >= 1, got {lookahead}")
        self.lookahead = lookahead
        self._chunk_rates: Dict[str, Sequence[float]] = dict(chunk_bitrates_kbps)
        for combo in combinations:
            for track_id in (combo.video.track_id, combo.audio.track_id):
                if track_id not in self._chunk_rates:
                    raise PlayerError(
                        f"no per-chunk bitrates for track {track_id!r}"
                    )

    @classmethod
    def from_hls_package(
        cls, combinations: CombinationSet, package: "HlsPackage", **kwargs
    ) -> "ChunkAwarePlayer":
        """Build from a packaging, mining the media playlists exactly as
        Section 4.1 recommends a client should."""
        rates = {
            track_id: playlist.derived_bitrates_kbps()
            for track_id, playlist in package.media_playlists.items()
        }
        missing = [track_id for track_id, r in rates.items() if r is None]
        if missing:
            raise PlayerError(
                f"media playlists for {missing} carry no byte ranges or "
                "EXT-X-BITRATE tags; run the packager with single_file=True "
                "or include_bitrate_tag=True"
            )
        return cls(combinations, rates, **kwargs)

    def _track_rate_at(self, track_id: str, position: int) -> float:
        rates = self._chunk_rates[track_id]
        if not rates:
            raise PlayerError(f"empty chunk-bitrate list for {track_id!r}")
        window = [
            rates[min(position + offset, len(rates) - 1)]
            for offset in range(self.lookahead)
        ]
        return sum(window) / len(window)

    def _rate_of(self, combo: Combination, position: int) -> float:
        return self._track_rate_at(
            combo.video.track_id, position
        ) + self._track_rate_at(combo.audio.track_id, position)
