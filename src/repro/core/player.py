"""The best-practices player — the paper's Section 4.2 made concrete.

The paper stops at recommendations ("as future work, we ... plan to
design and implement rate adaptation schemes following the suggested
practices"); this player implements all four of them so the benchmarks
can quantify the benefit:

1. **Adopt audio rate adaptation** — audio quality follows the selected
   combination; it is never pinned.
2. **Select only from allowed audio and video combinations** — the
   player is handed a :class:`~repro.core.combinations.CombinationSet`
   (from an HLS master playlist's curated variants, the repro DASH
   extension, or an out-of-band channel) and never leaves it.
3. **Joint adaptation of audio and video** — one decision per chunk
   position over aggregate combination bitrates, with hysteresis to
   avoid "frequent changes in either audio or video tracks".
4. **Maintain balance between audio and video prefetching** — a
   :class:`~repro.core.balancer.PrefetchBalancer` caps the frontier gap
   at a small number of chunks.

The ablation flags (``balanced``, ``shared_meter``) exist so the
benchmarks can turn each practice off and measure the regression.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

from ..errors import PlayerError
from ..media.tracks import MediaType
from ..net.resilience import CircuitBreaker
from ..players.base import BasePlayer
from ..players.estimators import HarmonicMeanEstimator, SharedThroughputEstimator
from ..sim.decisions import Decision, download_for
from ..sim.records import DownloadRecord
from .balancer import PrefetchBalancer
from .combinations import Combination, CombinationSet


class RecommendedPlayer(BasePlayer):
    """Joint, combination-restricted, balanced A/V rate adaptation.

    :param combinations: the server-allowed combinations. Selection never
        leaves this set.
    :param safety_factor: fraction of the estimate treated as spendable.
    :param up_buffer_s: minimum buffer before an up-switch (hysteresis).
    :param down_buffer_s: buffer above which a nominal down-switch is
        deferred (ride out short dips to avoid oscillation). The 15 s
        default was tuned on the HSPA Markov corpus, where deferring
        while >15 s remains buffered absorbs most fade states without
        risking the stall boundary.
    :param up_patience: consecutive decisions the ideal combination must
        exceed the current one before switching up (switch damping).
    :param balanced: apply chunk-level prefetch balancing (practice 4).
    :param shared_meter: estimate bandwidth from pooled audio+video
        bytes over merged busy time. ``False`` ablates the pooling: each
        transfer's own throughput is taken as a sample of the *link*
        (the Shaka/dash.js failure mode of Section 3.3) — concurrent
        transfers then contribute half-rate samples and the budget
        collapses toward a single stream's share.
    :param rate_key: which aggregate bitrate to budget against —
        ``"avg"`` (default; robust for VBR ladders, cf. Qin et al.
        CoNEXT'18) or ``"peak"``/``"declared"``.
    :param abandonment: abandon an in-flight chunk (and re-fetch the
        position from a cheaper combination) when, at the currently
        measured transfer rate, finishing it would outlast the remaining
        buffer — the dash.js ``AbandonRequestsRule`` idea applied
        jointly. Off by default.
    """

    name = "recommended"

    def __init__(
        self,
        combinations: CombinationSet,
        safety_factor: float = 0.85,
        up_buffer_s: float = 10.0,
        down_buffer_s: float = 15.0,
        up_patience: int = 2,
        buffer_target_s: float = 30.0,
        max_lead_chunks: int = 1,
        balanced: bool = True,
        shared_meter: bool = True,
        rate_key: str = "avg",
        initial_estimate_kbps: Optional[float] = None,
        abandonment: bool = False,
        abandon_grace_s: float = 0.5,
        circuit_breaker: Optional[CircuitBreaker] = None,
    ):
        if not 0 < safety_factor <= 1:
            raise PlayerError(f"safety factor must be in (0,1], got {safety_factor}")
        if up_patience < 1:
            raise PlayerError(f"up_patience must be >= 1, got {up_patience}")
        if rate_key not in ("avg", "peak", "declared"):
            raise PlayerError(f"bad rate_key {rate_key!r}")
        if len(combinations) == 0:
            # CombinationSet already rejects empty construction; this
            # guards hand-rolled sequences so degradation always has a
            # rung 0 to fall back to.
            raise PlayerError("player needs at least one combination")
        self.combinations = combinations
        self.safety_factor = safety_factor
        self.up_buffer_s = up_buffer_s
        self.down_buffer_s = down_buffer_s
        self.up_patience = up_patience
        self.buffer_target_s = buffer_target_s
        self.balanced = balanced
        self.rate_key = rate_key
        self._balancer = PrefetchBalancer(max_lead_chunks=max_lead_chunks)
        self.shared_meter = shared_meter
        if shared_meter:
            self._estimator = SharedThroughputEstimator(
                initial_estimate_kbps=initial_estimate_kbps
            )
        else:
            # Ablation: naive per-transfer sampling, no concurrency pooling.
            self._estimator = HarmonicMeanEstimator(
                window=5, initial_estimate_kbps=initial_estimate_kbps
            )
        self.abandonment = abandonment
        self.abandon_grace_s = abandon_grace_s
        self._current_index = 0
        self._pending_up: Optional[int] = None
        self._pending_up_count = 0
        self._selection_for_position: Dict[int, Combination] = {}
        #: How many times a failure stepped the working point down.
        self.failure_downshifts = 0
        #: Per-track breaker: a rung that keeps failing is temporarily
        #: ejected from the allowed set (graceful degradation; selection
        #: stays inside the curated combinations).
        self._breaker = circuit_breaker or CircuitBreaker()
        #: How many times the breaker ejected a track.
        self.circuit_trips = 0
        #: Latched once the retry budget forced the lowest-rung fallback.
        self.emergency_engaged = False

    # -- estimation ----------------------------------------------------------

    def estimate_kbps(self) -> Optional[float]:
        return self._estimator.get_estimate_kbps()

    # -- selection -------------------------------------------------------------

    def _rate_of(self, combo: Combination, position: int) -> float:
        """Bandwidth requirement of a combination at a chunk position.

        The base player uses ladder-level aggregates; subclasses (e.g.
        the chunk-size-aware player) override this with per-position
        information.
        """
        if self.rate_key == "avg":
            return combo.avg_kbps
        if self.rate_key == "peak":
            return combo.peak_kbps
        return combo.declared_kbps

    def _ideal_index(self, budget_kbps: float, position: int) -> int:
        ideal = 0
        for i, combo in enumerate(self.combinations):
            if self._rate_of(combo, position) <= budget_kbps:
                ideal = i
        return ideal

    def _adapt(self, ctx, position: int) -> int:
        estimate = self.estimate_kbps()
        if estimate is None:
            # Cold start: lowest allowed combination, per practice 1/2 —
            # never gamble QoE on an unmeasured link.
            self._current_index = 0
            return 0
        ctx.log_estimate(estimate)
        budget = estimate * self.safety_factor
        ideal = self._ideal_index(budget, position)
        current = self._current_index
        buffered = min(
            ctx.buffer_level_s(MediaType.VIDEO), ctx.buffer_level_s(MediaType.AUDIO)
        )
        if ideal > current:
            # Up-switch: enough buffer AND the ideal has persisted.
            if self._pending_up is not None and ideal >= self._pending_up:
                self._pending_up_count += 1
            else:
                self._pending_up = ideal
                self._pending_up_count = 1
            if (
                buffered >= self.up_buffer_s
                and self._pending_up_count >= self.up_patience
            ):
                current = ideal
                self._pending_up = None
                self._pending_up_count = 0
        else:
            self._pending_up = None
            self._pending_up_count = 0
            if ideal < current:
                # Down-switch: immediate when the buffer is thin; deferred
                # while a deep buffer can absorb the dip.
                if buffered < self.down_buffer_s:
                    current = ideal
        self._current_index = current
        return current

    def _allowed_indices(self, ctx) -> List[int]:
        """Combination indices whose tracks are not circuit-open.

        The lowest rung is never ejected outright: when every curated
        combination touches an open circuit, the cheapest one stays as
        the last resort (ejecting everything would deadlock selection).
        """
        open_keys = self._breaker.open_keys(ctx.now)
        if not open_keys:
            return list(range(len(self.combinations)))
        allowed = [
            i
            for i, combo in enumerate(self.combinations)
            if combo.video.track_id not in open_keys
            and combo.audio.track_id not in open_keys
        ]
        return allowed or [0]

    def _degrade(self, index: int, ctx) -> int:
        """Apply graceful degradation to a nominal selection index."""
        policy = ctx.retry_policy
        remaining = ctx.retry_budget_remaining()
        if (
            policy is not None
            and remaining is not None
            and remaining <= policy.emergency_threshold()
        ):
            # Budget nearly gone: stop gambling bytes on high rungs.
            self.emergency_engaged = True
            index = 0
        allowed = self._allowed_indices(ctx)
        if not allowed:
            # Unreachable while _allowed_indices keeps its never-empty
            # guarantee; fail loudly (not IndexError below) if a
            # subclass override breaks it.
            raise PlayerError(
                "circuit breaker ejected every combination including the "
                "emergency rung; _allowed_indices must never return empty"
            )
        if index in allowed:
            return index
        lower = [i for i in allowed if i < index]
        return max(lower) if lower else min(allowed)

    def _selection_at(self, position: int, ctx) -> Combination:
        if position not in self._selection_for_position:
            index = self._degrade(self._adapt(ctx, position), ctx)
            self._selection_for_position[position] = self.combinations[index]
        return self._selection_for_position[position]

    # -- scheduling ----------------------------------------------------------

    def choose_next(self, medium: MediaType, ctx) -> Decision:
        if self.balanced:
            gate = self._balancer.gate(medium, ctx)
            if gate is not None:
                return gate
        buffer_gate = self.buffer_gate(ctx, medium, self.buffer_target_s)
        if buffer_gate is not None:
            return buffer_gate
        position = ctx.next_chunk_index(medium)
        combo = self._selection_at(position, ctx)
        if medium is MediaType.VIDEO:
            return download_for(combo.video.track_id)
        return download_for(combo.audio.track_id)

    def on_chunk_complete(self, record: DownloadRecord, ctx) -> None:
        self._estimator.observe_download(record)
        self._breaker.record_success(record.track_id)

    def on_failure(self, medium: MediaType, failure, ctx) -> None:
        """Classified-failure reaction: breaker bookkeeping + downshift.

        Every failure counts against the failing track's circuit; a 404
        counts double (the resource is *missing* — hammering it again is
        strictly pointless, unlike a reset that may be transient). The
        legacy downshift logic then runs, and if the breaker just
        ejected the track this position had selected — and the pair is
        not yet locked by the companion medium — the position is
        re-pointed at the best still-allowed cheaper combination.
        """
        from .balancer import other_medium

        weight = 2 if failure.kind == "http_404" else 1
        if self._breaker.record_failure(failure.track_id, ctx.now, weight=weight):
            self.circuit_trips += 1
        self.on_download_failed(failure, ctx)
        position = failure.chunk_index
        current = self._selection_for_position.get(position)
        if current is None:
            return
        open_keys = self._breaker.open_keys(ctx.now)
        if (
            current.video.track_id not in open_keys
            and current.audio.track_id not in open_keys
        ):
            return
        companion = other_medium(medium)
        companion_inflight = ctx.in_flight(companion)
        pair_locked = ctx.completed_chunks(companion) > position or (
            companion_inflight is not None
            and companion_inflight.chunk_index == position
        )
        if pair_locked:
            return
        rung = next(
            (i for i, combo in enumerate(self.combinations) if combo is current),
            0,
        )
        allowed = self._allowed_indices(ctx)
        lower = [i for i in allowed if i < rung]
        fallback = max(lower) if lower else min(allowed)
        self._selection_for_position[position] = self.combinations[fallback]

    def on_download_failed(self, record, ctx) -> None:
        """React to a killed request: back off one rung for what follows.

        The failed position itself is retried as selected — its pair is
        normally already locked by the companion medium under balanced
        scheduling, and changing only one side would leave a combination
        outside the allowed set. Instead the *working point* steps down
        one rung (so subsequent positions are decided a rung lower) and
        any pending up-switch is cancelled: a reset mid-chunk is weak
        evidence of congestion, and re-climbing immediately into the
        same weather is how retry storms happen. If the companion has
        not touched the failed position yet, the position itself is
        downgraded too.
        """
        from .balancer import other_medium

        position = record.chunk_index
        current = self._selection_for_position.get(position)
        if current is None:
            return
        rung = next(
            (i for i, combo in enumerate(self.combinations) if combo is current),
            0,
        )
        if rung > 0:
            self._current_index = min(self._current_index, rung - 1)
            self.failure_downshifts += 1
            companion = other_medium(record.medium)
            companion_inflight = ctx.in_flight(companion)
            pair_locked = ctx.completed_chunks(companion) > position or (
                companion_inflight is not None
                and companion_inflight.chunk_index == position
            )
            if not pair_locked:
                self._selection_for_position[position] = self.combinations[rung - 1]
        self._pending_up = None
        self._pending_up_count = 0

    # -- abandonment -----------------------------------------------------------

    def consider_abort(self, medium: MediaType, download, ctx) -> bool:
        if not self.abandonment:
            return False
        elapsed = ctx.now - download.started_at
        if elapsed < self.abandon_grace_s or download.bits_done <= 0:
            return False
        position = download.chunk_index
        current = self._selection_for_position.get(position)
        if current is None or current is self.combinations[0]:
            return False  # nothing cheaper to fall back to
        measured_kbps = download.bits_done / elapsed / 1000.0
        remaining_s = download.remaining_bits / (measured_kbps * 1000.0)
        buffered = ctx.buffer_level_s(medium)
        # Abort only when finishing the chunk would outlast the buffer
        # by a margin (half a chunk) — a plain slow chunk is not worth
        # the wasted bytes.
        if remaining_s <= buffered + 0.5 * ctx.chunk_duration_s:
            return False
        # Re-price the position at the measured rate and drop to it.
        budget = measured_kbps * self.safety_factor
        fallback = self._ideal_index(budget, position)
        current_rung = next(
            i for i, combo in enumerate(self.combinations) if combo is current
        )
        if fallback >= current_rung:
            fallback = current_rung - 1
        self._current_index = fallback
        self._pending_up = None
        self._pending_up_count = 0
        self._selection_for_position[position] = self.combinations[fallback]
        return True
