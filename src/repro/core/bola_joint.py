"""BOLA over the joint combination ladder.

dash.js runs BOLA per medium, independently — the paper's Section 3.4
finding. The natural repair, given Section 4.2's "consider the
combinations of audio and video while making rate adaptation
decisions", is to run the *same* Lyapunov machinery over the allowed
combination ladder: utilities come from aggregate bitrates, the buffer
argument is the joint (minimum) buffer, and the chunk balancer keeps
both media on the same frontier so that buffer is well defined.

This demonstrates that the paper's recommendation composes with an
existing, principled ABR algorithm rather than requiring a new one.
"""

from __future__ import annotations

from typing import Dict

from ..media.tracks import MediaType
from ..players.base import BasePlayer
from ..players.bola import BolaState, bola_quality, build_bola_state
from ..sim.decisions import Decision, download_for
from ..sim.records import DownloadRecord
from .balancer import PrefetchBalancer
from .combinations import Combination, CombinationSet


class JointBolaPlayer(BasePlayer):  # policy: inherit-failure
    """Buffer-based joint A/V adaptation over allowed combinations.

    Failure handling deliberately stays on BasePlayer's default: BOLA
    carries no bandwidth estimator to poison, and the retry machinery
    in the session kernel already re-polls ``choose_next``.
    """

    name = "bola-joint"

    def __init__(
        self,
        combinations: CombinationSet,
        stable_buffer_time_s: float = 12.0,
        buffer_target_s: float = 30.0,
        max_lead_chunks: int = 1,
        oscillation_guard_s: float = 6.0,
    ):
        """``oscillation_guard_s`` is a Schmitt-trigger deadband in the
        spirit of BOLA-O: an up-switch is taken only if it would still be
        taken with the buffer ``oscillation_guard_s`` lower. At BOLA's
        equilibrium the buffer hovers exactly on a rung boundary, so the
        raw rule flip-flops every chunk; the deadband suppresses that
        without introducing a bandwidth estimator. Down-switches are
        never delayed. Set to 0 for textbook BOLA."""
        self.combinations = combinations
        self.buffer_target_s = buffer_target_s
        self._balancer = PrefetchBalancer(max_lead_chunks=max_lead_chunks)
        # BOLA needs an ascending-bitrate ladder; a CombinationSet is
        # ordered by aggregate *peak*, which is not monotone in the
        # average for VBR ladders (V3+A1 averages less than V2+A3), so
        # re-order by the average we optimize over.
        self._ordered = sorted(combinations, key=lambda combo: combo.avg_kbps)
        self._state: BolaState = build_bola_state(
            [combo.avg_kbps for combo in self._ordered],
            stable_buffer_time_s=stable_buffer_time_s,
        )
        self.oscillation_guard_s = oscillation_guard_s
        self._current_rung = 0
        self._selection_for_position: Dict[int, Combination] = {}

    def quality_at(self, buffer_level_s: float) -> int:
        """Expose the rung choice for tests and analysis."""
        return bola_quality(self._state, buffer_level_s)

    def _selection_at(self, position: int, ctx) -> Combination:
        if position not in self._selection_for_position:
            joint_buffer = min(
                ctx.buffer_level_s(MediaType.VIDEO),
                ctx.buffer_level_s(MediaType.AUDIO),
            )
            rung = bola_quality(self._state, joint_buffer)
            if rung > self._current_rung:
                guarded = bola_quality(
                    self._state,
                    max(0.0, joint_buffer - self.oscillation_guard_s),
                )
                rung = max(self._current_rung, min(rung, guarded))
            self._current_rung = rung
            self._selection_for_position[position] = self._ordered[rung]
        return self._selection_for_position[position]

    def choose_next(self, medium: MediaType, ctx) -> Decision:
        gate = self._balancer.gate(medium, ctx)
        if gate is not None:
            return gate
        buffer_gate = self.buffer_gate(ctx, medium, self.buffer_target_s)
        if buffer_gate is not None:
            return buffer_gate
        combo = self._selection_at(ctx.next_chunk_index(medium), ctx)
        if medium is MediaType.VIDEO:
            return download_for(combo.video.track_id)
        return download_for(combo.audio.track_id)

    def on_chunk_complete(self, record: DownloadRecord, ctx) -> None:
        # Pure buffer-based control: no bandwidth estimator at all.
        return None
