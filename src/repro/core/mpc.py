"""Model-predictive joint A/V adaptation.

Section 4.2 asks for joint adaptation that balances "maximizing
quality, minimizing stalls and minimizing quality variation". The
standard control-theoretic formulation of that trade-off is MPC (Yin et
al., SIGCOMM'15); :class:`MpcPlayer` applies it to the *combination*
ladder: at each chunk position it enumerates combination sequences over
a short horizon, simulates the joint buffer under the (conservatively
discounted) bandwidth estimate, and commits only the first step.

Because the decision variable is an allowed combination — not a video
rung and an audio rung separately — every plan the optimizer can emit
is automatically a desirable pair, and the chunk-balanced scheduler
keeps the single-buffer model honest (audio and video frontiers stay
within one chunk).
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import PlayerError
from ..media.tracks import MediaType
from ..players.base import BasePlayer
from ..players.estimators import SharedThroughputEstimator
from ..sim.decisions import Decision, download_for
from ..sim.records import DownloadRecord
from .balancer import PrefetchBalancer
from .combinations import Combination, CombinationSet


@dataclass(frozen=True)
class MpcConfig:
    """MPC tuning parameters."""

    horizon: int = 3
    #: Robustness discount on the estimate (robust MPC divides by
    #: (1 + max observed error); a fixed discount is the simple variant).
    safety_factor: float = 0.9
    #: Per-unit-utility weights of the objective.
    quality_weight: float = 1.0
    switch_weight: float = 1.0
    rebuffer_weight_per_s: float = 4.3
    #: Candidate moves per step relative to the previous rung, which
    #: prunes the K^H enumeration without forbidding real plans.
    max_step: int = 2
    buffer_target_s: float = 30.0
    #: Terminal condition: penalize plans that end the horizon with less
    #: than this much buffer, at this weight per missing second. Without
    #: it a short horizon is blind to rungs that drain the buffer slower
    #: than the horizon is long (the classic MPC myopia).
    terminal_buffer_s: float = 12.0
    terminal_weight_per_s: float = 1.0

    def __post_init__(self) -> None:
        if self.horizon < 1:
            raise PlayerError(f"horizon must be >= 1, got {self.horizon}")
        if not 0 < self.safety_factor <= 1:
            raise PlayerError(f"safety_factor in (0,1], got {self.safety_factor}")
        if self.max_step < 1:
            raise PlayerError(f"max_step must be >= 1, got {self.max_step}")


class MpcPlayer(BasePlayer):  # policy: inherit-failure
    """Horizon-optimizing joint A/V player over allowed combinations.

    Failure handling deliberately stays on BasePlayer's default; the
    throughput estimator only observes *completed* downloads, so a
    failed request cannot poison the horizon prediction.
    """

    name = "mpc"

    def __init__(
        self,
        combinations: CombinationSet,
        config: Optional[MpcConfig] = None,
        chunk_duration_s: Optional[float] = None,
    ):
        self.combinations = combinations
        self.config = config or MpcConfig()
        self._estimator = SharedThroughputEstimator()
        self._balancer = PrefetchBalancer(max_lead_chunks=1)
        self._current = 0
        self._selection_for_position: Dict[int, Combination] = {}
        # Utilities: log aggregate average bitrate relative to the lowest
        # allowed combination (same scale as the QoE model).
        lowest = combinations.lowest.avg_kbps
        self._utilities = [
            math.log(combo.avg_kbps / lowest) for combo in combinations
        ]

    # -- planning ------------------------------------------------------------

    def _candidate_moves(self, rung: int) -> List[int]:
        lo = max(0, rung - self.config.max_step)
        hi = min(len(self.combinations) - 1, rung + self.config.max_step)
        return list(range(lo, hi + 1))

    def _plan(
        self, start_rung: int, buffer_s: float, estimate_kbps: float, chunk_s: float
    ) -> int:
        """Enumerate horizon plans; return the first step of the best."""
        budget = estimate_kbps * self.config.safety_factor
        best_score = -math.inf
        best_first = start_rung

        def recurse(step: int, rung: int, buffer_level: float, score: float, first: int):
            nonlocal best_score, best_first
            if step == self.config.horizon:
                deficit = max(0.0, self.config.terminal_buffer_s - buffer_level)
                score -= self.config.terminal_weight_per_s * deficit
                if score > best_score:
                    best_score, best_first = score, first
                return
            for nxt in self._candidate_moves(rung):
                combo = self.combinations[nxt]
                download_s = combo.avg_kbps * chunk_s / budget if budget > 0 else math.inf
                rebuffer = max(0.0, download_s - buffer_level)
                new_buffer = min(
                    max(buffer_level - download_s, 0.0) + chunk_s,
                    self.config.buffer_target_s + chunk_s,
                )
                gain = (
                    self.config.quality_weight * self._utilities[nxt]
                    - self.config.switch_weight
                    * abs(self._utilities[nxt] - self._utilities[rung])
                    - self.config.rebuffer_weight_per_s * rebuffer
                )
                recurse(
                    step + 1,
                    nxt,
                    new_buffer,
                    score + gain,
                    nxt if step == 0 else first,
                )

        recurse(0, start_rung, buffer_s, 0.0, start_rung)
        return best_first

    # -- player interface ------------------------------------------------------

    def _selection_at(self, position: int, ctx) -> Combination:
        if position not in self._selection_for_position:
            estimate = self._estimator.get_estimate_kbps()
            if estimate is None:
                self._current = 0
            else:
                ctx.log_estimate(estimate)
                buffered = min(
                    ctx.buffer_level_s(MediaType.VIDEO),
                    ctx.buffer_level_s(MediaType.AUDIO),
                )
                self._current = self._plan(
                    self._current, buffered, estimate, ctx.chunk_duration_s
                )
            self._selection_for_position[position] = self.combinations[self._current]
        return self._selection_for_position[position]

    def choose_next(self, medium: MediaType, ctx) -> Decision:
        gate = self._balancer.gate(medium, ctx)
        if gate is not None:
            return gate
        buffer_gate = self.buffer_gate(ctx, medium, self.config.buffer_target_s)
        if buffer_gate is not None:
            return buffer_gate
        combo = self._selection_at(ctx.next_chunk_index(medium), ctx)
        if medium is MediaType.VIDEO:
            return download_for(combo.video.track_id)
        return download_for(combo.audio.track_id)

    def on_chunk_complete(self, record: DownloadRecord, ctx) -> None:
        self._estimator.observe_download(record)
