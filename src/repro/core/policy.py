"""Content-type combination policies.

Section 2.1: "for music shows, the sound quality may be relatively more
important than video quality, and hence it might be more desirable to
combine high audio tracks with low/medium video tracks; while for an
action movie, the desirable combinations may be the opposite. The
origin server knows the content information, client device types, and
the business rules, and hence is at a better position for deciding the
combinations."

A :class:`ContentPolicy` encodes that domain knowledge as an audio-bias
applied to the proportional ladder pairing, plus device constraints
(maximum useful resolution / channel count).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..errors import MediaError
from ..media.content import Content
from ..media.tracks import Ladder, MediaType, Track, make_ladder
from .combinations import (
    CombinationSet,
    combinations_from_pairs,
    proportional_pairing,
)


@dataclass(frozen=True)
class DeviceProfile:
    """What the target device can usefully render."""

    name: str
    max_video_height: Optional[int] = None  # e.g. 480 on a small phone
    max_audio_channels: Optional[int] = None  # e.g. 2 on headphones

    def usable_video(self, ladder: Ladder) -> List[Track]:
        tracks = [
            t
            for t in ladder
            if self.max_video_height is None
            or t.height is None
            or t.height <= self.max_video_height
        ]
        return tracks or [ladder.lowest]

    def usable_audio(self, ladder: Ladder) -> List[Track]:
        tracks = [
            t
            for t in ladder
            if self.max_audio_channels is None
            or t.channels is None
            or t.channels <= self.max_audio_channels
        ]
        return tracks or [ladder.lowest]


#: A large-screen device with a surround sound system: no restrictions.
HOME_THEATER = DeviceProfile(name="home-theater")
#: A phone with headphones: stereo only, 480p is plenty.
MOBILE_HANDSET = DeviceProfile(name="mobile", max_video_height=480, max_audio_channels=2)


@dataclass(frozen=True)
class ContentPolicy:
    """Content-provider curation rules for one content type."""

    name: str
    #: Fraction of the audio ladder to shift pairings by: positive for
    #: audio-first content (music), negative for video-first (action).
    audio_bias: float = 0.0

    def curate(
        self, content: Content, device: DeviceProfile = HOME_THEATER
    ) -> CombinationSet:
        """The allowed combinations for this content on this device."""
        video_tracks = device.usable_video(content.video)
        audio_tracks = device.usable_audio(content.audio)
        video = make_ladder(MediaType.VIDEO, video_tracks)
        audio = make_ladder(MediaType.AUDIO, audio_tracks)
        pairs = proportional_pairing(video, audio, audio_bias=self.audio_bias)
        return combinations_from_pairs(content, pairs)


#: Stock policies for the content archetypes the paper names.
DRAMA = ContentPolicy(name="drama", audio_bias=0.0)
MUSIC_SHOW = ContentPolicy(name="music-show", audio_bias=0.5)
ACTION_MOVIE = ContentPolicy(name="action-movie", audio_bias=-0.5)

_POLICIES = {p.name: p for p in (DRAMA, MUSIC_SHOW, ACTION_MOVIE)}


def policy_for(content_type: str) -> ContentPolicy:
    """Look up a stock policy by content-type name."""
    try:
        return _POLICIES[content_type]
    except KeyError:
        raise MediaError(
            f"unknown content type {content_type!r}; "
            f"known: {sorted(_POLICIES)}"
        ) from None
