"""Audio+video combination machinery.

A *combination* pairs one video track with one audio track for the same
chunk position — exactly what an HLS ``EXT-X-STREAM-INF`` variant
declares. The paper's Tables 2 and 3 enumerate combinations of the
Table-1 ladder; this module builds those sets and provides the curation
primitives recommended in Section 4.1 ("the content provider should
identify desirable combinations ... and specify these combinations in
the manifest file").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

from ..errors import MediaError
from ..media.content import Content
from ..media.tracks import Ladder, Track


@dataclass(frozen=True)
class Combination:
    """One (video track, audio track) pair.

    Aggregate bitrates follow the paper's Appendix A: "the peak bitrate
    is the sum of the peak bitrates of the audio and video tracks; the
    average bitrate is sum of their average bitrates."
    """

    video: Track
    audio: Track

    def __post_init__(self) -> None:
        if not self.video.is_video:
            raise MediaError(f"{self.video.track_id} is not a video track")
        if not self.audio.is_audio:
            raise MediaError(f"{self.audio.track_id} is not an audio track")

    @property
    def name(self) -> str:
        """Paper-style name, e.g. ``"V3+A2"``."""
        return f"{self.video.track_id}+{self.audio.track_id}"

    @property
    def avg_kbps(self) -> float:
        return self.video.avg_kbps + self.audio.avg_kbps

    @property
    def peak_kbps(self) -> float:
        return self.video.peak_kbps + self.audio.peak_kbps

    @property
    def declared_kbps(self) -> float:
        """Sum of declared per-track bitrates (the DASH view of the pair)."""
        return self.video.declared_kbps + self.audio.declared_kbps

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


class CombinationSet:
    """An ordered set of allowed combinations for one title.

    The order is by aggregate peak bitrate (the order of Table 2), which
    is also the order a rate-based player steps through.
    """

    def __init__(self, combinations: Iterable[Combination]):
        items = list(combinations)
        if not items:
            raise MediaError("combination set must not be empty")
        names = [c.name for c in items]
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise MediaError(f"duplicate combinations: {dupes}")
        self._items: Tuple[Combination, ...] = tuple(
            sorted(items, key=lambda c: (c.peak_kbps, c.avg_kbps, c.name))
        )

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self):
        return iter(self._items)

    def __getitem__(self, index: int) -> Combination:
        return self._items[index]

    def __contains__(self, item: object) -> bool:
        if isinstance(item, Combination):
            return item.name in self.names
        if isinstance(item, str):
            return item in self.names
        return False

    @property
    def names(self) -> Tuple[str, ...]:
        return tuple(c.name for c in self._items)

    @property
    def lowest(self) -> Combination:
        return self._items[0]

    @property
    def highest(self) -> Combination:
        return self._items[-1]

    def by_name(self, name: str) -> Combination:
        for combo in self._items:
            if combo.name == name:
                return combo
        raise MediaError(f"no combination {name!r} in set")

    def video_tracks(self) -> Tuple[Track, ...]:
        """Distinct video tracks, in ladder order of first appearance."""
        seen: List[Track] = []
        for combo in self._items:
            if all(t.track_id != combo.video.track_id for t in seen):
                seen.append(combo.video)
        return tuple(seen)

    def audio_tracks(self) -> Tuple[Track, ...]:
        """Distinct audio tracks, in order of first appearance."""
        seen: List[Track] = []
        for combo in self._items:
            if all(t.track_id != combo.audio.track_id for t in seen):
                seen.append(combo.audio)
        return tuple(seen)

    def highest_below(
        self, budget_kbps: float, key: str = "peak"
    ) -> Combination:
        """Highest combination whose aggregate bitrate fits the budget.

        :param key: which aggregate to compare — ``"peak"`` (HLS
            BANDWIDTH semantics), ``"avg"`` or ``"declared"`` (DASH).

        Falls back to the lowest combination when nothing fits.
        """
        getter = _aggregate_getter(key)
        fitting = [c for c in self._items if getter(c) <= budget_kbps]
        if not fitting:
            return self._items[0]
        return max(fitting, key=getter)

    def closest_to(self, budget_kbps: float, key: str = "peak") -> Combination:
        """Combination whose aggregate bitrate is closest to the budget.

        This is the simple rate-based rule the paper attributes to Shaka
        ("selects the combination with the bandwidth requirement closest
        to the estimated bandwidth").
        """
        getter = _aggregate_getter(key)
        return min(self._items, key=lambda c: (abs(getter(c) - budget_kbps), getter(c)))

    def rows(self, include_declared: bool = False) -> List[Tuple]:
        """Table rows (name, avg, peak[, declared]) as in Tables 2/3."""
        if include_declared:
            return [
                (c.name, round(c.avg_kbps), round(c.peak_kbps), round(c.declared_kbps))
                for c in self._items
            ]
        return [(c.name, round(c.avg_kbps), round(c.peak_kbps)) for c in self._items]


def _aggregate_getter(key: str):
    getters = {
        "peak": lambda c: c.peak_kbps,
        "avg": lambda c: c.avg_kbps,
        "declared": lambda c: c.declared_kbps,
    }
    try:
        return getters[key]
    except KeyError:
        raise ValueError(f"key must be one of {sorted(getters)}, got {key!r}") from None


def all_combinations(content: Content) -> CombinationSet:
    """Every video x audio pair — the paper's H_all manifest (Table 2)."""
    return CombinationSet(
        Combination(video=v, audio=a) for v in content.video for a in content.audio
    )


#: The curated subset used by the paper's H_sub manifest (Table 3):
#: "V1+A1, V2+A1, V3+A2, V4+A2, V5+A3, V6+A3, where high quality video
#: tracks are associated with high audio quality tracks".
HSUB_PAIRS: Tuple[Tuple[str, str], ...] = (
    ("V1", "A1"),
    ("V2", "A1"),
    ("V3", "A2"),
    ("V4", "A2"),
    ("V5", "A3"),
    ("V6", "A3"),
)


def hsub_combinations(content: Content) -> CombinationSet:
    """The paper's H_sub curated subset of six combinations (Table 3)."""
    return combinations_from_pairs(content, HSUB_PAIRS)


def combinations_from_pairs(
    content: Content, pairs: Sequence[Tuple[str, str]]
) -> CombinationSet:
    """Build a set from explicit (video_id, audio_id) pairs."""
    return CombinationSet(
        Combination(video=content.video.by_id(v), audio=content.audio.by_id(a))
        for v, a in pairs
    )


def proportional_pairing(
    video: Ladder,
    audio: Ladder,
    audio_bias: float = 0.0,
) -> List[Tuple[str, str]]:
    """Pair each video rung with an audio rung by relative ladder position.

    This is the generic curation heuristic behind sets like H_sub: the
    i-th of M video rungs is paired with the audio rung at the same
    relative position in the N-rung audio ladder.

    :param audio_bias: shifts the pairing toward higher (+) or lower (-)
        audio quality; expressed as a fraction of the audio ladder. The
        paper motivates this with content type: "for music shows, the
        sound quality may be relatively more important than video
        quality" (Section 2.1). ``+0.5`` pairs music-show audio half a
        ladder higher; action content would use a negative bias.
    """
    m, n = len(video), len(audio)
    pairs: List[Tuple[str, str]] = []
    for i, vtrack in enumerate(video):
        position = i / (m - 1) if m > 1 else 1.0
        j = round(position * (n - 1) + audio_bias * (n - 1))
        j = min(max(j, 0), n - 1)
        pairs.append((vtrack.track_id, audio[j].track_id))
    return pairs


def curated_combinations(
    content: Content,
    audio_bias: float = 0.0,
    name_filter: Optional[Sequence[str]] = None,
) -> CombinationSet:
    """Server-side curation per Section 4.1.

    Builds one combination per video rung via :func:`proportional_pairing`
    (optionally biased by content type), then applies an explicit
    allow-list if the content provider supplies one.
    """
    pairs = proportional_pairing(content.video, content.audio, audio_bias)
    combos = combinations_from_pairs(content, pairs)
    if name_filter is not None:
        allowed = [c for c in combos if c.name in set(name_filter)]
        if not allowed:
            raise MediaError("name_filter excluded every curated combination")
        combos = CombinationSet(allowed)
    return combos
