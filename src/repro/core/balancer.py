"""Audio/video prefetch balancing.

Implements the Section-4.2 practice "Maintain balance between audio and
video prefetching": "the balance can be achieved by synchronizing the
duration of prefetched audio and video content at a fine granularity,
e.g., at the chunk level or in terms of a small number of chunks."

:class:`PrefetchBalancer` gates a medium's next fetch so its downloaded
frontier never leads the other medium's by more than ``max_lead_chunks``
chunks. With the default of 1, audio and video advance in lock-step per
position (possibly downloading one position's pair concurrently).
"""

from __future__ import annotations

import math
from typing import Optional

from ..errors import PlayerError
from ..media.tracks import MediaType
from ..sim.decisions import WAIT_FOREVER, Wait


def other_medium(medium: MediaType) -> MediaType:
    return MediaType.AUDIO if medium is MediaType.VIDEO else MediaType.VIDEO


class PrefetchBalancer:
    """Chunk-granularity A/V download synchronization."""

    def __init__(self, max_lead_chunks: int = 1):
        if max_lead_chunks < 1:
            raise PlayerError(
                f"max_lead_chunks must be at least 1, got {max_lead_chunks}"
            )
        self.max_lead_chunks = max_lead_chunks

    def gate(self, medium: MediaType, ctx) -> Optional[Wait]:
        """Return a :class:`Wait` when the medium must let the other
        catch up, or ``None`` when it may fetch now.

        The comparison is on *completed* chunks: a medium may begin
        chunk ``i`` only while ``i < other_completed + max_lead``. The
        wait is event-driven (``until=inf``): the other medium's next
        completion re-triggers scheduling.
        """
        mine = ctx.completed_chunks(medium)
        others = ctx.completed_chunks(other_medium(medium))
        if mine - others >= self.max_lead_chunks:
            return WAIT_FOREVER
        return None

    def imbalance_chunks(self, ctx) -> int:
        """Current signed lead of video over audio, in chunks."""
        return ctx.completed_chunks(MediaType.VIDEO) - ctx.completed_chunks(
            MediaType.AUDIO
        )
