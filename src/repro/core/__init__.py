"""The paper's constructive contribution: combination curation and the
best-practices joint A/V player."""

from .balancer import PrefetchBalancer, other_medium
from .bola_joint import JointBolaPlayer
from .chunk_aware import ChunkAwarePlayer
from .combinations import (
    Combination,
    CombinationSet,
    HSUB_PAIRS,
    all_combinations,
    combinations_from_pairs,
    curated_combinations,
    hsub_combinations,
    proportional_pairing,
)
from .mpc import MpcConfig, MpcPlayer
from .player import RecommendedPlayer
from .policy import (
    ACTION_MOVIE,
    DRAMA,
    HOME_THEATER,
    MOBILE_HANDSET,
    MUSIC_SHOW,
    ContentPolicy,
    DeviceProfile,
    policy_for,
)

__all__ = [
    "ACTION_MOVIE",
    "ChunkAwarePlayer",
    "Combination",
    "JointBolaPlayer",
    "MpcConfig",
    "MpcPlayer",
    "CombinationSet",
    "ContentPolicy",
    "DeviceProfile",
    "DRAMA",
    "HOME_THEATER",
    "HSUB_PAIRS",
    "MOBILE_HANDSET",
    "MUSIC_SHOW",
    "PrefetchBalancer",
    "RecommendedPlayer",
    "all_combinations",
    "combinations_from_pairs",
    "curated_combinations",
    "hsub_combinations",
    "other_medium",
    "policy_for",
    "proportional_pairing",
]
