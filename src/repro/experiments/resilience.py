"""X8 — resilience to transient request failures.

Production CDNs reset connections; a demuxed client retries *two*
request streams' worth of them. This experiment injects seeded
failures (10% of requests die mid-transfer) on a moderately provisioned
link and compares the players: total retry waste, stall damage, and
whether adaptation conformance survives the retries.

The best-practices player additionally demonstrates the retry-lower
reaction: a failed position re-fetches one allowed rung lower (when the
pair is not already locked by the companion medium), converting
failures into mild quality dips instead of repeated stalls.
"""

from __future__ import annotations

from typing import Dict

from ..core.combinations import hsub_combinations
from ..core.player import RecommendedPlayer
from ..manifest.packager import package_dash, package_hls
from ..media.content import drama_show
from ..media.tracks import MediaType
from ..net.failures import FailureModel
from ..net.link import shared
from ..net.traces import constant
from ..players.dashjs import DashJsPlayer
from ..players.exoplayer import ExoPlayerDash
from ..players.shaka import ShakaPlayer
from ..qoe.metrics import compute_qoe
from ..sim.session import SessionConfig, simulate
from .base import ExperimentReport, register

LINK_KBPS = 900.0
FAILURE_P = 0.10
N_SEEDS = 4


@register("resilience")
def run_resilience() -> ExperimentReport:
    report = ExperimentReport(
        experiment_id="resilience",
        title=f"10% transient request failures at {LINK_KBPS:.0f} kbps",
        params={"failure_p": FAILURE_P, "bandwidth_kbps": LINK_KBPS, "seeds": N_SEEDS},
        paper_claim=(
            "failure handling is part of demuxed A/V hygiene: retries must "
            "not break pairing conformance, and reacting to failures beats "
            "blind re-requests"
        ),
        header=(
            "Player",
            "Failures",
            "Wasted Mb",
            "Stalls",
            "Rebuffer s",
            "Video kbps",
            "QoE",
        ),
    )
    content = drama_show()
    hsub = hsub_combinations(content)
    dash = package_dash(content)
    hall = package_hls(content).master

    players = {
        "exoplayer-dash": lambda: ExoPlayerDash(dash),
        "shaka": lambda: ShakaPlayer.from_hls(hall),
        "dashjs": lambda: DashJsPlayer(dash),
        "recommended": lambda: RecommendedPlayer(hsub),
    }
    totals: Dict[str, Dict[str, float]] = {}
    conformance_ok = True
    for name, make_player in players.items():
        acc = {"failures": 0, "waste": 0.0, "stalls": 0, "rebuf": 0.0, "video": 0.0, "qoe": 0.0}
        for seed in range(N_SEEDS):
            config = SessionConfig(
                failure_model=FailureModel(FAILURE_P, seed=seed)
            )
            result = simulate(content, make_player(), shared(constant(LINK_KBPS)), config)
            acc["failures"] += len(result.failures)
            acc["waste"] += sum(f.bits_done for f in result.failures) / 1e6
            acc["stalls"] += result.n_stalls
            acc["rebuf"] += result.total_rebuffer_s
            acc["video"] += result.time_weighted_bitrate_kbps(MediaType.VIDEO)
            acc["qoe"] += compute_qoe(result, content).score
            if name == "recommended" and not (
                set(result.combination_names()) <= set(hsub.names)
            ):
                conformance_ok = False
        totals[name] = acc
        report.rows.append(
            (
                name,
                acc["failures"],
                round(acc["waste"], 1),
                acc["stalls"],
                round(acc["rebuf"], 1),
                round(acc["video"] / N_SEEDS),
                round(acc["qoe"] / N_SEEDS, 1),
            )
        )

    report.check(
        "every player completes all sessions under 10% failures",
        True,  # reaching this line means no SimulationError was raised
    )
    report.check(
        "recommended retains pairing conformance across all retries",
        conformance_ok,
    )
    report.check(
        "recommended has the least rebuffering under failures",
        totals["recommended"]["rebuf"]
        <= min(acc["rebuf"] for acc in totals.values()) + 1e-9,
        detail=str({n: round(acc["rebuf"], 1) for n, acc in totals.items()}),
    )
    report.check(
        "failures occurred and wasted measurable bytes (the injection works)",
        all(acc["failures"] > 0 and acc["waste"] > 0 for acc in totals.values()),
    )
    return report
