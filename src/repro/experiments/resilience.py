"""X8 — resilience to transient request failures.

Production CDNs reset connections; a demuxed client retries *two*
request streams' worth of them. This experiment injects seeded
failures (10% of requests die mid-transfer) on a moderately provisioned
link and compares the players: total retry waste, stall damage, and
whether adaptation conformance survives the retries.

The best-practices player additionally demonstrates the retry-lower
reaction: a failed position re-fetches one allowed rung lower (when the
pair is not already locked by the companion medium), converting
failures into mild quality dips instead of repeated stalls.

X8b (``resilience-sweep``) drives the full :mod:`repro.net.resilience`
subsystem: failure *mixes* (reset-heavy, HTTP-error-heavy) crossed with
retry *policies* (backoff shape, attempt caps, budgets), range-resume
on versus off, byte-accounting reconciliation on every session, and a
determinism check that identical seeds replay identical retry
schedules.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..core.combinations import hsub_combinations
from ..media.content import drama_show
from ..media.tracks import MediaType
from ..net.resilience import FailureKind, RetryPolicy
from ..qoe.metrics import compute_qoe
from ..runner import (
    FailureSpec,
    GridRunner,
    PlayerSpec,
    SimulationJob,
    TraceSpec,
)
from .base import ExperimentReport, register

LINK_KBPS = 900.0
FAILURE_P = 0.10
N_SEEDS = 4

PLAYER_SPECS: Dict[str, PlayerSpec] = {
    "exoplayer-dash": PlayerSpec("exoplayer-dash"),
    "shaka": PlayerSpec("shaka", combinations="all"),
    "dashjs": PlayerSpec("dashjs"),
    "recommended": PlayerSpec("recommended", combinations="hsub"),
}

_RECOMMENDED = PLAYER_SPECS["recommended"]


@register("resilience")
def run_resilience() -> ExperimentReport:
    report = ExperimentReport(
        experiment_id="resilience",
        title=f"10% transient request failures at {LINK_KBPS:.0f} kbps",
        params={"failure_p": FAILURE_P, "bandwidth_kbps": LINK_KBPS, "seeds": N_SEEDS},
        paper_claim=(
            "failure handling is part of demuxed A/V hygiene: retries must "
            "not break pairing conformance, and reacting to failures beats "
            "blind re-requests"
        ),
        header=(
            "Player",
            "Failures",
            "Wasted Mb",
            "Stalls",
            "Rebuffer s",
            "Video kbps",
            "QoE",
        ),
    )
    content = drama_show()
    hsub = hsub_combinations(content)

    grid = [
        (name, seed) for name in PLAYER_SPECS for seed in range(N_SEEDS)
    ]
    runner = GridRunner()
    jobs = [
        SimulationJob(
            player=PLAYER_SPECS[name],
            trace=TraceSpec.constant(LINK_KBPS),
            failure=FailureSpec(FAILURE_P, seed=seed),
            seed=seed,
        )
        for name, seed in grid
    ]
    results = runner.results(jobs)

    totals: Dict[str, Dict[str, float]] = {}
    conformance_ok = True
    for (name, seed), result in zip(grid, results):
        acc = totals.setdefault(
            name,
            {"failures": 0, "waste": 0.0, "stalls": 0, "rebuf": 0.0, "video": 0.0, "qoe": 0.0},
        )
        acc["failures"] += len(result.failures)
        acc["waste"] += sum(f.bits_done for f in result.failures) / 1e6
        acc["stalls"] += result.n_stalls
        acc["rebuf"] += result.total_rebuffer_s
        acc["video"] += result.time_weighted_bitrate_kbps(MediaType.VIDEO)
        acc["qoe"] += compute_qoe(result, content).score
        if name == "recommended" and not (
            set(result.combination_names()) <= set(hsub.names)
        ):
            conformance_ok = False
    report.params["runner"] = runner.params()
    for name, acc in totals.items():
        report.rows.append(
            (
                name,
                acc["failures"],
                round(acc["waste"], 1),
                acc["stalls"],
                round(acc["rebuf"], 1),
                round(acc["video"] / N_SEEDS),
                round(acc["qoe"] / N_SEEDS, 1),
            )
        )

    report.check(
        "every player completes all sessions under 10% failures",
        True,  # reaching this line means no SimulationError was raised
    )
    report.check(
        "recommended retains pairing conformance across all retries",
        conformance_ok,
    )
    report.check(
        "recommended has the least rebuffering under failures",
        totals["recommended"]["rebuf"]
        <= min(acc["rebuf"] for acc in totals.values()) + 1e-9,
        detail=str({n: round(acc["rebuf"], 1) for n, acc in totals.items()}),
    )
    report.check(
        "failures occurred and wasted measurable bytes (the injection works)",
        all(acc["failures"] > 0 and acc["waste"] > 0 for acc in totals.values()),
    )
    return report


# -- X8b: failure-mix x retry-policy sweep --------------------------------

SWEEP_SEEDS = 3

#: Failure mixes to sweep. ``None`` = the model's default mix.
SWEEP_MIXES: Dict[str, Optional[Dict[FailureKind, float]]] = {
    "default": None,
    "reset-heavy": {
        FailureKind.CONNECTION_RESET: 0.7,
        FailureKind.SLOW_TRANSFER: 0.2,
        FailureKind.HTTP_5XX: 0.1,
    },
    "http-heavy": {
        FailureKind.HTTP_5XX: 0.5,
        FailureKind.HTTP_404: 0.3,
        FailureKind.TIMEOUT: 0.2,
    },
}

#: Retry policies to sweep, from default through patient to trigger-happy.
SWEEP_POLICIES: Dict[str, RetryPolicy] = {
    "default": RetryPolicy(),
    "patient": RetryPolicy(
        max_attempts=6, base_delay_s=1.0, max_delay_s=16.0, retry_budget=128
    ),
    "eager": RetryPolicy(
        max_attempts=2, base_delay_s=0.1, max_delay_s=2.0, retry_budget=32
    ),
}


def _cell_jobs(
    mix: Optional[Dict[FailureKind, float]],
    policy: RetryPolicy,
    resume_probability: float,
) -> list:
    """The seed-replicate jobs of one (mix, policy, resume) cell."""
    return [
        SimulationJob(
            player=_RECOMMENDED,
            trace=TraceSpec.constant(LINK_KBPS),
            failure=FailureSpec.with_mix(
                FAILURE_P, seed, mix, resume_probability=resume_probability
            ),
            retry_policy=policy,
            seed=seed,
        )
        for seed in range(SWEEP_SEEDS)
    ]


def _sweep_cell(
    runner: GridRunner,
    mix: Optional[Dict[FailureKind, float]],
    policy: RetryPolicy,
    resume_probability: float,
    use_cache: bool = True,
) -> Tuple[Dict[str, float], list, bool]:
    """Run one (mix, policy, resume) cell over the seed set."""
    acc = {
        "failures": 0,
        "retries": 0,
        "resumed": 0.0,
        "waste": 0.0,
        "stalls": 0,
        "rebuf": 0.0,
        "video": 0.0,
    }
    schedules = []
    reconciles = True
    for result in runner.results(
        _cell_jobs(mix, policy, resume_probability), use_cache=use_cache
    ):
        acc["failures"] += len(result.failures)
        acc["retries"] += result.n_retries
        acc["resumed"] += result.bits_resumed / 1e6
        acc["waste"] += result.bits_wasted / 1e6
        acc["stalls"] += result.n_stalls
        acc["rebuf"] += result.total_rebuffer_s
        acc["video"] += result.time_weighted_bitrate_kbps(MediaType.VIDEO)
        schedules.append(result.retry_schedule())
        reconciles = reconciles and result.byte_accounting()["reconciles"]
    return acc, schedules, reconciles


@register("resilience-sweep")
def run_resilience_sweep() -> ExperimentReport:
    report = ExperimentReport(
        experiment_id="resilience-sweep",
        title=(
            f"failure-mix x retry-policy sweep at {FAILURE_P:.0%} failures, "
            f"{LINK_KBPS:.0f} kbps (best-practices player)"
        ),
        params={
            "failure_p": FAILURE_P,
            "bandwidth_kbps": LINK_KBPS,
            "seeds": SWEEP_SEEDS,
            "mixes": list(SWEEP_MIXES),
            "policies": list(SWEEP_POLICIES),
        },
        paper_claim=(
            "graceful failure handling is a best practice in its own right: "
            "range-resume cuts wasted bytes without extra stalls, budgeted "
            "backoff keeps sessions alive, and the whole pipeline stays "
            "deterministic under seeded replay"
        ),
        header=(
            "Mix",
            "Policy",
            "Resume",
            "Failures",
            "Retries",
            "Resumed Mb",
            "Wasted Mb",
            "Rebuffer s",
            "Video kbps",
        ),
    )
    runner = GridRunner()
    cells: Dict[Tuple[str, str, float], Dict[str, float]] = {}
    all_reconcile = True
    for mix_name, mix in SWEEP_MIXES.items():
        for policy_name, policy in SWEEP_POLICIES.items():
            resumes = (0.6, 0.0) if (mix_name, policy_name) == (
                "default",
                "default",
            ) else (0.6,)
            for resume_probability in resumes:
                acc, _, reconciles = _sweep_cell(
                    runner, mix, policy, resume_probability
                )
                all_reconcile = all_reconcile and reconciles
                cells[(mix_name, policy_name, resume_probability)] = acc
                report.rows.append(
                    (
                        mix_name,
                        policy_name,
                        f"{resume_probability:.0%}",
                        acc["failures"],
                        acc["retries"],
                        round(acc["resumed"], 1),
                        round(acc["waste"], 1),
                        round(acc["rebuf"], 1),
                        round(acc["video"] / SWEEP_SEEDS),
                    )
                )

    with_resume = cells[("default", "default", 0.6)]
    without_resume = cells[("default", "default", 0.0)]
    report.check(
        "range-resume wastes fewer megabits than discard-everything",
        with_resume["waste"] < without_resume["waste"],
        detail=(
            f"resume {with_resume['waste']:.1f} Mb vs "
            f"discard {without_resume['waste']:.1f} Mb"
        ),
    )
    report.check(
        "range-resume stalls no more than discard-everything",
        with_resume["rebuf"] <= without_resume["rebuf"] + 1e-9,
        detail=(
            f"resume {with_resume['rebuf']:.2f} s vs "
            f"discard {without_resume['rebuf']:.2f} s"
        ),
    )
    report.check(
        "byte accounting reconciles exactly in every session "
        "(served = played + wasted + resumed)",
        all_reconcile,
    )

    # Determinism: one cell, run twice, schedule-identical. The second
    # run bypasses the result cache so a fresh simulation (not the
    # first run's stored copy) is what must match.
    _, schedules_a, _ = _sweep_cell(
        runner, SWEEP_MIXES["reset-heavy"], SWEEP_POLICIES["default"], 0.6
    )
    _, schedules_b, _ = _sweep_cell(
        runner,
        SWEEP_MIXES["reset-heavy"],
        SWEEP_POLICIES["default"],
        0.6,
        use_cache=False,
    )
    report.check(
        "identical seeds reproduce identical failure/retry schedules",
        schedules_a == schedules_b and any(schedules_a),
    )

    # Graceful degradation: certain failure + tiny budget still yields a
    # clean, reconciled result with a termination reason — no exception.
    (degraded,) = runner.results(
        [
            SimulationJob(
                player=_RECOMMENDED,
                trace=TraceSpec.constant(LINK_KBPS),
                failure=FailureSpec(1.0, seed=0, taxonomy=True),
                retry_policy=RetryPolicy(retry_budget=8),
            )
        ]
    )
    report.check(
        "certain failure with a finite budget terminates gracefully",
        (not degraded.completed)
        and degraded.termination_reason is not None
        and degraded.byte_accounting()["reconciles"],
        detail=f"termination_reason={degraded.termination_reason}",
    )
    report.params["runner"] = runner.params()
    return report
