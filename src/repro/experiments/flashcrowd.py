"""X12 — flash crowds over a faulty edge topology.

The paper measures one client behind one throttled link; an operator
runs thousands of concurrent sessions behind shared CDN edges, and the
events that hurt are *correlated*: a whole edge goes dark and its
sessions stampede onto the ring neighbor, the origin browns out under
a miss storm, a cache flush converts a warm crowd into a cold one.

This experiment drives one flash crowd (sessions arriving over a short
burst window) through four scenarios — clean, a mid-run edge outage,
an origin brownout, and an eviction storm — and reports cohort QoE
from the streaming aggregate. The property being demonstrated is
*graceful degradation*: every session in every scenario ends with a
verdict (completed, or an explicit degradation reason), failovers
happen exactly when an edge is dark, and the cohort invariants (edge
byte conservation, fair-share bounds) hold under every storm.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..chaos.invariants import check_cohort
from ..net.resilience import FailoverPolicy
from ..runner import GridRunner
from ..topology import (
    CohortJob,
    FaultDomainKind,
    FaultDomainSchedule,
    FaultWindow,
    TopologySpec,
)
from .base import ExperimentReport, register

N_SESSIONS = 120
N_EDGES = 4
EDGE_KBPS = 25_000.0
ARRIVAL_BURST_S = 30.0
N_SEEDS = 2

#: The storm hits after the crowd has arrived and reached steady state.
FAULT_START_S = 60.0
FAULT_END_S = 100.0


def _scenarios() -> Dict[str, FaultDomainSchedule]:
    """Scenario name -> pinned fault schedule (None key = clean)."""
    pin = dict(start_s=FAULT_START_S, end_s=FAULT_END_S)
    return {
        "edge-outage": FaultDomainSchedule(
            kinds=(),
            pinned=(
                FaultWindow(FaultDomainKind.EDGE_OUTAGE, "edge-1", **pin),
            ),
        ),
        "origin-brownout": FaultDomainSchedule(
            kinds=(),
            pinned=(
                FaultWindow(
                    FaultDomainKind.ORIGIN_BROWNOUT, "origin",
                    latency_factor=6.0, error_probability=0.4, **pin,
                ),
            ),
        ),
        "eviction-storm": FaultDomainSchedule(
            kinds=(),
            pinned=(
                FaultWindow(FaultDomainKind.EVICTION_STORM, "edge-2", **pin),
            ),
        ),
    }


def build_grid() -> List[Tuple[str, int, CohortJob]]:
    """The (scenario, seed, job) cells; shared with the CI chaos run."""
    topology = TopologySpec.uniform(N_EDGES, capacity_kbps=EDGE_KBPS)
    cells: List[Tuple[str, int, CohortJob]] = []
    schedules = _scenarios()
    for scenario in ("clean", *schedules):
        for seed in range(N_SEEDS):
            cells.append(
                (
                    scenario,
                    seed,
                    CohortJob(
                        topology=topology,
                        faults=schedules.get(scenario),
                        n_sessions=N_SESSIONS,
                        arrival_burst_s=ARRIVAL_BURST_S,
                        failover=FailoverPolicy(),
                        seed=seed,
                    ),
                )
            )
    return cells


@register("flashcrowd")
def run_flashcrowd() -> ExperimentReport:
    report = ExperimentReport(
        experiment_id="flashcrowd",
        title=(
            f"{N_SESSIONS}-session flash crowd over {N_EDGES} edges "
            "under correlated fault domains"
        ),
        params={
            "sessions": N_SESSIONS,
            "edges": N_EDGES,
            "edge_kbps": EDGE_KBPS,
            "burst_s": ARRIVAL_BURST_S,
            "fault_window_s": [FAULT_START_S, FAULT_END_S],
            "seeds": N_SEEDS,
        },
        paper_claim=(
            "robust ABR must degrade gracefully under infrastructure "
            "faults, not just adapt to bandwidth: failures are correlated "
            "across the sessions sharing a fault domain"
        ),
        header=(
            "Scenario",
            "Completed",
            "Degraded",
            "Failovers",
            "Stall ratio",
            "Hit ratio",
            "Wasted %",
        ),
    )
    cells = build_grid()
    runner = GridRunner()
    results = runner.results([job for _, _, job in cells])
    report.params["runner"] = runner.params()

    by_scenario: Dict[str, Dict[str, float]] = {}
    all_verdicted = True
    invariants_ok = True
    for (scenario, _seed, _job), result in zip(cells, results):
        violations = check_cohort(result)
        if violations:
            invariants_ok = False
            report.note(f"{scenario}: {violations[0]}")
        agg = result.aggregate
        if agg["sessions"] != N_SESSIONS or agg["verdicts"].get("no_verdict"):
            all_verdicted = False
        acc = by_scenario.setdefault(
            scenario,
            {"completed": 0, "degraded": 0, "failovers": 0,
             "stall_ratio": 0.0, "hits": 0, "misses": 0, "evictions": 0,
             "useful": 0.0, "wasted": 0.0, "cells": 0},
        )
        acc["completed"] += result.completed_sessions
        acc["degraded"] += result.degraded_sessions
        acc["failovers"] += int(agg["failovers"]["mean"] * agg["sessions"])
        acc["stall_ratio"] += agg["stall_ratio"]["mean"]
        for ledger in result.edges.values():
            acc["hits"] += ledger["cache_hits"]
            acc["misses"] += ledger["cache_misses"]
            acc["evictions"] += ledger["cache_evictions"]
            acc["useful"] += ledger["useful_bits"]
            acc["wasted"] += ledger["wasted_bits"]
        acc["cells"] += 1

    for scenario, acc in by_scenario.items():
        requests = acc["hits"] + acc["misses"]
        bits = acc["useful"] + acc["wasted"]
        report.rows.append(
            (
                scenario,
                acc["completed"],
                acc["degraded"],
                acc["failovers"],
                round(acc["stall_ratio"] / acc["cells"], 4),
                round(acc["hits"] / requests, 3) if requests else 0.0,
                round(100.0 * acc["wasted"] / bits, 2) if bits else 0.0,
            )
        )

    report.check(
        "zero aborted sessions: every session in every scenario ends "
        "with a verdict",
        all_verdicted,
    )
    report.check("cohort invariants hold in every cell", invariants_ok)
    report.check(
        # The clean run is not failover-free — the flash-crowd ramp
        # itself overshoots and trips some endpoint circuits — but a
        # dark edge must drive *substantially* more switching.
        "edge outage forces substantially more failovers than the "
        "clean baseline",
        by_scenario["edge-outage"]["failovers"]
        > 1.5 * by_scenario["clean"]["failovers"] > 0,
        detail=(
            f"outage {by_scenario['edge-outage']['failovers']} vs "
            f"clean {by_scenario['clean']['failovers']}"
        ),
    )
    report.check(
        "most sessions complete even under the edge outage",
        by_scenario["edge-outage"]["completed"]
        >= 0.9 * N_SESSIONS * N_SEEDS,
        detail=(
            f"{by_scenario['edge-outage']['completed']} of "
            f"{N_SESSIONS * N_SEEDS}"
        ),
    )
    report.check(
        "the eviction storm actually flushes cache entries",
        by_scenario["eviction-storm"]["evictions"]
        > by_scenario["clean"]["evictions"],
        detail=(
            f"storm {by_scenario['eviction-storm']['evictions']} vs "
            f"clean {by_scenario['clean']['evictions']} evictions"
        ),
    )
    return report
