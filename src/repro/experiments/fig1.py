"""Fig. 1 — ABR streaming of demuxed audio and video (structural demo).

Fig. 1 is a schematic, so this experiment demonstrates the structure it
depicts plus the two Section-1 advantages of demuxed storage:

1. a client selects, per chunk position, one chunk from the video
   adaptation set and one from the audio set (shown with a short
   simulated session's per-position picks);
2. origin storage is M + N tracks instead of M x N muxed tracks;
3. CDN cache hits improve: user B reusing user A's cached video chunks
   while changing only the audio track hits the cache on all video
   bytes in demuxed mode and on nothing in muxed mode.
"""

from __future__ import annotations

from ..core.combinations import hsub_combinations
from ..core.player import RecommendedPlayer
from ..media.content import drama_show
from ..net.link import shared
from ..net.server import CdnCache, OriginServer
from ..net.traces import constant
from ..sim.session import simulate
from .base import ExperimentReport, register


@register("fig1")
def run_fig1() -> ExperimentReport:
    report = ExperimentReport(
        experiment_id="fig1",
        title="Demuxed ABR streaming: per-position A/V selection, storage, CDN",
        paper_claim=(
            "demuxed mode stores M+N tracks instead of MxN and increases CDN "
            "cache hits when users differ only in audio track"
        ),
        header=("Mode", "Origin storage (Gb)", "User-B video cache hit ratio"),
    )
    content = drama_show()

    # 1. Per-position selection over demuxed tracks.
    player = RecommendedPlayer(hsub_combinations(content))
    result = simulate(content, player, shared(constant(1500.0)))
    picks = result.selected_combinations()
    report.note(
        "per-position (video, audio) picks, first 8: "
        + ", ".join(f"{v}+{a}" for _, v, a in picks[:8])
    )
    report.check(
        "every position pairs exactly one video with one audio chunk",
        all(v is not None and a is not None for _, v, a in picks),
    )

    # 2/3. Storage and cache behaviour, demuxed vs muxed.
    m, n = len(content.video), len(content.audio)
    rows = {}
    for muxed in (False, True):
        origin = OriginServer(content, muxed=muxed)
        cache = CdnCache(origin, capacity_bits=origin.storage_bits())
        # User A watches V5+A3; user B then watches V5+A1.
        for index in range(content.n_chunks):
            cache.fetch_position("V5", "A3", index)
        before = cache.stats.hits
        video_bits_hit = 0.0
        video_bits_total = 0.0
        for index in range(content.n_chunks):
            stats = cache.fetch_position("V5", "A1", index)
            video_bits_total += stats["bits"]
            video_bits_hit += stats["hit_bits"]
        hit_ratio = video_bits_hit / video_bits_total
        mode = "muxed" if muxed else "demuxed"
        rows[mode] = (origin.storage_bits() / 1e9, hit_ratio)
        report.rows.append((mode, f"{rows[mode][0]:.2f}", f"{rows[mode][1]:.2%}"))

    demuxed_storage, demuxed_hits = rows["demuxed"]
    muxed_storage, muxed_hits = rows["muxed"]
    report.check(
        f"demuxed stores M+N={m + n} tracks vs MxN={m * n} muxed "
        "(storage ratio matches)",
        muxed_storage > demuxed_storage * 1.5,
        detail=f"{muxed_storage:.2f} Gb vs {demuxed_storage:.2f} Gb",
    )
    report.check(
        "user B's shared video bytes hit the CDN cache only in demuxed mode",
        demuxed_hits > 0.8 and muxed_hits == 0.0,
        detail=f"demuxed {demuxed_hits:.0%}, muxed {muxed_hits:.0%}",
    )
    return report
