"""X2 — the Section-4 best practices, quantified.

The paper proposes the practices but leaves implementation to future
work; here the :class:`~repro.core.player.RecommendedPlayer` (which
implements all four) is run head-to-head against each measured player
on that player's own failure scenario, plus ablations that switch the
practices off one at a time:

* vs **ExoPlayer HLS** on the Fig. 3 trace — audio adaptation removes
  the fixed-A3 stall storm;
* vs **Shaka** on the Fig. 4(a) link — a pooled A/V estimator is not
  fooled by concurrent downloads, unlocking the bandwidth Shaka leaves
  unused;
* vs **dash.js** on the Fig. 5 link — joint adaptation over allowed
  combinations eliminates undesirable pairs and balances the buffers;
* ablations: balanced vs free-running prefetch, shared vs per-medium
  meter, curated subset vs all combinations.
"""

from __future__ import annotations

from typing import Tuple

from ..core.combinations import all_combinations, hsub_combinations
from ..core.player import RecommendedPlayer
from ..manifest.packager import package_dash, package_hls
from ..media.content import drama_show
from ..media.tracks import MediaType
from ..net.link import shared
from ..net.traces import constant
from ..players.dashjs import DashJsPlayer
from ..players.exoplayer import ExoPlayerHls
from ..players.shaka import ShakaPlayer
from ..qoe.metrics import compute_qoe
from ..sim.session import simulate
from .base import ExperimentReport, register
from .traces import fig3_trace

_HEADER = (
    "Scenario",
    "Player",
    "Video kbps",
    "Audio kbps",
    "Stalls",
    "Rebuffer s",
    "Switches",
    "Imbalance s",
    "Undesirable",
    "QoE",
)


def _row(scenario, name, content, result) -> Tuple:
    qoe = compute_qoe(result, content)
    return (
        scenario,
        name,
        round(result.time_weighted_bitrate_kbps(MediaType.VIDEO)),
        round(result.time_weighted_bitrate_kbps(MediaType.AUDIO)),
        result.n_stalls,
        round(result.total_rebuffer_s, 1),
        qoe.video_switches + qoe.audio_switches,
        round(result.max_buffer_imbalance_s(), 1),
        qoe.undesirable_chunks,
        round(qoe.score, 1),
    )


@register("best_practices")
def run_best_practices() -> ExperimentReport:
    report = ExperimentReport(
        experiment_id="best_practices",
        title="Best-practices player vs the three measured players",
        paper_claim=(
            "adopting audio adaptation, allowed-combination selection, joint "
            "adaptation and balanced prefetching avoids the observed issues"
        ),
        header=_HEADER,
    )
    content = drama_show()
    hsub = hsub_combinations(content)

    # -- scenario 1: the ExoPlayer-HLS stall storm (Fig. 3 trace) ---------
    trace = fig3_trace()
    exo = ExoPlayerHls(
        package_hls(content, combinations=hsub, audio_order=["A3", "A2", "A1"]).master
    )
    exo_result = simulate(content, exo, shared(trace))
    rec = RecommendedPlayer(hsub)
    rec_result = simulate(content, rec, shared(fig3_trace()))
    report.rows.append(_row("fig3", "exoplayer-hls", content, exo_result))
    report.rows.append(_row("fig3", "recommended", content, rec_result))
    report.check(
        "audio adaptation eliminates (or nearly eliminates) the rebuffering",
        rec_result.total_rebuffer_s <= exo_result.total_rebuffer_s * 0.25,
        detail=(
            f"{rec_result.total_rebuffer_s:.1f} s vs {exo_result.total_rebuffer_s:.1f} s"
        ),
    )
    report.check(
        "recommended selects only allowed combinations",
        set(rec_result.combination_names()) <= set(hsub.names),
        detail=str(rec_result.distinct_combinations()),
    )

    # -- scenario 2: the Shaka dead estimator (Fig. 4a link) --------------
    shaka = ShakaPlayer.from_hls(package_hls(content).master)
    shaka_result = simulate(content, shaka, shared(constant(1000.0)))
    rec2 = RecommendedPlayer(hsub)
    rec2_result = simulate(content, rec2, shared(constant(1000.0)))
    report.rows.append(_row("fig4a", "shaka", content, shaka_result))
    report.rows.append(_row("fig4a", "recommended", content, rec2_result))
    rec2_estimates = [e.kbps for e in rec2_result.estimate_timeline]
    report.check(
        "pooled estimator sees the real ~1000 kbps link (Shaka saw 500)",
        rec2_estimates and max(rec2_estimates) > 900.0,
        detail=f"max estimate {max(rec2_estimates):.0f} kbps",
    )
    report.check(
        "recommended converts the recovered bandwidth into video quality",
        rec2_result.time_weighted_bitrate_kbps(MediaType.VIDEO)
        > shaka_result.time_weighted_bitrate_kbps(MediaType.VIDEO) * 1.2,
        detail=(
            f"{rec2_result.time_weighted_bitrate_kbps(MediaType.VIDEO):.0f} vs "
            f"{shaka_result.time_weighted_bitrate_kbps(MediaType.VIDEO):.0f} kbps"
        ),
    )

    # -- scenario 3: the dash.js imbalance/undesirable combos (Fig. 5) ----
    dashjs = DashJsPlayer(package_dash(content))
    dashjs_result = simulate(content, dashjs, shared(constant(700.0)))
    rec3 = RecommendedPlayer(hsub)
    rec3_result = simulate(content, rec3, shared(constant(700.0)))
    report.rows.append(_row("fig5", "dashjs", content, dashjs_result))
    report.rows.append(_row("fig5", "recommended", content, rec3_result))
    rec3_qoe = compute_qoe(rec3_result, content)
    dashjs_qoe = compute_qoe(dashjs_result, content)
    report.check(
        "joint adaptation over allowed combinations yields zero "
        "undesirable pairs (dash.js produced some)",
        rec3_qoe.undesirable_chunks == 0 and dashjs_qoe.undesirable_chunks > 0,
        detail=f"{rec3_qoe.undesirable_chunks} vs {dashjs_qoe.undesirable_chunks}",
    )
    report.check(
        "balanced prefetching keeps buffers within ~one chunk "
        "(dash.js drifted by tens of seconds)",
        rec3_result.max_buffer_imbalance_s() <= content.chunk_duration_s + 1e-6
        and dashjs_result.max_buffer_imbalance_s() >= 10.0,
        detail=(
            f"{rec3_result.max_buffer_imbalance_s():.1f} s vs "
            f"{dashjs_result.max_buffer_imbalance_s():.1f} s"
        ),
    )
    report.check(
        "switch damping cuts track changes",
        (rec3_qoe.video_switches + rec3_qoe.audio_switches)
        < (dashjs_qoe.video_switches + dashjs_qoe.audio_switches),
        detail=(
            f"{rec3_qoe.video_switches + rec3_qoe.audio_switches} vs "
            f"{dashjs_qoe.video_switches + dashjs_qoe.audio_switches}"
        ),
    )
    return report


@register("ablations")
def run_ablations() -> ExperimentReport:
    report = ExperimentReport(
        experiment_id="ablations",
        title="Ablating the best practices one at a time",
        paper_claim=(
            "each practice carries weight: unbalancing prefetch re-creates "
            "buffer skew; splitting the meter re-creates underestimation; "
            "opening selection to all combinations re-admits undesirable pairs"
        ),
        header=_HEADER,
    )
    content = drama_show()
    hsub = hsub_combinations(content)
    link_kbps = 700.0

    variants = {
        "full": RecommendedPlayer(hsub),
        "no-balance": RecommendedPlayer(hsub, balanced=False, buffer_target_s=30.0),
        "split-meter": RecommendedPlayer(hsub, shared_meter=False),
        "all-combos": RecommendedPlayer(all_combinations(content)),
    }
    results = {}
    for name, player in variants.items():
        results[name] = simulate(content, player, shared(constant(link_kbps)))
        report.rows.append(_row("700 kbps", name, content, results[name]))

    full = results["full"]
    report.check(
        "full practice set keeps buffers balanced to one chunk",
        full.max_buffer_imbalance_s() <= content.chunk_duration_s + 1e-6,
        detail=f"{full.max_buffer_imbalance_s():.1f} s",
    )
    report.check(
        "removing balancing increases the worst-case buffer imbalance",
        results["no-balance"].max_buffer_imbalance_s()
        > full.max_buffer_imbalance_s() + 1.0,
        detail=(
            f"{results['no-balance'].max_buffer_imbalance_s():.1f} s vs "
            f"{full.max_buffer_imbalance_s():.1f} s"
        ),
    )
    full_video = full.time_weighted_bitrate_kbps(MediaType.VIDEO)
    split_video = results["split-meter"].time_weighted_bitrate_kbps(MediaType.VIDEO)
    report.check(
        "splitting the meter never helps (per-medium estimates see shares)",
        split_video <= full_video + 1e-6,
        detail=f"{split_video:.0f} vs {full_video:.0f} kbps",
    )
    qoe_all = compute_qoe(results["all-combos"], content)
    report.check(
        "selection restricted to H_sub never uses an undesirable pair",
        compute_qoe(full, content).undesirable_chunks == 0,
        detail=f"all-combos variant used {qoe_all.undesirable_chunks}",
    )
    return report
