"""Tables 1-3: the track ladder and the combination bitrate tables."""

from __future__ import annotations

from ..core.combinations import all_combinations, hsub_combinations
from ..media.content import TABLE1_AUDIO, TABLE1_VIDEO, drama_show
from .base import ExperimentReport, register

#: Table 2 of the paper, verbatim: combination -> (avg, peak) kbps.
PAPER_TABLE2 = {
    "V1+A1": (239, 253),
    "V1+A2": (307, 318),
    "V2+A1": (374, 395),
    "V2+A2": (442, 460),
    "V1+A3": (495, 510),
    "V2+A3": (630, 652),
    "V3+A1": (490, 775),
    "V3+A2": (558, 840),
    "V3+A3": (746, 1032),
    "V4+A1": (862, 1324),
    "V4+A2": (930, 1389),
    "V4+A3": (1118, 1581),
    "V5+A1": (1549, 2516),
    "V5+A2": (1617, 2581),
    "V5+A3": (1805, 2773),
    "V6+A1": (2856, 4581),
    "V6+A2": (2924, 4646),
    "V6+A3": (3112, 4838),
}

#: Table 3 of the paper, verbatim.
PAPER_TABLE3 = {
    "V1+A1": (239, 253),
    "V2+A1": (374, 395),
    "V3+A2": (558, 840),
    "V4+A2": (930, 1389),
    "V5+A3": (1805, 2773),
    "V6+A3": (3112, 4838),
}


@register("table1")
def run_table1() -> ExperimentReport:
    """Table 1: the drama show's audio and video track ladder."""
    report = ExperimentReport(
        experiment_id="table1",
        title="Video and audio of a YouTube drama show",
        paper_claim=(
            "6 video tracks (144p-1080p) and 3 audio tracks; declared DASH "
            "bitrate equals the average for audio/low video rungs and sits "
            "between average and peak for VBR video rungs"
        ),
        header=("Track", "Avg (Kbps)", "Peak (Kbps)", "Declared (Kbps)", "Detail"),
    )
    content = drama_show()
    for track in list(content.audio) + list(content.video):
        detail = (
            f"{track.channels} channels, {track.sampling_khz:g} kHz"
            if track.is_audio
            else f"{track.height}p"
        )
        report.rows.append(
            (
                track.track_id,
                f"{track.avg_kbps:g}",
                f"{track.peak_kbps:g}",
                f"{track.declared_kbps:g}",
                detail,
            )
        )
    expected_audio = {t[0]: (t[1], t[2], t[3]) for t in TABLE1_AUDIO}
    expected_video = {t[0]: (t[1], t[2], t[3]) for t in TABLE1_VIDEO}
    ladder_ok = all(
        (track.avg_kbps, track.peak_kbps, track.declared_kbps)
        == expected_audio.get(track.track_id, expected_video.get(track.track_id))
        for track in list(content.audio) + list(content.video)
    )
    report.check("ladder matches Table 1 exactly", ladder_ok)
    # The synthesized chunk tables must realize the published statistics.
    stats_ok = True
    worst = 0.0
    for track in list(content.audio) + list(content.video):
        avg = content.chunk_table.measured_avg_kbps(track.track_id)
        peak = content.chunk_table.measured_peak_kbps(track.track_id)
        avg_err = abs(avg - track.avg_kbps) / track.avg_kbps
        peak_err = abs(peak - track.peak_kbps) / track.peak_kbps
        worst = max(worst, avg_err, peak_err)
        if avg_err > 1e-6 or peak_err > 1e-6:
            stats_ok = False
    report.check(
        "synthesized chunk sizes realize avg and peak bitrates",
        stats_ok,
        detail=f"max relative error {worst:.2e}",
    )
    return report


def _combination_table(
    experiment_id: str, title: str, combos, paper_rows, claim: str
) -> ExperimentReport:
    report = ExperimentReport(
        experiment_id=experiment_id,
        title=title,
        paper_claim=claim,
        header=("Combination", "Average Bitrate (Kbps)", "Peak Bitrate (Kbps)"),
    )
    mismatches = []
    for name, avg, peak in combos.rows():
        report.rows.append((name, avg, peak))
        expected = paper_rows.get(name)
        if expected is None:
            mismatches.append(f"{name} not in paper table")
        elif (avg, peak) != expected:
            mismatches.append(f"{name}: got {(avg, peak)}, paper {expected}")
    missing = set(paper_rows) - {row[0] for row in report.rows}
    if missing:
        mismatches.append(f"missing combinations: {sorted(missing)}")
    report.check(
        "every combination bitrate matches the paper's table",
        not mismatches,
        detail="; ".join(mismatches[:3]),
    )
    return report


@register("table2")
def run_table2() -> ExperimentReport:
    """Table 2: all 18 combinations (the H_all manifest)."""
    content = drama_show()
    return _combination_table(
        "table2",
        "Bitrates of the full set of audio and video combinations (H_all)",
        all_combinations(content),
        PAPER_TABLE2,
        "18 combinations; peak = sum of track peaks, average = sum of track averages",
    )


@register("table3")
def run_table3() -> ExperimentReport:
    """Table 3: the curated 6-combination subset (the H_sub manifest)."""
    content = drama_show()
    return _combination_table(
        "table3",
        "Bitrates of a subset of audio and video combinations (H_sub)",
        hsub_combinations(content),
        PAPER_TABLE3,
        "V1+A1, V2+A1, V3+A2, V4+A2, V5+A3, V6+A3: high video with high audio",
    )
