"""Fig. 2 — ExoPlayer under DASH: predetermined combinations exclude
better choices.

Two experiments from Section 3.2, both with the Table-1 video tracks
and a 900 kbps fixed link:

* **Fig. 2(a)** — low-bitrate audio set B (32/64/128 kbps). ExoPlayer
  selects V3+B2 although V3+B3 (601 kbps declared) also fits within the
  link; V3+B3 simply is not among the predetermined combinations.
* **Fig. 2(b)** — high-bitrate audio set C (196/384/768 kbps).
  ExoPlayer selects V2+C2 (very low video, high audio) although V3+C1
  (473+196 = 669 kbps) would give better video at lower audio.
"""

from __future__ import annotations

from collections import Counter
from typing import Tuple

from ..manifest.packager import package_dash
from ..media.content import b_audio_ladder, c_audio_ladder, drama_show
from ..media.tracks import MediaType
from ..net.link import shared
from ..net.traces import constant
from ..players.exoplayer import ExoPlayerDash
from ..sim.records import SessionResult
from ..sim.session import simulate
from .base import ExperimentReport, register

BANDWIDTH_KBPS = 900.0


def _run(audio_ladder, steady_from_s: float = 60.0) -> Tuple[ExoPlayerDash, SessionResult]:
    content = drama_show().with_audio(audio_ladder)
    player = ExoPlayerDash(package_dash(content))
    result = simulate(content, player, shared(constant(BANDWIDTH_KBPS)))
    return player, result


def _steady_state_combo(result: SessionResult) -> str:
    """The combination the player settles on (mode over the last half)."""
    names = result.combination_names()
    tail = names[len(names) // 2 :]
    return Counter(tail).most_common(1)[0][0] if tail else ""


def _series_from(result: SessionResult, content_chunk_s: float) -> dict:
    video = [
        (r.completed_at, r.size_bits / content_chunk_s / 1000.0)
        for r in result.downloads
        if r.medium is MediaType.VIDEO
    ]
    audio = [
        (r.completed_at, r.size_bits / content_chunk_s / 1000.0)
        for r in result.downloads
        if r.medium is MediaType.AUDIO
    ]
    return {"video_kbps": video, "audio_kbps": audio}


@register("fig2a")
def run_fig2a() -> ExperimentReport:
    report = ExperimentReport(
        experiment_id="fig2a",
        title="ExoPlayer DASH, low-bitrate audio set B, 900 kbps link",
        params={"bandwidth_kbps": BANDWIDTH_KBPS, "audio": "B1/B2/B3 = 32/64/128"},
        paper_claim=(
            "V3+B2 is selected, while V3+B3 would be a better choice (601 kbps "
            "declared, below the link); V3+B3 is not in the predetermined set"
        ),
    )
    player, result = _run(b_audio_ladder())
    combos = player.combination_names
    report.note(f"predetermined combinations: {combos}")
    report.check(
        "predetermined combinations match Section 3.2",
        combos
        == ["V1+B1", "V2+B1", "V2+B2", "V3+B2", "V4+B2", "V5+B2", "V5+B3", "V6+B3"],
    )
    steady = _steady_state_combo(result)
    report.note(f"steady-state selection: {steady}")
    report.check("steady-state selection is V3+B2", steady == "V3+B2", detail=steady)
    report.check(
        "the better V3+B3 is excluded by predetermination", "V3+B3" not in combos
    )
    report.check(
        "V3+B3 would fit the link (473+128 <= 900)",
        473 + 128 <= BANDWIDTH_KBPS,
    )
    report.check("no stalls at a fixed 900 kbps link", result.n_stalls == 0)
    report.series = _series_from(result, 5.0)
    report.timelines["combination"] = [
        (r.completed_at, f"{result.track_for(MediaType.VIDEO, r.chunk_index)}+"
         f"{result.track_for(MediaType.AUDIO, r.chunk_index)}")
        for r in result.downloads_of(MediaType.AUDIO)
    ]
    return report


@register("fig2b")
def run_fig2b() -> ExperimentReport:
    report = ExperimentReport(
        experiment_id="fig2b",
        title="ExoPlayer DASH, high-bitrate audio set C, 900 kbps link",
        params={"bandwidth_kbps": BANDWIDTH_KBPS, "audio": "C1/C2/C3 = 196/384/768"},
        paper_claim=(
            "ExoPlayer selects V2+C2 (very low video quality, high audio); "
            "V3+C1 (473+196) would be better but is not predetermined"
        ),
    )
    player, result = _run(c_audio_ladder())
    combos = player.combination_names
    report.note(f"predetermined combinations: {combos}")
    report.check(
        "predetermined combinations match Section 3.2",
        combos
        == ["V1+C1", "V2+C1", "V2+C2", "V3+C2", "V4+C2", "V5+C2", "V5+C3", "V6+C3"],
    )
    steady = _steady_state_combo(result)
    report.note(f"steady-state selection: {steady}")
    report.check("steady-state selection is V2+C2", steady == "V2+C2", detail=steady)
    report.check(
        "the better V3+C1 is excluded by predetermination", "V3+C1" not in combos
    )
    report.series = _series_from(result, 5.0)
    return report
