"""Text-mode plotting for experiment reports.

The paper's figures are time-series plots (selected bitrate, buffer
level, bandwidth estimate over time). The library is dependency-free,
so the CLI renders them as ASCII charts: good enough to eyeball the
Fig. 3 stall saw-tooth or the Fig. 4(b) estimate staircase directly in
a terminal, and deterministic enough to test.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..errors import ExperimentError

Point = Tuple[float, float]


def ascii_chart(
    points: Sequence[Point],
    width: int = 64,
    height: int = 10,
    label: str = "",
) -> str:
    """Render one series as an ASCII line chart.

    Points are bucketed into ``width`` columns by time; each column
    shows the mean value of its bucket as a ``*`` on a ``height``-row
    grid. The y-axis is annotated with min/max, the x-axis with the time
    span. Empty columns (no samples) stay blank.
    """
    if width < 8 or height < 3:
        raise ExperimentError("chart needs width >= 8 and height >= 3")
    if not points:
        return f"{label}: (no data)"
    times = [t for t, _ in points]
    values = [v for _, v in points]
    t_min, t_max = min(times), max(times)
    v_min, v_max = min(values), max(values)
    span_t = (t_max - t_min) or 1.0
    span_v = (v_max - v_min) or 1.0

    # Bucket by column: mean value per column.
    sums = [0.0] * width
    counts = [0] * width
    for t, v in points:
        column = min(width - 1, int((t - t_min) / span_t * width))
        sums[column] += v
        counts[column] += 1

    grid = [[" "] * width for _ in range(height)]
    for column in range(width):
        if counts[column] == 0:
            continue
        mean = sums[column] / counts[column]
        row = int(round((mean - v_min) / span_v * (height - 1)))
        grid[height - 1 - row][column] = "*"

    lines: List[str] = []
    if label:
        lines.append(label)
    top_label = f"{v_max:.6g}"
    bottom_label = f"{v_min:.6g}"
    pad = max(len(top_label), len(bottom_label))
    for i, row_cells in enumerate(grid):
        if i == 0:
            prefix = top_label.rjust(pad)
        elif i == height - 1:
            prefix = bottom_label.rjust(pad)
        else:
            prefix = " " * pad
        lines.append(f"{prefix} |{''.join(row_cells)}|")
    axis = f"{t_min:.6g}s".ljust(width - 8) + f"{t_max:.6g}s".rjust(8)
    lines.append(" " * pad + " +" + "-" * width + "+")
    lines.append(" " * pad + "  " + axis)
    return "\n".join(lines)


def render_report_charts(report, width: int = 64, height: int = 10) -> str:
    """All of a report's series, charted."""
    if not report.series:
        return "(no series to plot)"
    charts = [
        ascii_chart(points, width=width, height=height, label=name)
        for name, points in report.series.items()
    ]
    return "\n\n".join(charts)
