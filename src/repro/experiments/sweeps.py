"""X3 — bandwidth sweep: where each player's failure mode bites.

Not a single paper figure, but the natural generalization of Section 3:
sweep a fixed link from 300 kbps to 5 Mbps and run every player at each
point. The sweep localizes each documented failure to its operating
region:

* Shaka's dead estimator hurts exactly while the link sits below the
  16 KB-filter threshold (~2 Mbps with concurrent A/V) — above it the
  estimator wakes up;
* ExoPlayer-HLS's fixed first audio wastes quality at every rate and
  stalls below the pinned rendition's appetite;
* dash.js's undesirable pairs concentrate in the mid-band where audio
  and video budgets overlap;
* the best-practices player tracks the link monotonically.

The 35-cell grid runs on :mod:`repro.runner`: each (rate, player) cell
is one :class:`~repro.runner.jobs.SimulationJob`, fanned out over the
configured worker pool and replayed from the result cache when
available. Results are consumed in grid order, so the report is
byte-identical whether the grid ran serially, in parallel, or from
cache.
"""

from __future__ import annotations

from typing import Dict, List

from ..media.content import drama_show
from ..media.tracks import MediaType
from ..qoe.metrics import compute_qoe
from ..runner import GridRunner, PlayerSpec, SimulationJob, TraceSpec
from .base import ExperimentReport, register

SWEEP_KBPS = (300, 500, 700, 1000, 1500, 2500, 4000)

#: The experiment-layer player builds: ExoPlayer-HLS streams the
#: curated H_sub master with A3 listed first (the pinned-audio
#: pathology); Shaka adapts over the full H_all listing.
PLAYER_SPECS: Dict[str, PlayerSpec] = {
    "exoplayer-dash": PlayerSpec("exoplayer-dash"),
    "exoplayer-hls": PlayerSpec(
        "exoplayer-hls", combinations="hsub", audio_order=("A3", "A2", "A1")
    ),
    "shaka": PlayerSpec("shaka", combinations="all"),
    "dashjs": PlayerSpec("dashjs"),
    "recommended": PlayerSpec("recommended", combinations="hsub"),
}


@register("sweep")
def run_sweep() -> ExperimentReport:
    report = ExperimentReport(
        experiment_id="sweep",
        title="Fixed-bandwidth sweep across all players",
        params={"links_kbps": SWEEP_KBPS},
        paper_claim=(
            "each Section-3 failure mode has an operating region; the "
            "best-practices player is monotone in the link rate"
        ),
        header=("kbps", "player", "video", "audio", "rebuf s", "QoE"),
    )
    content = drama_show()
    grid = [
        (kbps, name)
        for kbps in SWEEP_KBPS
        for name in PLAYER_SPECS
    ]
    runner = GridRunner()
    jobs = [
        SimulationJob(player=PLAYER_SPECS[name], trace=TraceSpec.constant(kbps))
        for kbps, name in grid
    ]
    results = runner.results(jobs)

    qoe_series: Dict[str, List[float]] = {}
    video_series: Dict[str, List[float]] = {}
    rebuffer_totals: Dict[str, float] = {}
    for (kbps, name), result in zip(grid, results):
        qoe = compute_qoe(result, content)
        video_kbps = result.time_weighted_bitrate_kbps(MediaType.VIDEO)
        report.rows.append(
            (
                kbps,
                name,
                round(video_kbps),
                round(result.time_weighted_bitrate_kbps(MediaType.AUDIO)),
                round(result.total_rebuffer_s, 1),
                round(qoe.score, 1),
            )
        )
        qoe_series.setdefault(name, []).append(qoe.score)
        video_series.setdefault(name, []).append(video_kbps)
        rebuffer_totals[name] = rebuffer_totals.get(name, 0.0) + (
            result.total_rebuffer_s
        )
        report.series.setdefault(f"qoe:{name}", []).append(
            (float(kbps), qoe.score)
        )
    report.params["runner"] = runner.params()

    recommended = qoe_series["recommended"]
    report.check(
        "recommended QoE is monotone non-decreasing in link rate",
        all(b >= a - 1e-6 for a, b in zip(recommended, recommended[1:])),
        detail=str([round(x, 1) for x in recommended]),
    )
    report.check(
        "recommended never rebuffers anywhere in the sweep",
        rebuffer_totals["recommended"] == 0.0,
    )
    report.check(
        "recommended wins or ties the sweep-wide QoE total",
        sum(recommended) >= max(sum(v) for k, v in qoe_series.items()) - 1e-6,
        detail={k: round(sum(v), 1) for k, v in qoe_series.items()}.__repr__(),
    )
    # Shaka's dead zone: up to and including 1 Mbps, no interval ever
    # carries 16 KB (solo downloads need > 1024 kbps), so video quality
    # plateaus at the default-estimate pick; at 1.5 Mbps solo tails pass
    # the filter and the estimator recovers.
    shaka_video = dict(zip(SWEEP_KBPS, video_series["shaka"]))
    report.check(
        "Shaka plateaus at the default-estimate selection through 1 Mbps, "
        "recovering at 1.5 Mbps",
        abs(shaka_video[700] - shaka_video[1000]) < 30.0
        and shaka_video[1500] > shaka_video[1000] + 100.0,
        detail=f"video kbps at 0.7/1/1.5 Mbps: "
        f"{shaka_video[700]:.0f}/{shaka_video[1000]:.0f}/{shaka_video[1500]:.0f}",
    )
    # ExoPlayer-HLS pins A3: audio bitrate is flat across the sweep.
    exo_rows = [r for r in report.rows if r[1] == "exoplayer-hls"]
    audio_values = {r[3] for r in exo_rows}
    report.check(
        "ExoPlayer-HLS audio is pinned across the entire sweep",
        len(audio_values) == 1,
        detail=str(sorted(audio_values)),
    )
    return report
