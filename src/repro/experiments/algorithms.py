"""X4 — four implementations of the Section-4 practices, compared.

The paper's best practices are policy-level: they do not prescribe one
algorithm. This experiment runs four ABR algorithms that all honour the
practices (joint decisions over allowed combinations, audio adaptation,
chunk-balanced prefetch) but differ in their control law:

* ``recommended`` — rate hysteresis (the library's reference player);
* ``chunk-aware`` — rate hysteresis priced with true per-chunk sizes
  (the manifests of Section 4.1 make these available);
* ``mpc`` — horizon optimization of the QoE objective;
* ``bola-joint`` — Lyapunov buffer control over the combination ladder.

All four must satisfy the practice-level invariants on every profile
(conformance, balance, no undesirable pairs); their QoE spread shows
how much head-room remains *above* the practices themselves.
"""

from __future__ import annotations

from typing import Callable, Dict

from ..core.bola_joint import JointBolaPlayer
from ..core.chunk_aware import ChunkAwarePlayer
from ..core.combinations import hsub_combinations
from ..core.mpc import MpcPlayer
from ..core.player import RecommendedPlayer
from ..manifest.packager import package_hls
from ..media.content import drama_show
from ..media.tracks import MediaType
from ..net.link import shared
from ..net.markov import hspa_preset
from ..net.traces import constant
from ..qoe.metrics import compute_qoe
from ..sim.session import simulate
from .base import ExperimentReport, register


def practice_players(content) -> Dict[str, Callable]:
    """Factories for the four practice-compliant algorithms."""
    hsub = hsub_combinations(content)
    package = package_hls(content, combinations=hsub)
    return {
        "recommended": lambda: RecommendedPlayer(hsub),
        "chunk-aware": lambda: ChunkAwarePlayer.from_hls_package(hsub, package),
        "mpc": lambda: MpcPlayer(hsub),
        "bola-joint": lambda: JointBolaPlayer(hsub),
    }


@register("algorithms")
def run_algorithms() -> ExperimentReport:
    report = ExperimentReport(
        experiment_id="algorithms",
        title="Four practice-compliant ABR algorithms",
        paper_claim=(
            "the Section-4 practices are algorithm-agnostic: rate-based, "
            "chunk-aware, MPC and BOLA controllers all uphold them"
        ),
        header=(
            "Profile",
            "Algorithm",
            "Video kbps",
            "Audio kbps",
            "Rebuffer s",
            "Switches",
            "QoE",
        ),
    )
    content = drama_show()
    hsub = hsub_combinations(content)
    allowed = set(hsub.names)
    profiles = {
        "700 kbps": lambda: shared(constant(700.0)),
        "2 Mbps": lambda: shared(constant(2000.0)),
        "hspa": lambda: shared(hspa_preset(seed=5)),
    }
    violations = []
    imbalance_violations = []
    rebuffer_by_algo: Dict[str, float] = {}
    for profile_name, make_network in profiles.items():
        for algo_name, make_player in practice_players(content).items():
            result = simulate(content, make_player(), make_network())
            qoe = compute_qoe(result, content)
            report.rows.append(
                (
                    profile_name,
                    algo_name,
                    round(result.time_weighted_bitrate_kbps(MediaType.VIDEO)),
                    round(result.time_weighted_bitrate_kbps(MediaType.AUDIO)),
                    round(result.total_rebuffer_s, 1),
                    qoe.video_switches + qoe.audio_switches,
                    round(qoe.score, 1),
                )
            )
            if not set(result.combination_names()) <= allowed:
                violations.append((profile_name, algo_name))
            if result.max_buffer_imbalance_s() > content.chunk_duration_s + 1e-6:
                imbalance_violations.append((profile_name, algo_name))
            if qoe.undesirable_chunks:
                violations.append((profile_name, algo_name, "undesirable"))
            rebuffer_by_algo[algo_name] = (
                rebuffer_by_algo.get(algo_name, 0.0) + result.total_rebuffer_s
            )

    report.check(
        "every algorithm selects only allowed combinations on every profile",
        not violations,
        detail=str(violations),
    )
    report.check(
        "every algorithm keeps buffers balanced to one chunk",
        not imbalance_violations,
        detail=str(imbalance_violations),
    )
    report.check(
        "no algorithm rebuffers on the steady profiles",
        all(
            row[4] == 0
            for row in report.rows
            if row[0] in ("700 kbps", "2 Mbps")
        ),
    )
    return report
