"""Experiment framework: uniform reports for every table/figure.

Each experiment module exposes ``run_*`` functions returning an
:class:`ExperimentReport` — the paper artifact id, the parameters used,
the regenerated rows/series, the paper's qualitative claim, and a list
of shape-level checks with pass/fail status. "Shape-level" is the
reproduction contract (DESIGN.md §5): the same winners, the same
failure modes, crossovers in the same places — not millisecond-equal
stall totals measured on the authors' testbed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple


@dataclass
class Check:
    """One shape-level assertion with its outcome."""

    description: str
    passed: bool
    detail: str = ""

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        mark = "PASS" if self.passed else "FAIL"
        suffix = f" ({self.detail})" if self.detail else ""
        return f"[{mark}] {self.description}{suffix}"


@dataclass
class ExperimentReport:
    """The regenerated artifact plus its fidelity checks."""

    experiment_id: str  # e.g. "fig2a", "table2"
    title: str
    params: Dict[str, object] = field(default_factory=dict)
    paper_claim: str = ""
    #: Tabular output: header + rows (Tables 1-3, summary tables).
    header: Tuple[str, ...] = ()
    rows: List[Tuple] = field(default_factory=list)
    #: Time-series output: name -> [(t, value), ...] (the figures).
    series: Dict[str, List[Tuple[float, float]]] = field(default_factory=dict)
    #: Categorical timelines: name -> [(t, label), ...] (track choices).
    timelines: Dict[str, List[Tuple[float, str]]] = field(default_factory=dict)
    checks: List[Check] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        """True iff the report has at least one check and all pass.

        A report with zero checks must not read as reproduced — a
        vacuous ``all()`` over an empty list once let experiments that
        forgot to register assertions print ``=> REPRODUCED``.
        """
        return bool(self.checks) and all(check.passed for check in self.checks)

    @property
    def status(self) -> str:
        """Three-state verdict: REPRODUCED / MISMATCH / NO CHECKS."""
        if not self.checks:
            return "NO CHECKS"
        return "REPRODUCED" if self.passed else "MISMATCH"

    def check(self, description: str, passed: bool, detail: str = "") -> None:
        self.checks.append(Check(description=description, passed=bool(passed), detail=detail))

    def note(self, text: str) -> None:
        self.notes.append(text)

    # -- rendering ---------------------------------------------------------

    def render_table(self) -> str:
        if not self.rows:
            return "(no rows)"
        header = [str(h) for h in self.header]
        body = [[str(cell) for cell in row] for row in self.rows]
        # Size by the widest shape present anywhere: a header wider than
        # the first row must not drop columns, and ragged rows are
        # padded with blanks instead of raising.
        n_columns = max(len(header), max(len(row) for row in body))
        header += [""] * (n_columns - len(header))
        body = [row + [""] * (n_columns - len(row)) for row in body]
        widths = [
            max(len(header[i]), *(len(row[i]) for row in body))
            for i in range(n_columns)
        ]
        lines = []
        if self.header:
            lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)).rstrip())
            lines.append("  ".join("-" * w for w in widths))
        for row in body:
            lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip())
        return "\n".join(lines)

    def render(self) -> str:
        """Full human-readable report."""
        lines = [f"== {self.experiment_id}: {self.title} =="]
        if self.params:
            lines.append(
                "params: "
                + ", ".join(f"{key}={value}" for key, value in sorted(self.params.items()))
            )
        if self.paper_claim:
            lines.append(f"paper: {self.paper_claim}")
        if self.rows:
            lines.append(self.render_table())
        for name, points in self.timelines.items():
            compact = _compact_timeline(points)
            lines.append(f"{name}: {compact}")
        for note in self.notes:
            lines.append(f"note: {note}")
        for check in self.checks:
            lines.append(str(check))
        lines.append(f"=> {self.status}")
        return "\n".join(lines)


def _compact_timeline(points: Sequence[Tuple[float, str]]) -> str:
    """Collapse a label timeline into 'label@t0..' transitions.

    The final run's known end time (the last sample's timestamp) is
    appended when it extends past the last transition, so the rendering
    never implies the last track choice lasted zero seconds.
    """
    if not points:
        return "(empty)"
    out = []
    previous = None
    last_transition_t = points[0][0]
    for t, label in points:
        if label != previous:
            out.append(f"{label}@{t:.0f}s")
            previous = label
            last_transition_t = t
    rendered = " -> ".join(out)
    final_t = points[-1][0]
    if final_t > last_transition_t:
        rendered += f" (held to {final_t:.0f}s)"
    return rendered


#: Registry of experiment name -> zero-arg runner, populated by the
#: experiment modules at import time via :func:`register`.
_REGISTRY: Dict[str, Callable[[], ExperimentReport]] = {}


def register(name: str):
    """Decorator registering a zero-arg experiment runner."""

    def decorate(fn: Callable[[], ExperimentReport]):
        # Import-time registration runs identically in every process
        # before any pool exists (hence the waiver below).
        _REGISTRY[name] = fn  # lint: allow[POOL-GLOBAL-MUTABLE]
        return fn

    return decorate


def experiment_names() -> List[str]:
    return sorted(_REGISTRY)


def run_experiment(name: str) -> ExperimentReport:
    from ..errors import ExperimentError

    try:
        runner = _REGISTRY[name]
    except KeyError:
        raise ExperimentError(
            f"unknown experiment {name!r}; known: {experiment_names()}"
        ) from None
    return runner()
