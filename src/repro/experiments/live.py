"""X7 — demuxed A/V at the live edge: the latency-quality trade-off.

Live delivery bounds the client's buffer by what the packager has
published, which reshapes every demuxed finding: buffers cannot deepen,
so buffer-based up-switch hysteresis (tuned for VOD) never fires, and a
stall cannot be ridden out.

The experiment streams the drama show in live mode (2 s packaging
offset, 5 s chunks) at 1 Mbps, joining the stream at increasing
distances behind the live edge — implemented with the startup
threshold, exactly how HLS clients choose their start position ("start
3 target durations behind the live edge"). Expected shape:

* joining right at the edge (1 chunk) pins quality at V1: the decision-
  time buffer floor (~startup − offset ≈ 1 s) can never cover a higher
  rung's download time, so any up-switch stalls immediately;
* each extra chunk of join-behind latency buys quality headroom;
* at the HLS-recommended 3 target durations the player reaches the same
  V3+A2 steady state as VOD at this link rate, with zero stalls;
* buffers stay bounded by the published frontier throughout (structural
  live property).
"""

from __future__ import annotations

from collections import Counter

from ..core.combinations import hsub_combinations
from ..core.player import RecommendedPlayer
from ..media.content import drama_show
from ..media.tracks import MediaType
from ..net.link import shared
from ..net.traces import constant
from ..sim.session import SessionConfig, simulate
from .base import ExperimentReport, register

LIVE_OFFSET_S = 2.0
LINK_KBPS = 1000.0


@register("live")
def run_live() -> ExperimentReport:
    report = ExperimentReport(
        experiment_id="live",
        title="Live edge: join distance vs quality (1 Mbps, 2 s offset)",
        params={"live_offset_s": LIVE_OFFSET_S, "bandwidth_kbps": LINK_KBPS},
        paper_claim=(
            "live bounds buffers by the published frontier: joining at the "
            "edge pins quality, joining 3 target durations behind recovers "
            "the VOD steady state (the HLS authoring guidance, quantified)"
        ),
        header=(
            "Join behind (chunks)",
            "Latency s",
            "Stalls",
            "Rebuffer s",
            "Video kbps",
            "Steady combination",
        ),
    )
    content = drama_show()
    hsub = hsub_combinations(content)
    chunk_s = content.chunk_duration_s

    video_by_join = {}
    stalls_by_join = {}
    latency_by_join = {}
    steady_by_join = {}
    for join_chunks in (1, 2, 3, 4):
        config = SessionConfig(
            live_offset_s=LIVE_OFFSET_S,
            startup_threshold_s=join_chunks * chunk_s,
        )
        player = RecommendedPlayer(hsub)
        result = simulate(content, player, shared(constant(LINK_KBPS)), config)
        latency = result.ended_at_s - content.duration_s
        names = result.combination_names()
        steady = Counter(names[len(names) // 2 :]).most_common(1)[0][0]
        video_kbps = result.time_weighted_bitrate_kbps(MediaType.VIDEO)
        report.rows.append(
            (
                join_chunks,
                round(latency, 2),
                result.n_stalls,
                round(result.total_rebuffer_s, 1),
                round(video_kbps),
                steady,
            )
        )
        video_by_join[join_chunks] = video_kbps
        stalls_by_join[join_chunks] = result.n_stalls
        latency_by_join[join_chunks] = latency
        steady_by_join[join_chunks] = steady

        # Structural live property: nothing is fetched before publication.
        for record in result.downloads:
            published = record.chunk_index * chunk_s + LIVE_OFFSET_S
            assert record.started_at >= published - 1e-9

    report.check(
        "joining at the edge pins quality at the lowest combination",
        steady_by_join[1] == "V1+A1",
        detail=steady_by_join[1],
    )
    report.check(
        "three target durations behind recovers the VOD steady state "
        "(V3+A2 at this link) with zero stalls",
        steady_by_join[3] == "V3+A2" and stalls_by_join[3] == 0,
        detail=f"{steady_by_join[3]}, {stalls_by_join[3]} stalls",
    )
    report.check(
        "quality is monotone in join distance",
        all(
            video_by_join[a] <= video_by_join[b] + 1e-6
            for a, b in ((1, 2), (2, 3), (3, 4))
        ),
        detail=str({k: round(v) for k, v in video_by_join.items()}),
    )
    report.check(
        "latency is monotone in join distance (the trade-off is real)",
        all(
            latency_by_join[a] <= latency_by_join[b] + 1e-6
            for a, b in ((1, 2), (2, 3), (3, 4))
        ),
        detail=str({k: round(v, 1) for k, v in latency_by_join.items()}),
    )
    report.note(
        "the decision-time buffer floor at the edge is startup-offset "
        "(~1 s here), below every higher rung's chunk download time — "
        "which is why edge-joined sessions cannot up-switch without "
        "growing their latency through stalls"
    )
    return report
