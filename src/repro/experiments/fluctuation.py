"""X1 — Shaka's rate-closest rule fluctuates across demuxed combinations.

Section 3.3: "suppose manifest file H_all is used and the estimated
network bandwidth varies between 300 to 700 Kbps. Then the selected
combinations can fluctuate among V1+A2, V2+A1, V2+A2, V1+A3 and V2+A3,
with bandwidth requirements as 318, 395, 460, 510 and 652 Kbps."

This experiment exercises the *selection rule directly* (the paper's
argument is about the rule, independent of how the estimate moves):
sweeping the estimate over 300-700 kbps must visit exactly those five
combinations. A second, end-to-end part drives a ShakaPlayer over a
bandwidth profile oscillating in that band and counts real switches.
"""

from __future__ import annotations

from ..manifest.packager import package_hls
from ..media.content import drama_show
from ..media.tracks import MediaType
from ..players.shaka import ShakaPlayer
from ..runner import GridRunner, PlayerSpec, SimulationJob, TraceSpec
from .base import ExperimentReport, register

PAPER_FLUCTUATION_SET = {"V1+A2", "V2+A1", "V2+A2", "V1+A3", "V2+A3"}

#: The end-to-end link: oscillates inside the band where the paper's
#: five combinations sit within 150 kbps of each other.
E2E_TRACE_PAIRS = ((10, 2400), (10, 1200), (10, 2000), (10, 1500))


@register("fluctuation")
def run_fluctuation() -> ExperimentReport:
    report = ExperimentReport(
        experiment_id="fluctuation",
        title="Shaka rate-based selection fluctuates across close combinations",
        params={"estimate_sweep_kbps": "300..700", "manifest": "H_all"},
        paper_claim=(
            "with estimates varying 300-700 kbps the selection fluctuates "
            "among V1+A2, V2+A1, V2+A2, V1+A3, V2+A3 (318/395/460/510/652 kbps)"
        ),
    )
    content = drama_show()
    package = package_hls(content)
    player = ShakaPlayer.from_hls(package.master)

    # Sweep estimates across the band. The paper's five combinations
    # have requirements 318-652 kbps; estimates must exceed the lowest
    # requirement (318) for it to be selectable, hence the 320 floor —
    # below that the rule falls back to the 253 kbps V1+A1.
    visited = []
    for estimate in range(320, 701, 5):
        name = player.choose_variant(float(estimate)).name
        if not visited or visited[-1] != name:
            visited.append(name)
    distinct = set(visited)
    report.note(f"combinations visited by the sweep: {sorted(distinct)}")
    report.check(
        "sweep visits exactly the paper's five combinations",
        distinct == PAPER_FLUCTUATION_SET,
        detail=str(sorted(distinct)),
    )
    report.check(
        "the five requirements straddle the sweep band tightly "
        "(318, 395, 460, 510, 652)",
        [round(v.bandwidth_kbps) for v in player.variants][:6]
        == [253, 318, 395, 460, 510, 652],
    )

    # End-to-end: oscillate the link inside the band; because many
    # combinations sit within 150 kbps of each other, the selection
    # switches often even though the link is only mildly variable.
    # This single session rides the runner too, so it caches and
    # parallelizes alongside the grid experiments.
    runner = GridRunner()
    (result,) = runner.results(
        [
            SimulationJob(
                player=PlayerSpec("shaka", combinations="all"),
                trace=TraceSpec.pairs(E2E_TRACE_PAIRS),
            )
        ]
    )
    report.params["runner"] = runner.params()
    switches = result.switch_count(MediaType.VIDEO) + result.switch_count(
        MediaType.AUDIO
    )
    report.note(
        f"end-to-end switches under a mildly varying link: {switches} "
        f"({result.switch_count(MediaType.VIDEO)} video, "
        f"{result.switch_count(MediaType.AUDIO)} audio); "
        f"combinations: {result.distinct_combinations()}"
    )
    report.check(
        "frequent track changes end-to-end (no switch damping in the rule)",
        switches >= 6,
        detail=f"{switches} switches",
    )
    return report
