"""Fig. 4 — Shaka Player: bandwidth mis-estimation under demuxed A/V.

* **Fig. 4(a)** — H_all, constant 1 Mbps. "the bandwidth estimated by
  Shaka is a constant 500 Kbps, only half of the actual specified
  network bandwidth. As a result, V2+A2 ... is selected." Mechanism:
  concurrent audio/video each see ~500 kbps; 500 kbps x 0.125 s ≈
  7.8 KB < 16 KB, and even a solo download at 1 Mbps yields only
  ~15.6 KB per interval — no sample ever passes the filter, so the
  500 kbps *default* estimate is used throughout.
* **Fig. 4(b)** — dynamic profile averaging 600 kbps. "Shaka first
  underestimates the network bandwidth, and then overestimates ...
  the selected video and audio tracks are initially low (V2+A2), and
  then overly high (V3+A3), leading to a total rebuffering of 39 s."
"""

from __future__ import annotations

from ..manifest.packager import package_hls
from ..media.content import drama_show
from ..net.link import shared
from ..net.traces import constant
from ..players.shaka import ShakaPlayer
from ..sim.session import simulate
from .base import ExperimentReport, register
from .traces import fig4b_trace


@register("fig4a")
def run_fig4a() -> ExperimentReport:
    report = ExperimentReport(
        experiment_id="fig4a",
        title="Shaka HLS (H_all), constant 1 Mbps link",
        params={"manifest": "H_all", "bandwidth_kbps": 1000},
        paper_claim=(
            "estimated bandwidth is a constant 500 kbps (half the link); "
            "V2+A2 (460 kbps aggregate peak) is selected"
        ),
    )
    content = drama_show()
    package = package_hls(content)  # all 18 combinations = H_all
    player = ShakaPlayer.from_hls(package.master)
    result = simulate(content, player, shared(constant(1000.0)))

    estimates = [e.kbps for e in result.estimate_timeline]
    report.note(
        f"estimate range: [{min(estimates):.0f}, {max(estimates):.0f}] kbps; "
        f"valid samples: {player.estimator.valid_samples}, "
        f"discarded: {player.estimator.discarded_samples}"
    )
    report.check(
        "no throughput sample ever passes the 16 KB filter",
        player.estimator.valid_samples == 0,
    )
    report.check(
        "estimate pinned at the 500 kbps default",
        min(estimates) == max(estimates) == 500.0,
    )
    combos = set(result.combination_names())
    report.note(f"combinations used: {sorted(combos)}")
    report.check(
        "V2+A2 selected throughout (after any startup chunk)",
        combos <= {"V2+A2", "V1+A1"} and "V2+A2" in combos,
        detail=str(sorted(combos)),
    )
    report.series["estimate_kbps"] = [(e.t, e.kbps) for e in result.estimate_timeline]
    return report


@register("fig4b")
def run_fig4b() -> ExperimentReport:
    report = ExperimentReport(
        experiment_id="fig4b",
        title="Shaka HLS (H_all), dynamic link averaging 600 kbps",
        params={"manifest": "H_all", "avg_kbps": 600, "profile": "150/1050 kbps, 30 s"},
        paper_claim=(
            "first underestimates, then overestimates (around 50 s); tracks "
            "initially low (V2+A2) then overly high (V3+A3); ~39 s rebuffering"
        ),
    )
    content = drama_show()
    package = package_hls(content)
    player = ShakaPlayer.from_hls(package.master)
    result = simulate(content, player, shared(fig4b_trace()))

    estimates = result.estimate_timeline
    early = [e.kbps for e in estimates if e.t < 30]
    late = [e.kbps for e in estimates if e.t >= 45]
    report.note(
        f"early estimates (<30 s): {min(early):.0f}-{max(early):.0f} kbps; "
        f"late (>=45 s): {min(late):.0f}-{max(late):.0f} kbps; link avg 600"
    )
    report.check(
        "initial underestimate (default 500 < 600 avg)",
        max(early) <= 500.0,
        detail=f"max early {max(early):.0f}",
    )
    report.check(
        "later overestimate (estimate well above the 600 kbps average)",
        max(late) > 900.0,
        detail=f"max late {max(late):.0f}",
    )
    combos = result.combination_names()
    report.note(f"combination sequence (distinct): {result.distinct_combinations()}")
    report.check("starts low at V2+A2", "V2+A2" in combos[:6])
    report.check("later selects the overly high V3+A3", "V3+A3" in combos)
    report.check(
        "substantial rebuffering follows (paper: 39 s)",
        result.total_rebuffer_s >= 15.0,
        detail=f"{result.total_rebuffer_s:.1f} s over {result.n_stalls} stalls",
    )
    report.series["estimate_kbps"] = [(e.t, e.kbps) for e in estimates]
    report.series["video_buffer_s"] = [
        (s.t, s.video_level_s) for s in result.buffer_timeline
    ]
    return report
