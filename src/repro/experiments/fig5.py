"""Fig. 5 — dash.js: fully independent A/V adaptation.

Section 3.4, fixed 700 kbps link: "the selected video and audio
combinations includes V2+A3, V2+A2, V2+A3 and V3+A3. Some of these
combinations are clearly undesirable, e.g., V2+A3. The combination
V3+A2 fits the network bandwidth profile ... We further see that the
buffer levels for audio and video can be unbalanced."
"""

from __future__ import annotations

from ..manifest.packager import package_dash
from ..media.content import drama_show
from ..media.tracks import MediaType
from ..net.link import shared
from ..net.traces import constant
from ..players.dashjs import DashJsPlayer
from ..qoe.metrics import is_undesirable
from ..sim.session import simulate
from .base import ExperimentReport, register

BANDWIDTH_KBPS = 700.0


@register("fig5")
def run_fig5() -> ExperimentReport:
    report = ExperimentReport(
        experiment_id="fig5",
        title="dash.js DASH, fixed 700 kbps link",
        params={"bandwidth_kbps": BANDWIDTH_KBPS},
        paper_claim=(
            "combinations include V2+A3, V2+A2 and V3+A3; V2+A3 is clearly "
            "undesirable while V3+A2 (lower aggregate) is never used; audio "
            "and video buffer levels become unbalanced"
        ),
    )
    content = drama_show()
    player = DashJsPlayer(package_dash(content))
    result = simulate(content, player, shared(constant(BANDWIDTH_KBPS)))

    combos = set(result.combination_names())
    report.note(f"combinations used: {sorted(combos)}")
    report.check(
        "the paper's combinations appear (V2+A2, V2+A3, V3+A3)",
        {"V2+A2", "V2+A3", "V3+A3"} <= combos,
        detail=str(sorted(combos)),
    )
    report.check(
        "the undesirable V2+A3 is selected",
        "V2+A3" in combos and is_undesirable(content, "V2", "A3"),
    )
    report.check(
        "the preferable V3+A2 is never selected "
        "(independent adaptation cannot coordinate into it)",
        "V3+A2" not in combos,
    )
    report.check(
        "V3+A2 would fit the link better than V2+A3 "
        "(declared 669 vs 630, avg 558 vs 630)",
        (473 + 196) <= BANDWIDTH_KBPS and (558 < 630),
    )
    imbalance = result.max_buffer_imbalance_s()
    report.note(
        f"buffer imbalance: max {imbalance:.1f} s, "
        f"mean {result.mean_buffer_imbalance_s():.1f} s"
    )
    report.check(
        "audio and video buffers become substantially unbalanced",
        imbalance >= 10.0,
        detail=f"max {imbalance:.1f} s",
    )
    report.check(
        "video track fluctuates (independent per-medium DYNAMIC)",
        result.switch_count(MediaType.VIDEO) >= 5,
        detail=f"{result.switch_count(MediaType.VIDEO)} video switches",
    )
    report.series["video_buffer_s"] = [
        (s.t, s.video_level_s) for s in result.buffer_timeline
    ]
    report.series["audio_buffer_s"] = [
        (s.t, s.audio_level_s) for s in result.buffer_timeline
    ]
    report.timelines["video"] = [
        (r.completed_at, r.track_id) for r in result.downloads_of(MediaType.VIDEO)
    ]
    report.timelines["audio"] = [
        (r.completed_at, r.track_id) for r in result.downloads_of(MediaType.AUDIO)
    ]
    return report
