"""Experiment registry: one runner per paper table/figure.

Importing this package registers every experiment; use
:func:`run_experiment` / :func:`experiment_names` to drive them.
"""

from .base import Check, ExperimentReport, experiment_names, run_experiment

# Importing the modules populates the registry.
from . import (  # noqa: F401
    algorithms,
    best_practices,
    corpus,
    fig1,
    fig2,
    fig3,
    fig4,
    fig5,
    flashcrowd,
    fluctuation,
    live,
    muxed,
    resilience,
    sweeps,
    tables,
)

__all__ = [
    "Check",
    "ExperimentReport",
    "experiment_names",
    "run_experiment",
]


def run_all() -> dict:
    """Run every registered experiment; returns name -> report."""
    return {name: run_experiment(name) for name in experiment_names()}
