"""Fig. 3 — ExoPlayer under HLS: fixed audio track, stalls, manifest
non-conformance.

Section 3.2's two HLS experiments over the curated H_sub playlist:

* **Fig. 3(a)/(b)** — A3 (highest audio) listed first; time-varying
  link averaging 600 kbps. ExoPlayer "selects A3 throughout the
  playback, resulting in 5 stall events and 36.9 seconds of
  rebuffering", and "selects some combinations (e.g., V1+A3) that are
  not in the specified subset".
* **second experiment** — A1 (lowest audio) listed first; fixed 5 Mbps
  link. "ExoPlayer selects A1 throughout the playback despite plenty of
  available network bandwidth."
"""

from __future__ import annotations

from ..core.combinations import hsub_combinations
from ..manifest.packager import package_hls
from ..media.content import drama_show
from ..media.tracks import MediaType
from ..net.link import shared
from ..net.traces import constant
from ..players.exoplayer import ExoPlayerHls
from ..sim.session import simulate
from .base import ExperimentReport, register
from .traces import fig3_trace


@register("fig3")
def run_fig3() -> ExperimentReport:
    report = ExperimentReport(
        experiment_id="fig3",
        title="ExoPlayer HLS (H_sub), A3 listed first, varying link avg 600 kbps",
        params={"manifest": "H_sub", "first_audio": "A3", "avg_kbps": 600},
        paper_claim=(
            "A3 selected throughout; 5 stall events, 36.9 s rebuffering; "
            "combinations outside the H_sub subset (e.g. V1+A3) get used"
        ),
    )
    content = drama_show()
    hsub = hsub_combinations(content)
    package = package_hls(
        content, combinations=hsub, audio_order=["A3", "A2", "A1"]
    )
    player = ExoPlayerHls(package.master)
    trace = fig3_trace()
    result = simulate(content, player, shared(trace))

    audio_tracks = set(result.track_usage(MediaType.AUDIO))
    report.note(f"audio tracks used: {sorted(audio_tracks)}")
    report.check("audio is pinned to A3 for the whole session", audio_tracks == {"A3"})
    report.check(
        "playback stalls repeatedly (paper: 5 events)",
        result.n_stalls >= 2,
        detail=f"{result.n_stalls} stalls",
    )
    report.check(
        "rebuffering is substantial (paper: 36.9 s)",
        result.total_rebuffer_s >= 10.0,
        detail=f"{result.total_rebuffer_s:.1f} s",
    )
    used = set(result.combination_names())
    outside = sorted(used - set(hsub.names))
    report.note(f"combinations used: {sorted(used)}; outside H_sub: {outside}")
    report.check(
        "selections disobey the H_sub subset", bool(outside), detail=str(outside)
    )
    report.series["video_buffer_s"] = [
        (s.t, s.video_level_s) for s in result.buffer_timeline
    ]
    report.series["audio_buffer_s"] = [
        (s.t, s.audio_level_s) for s in result.buffer_timeline
    ]
    report.timelines["stalls"] = [
        (stall.start_s, f"stall {stall.duration_s:.1f}s") for stall in result.stalls
    ]
    return report


@register("fig3_a1_first")
def run_fig3_a1_first() -> ExperimentReport:
    report = ExperimentReport(
        experiment_id="fig3_a1_first",
        title="ExoPlayer HLS (H_sub), A1 listed first, fixed 5 Mbps link",
        params={"manifest": "H_sub", "first_audio": "A1", "bandwidth_kbps": 5000},
        paper_claim=(
            "ExoPlayer selects A1 throughout the playback despite plenty of "
            "available network bandwidth, leading to unnecessarily poor audio QoE"
        ),
    )
    content = drama_show()
    package = package_hls(
        content,
        combinations=hsub_combinations(content),
        audio_order=["A1", "A2", "A3"],
    )
    player = ExoPlayerHls(package.master)
    result = simulate(content, player, shared(constant(5000.0)))

    audio_tracks = set(result.track_usage(MediaType.AUDIO))
    report.note(f"audio tracks used: {sorted(audio_tracks)}")
    report.check("audio is pinned to A1 despite a 5 Mbps link", audio_tracks == {"A1"})
    video_usage = result.track_usage(MediaType.VIDEO)
    top_video = max(video_usage, key=video_usage.get)
    report.note(f"video usage: {video_usage}")
    report.check(
        "video adapts to a high rung (V5/V6) at 5 Mbps",
        top_video in ("V5", "V6"),
        detail=top_video,
    )
    report.check("no stalls at 5 Mbps", result.n_stalls == 0)
    return report
