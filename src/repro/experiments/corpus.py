"""X5 — trace-corpus study: distributions, not anecdotes.

Each Section-3 figure is one run over one profile. A service evaluates
players over *corpora*: here, seeded Markov cellular traces (HSPA-grade,
where the drama show's audio bitrates really compete with video). Every
player streams the same corpus; the report shows mean/median/p10 QoE,
stall ratio and pairing hygiene per player. The paper's per-player
pathologies should survive aggregation: dash.js keeps emitting
undesirable pairs, Shaka keeps under-using the link, and the
best-practices player should dominate the tail (p10), which is where
stalls live.
"""

from __future__ import annotations

from typing import Dict

from ..media.content import drama_show
from ..qoe.aggregate import QoEAggregate
from ..qoe.metrics import compute_qoe
from ..runner import GridRunner, PlayerSpec, SimulationJob, TraceSpec
from .base import ExperimentReport, register

N_TRACES = 12

#: Same builds as the sweep, with a comment preserved from the serial
#: loop: abandonment is off for "recommended" here — aborting a chunk
#: mid-position can leave a mixed pair, trading pairing purity for
#: stall protection, and the corpus checks assert pairing purity (the
#: abandonment trade-off is exercised in its own test module).
PLAYER_SPECS: Dict[str, PlayerSpec] = {
    "exoplayer-dash": PlayerSpec("exoplayer-dash"),
    "exoplayer-hls": PlayerSpec(
        "exoplayer-hls", combinations="hsub", audio_order=("A3", "A2", "A1")
    ),
    "shaka": PlayerSpec("shaka", combinations="all"),
    "dashjs": PlayerSpec("dashjs"),
    "recommended": PlayerSpec("recommended", combinations="hsub"),
}


@register("corpus")
def run_corpus() -> ExperimentReport:
    report = ExperimentReport(
        experiment_id="corpus",
        title=f"HSPA trace corpus ({N_TRACES} seeded traces) across all players",
        params={"n_traces": N_TRACES, "profile": "hspa_preset"},
        paper_claim=(
            "the per-player failure modes persist across a trace "
            "population, not just the hand-picked profiles of Section 3"
        ),
        header=(
            "Player",
            "Mean QoE",
            "Median",
            "p10",
            "Stall ratio",
            "Rebuf s",
            "Switches",
            "Undesirable",
        ),
    )
    content = drama_show()
    grid = [
        (seed, name) for seed in range(N_TRACES) for name in PLAYER_SPECS
    ]
    runner = GridRunner()
    jobs = [
        SimulationJob(
            player=PLAYER_SPECS[name], trace=TraceSpec.hspa(seed), seed=seed
        )
        for seed, name in grid
    ]
    results = runner.results(jobs)

    aggregates: Dict[str, QoEAggregate] = {
        name: QoEAggregate() for name in PLAYER_SPECS
    }
    for (seed, name), result in zip(grid, results):
        aggregates[name].add(compute_qoe(result, content))
    report.params["runner"] = runner.params()

    for name, aggregate in aggregates.items():
        summary = aggregate.summary()
        report.rows.append(
            (
                name,
                summary["mean_qoe"],
                summary["median_qoe"],
                summary["p10_qoe"],
                summary["stall_ratio"],
                summary["mean_rebuffer_s"],
                summary["mean_switches"],
                summary["undesirable_ratio"],
            )
        )

    recommended = aggregates["recommended"].summary()
    report.check(
        "recommended has the best mean QoE over the corpus",
        recommended["mean_qoe"]
        >= max(a.summary()["mean_qoe"] for a in aggregates.values()) - 1e-9,
        detail={n: a.summary()["mean_qoe"] for n, a in aggregates.items()}.__repr__(),
    )
    report.check(
        "recommended carries the lowest rebuffering burden",
        recommended["mean_rebuffer_s"]
        <= min(a.summary()["mean_rebuffer_s"] for a in aggregates.values()) + 1e-9,
        detail={
            n: a.summary()["mean_rebuffer_s"] for n, a in aggregates.items()
        }.__repr__(),
    )
    report.check(
        "recommended emits zero undesirable pairs corpus-wide",
        recommended["undesirable_ratio"] == 0.0,
    )
    report.check(
        "dash.js keeps emitting undesirable pairs across the corpus",
        aggregates["dashjs"].summary()["undesirable_ratio"] > 0.05,
        detail=f"{aggregates['dashjs'].summary()['undesirable_ratio']:.2%}",
    )
    report.check(
        "ExoPlayer-HLS's pinned A3 mismatches every chunk of every session",
        aggregates["exoplayer-hls"].summary()["undesirable_ratio"] == 1.0,
    )
    report.check(
        "Shaka's estimator failure stalls every session on this corpus "
        "(its 1400 kbps state passes the 16 KB filter on solo downloads, "
        "over-driving the ~700 kbps average link)",
        aggregates["shaka"].summary()["stall_ratio"] == 1.0,
        detail=f"mean rebuffer {aggregates['shaka'].summary()['mean_rebuffer_s']:.1f} s",
    )
    return report
