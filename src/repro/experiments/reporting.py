"""Report persistence: experiment results as Markdown and JSON.

``repro-abr report --output results/`` regenerates every artifact and
writes one Markdown file per experiment (human review, CI diffs) plus a
machine-readable ``summary.json`` (dashboards, regression gates).
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional, Sequence

from .base import ExperimentReport, experiment_names, run_experiment
from .plotting import render_report_charts


def report_to_markdown(report: ExperimentReport, include_charts: bool = True) -> str:
    """One experiment as a self-contained Markdown document."""
    lines: List[str] = [f"# {report.experiment_id}: {report.title}", ""]
    if report.paper_claim:
        lines += [f"> **Paper:** {report.paper_claim}", ""]
    if report.params:
        lines.append("**Parameters:** " + ", ".join(
            f"`{key}={value}`" for key, value in sorted(report.params.items())
        ))
        lines.append("")
    if report.rows:
        header = [str(h) for h in report.header] or [
            f"col{i}" for i in range(len(report.rows[0]))
        ]
        lines.append("| " + " | ".join(header) + " |")
        lines.append("|" + "|".join("---" for _ in header) + "|")
        for row in report.rows:
            lines.append("| " + " | ".join(str(cell) for cell in row) + " |")
        lines.append("")
    for name, points in report.timelines.items():
        compact = []
        previous = None
        for t, label in points:
            if label != previous:
                compact.append(f"{label}@{t:.0f}s")
                previous = label
        lines.append(f"**{name}:** " + " → ".join(compact))
        lines.append("")
    for note in report.notes:
        lines.append(f"*Note:* {note}")
        lines.append("")
    lines.append("## Checks")
    lines.append("")
    for check in report.checks:
        mark = "✅" if check.passed else "❌"
        detail = f" — {check.detail}" if check.detail else ""
        lines.append(f"- {mark} {check.description}{detail}")
    lines.append("")
    lines.append(
        f"**Verdict: {report.status}**"
    )
    if include_charts and report.series:
        lines += ["", "## Series", "", "```"]
        lines.append(render_report_charts(report))
        lines += ["```", ""]
    return "\n".join(lines) + "\n"


def _runner_totals(reports: List[ExperimentReport]) -> Dict[str, float]:
    """Cross-experiment roll-up of the runners' execution, recovery
    (retry/kill/requeue) and cache counters — the machine-readable
    health summary the CI chaos job greps."""
    totals: Dict[str, float] = {}

    def _absorb(prefix: str, mapping: Dict) -> None:
        for key, value in mapping.items():
            if isinstance(value, dict):
                _absorb(f"{prefix}{key}_", value)
            elif isinstance(value, (int, float)) and not isinstance(value, bool):
                name = f"{prefix}{key}"
                totals[name] = round(totals.get(name, 0) + value, 3)

    for report in reports:
        runner = report.params.get("runner")
        if isinstance(runner, dict):
            _absorb("", {k: v for k, v in runner.items() if k != "workers"})
    return totals


def report_to_dict(report: ExperimentReport) -> Dict:
    """JSON-serializable view of one report."""
    return {
        "experiment_id": report.experiment_id,
        "title": report.title,
        "params": {key: repr(value) for key, value in report.params.items()},
        "paper_claim": report.paper_claim,
        "passed": report.passed,
        "status": report.status,
        "header": list(report.header),
        "rows": [list(row) for row in report.rows],
        "checks": [
            {
                "description": check.description,
                "passed": check.passed,
                "detail": check.detail,
            }
            for check in report.checks
        ],
        "notes": list(report.notes),
        "series": {
            name: [[t, value] for t, value in points]
            for name, points in report.series.items()
        },
    }


def write_reports(
    output_dir: str,
    names: Optional[Sequence[str]] = None,
    include_charts: bool = True,
) -> Dict[str, bool]:
    """Run experiments and write Markdown + JSON artifacts.

    Returns ``{experiment_id: passed}``.
    """
    os.makedirs(output_dir, exist_ok=True)
    selected = list(names) if names else experiment_names()
    outcomes: Dict[str, bool] = {}
    summary = []
    reports: List[ExperimentReport] = []
    for name in selected:
        report = run_experiment(name)
        reports.append(report)
        outcomes[name] = report.passed
        path = os.path.join(output_dir, f"{name}.md")
        with open(path, "w", encoding="utf-8") as f:
            f.write(report_to_markdown(report, include_charts=include_charts))
        summary.append(report_to_dict(report))
    with open(os.path.join(output_dir, "summary.json"), "w", encoding="utf-8") as f:
        json.dump(
            {
                "experiments": summary,
                "all_passed": all(outcomes.values()),
                "runner": _runner_totals(reports),
            },
            f,
            indent=2,
        )
    index_lines = ["# Reproduction results", ""]
    for name in selected:
        status = "REPRODUCED" if outcomes[name] else "MISMATCH"
        index_lines.append(f"- [{name}]({name}.md) — {status}")
    with open(os.path.join(output_dir, "README.md"), "w", encoding="utf-8") as f:
        f.write("\n".join(index_lines) + "\n")
    return outcomes
