"""X6 — muxed vs demuxed delivery, end to end.

Section 1 motivates demuxed storage with origin/CDN economics; this
experiment adds the *client-side* comparison the paper implies: the
same rate-adaptation logic streaming (a) demuxed tracks over the
curated combination set and (b) muxed variants of those same
combinations, over the same links.

Expected shape:

* delivery parity — a muxed variant carries the same bytes, so stalls
  and delivered bitrate match closely;
* the structural muxed drawback — every quality adaptation switches the
  embedded audio too, while the demuxed player holds the audio steady
  across most video switches;
* the economics — origin storage and CDN reuse strongly favour demuxed
  (also quantified in ``fig1``).
"""

from __future__ import annotations

from typing import List, Tuple

from ..core.combinations import hsub_combinations
from ..core.player import RecommendedPlayer
from ..media.content import drama_show
from ..media.muxed import demux_ids, muxed_content
from ..media.tracks import MediaType
from ..net.link import shared
from ..net.markov import hspa_preset
from ..net.traces import constant
from ..sim.session import simulate
from .base import ExperimentReport, register


def _audio_switches(pairs: List[Tuple[str, str]]) -> int:
    switches = 0
    for (_, first_audio), (_, second_audio) in zip(pairs, pairs[1:]):
        if first_audio != second_audio:
            switches += 1
    return switches


@register("muxed_vs_demuxed")
def run_muxed_vs_demuxed() -> ExperimentReport:
    report = ExperimentReport(
        experiment_id="muxed_vs_demuxed",
        title="Muxed vs demuxed delivery with identical adaptation logic",
        paper_claim=(
            "demuxed mode wins on storage and CDN reuse (Section 1) and, "
            "structurally, lets audio stay stable while video adapts; a "
            "muxed variant switch always drags the audio with it"
        ),
        header=(
            "Link",
            "Mode",
            "Total kbps",
            "Stalls",
            "Rebuffer s",
            "Video switches",
            "Audio switches",
        ),
    )
    content = drama_show()
    hsub = hsub_combinations(content)
    muxed = muxed_content(content, combinations=hsub)

    comparisons = []
    for label, make_network in (
        ("1 Mbps", lambda: shared(constant(1000.0))),
        ("hspa", lambda: shared(hspa_preset(seed=4))),
    ):
        demuxed_result = simulate(
            content, RecommendedPlayer(hsub), make_network()
        )
        from ..core.combinations import all_combinations

        muxed_result = simulate(
            muxed, RecommendedPlayer(all_combinations(muxed)), make_network()
        )
        demuxed_total = demuxed_result.time_weighted_bitrate_kbps(
            MediaType.VIDEO
        ) + demuxed_result.time_weighted_bitrate_kbps(MediaType.AUDIO)
        muxed_total = muxed_result.time_weighted_bitrate_kbps(MediaType.VIDEO)
        muxed_pairs = [
            demux_ids(track_id)
            for _, track_id, _ in muxed_result.selected_combinations()
            if track_id is not None
        ]
        demuxed_audio_switches = demuxed_result.switch_count(MediaType.AUDIO)
        muxed_audio_switches = _audio_switches(muxed_pairs)
        report.rows.append(
            (
                label,
                "demuxed",
                round(demuxed_total),
                demuxed_result.n_stalls,
                round(demuxed_result.total_rebuffer_s, 1),
                demuxed_result.switch_count(MediaType.VIDEO),
                demuxed_audio_switches,
            )
        )
        report.rows.append(
            (
                label,
                "muxed",
                round(muxed_total),
                muxed_result.n_stalls,
                round(muxed_result.total_rebuffer_s, 1),
                muxed_result.switch_count(MediaType.VIDEO),
                muxed_audio_switches,
            )
        )
        comparisons.append(
            {
                "label": label,
                "demuxed_total": demuxed_total,
                "muxed_total": muxed_total,
                "demuxed_audio_switches": demuxed_audio_switches,
                "muxed_audio_switches": muxed_audio_switches,
                "muxed_video_switches": muxed_result.switch_count(MediaType.VIDEO),
                "stall_delta": abs(
                    muxed_result.total_rebuffer_s - demuxed_result.total_rebuffer_s
                ),
            }
        )

    report.check(
        "delivery parity: delivered bitrate within 15% between modes",
        all(
            c["muxed_total"] >= c["demuxed_total"] * 0.85
            and c["muxed_total"] <= c["demuxed_total"] * 1.15
            for c in comparisons
        ),
        detail=str(
            [(c["label"], round(c["demuxed_total"]), round(c["muxed_total"])) for c in comparisons]
        ),
    )
    # -- the flexibility gap: re-pairing without new storage --------------
    # A demuxed client can pin the audio (say A2, e.g. headphones where
    # A3's surround mix is wasted) while video adapts freely — zero new
    # origin objects. A muxed origin can only offer pairings it stored:
    # serving V1..V6 each with A2 requires six new muxed variants.
    from ..core.combinations import combinations_from_pairs

    steady_audio = combinations_from_pairs(
        content, [(t.track_id, "A2") for t in content.video]
    )
    steady_result = simulate(
        content, RecommendedPlayer(steady_audio), shared(hspa_preset(seed=4))
    )
    extra_variants = [
        pair for pair in steady_audio if pair.name not in set(hsub.names)
    ]
    extra_bits = sum(
        content.chunk_table.total_bits(pair.video.track_id)
        + content.chunk_table.total_bits(pair.audio.track_id)
        for pair in extra_variants
    )
    report.note(
        "steady-audio policy (video adapts, audio pinned at A2): "
        f"{steady_result.switch_count(MediaType.VIDEO)} video switches, "
        f"{steady_result.switch_count(MediaType.AUDIO)} audio switches, "
        f"{steady_result.n_stalls} stalls — free under demuxed storage; a "
        f"muxed origin would store {len(extra_variants)} extra variants "
        f"({extra_bits / 1e9:.2f} Gb) to offer the same pairings"
    )
    report.check(
        "demuxed re-pairing is free: steady-audio policy runs with zero "
        "audio switches while video still adapts",
        steady_result.switch_count(MediaType.AUDIO) == 0
        and steady_result.switch_count(MediaType.VIDEO) > 0
        and steady_result.n_stalls == 0,
    )
    report.check(
        "matching that policy in muxed mode costs new origin objects",
        len(extra_variants) >= 4 and extra_bits > 0,
        detail=f"{len(extra_variants)} variants, {extra_bits / 1e9:.2f} Gb",
    )
    report.check(
        "with identical combination sets the two modes switch identically "
        "(the pairing, not the packaging, drives switching)",
        all(
            c["demuxed_audio_switches"] == c["muxed_audio_switches"]
            for c in comparisons
        ),
    )
    report.check(
        "storage economics favour demuxed (from Section 1 accounting)",
        content.storage_bits_muxed() > content.storage_bits_demuxed() * 2,
    )
    return report
