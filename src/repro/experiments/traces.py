"""Controlled bandwidth profiles for the paper's experiments.

The paper uses ``tc``-shaped profiles: fixed rates for the
easily-understood cases and "time-varying, with the average as 600
Kbps" for the ExoPlayer-HLS and Shaka-dynamic runs. The exact varying
profiles are not published, so we define deterministic profiles with
the stated averages whose interaction with each player's documented
mechanism produces the paper's effect (see each function's docstring).
"""

from __future__ import annotations

from ..net.traces import BandwidthTrace, from_pairs
from ..runner.jobs import TraceSpec


def fig3_trace() -> BandwidthTrace:
    """Time-varying profile, average 600 kbps (ExoPlayer HLS, Fig. 3).

    Alternates moderately above and below the mean in 15 s steps. With
    the A3 rendition pinned (avg 384 kbps) the remaining video budget
    under-covers even V2 (avg 246) during the low phases, producing the
    repeated stall pattern of Fig. 3(b).
    """
    pairs = [(15, 900), (15, 300), (15, 800), (15, 400), (15, 700), (15, 500)]
    trace = from_pairs(pairs)
    assert abs(trace.average_kbps() - 600.0) < 1e-9
    return trace


def fig4b_trace() -> BandwidthTrace:
    """Time-varying profile, average 600 kbps (Shaka dynamic, Fig. 4b).

    Alternates 150/1050 kbps in 30 s phases. The level matters for
    Shaka's 16 KB-per-0.125 s sample filter (valid iff the stream rate
    is >= 1024 kbps): during low phases nothing passes; during high
    phases only *solo* downloads (1050 kbps > 1024) pass while
    concurrent ones (525 kbps each) do not. The estimator therefore
    first stays at its 500 kbps default (under-estimating), then jumps
    to ~1050 kbps (over-estimating a link that averages 600) — exactly
    the under-then-over shape of Fig. 4(b).
    """
    trace = from_pairs([(30, 150), (30, 1050)])
    assert abs(trace.average_kbps() - 600.0) < 1e-9
    return trace


# -- runner adapters --------------------------------------------------------
#
# The named paper profiles ride :mod:`repro.runner` as ``func`` trace
# specs: workers re-import this module and rebuild the trace, so the
# profiles stay picklable and content-addressable without serializing
# segment lists into every job key.


def fig3_spec() -> TraceSpec:
    """Job spec for :func:`fig3_trace`."""
    return TraceSpec.func("repro.experiments.traces", "fig3_trace")


def fig4b_spec() -> TraceSpec:
    """Job spec for :func:`fig4b_trace`."""
    return TraceSpec.func("repro.experiments.traces", "fig4b_trace")
