"""ExoPlayer's joint-adaptation allocation algorithm.

ExoPlayer v2.10 introduced joint audio+video adaptation for DASH by
*predetermining* a subset of audio/video combinations from the per-track
declared bitrates (Section 3.2). The algorithm (ExoPlayer's
``AdaptiveTrackSelection.getAllocationCheckpoints``):

1. take log bitrates, "to treat all resolution update steps with equal
   importance";
2. for each medium, compute a *switch point* between each pair of
   adjacent rungs — the midpoint of their log bitrates, normalized into
   [0, 1] by the medium's total log-bitrate range;
3. merge all switch points in increasing order and walk a staircase from
   (lowest video, lowest audio) to (highest, highest), stepping up one
   medium at a time in switch-point order.

This yields M + N - 1 combinations in which "two adjacent combinations
have either the same video or audio track". For the paper's Table-1
ladder it produces exactly V1+A1, V2+A1, V2+A2, V3+A2, V4+A2, V4+A3,
V5+A3, V6+A3 — and the B/C-ladder variants listed in Section 3.2
(verified in the test suite).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..errors import PlayerError


@dataclass(frozen=True)
class RungPair:
    """One predetermined (video, audio) pair with declared bitrates."""

    video_id: str
    audio_id: str
    video_kbps: float
    audio_kbps: float

    @property
    def total_kbps(self) -> float:
        return self.video_kbps + self.audio_kbps

    @property
    def name(self) -> str:
        return f"{self.video_id}+{self.audio_id}"


def normalized_switch_points(bitrates_kbps: Sequence[float]) -> List[float]:
    """Switch points between adjacent rungs, normalized to [0, 1].

    Point *i* sits at the log-midpoint between rung *i* and rung *i+1*,
    measured as a fraction of the ladder's total log-bitrate range. A
    single-rung ladder has no switch points; a ladder whose rungs all
    share one bitrate puts every switch point at 1.0 (ExoPlayer's
    degenerate-range rule).
    """
    if not bitrates_kbps:
        raise PlayerError("ladder must not be empty")
    for rate in bitrates_kbps:
        if rate <= 0:
            raise PlayerError(f"bitrates must be positive, got {rate}")
    if any(b < a for a, b in zip(bitrates_kbps, bitrates_kbps[1:])):
        raise PlayerError(f"ladder must be sorted ascending: {list(bitrates_kbps)}")
    logs = [math.log(rate) for rate in bitrates_kbps]
    total_range = logs[-1] - logs[0]
    points: List[float] = []
    for low, high in zip(logs, logs[1:]):
        if total_range == 0:
            points.append(1.0)
        else:
            midpoint = 0.5 * (low + high)
            points.append((midpoint - logs[0]) / total_range)
    return points


def exoplayer_predetermined_combinations(
    video: Sequence[Tuple[str, float]],
    audio: Sequence[Tuple[str, float]],
) -> List[RungPair]:
    """The predetermined combinations, lowest to highest.

    :param video: ``(track_id, declared_kbps)`` per video rung, ascending.
    :param audio: likewise for audio.
    :returns: ``len(video) + len(audio) - 1`` pairs forming a monotone
        staircase; adjacent pairs differ in exactly one medium.
    """
    if not video or not audio:
        raise PlayerError("need at least one video and one audio rung")
    video_points = normalized_switch_points([kbps for _, kbps in video])
    audio_points = normalized_switch_points([kbps for _, kbps in audio])

    # Merge switch points; ties resolved in selection order (ExoPlayer
    # iterates selections in renderer order, video before audio).
    steps: List[Tuple[float, int]] = [(p, 0) for p in video_points]
    steps += [(p, 1) for p in audio_points]
    steps.sort(key=lambda s: (s[0], s[1]))

    iv = ia = 0
    pairs = [
        RungPair(
            video_id=video[0][0],
            audio_id=audio[0][0],
            video_kbps=video[0][1],
            audio_kbps=audio[0][1],
        )
    ]
    for _, selection in steps:
        if selection == 0:
            iv += 1
        else:
            ia += 1
        pairs.append(
            RungPair(
                video_id=video[iv][0],
                audio_id=audio[ia][0],
                video_kbps=video[iv][1],
                audio_kbps=audio[ia][1],
            )
        )
    return pairs
