"""ExoPlayer v2.10 behavioural model (DASH and HLS modes).

Reproduces the mechanisms Section 3.2 traces ExoPlayer's behaviour to:

* **DASH** — joint adaptation restricted to the *predetermined
  combinations* computed from per-track declared bitrates
  (:mod:`repro.players.allocation`); a single bandwidth meter fed by
  both media; a conservative ``bandwidth_fraction`` of 0.75; and
  buffered-duration hysteresis (don't up-switch below 10 s of buffer,
  don't down-switch above 25 s).
* **HLS** — the same adaptation code, starved of per-track audio
  bitrates by the top-level playlist: the model locks onto the first
  audio rendition listed ("ExoPlayer simply assumes that all the audio
  tracks have the same quality, thereby leading to a fixed audio track
  selection") and prices each video track at the aggregate ``BANDWIDTH``
  of the first variant containing it ("which is clearly an
  overestimation").

Downloading is synchronized per chunk — video chunk *i*, audio chunk
*i*, then position *i+1* — which the paper singles out as ExoPlayer's
virtue ("synchronize them on a finer granularity (e.g., on per chunk
level as in ExoPlayer)"). The strict alternation also means each
transfer sees the full link, so the shared meter measures total
available bandwidth, as ExoPlayer's aggregated ``DefaultBandwidthMeter``
does for overlapping transfers.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import PlayerError
from ..manifest.dash import DashManifest
from ..manifest.hls import HlsMasterPlaylist
from ..media.tracks import MediaType
from ..sim.decisions import WAIT_FOREVER, Decision, Wait, download_for
from ..sim.records import DownloadRecord
from .allocation import RungPair, exoplayer_predetermined_combinations
from .base import BasePlayer
from .estimators import ExoBandwidthMeter

#: ExoPlayer AdaptiveTrackSelection defaults.
DEFAULT_BANDWIDTH_FRACTION = 0.75
DEFAULT_MIN_DURATION_FOR_QUALITY_INCREASE_S = 10.0
DEFAULT_MAX_DURATION_FOR_QUALITY_DECREASE_S = 25.0
#: ExoPlayer DefaultLoadControl.DEFAULT_MAX_BUFFER_MS.
DEFAULT_MAX_BUFFER_S = 50.0


class _ExoAdaptiveBase(BasePlayer):
    """Shared chunk-locked scheduling + hysteresis machinery."""

    def __init__(
        self,
        bandwidth_fraction: float = DEFAULT_BANDWIDTH_FRACTION,
        min_duration_for_quality_increase_s: float = (
            DEFAULT_MIN_DURATION_FOR_QUALITY_INCREASE_S
        ),
        max_duration_for_quality_decrease_s: float = (
            DEFAULT_MAX_DURATION_FOR_QUALITY_DECREASE_S
        ),
        max_buffer_s: float = DEFAULT_MAX_BUFFER_S,
        initial_estimate_kbps: float = 1000.0,
    ):
        if not 0 < bandwidth_fraction <= 1:
            raise PlayerError(
                f"bandwidth_fraction must be in (0,1], got {bandwidth_fraction}"
            )
        self.bandwidth_fraction = bandwidth_fraction
        self.min_duration_for_quality_increase_s = min_duration_for_quality_increase_s
        self.max_duration_for_quality_decrease_s = max_duration_for_quality_decrease_s
        self.max_buffer_s = max_buffer_s
        self.meter = ExoBandwidthMeter(initial_estimate_kbps=initial_estimate_kbps)
        #: Decision cache: chunk position -> selected rung index, so both
        #: media of one position use the same joint decision.
        self._selection_for_position: Dict[int, int] = {}
        self._current_rung = 0

    # -- selection over an ordered list of options -------------------------

    def _n_rungs(self) -> int:
        raise NotImplementedError

    def _rung_bitrate_kbps(self, rung: int) -> float:
        """Declared bitrate ExoPlayer compares against allocated bandwidth."""
        raise NotImplementedError

    def _ideal_rung(self, effective_kbps: float) -> int:
        ideal = 0
        for rung in range(self._n_rungs()):
            if self._rung_bitrate_kbps(rung) <= effective_kbps:
                ideal = rung
        return ideal

    def _adapt(self, ctx) -> int:
        """ExoPlayer's ``updateSelectedTrack``: ideal rung + hysteresis."""
        estimate = self.meter.get_estimate_kbps()
        ctx.log_estimate(estimate)
        effective = estimate * self.bandwidth_fraction
        ideal = self._ideal_rung(effective)
        current = self._current_rung
        buffered = min(
            ctx.buffer_level_s(MediaType.VIDEO), ctx.buffer_level_s(MediaType.AUDIO)
        )
        if ideal > current and buffered < self.min_duration_for_quality_increase_s:
            ideal = current
        elif ideal < current and buffered >= self.max_duration_for_quality_decrease_s:
            ideal = current
        self._current_rung = ideal
        return ideal

    def _selection_at(self, position: int, ctx) -> int:
        if position not in self._selection_for_position:
            self._selection_for_position[position] = self._adapt(ctx)
        return self._selection_for_position[position]

    # -- chunk-locked scheduling -------------------------------------------

    def choose_next(self, medium: MediaType, ctx) -> Decision:
        video_done = ctx.completed_chunks(MediaType.VIDEO)
        audio_done = ctx.completed_chunks(MediaType.AUDIO)
        if medium is MediaType.VIDEO:
            # Video leads each position; it may start position i only
            # once audio has caught up to position i.
            if audio_done < video_done:
                return WAIT_FOREVER
            gate = self.buffer_gate(ctx, medium, self.max_buffer_s)
            if gate is not None:
                return gate
            position = video_done
            rung = self._selection_at(position, ctx)
            return download_for(self._video_id_for(rung))
        # Audio trails: it may fetch position i only after video finished i.
        if video_done <= audio_done:
            return WAIT_FOREVER
        position = audio_done
        rung = self._selection_at(position, ctx)
        return download_for(self._audio_id_for(rung))

    def _video_id_for(self, rung: int) -> str:
        raise NotImplementedError

    def _audio_id_for(self, rung: int) -> str:
        raise NotImplementedError

    def on_chunk_complete(self, record: DownloadRecord, ctx) -> None:
        self.meter.observe_download(record)

    def on_failure(self, medium: MediaType, failure, ctx) -> None:
        """``onChunkLoadError``: fall back one combination rung.

        ExoPlayer's chunk source excludes a failing track and re-selects;
        here that collapses to stepping the predetermined-combination
        index down one. Because video leads each position, a failed
        video chunk can still drag its paired audio down with it; a
        failed (trailing) audio chunk only lowers the working point, so
        the pairing of the already-fetched video survives.
        """
        position = failure.chunk_index
        rung = self._selection_for_position.get(position)
        if rung is None or rung <= 0:
            return
        self._current_rung = min(self._current_rung, rung - 1)
        if (
            failure.medium is MediaType.VIDEO
            and ctx.completed_chunks(MediaType.AUDIO) <= position
        ):
            self._selection_for_position[position] = rung - 1


class ExoPlayerDash(_ExoAdaptiveBase):
    """ExoPlayer streaming a demuxed DASH manifest."""

    name = "exoplayer-dash"

    def __init__(self, manifest: DashManifest, **kwargs):
        super().__init__(**kwargs)
        video = [
            (rep.rep_id, rep.bandwidth_kbps) for rep in manifest.video.representations
        ]
        audio = [
            (rep.rep_id, rep.bandwidth_kbps) for rep in manifest.audio.representations
        ]
        video.sort(key=lambda r: r[1])
        audio.sort(key=lambda r: r[1])
        #: The predetermined combinations; rate adaptation "only
        #: considers these predetermined combinations".
        self.combinations: List[RungPair] = exoplayer_predetermined_combinations(
            video, audio
        )

    def _n_rungs(self) -> int:
        return len(self.combinations)

    def _rung_bitrate_kbps(self, rung: int) -> float:
        return self.combinations[rung].total_kbps

    def _video_id_for(self, rung: int) -> str:
        return self.combinations[rung].video_id

    def _audio_id_for(self, rung: int) -> str:
        return self.combinations[rung].audio_id

    @property
    def combination_names(self) -> List[str]:
        return [pair.name for pair in self.combinations]


class ExoPlayerHls(_ExoAdaptiveBase):
    """ExoPlayer streaming an HLS master playlist.

    The same adaptation code as DASH, but the top-level playlist gives
    no per-track audio bitrates, so audio collapses to the first listed
    rendition and video rungs are priced at the first containing
    variant's aggregate ``BANDWIDTH``.
    """

    name = "exoplayer-hls"

    def __init__(self, master: HlsMasterPlaylist, **kwargs):
        super().__init__(**kwargs)
        renditions = master.renditions
        if not renditions:
            raise PlayerError("HLS master playlist lists no audio renditions")
        #: "the first audio track in the manifest file" — used throughout.
        self.fixed_audio_id = renditions[0].name

        seen: List[str] = []
        for variant in master.variants:
            if variant.video_id is None:
                raise PlayerError(f"variant {variant.uri!r} has no video id")
            if variant.video_id not in seen:
                seen.append(variant.video_id)
        #: (video_id, overestimated kbps) per rung, ascending by estimate.
        self.video_rungs: List[Tuple[str, float]] = sorted(
            (
                (video_id, master.first_variant_bandwidth(video_id) / 1000.0)
                for video_id in seen
            ),
            key=lambda r: r[1],
        )

    def _n_rungs(self) -> int:
        return len(self.video_rungs)

    def _rung_bitrate_kbps(self, rung: int) -> float:
        return self.video_rungs[rung][1]

    def _video_id_for(self, rung: int) -> str:
        return self.video_rungs[rung][0]

    def _audio_id_for(self, rung: int) -> str:
        return self.fixed_audio_id
