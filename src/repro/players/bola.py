"""BOLA — Lyapunov-based buffer-level adaptation (dash.js BolaRule).

Implements the production formulas of dash.js's ``BolaRule`` (derived
from Spiteri et al., INFOCOM'16 / MMSys'18), which the paper's dash.js
DYNAMIC description builds on: utilities are log bitrate ratios offset
so the lowest rung has utility 1; the control parameters ``gp`` and
``Vp`` are derived from a buffer target; the chosen rung maximizes
``(Vp * (utility + gp) - buffer_level) / bitrate``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

from ..errors import PlayerError

#: dash.js BolaRule constants.
MINIMUM_BUFFER_S = 10.0
MINIMUM_BUFFER_PER_BITRATE_LEVEL_S = 2.0


@dataclass(frozen=True)
class BolaState:
    """Precomputed BOLA parameters for one ladder."""

    bitrates_kbps: tuple
    utilities: tuple
    gp: float
    vp: float

    @property
    def n_rungs(self) -> int:
        return len(self.bitrates_kbps)


def build_bola_state(
    bitrates_kbps: Sequence[float], stable_buffer_time_s: float = 12.0
) -> BolaState:
    """Derive utilities and (gp, Vp) exactly as dash.js does.

    ``bufferTime = max(stableBufferTime, MINIMUM_BUFFER_S +
    MINIMUM_BUFFER_PER_BITRATE_LEVEL_S * n)``; then
    ``gp = (u_max - 1) / (bufferTime / MINIMUM_BUFFER_S - 1)`` and
    ``Vp = MINIMUM_BUFFER_S / gp``.
    """
    if len(bitrates_kbps) < 1:
        raise PlayerError("BOLA needs at least one rung")
    rates = list(bitrates_kbps)
    if rates != sorted(rates):
        raise PlayerError(f"bitrates must be ascending: {rates}")
    if rates[0] <= 0:
        raise PlayerError("bitrates must be positive")
    utilities = [math.log(rate) for rate in rates]
    utilities = [u - utilities[0] + 1.0 for u in utilities]
    buffer_time = max(
        stable_buffer_time_s,
        MINIMUM_BUFFER_S + MINIMUM_BUFFER_PER_BITRATE_LEVEL_S * len(rates),
    )
    if len(rates) == 1 or utilities[-1] == 1.0:
        # Degenerate one-rung (or flat) ladder: any positive parameters
        # work, the argmax is constant.
        gp, vp = 1.0, MINIMUM_BUFFER_S
    else:
        gp = (utilities[-1] - 1.0) / (buffer_time / MINIMUM_BUFFER_S - 1.0)
        vp = MINIMUM_BUFFER_S / gp
    return BolaState(
        bitrates_kbps=tuple(rates), utilities=tuple(utilities), gp=gp, vp=vp
    )


def bola_quality(state: BolaState, buffer_level_s: float) -> int:
    """The rung BOLA selects at a given buffer level.

    ``argmax_i (Vp * (utilities[i] + gp) - bufferLevel) / bitrates[i]``,
    ties resolved toward the higher rung (as dash.js's >= scan does).
    """
    if buffer_level_s < 0:
        raise PlayerError(f"buffer level must be non-negative, got {buffer_level_s}")
    best, best_score = 0, -math.inf
    for i in range(state.n_rungs):
        score = (
            state.vp * (state.utilities[i] + state.gp) - buffer_level_s
        ) / state.bitrates_kbps[i]
        if score >= best_score:
            best, best_score = i, score
    return best


def min_buffer_for_quality(state: BolaState, rung: int) -> float:
    """Smallest buffer level at which BOLA would pick at least ``rung``.

    Useful in tests: BOLA's choices are monotone in buffer level.
    """
    if not 0 <= rung < state.n_rungs:
        raise PlayerError(f"rung {rung} out of range")
    level, step = 0.0, 0.25
    while level < 120.0:
        if bola_quality(state, level) >= rung:
            return level
        level += step
    return math.inf
