"""Shaka Player v2.5 behavioural model.

Reproduces the mechanisms Section 3.3 traces Shaka's behaviour to:

* the interval-sampled, 16 KB-filtered, dual-EWMA bandwidth estimator
  with a 500 kbps default (:class:`repro.players.estimators.ShakaEstimator`);
  audio and video downloads are sampled *separately* even when they
  share the bottleneck, so concurrency halves each stream's samples;
* a simple rate-based selection over the full set of audio/video
  combinations: the highest combination whose aggregate bandwidth
  requirement does not exceed the estimate (which, with many demuxed
  combinations packed closely in rate, fluctuates readily);
* independent audio and video stream buffering toward a common
  ``bufferingGoal``, with downloads running concurrently.

Under DASH, "the player creates all the combinations of video and audio
tracks when parsing the DASH manifest file", so both manifest types
reduce to the same combination list.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from ..errors import PlayerError
from ..manifest.dash import DashManifest
from ..manifest.hls import HlsMasterPlaylist
from ..media.tracks import MediaType
from ..sim.decisions import Decision, download_for
from ..sim.records import DownloadRecord
from .base import BasePlayer
from .estimators import ShakaEstimator

#: Shaka's streaming.bufferingGoal default (seconds).
DEFAULT_BUFFERING_GOAL_S = 10.0


@dataclass(frozen=True)
class VariantOption:
    """One selectable combination with its aggregate bandwidth."""

    video_id: str
    audio_id: str
    bandwidth_kbps: float

    @property
    def name(self) -> str:
        return f"{self.video_id}+{self.audio_id}"


def variants_from_hls(master: HlsMasterPlaylist) -> List[VariantOption]:
    """Selectable variants straight from the master playlist."""
    options: List[VariantOption] = []
    for variant in master.variants:
        if variant.video_id is None or variant.audio_id is None:
            raise PlayerError(
                f"variant {variant.uri!r} does not identify its tracks"
            )
        options.append(
            VariantOption(
                video_id=variant.video_id,
                audio_id=variant.audio_id,
                bandwidth_kbps=variant.bandwidth_kbps,
            )
        )
    options.sort(key=lambda option: option.bandwidth_kbps)
    return options


def variants_from_dash(manifest: DashManifest) -> List[VariantOption]:
    """The full cross product Shaka builds when parsing a DASH MPD.

    Aggregate bandwidth is the sum of the two declared per-track
    bandwidths (the only rate information an MPD carries). Shaka ignores
    the :mod:`repro` allowed-combinations extension — it models the
    as-is behaviour the paper measured.
    """
    options = [
        VariantOption(
            video_id=video.rep_id,
            audio_id=audio.rep_id,
            bandwidth_kbps=video.bandwidth_kbps + audio.bandwidth_kbps,
        )
        for video in manifest.video.representations
        for audio in manifest.audio.representations
    ]
    options.sort(key=lambda option: option.bandwidth_kbps)
    return options


class ShakaPlayer(BasePlayer):
    """Shaka Player over either manifest type."""

    name = "shaka"

    def __init__(
        self,
        variants: Sequence[VariantOption],
        buffering_goal_s: float = DEFAULT_BUFFERING_GOAL_S,
        estimator: ShakaEstimator = None,
    ):
        if not variants:
            raise PlayerError("Shaka needs at least one variant")
        self.variants = sorted(variants, key=lambda option: option.bandwidth_kbps)
        self.buffering_goal_s = buffering_goal_s
        self.estimator = estimator or ShakaEstimator()
        self._selection_for_position: Dict[int, VariantOption] = {}

    @classmethod
    def from_hls(cls, master: HlsMasterPlaylist, **kwargs) -> "ShakaPlayer":
        return cls(variants_from_hls(master), **kwargs)

    @classmethod
    def from_dash(cls, manifest: DashManifest, **kwargs) -> "ShakaPlayer":
        return cls(variants_from_dash(manifest), **kwargs)

    def choose_variant(self, estimate_kbps: float) -> VariantOption:
        """Highest variant whose aggregate requirement fits the estimate."""
        chosen = self.variants[0]
        for option in self.variants:
            if option.bandwidth_kbps <= estimate_kbps:
                chosen = option
        return chosen

    def _selection_at(self, position: int, ctx) -> VariantOption:
        if position not in self._selection_for_position:
            estimate = self.estimator.get_estimate_kbps()
            ctx.log_estimate(estimate)
            self._selection_for_position[position] = self.choose_variant(estimate)
        return self._selection_for_position[position]

    def choose_next(self, medium: MediaType, ctx) -> Decision:
        # Independent per-stream buffering toward the common goal; no
        # cross-medium synchronization (each stream free-runs).
        gate = self.buffer_gate(ctx, medium, self.buffering_goal_s)
        if gate is not None:
            return gate
        position = ctx.next_chunk_index(medium)
        selected = self._selection_at(position, ctx)
        if medium is MediaType.VIDEO:
            return download_for(selected.video_id)
        return download_for(selected.audio_id)

    def on_chunk_complete(self, record: DownloadRecord, ctx) -> None:
        self.estimator.observe_download(record)
        ctx.log_estimate(self.estimator.get_estimate_kbps())

    def on_failure(self, medium: MediaType, failure, ctx) -> None:
        """StreamingEngine failure callback: re-decide the position.

        The cached variant for the failed position is dropped, so the
        retry re-selects at the then-current estimate. An HTTP 404
        additionally pins the retry one variant below the failed one:
        the resource is missing, so asking for it again at the same rate
        is pointless.
        """
        position = failure.chunk_index
        current = self._selection_for_position.pop(position, None)
        if failure.kind == "http_404" and current is not None:
            index = next(
                (
                    i
                    for i, option in enumerate(self.variants)
                    if option.name == current.name
                ),
                0,
            )
            if index > 0:
                self._selection_for_position[position] = self.variants[index - 1]
