"""Player models: ExoPlayer, Shaka, dash.js, plus building blocks."""

from .allocation import (
    RungPair,
    exoplayer_predetermined_combinations,
    normalized_switch_points,
)
from .base import BasePlayer
from .bola import (
    BolaState,
    bola_quality,
    build_bola_state,
    min_buffer_for_quality,
)
from .dashjs import DashJsPlayer
from .estimators import (
    Ewma,
    ExoBandwidthMeter,
    HarmonicMeanEstimator,
    ShakaEstimator,
    SharedThroughputEstimator,
    SlidingPercentile,
)
from .exoplayer import ExoPlayerDash, ExoPlayerHls
from .fixed import FixedTracksPlayer
from .shaka import ShakaPlayer, VariantOption, variants_from_dash, variants_from_hls

__all__ = [
    "BasePlayer",
    "BolaState",
    "DashJsPlayer",
    "Ewma",
    "ExoBandwidthMeter",
    "ExoPlayerDash",
    "ExoPlayerHls",
    "FixedTracksPlayer",
    "HarmonicMeanEstimator",
    "RungPair",
    "ShakaEstimator",
    "ShakaPlayer",
    "SharedThroughputEstimator",
    "SlidingPercentile",
    "VariantOption",
    "bola_quality",
    "build_bola_state",
    "exoplayer_predetermined_combinations",
    "min_buffer_for_quality",
    "normalized_switch_points",
    "variants_from_dash",
    "variants_from_hls",
]
