"""dash.js v2.9 behavioural model.

Reproduces the mechanisms Section 3.4 traces dash.js's behaviour to:

* the DYNAMIC rule "switches between two schemes, THROUGHPUT and BOLA
  ... It switches to BOLA when the buffer level is above 12 s and BOLA
  selects a bitrate at least as high as that selected by THROUGHPUT; it
  switches back to THROUGHPUT if the buffer is less than 6 s and BOLA
  selects a bitrate lower than that selected by THROUGHPUT";
* dash.js "utilizes DYNAMIC strategy for both audio and video, and
  performs rate adaptation for audio and video separately. In addition,
  the bandwidth estimation for audio (video) is based on past audio
  (video) downloading only";
* no cross-medium download synchronization — each medium free-runs to
  its own buffer target (``stableBufferTime`` = 12 s, raised to
  ``bufferTimeAtTopQuality`` = 30 s while at the top rung), which is how
  the unbalanced buffers of Fig. 5(b) arise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..errors import PlayerError
from ..manifest.dash import DashManifest
from ..media.tracks import MediaType
from ..sim.decisions import Decision, download_for
from ..sim.records import DownloadRecord
from .base import BasePlayer
from .bola import BolaState, bola_quality, build_bola_state
from .estimators import HarmonicMeanEstimator

#: dash.js MediaPlayerModel defaults.
DEFAULT_STABLE_BUFFER_TIME_S = 12.0
DEFAULT_BUFFER_TIME_AT_TOP_QUALITY_S = 30.0
#: dash.js AbrController bandwidth safety factor.
DEFAULT_BANDWIDTH_SAFETY_FACTOR = 0.9
#: DYNAMIC switching thresholds (as stated in the paper; Section 3.4).
DYNAMIC_TO_BOLA_BUFFER_S = 12.0
DYNAMIC_TO_THROUGHPUT_BUFFER_S = 6.0


@dataclass
class _MediumState:
    """Per-medium adaptation state — deliberately fully independent."""

    track_ids: List[str]
    bitrates_kbps: List[float]
    estimator: HarmonicMeanEstimator
    bola: BolaState
    using_bola: bool = False
    current_rung: int = 0
    decided_once: bool = False

    @property
    def top_rung(self) -> int:
        return len(self.track_ids) - 1


class DashJsPlayer(BasePlayer):
    """dash.js reference player over a DASH MPD."""

    name = "dashjs"

    def __init__(
        self,
        manifest: DashManifest,
        stable_buffer_time_s: float = DEFAULT_STABLE_BUFFER_TIME_S,
        buffer_time_at_top_quality_s: float = DEFAULT_BUFFER_TIME_AT_TOP_QUALITY_S,
        bandwidth_safety_factor: float = DEFAULT_BANDWIDTH_SAFETY_FACTOR,
        throughput_window: int = 3,
    ):
        if not 0 < bandwidth_safety_factor <= 1:
            raise PlayerError(
                f"safety factor must be in (0,1], got {bandwidth_safety_factor}"
            )
        self.stable_buffer_time_s = stable_buffer_time_s
        self.buffer_time_at_top_quality_s = buffer_time_at_top_quality_s
        self.bandwidth_safety_factor = bandwidth_safety_factor
        self._media: Dict[MediaType, _MediumState] = {}
        for medium, aset in (
            (MediaType.VIDEO, manifest.video),
            (MediaType.AUDIO, manifest.audio),
        ):
            reps = sorted(aset.representations, key=lambda r: r.bandwidth_bps)
            bitrates = [rep.bandwidth_kbps for rep in reps]
            self._media[medium] = _MediumState(
                track_ids=[rep.rep_id for rep in reps],
                bitrates_kbps=bitrates,
                estimator=HarmonicMeanEstimator(window=throughput_window),
                bola=build_bola_state(bitrates, stable_buffer_time_s),
            )

    # -- the two constituent rules -----------------------------------------

    def _throughput_rung(self, state: _MediumState) -> int:
        """THROUGHPUT: highest rung under safety-scaled estimated rate."""
        estimate = state.estimator.get_estimate_kbps()
        if estimate is None:
            return 0  # dash.js starts at the lowest quality
        budget = estimate * self.bandwidth_safety_factor
        rung = 0
        for i, rate in enumerate(state.bitrates_kbps):
            if rate <= budget:
                rung = i
        return rung

    def _dynamic_rung(self, state: _MediumState, buffer_level_s: float) -> int:
        """DYNAMIC: run both rules, manage the active-rule flip-flop."""
        throughput_choice = self._throughput_rung(state)
        bola_choice = bola_quality(state.bola, buffer_level_s)
        if state.using_bola:
            if (
                buffer_level_s < DYNAMIC_TO_THROUGHPUT_BUFFER_S
                and bola_choice < throughput_choice
            ):
                state.using_bola = False
        else:
            if (
                buffer_level_s >= DYNAMIC_TO_BOLA_BUFFER_S
                and bola_choice >= throughput_choice
            ):
                state.using_bola = True
        return bola_choice if state.using_bola else throughput_choice

    # -- player interface ----------------------------------------------------

    def _buffer_target_s(self, state: _MediumState) -> float:
        if state.current_rung == state.top_rung:
            return self.buffer_time_at_top_quality_s
        return self.stable_buffer_time_s

    def choose_next(self, medium: MediaType, ctx) -> Decision:
        state = self._media[medium]
        gate = self.buffer_gate(ctx, medium, self._buffer_target_s(state))
        if gate is not None:
            return gate
        # dash.js evaluates quality on each fragment-load completion
        # (AbrController.checkPlaybackQuality), i.e. right after the
        # append when the buffer sits at its local maximum; the request
        # then uses that cached quality. Re-evaluating here, at the
        # moment the buffer has drained back to the target, would deny
        # BOLA the buffer overshoot it relies on (in real dash.js,
        # BOLA-E's placeholder buffer preserves that effective level).
        # So the fetch uses the completion-time decision, refreshed here
        # only if no decision exists yet (session start).
        if not state.decided_once:
            state.current_rung = self._dynamic_rung(
                state, ctx.buffer_level_s(medium)
            )
            state.decided_once = True
        if medium is MediaType.VIDEO:
            estimate = state.estimator.get_estimate_kbps()
            if estimate is not None:
                ctx.log_estimate(estimate)
        return download_for(state.track_ids[state.current_rung])

    def on_chunk_complete(self, record: DownloadRecord, ctx) -> None:
        # Per-medium estimation: "based on past audio (video) downloading only".
        state = self._media[record.medium]
        state.estimator.observe_download(record)
        # checkPlaybackQuality: decide the next quality now, post-append.
        state.current_rung = self._dynamic_rung(
            state, ctx.buffer_level_s(record.medium)
        )
        state.decided_once = True

    def on_failure(self, medium: MediaType, failure, ctx) -> None:
        """Fragment-load error: restart the medium at the lowest rung.

        dash.js reacts to load errors conservatively — the failing
        medium's next decision starts from the bottom and the DYNAMIC
        machinery has to climb back up via fresh THROUGHPUT samples.
        The media stay fully independent: the companion's rung is
        untouched (no pairing to preserve in plain DASH).
        """
        state = self._media[failure.medium]
        state.current_rung = 0
        state.using_bola = False
        state.decided_once = True

    # -- introspection (used by tests/experiments) ----------------------------

    def rung_of(self, medium: MediaType, track_id: str) -> int:
        return self._media[medium].track_ids.index(track_id)

    def estimator_of(self, medium: MediaType) -> HarmonicMeanEstimator:
        return self._media[medium].estimator

    def is_using_bola(self, medium: MediaType) -> bool:
        return self._media[medium].using_bola
