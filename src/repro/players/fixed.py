"""A non-adaptive player: fixed video and audio tracks.

Useful as an experimental control (it is exactly what pre-2.10 ExoPlayer
did for audio) and for exercising the simulator in tests, where the
download schedule must be predictable.
"""

from __future__ import annotations

from typing import Optional

from ..errors import PlayerError
from ..media.tracks import MediaType
from ..sim.decisions import WAIT_FOREVER, Decision, download_for
from .base import BasePlayer


class FixedTracksPlayer(BasePlayer):  # policy: inherit-failure
    """Always fetches the same (video, audio) pair.

    A non-adaptive control has nothing to adapt on failure, so it
    deliberately inherits BasePlayer's silent failure default.

    :param balanced: when true, downloads alternate per chunk (video
        *i*, audio *i*, video *i+1*, ...); when false, each medium
        free-runs to the buffer target, downloading concurrently.
    """

    name = "fixed"

    def __init__(
        self,
        video_id: str,
        audio_id: str,
        buffer_target_s: float = 30.0,
        balanced: bool = True,
    ):
        if not video_id or not audio_id:
            raise PlayerError("fixed player needs both track ids")
        if buffer_target_s <= 0:
            raise PlayerError(f"buffer target must be positive: {buffer_target_s}")
        self.video_id = video_id
        self.audio_id = audio_id
        self.buffer_target_s = buffer_target_s
        self.balanced = balanced

    def choose_next(self, medium: MediaType, ctx) -> Decision:
        if self.balanced:
            video_done = ctx.completed_chunks(MediaType.VIDEO)
            audio_done = ctx.completed_chunks(MediaType.AUDIO)
            if medium is MediaType.VIDEO and audio_done < video_done:
                return WAIT_FOREVER
            if medium is MediaType.AUDIO and video_done <= audio_done:
                return WAIT_FOREVER
        gate = self.buffer_gate(ctx, medium, self.buffer_target_s)
        if gate is not None:
            return gate
        if medium is MediaType.VIDEO:
            return download_for(self.video_id)
        return download_for(self.audio_id)
