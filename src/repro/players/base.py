"""Abstract player interface.

A player model is the client-side brain: at every free download slot it
is asked which track to fetch next for a medium (or to wait), and it is
told about every completed chunk so it can update its bandwidth
estimators. Everything else — buffers, the playback clock, the network —
belongs to the simulator.

Subclasses are linted against the replay/fast-forward contract
(``POLICY-*`` in ``repro-abr lint``): interned decision objects from
``choose_next``, transitively deterministic methods, mutation confined
to the lifecycle hooks declared here, an explicit failure story
(``on_failure``/``on_download_failed`` or ``# policy:
inherit-failure``), and base-exact hook parameter names. See the
player-author checklist in ``docs/static_analysis.md``.
"""

from __future__ import annotations

import abc
import math
from typing import Optional

from ..media.tracks import MediaType
from ..sim.decisions import (
    WAIT_FOREVER,
    Decision,
    Download,
    Wait,
    download_for,
)
from ..sim.playback import PlaybackState
from ..sim.records import DownloadRecord


class BasePlayer(abc.ABC):
    """Interface implemented by every player model."""

    #: Human-readable name used in experiment output.
    name: str = "player"

    def on_session_start(self, ctx) -> None:
        """Called once before the first scheduling decision."""

    def on_session_end(self, ctx) -> None:
        """Called once when the session ends."""

    @abc.abstractmethod
    def choose_next(self, medium: MediaType, ctx) -> Decision:
        """Pick the track for the medium's next chunk, or wait.

        Called only when the medium has no download in flight and chunks
        remain. Return :class:`~repro.sim.decisions.Download` or
        :class:`~repro.sim.decisions.Wait`.
        """

    def on_chunk_start(self, medium: MediaType, track_id: str, index: int, ctx) -> None:
        """Called when a chosen download begins."""

    def on_chunk_complete(self, record: DownloadRecord, ctx) -> None:
        """Called when a download finishes (estimators update here)."""

    def on_download_failed(self, record, ctx) -> None:
        """Called when the network killed a request mid-transfer.

        The slot is already free; ``choose_next`` will be asked again
        for the same position. Players may react (e.g. drop a rung for
        the retry); the default is to retry whatever ``choose_next``
        picks next.
        """

    def on_failure(self, medium: MediaType, failure, ctx) -> None:
        """Called for every classified request failure.

        ``failure`` is a :class:`~repro.sim.records.FailureRecord`
        carrying the taxonomy ``kind``, the ``attempt`` number, whether
        the partial bytes were stashed for range-resume, and the
        scheduled ``retry_at`` (``None`` when no retry follows). The
        session has already decided *whether* and *when* to retry; this
        hook is where the player decides *what* — e.g. eject the failing
        rung via a circuit breaker, downshift the retry, or fall back to
        the cheapest combination when ``ctx.retry_budget_remaining()``
        nears exhaustion.

        The default delegates to :meth:`on_download_failed`, so players
        written against the legacy anonymous-failure hook behave
        unchanged.
        """
        self.on_download_failed(failure, ctx)

    def consider_abort(self, medium: MediaType, download, ctx) -> bool:
        """Should the in-flight ``download`` be abandoned?

        Called at every simulation event while a download is active.
        Returning ``True`` discards the partial data; the medium's slot
        frees immediately and ``choose_next`` is asked again for the
        same chunk position (usually to pick a cheaper track). This is
        the simulator-side hook for abandonment rules such as dash.js's
        ``AbandonRequestsRule``. Default: never abort.
        """
        return False

    # -- shared scheduling helpers ----------------------------------------

    @staticmethod
    def buffer_gate(ctx, medium: MediaType, target_s: float) -> Optional[Wait]:
        """Standard "don't overfill the buffer" gate.

        Returns a :class:`Wait` when the medium's buffer is at or above
        ``target_s`` — timed to when draining will cross back below the
        target if playback is running, or until the next event otherwise
        — and ``None`` when fetching may proceed.
        """
        level = ctx.buffer_level_s(medium)
        if level < target_s - 1e-9:
            return None
        if ctx.playback_state is PlaybackState.PLAYING:
            return Wait(until=ctx.now + (level - target_s) + 1e-6)
        return WAIT_FOREVER

    @staticmethod
    def download(track_id: str) -> Download:
        return download_for(track_id)
