"""Bandwidth estimators used by the player models.

Three families, matching the three players the paper studies plus the
building blocks the best-practices player uses:

* :class:`ShakaEstimator` — Shaka's interval-sampled dual-EWMA with the
  16 KB validity filter and 500 kbps default (Section 3.3). Its failure
  modes under concurrent demuxed downloads are the subject of Fig. 4.
* :class:`ExoBandwidthMeter` — ExoPlayer's sliding-percentile meter over
  whole-transfer throughput samples, weighted by sqrt(bytes).
* :class:`HarmonicMeanEstimator` — the last-N harmonic mean used by
  dash.js's THROUGHPUT rule (and, with a shared byte stream, by the
  best-practices player).
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

from ..errors import PlayerError
from ..units import kilobytes_to_bits
from ..sim.records import DownloadRecord, ProgressSegment


class Ewma:
    """Exponentially weighted moving average with a half-life in seconds.

    Matches Shaka's ``Ewma`` class: each sample carries a weight (its
    duration in seconds); the smoothing coefficient per sample is
    ``0.5 ** (weight / half_life)``. The estimate is corrected for
    startup bias (``zero adjustment``), as in Shaka.
    """

    def __init__(self, half_life_s: float):
        if half_life_s <= 0:
            raise PlayerError(f"half life must be positive, got {half_life_s}")
        self.half_life_s = half_life_s
        self._estimate = 0.0
        self._total_weight = 0.0
        # One-entry alpha memo: interval-sampled estimators feed a long
        # run of identically-weighted samples, making the pow redundant.
        self._alpha_weight = -1.0
        self._alpha = 0.0

    def sample(self, weight_s: float, value: float) -> None:
        if weight_s <= 0:
            raise PlayerError(f"sample weight must be positive, got {weight_s}")
        if weight_s == self._alpha_weight:
            alpha = self._alpha
        else:
            alpha = math.pow(0.5, weight_s / self.half_life_s)
            self._alpha_weight = weight_s
            self._alpha = alpha
        self._estimate = value * (1 - alpha) + alpha * self._estimate
        self._total_weight += weight_s

    @property
    def total_weight_s(self) -> float:
        return self._total_weight

    def get_estimate(self) -> float:
        if self._total_weight <= 0:
            return 0.0
        zero_factor = 1 - math.pow(0.5, self._total_weight / self.half_life_s)
        return self._estimate / zero_factor


class ShakaEstimator:
    """Shaka Player's bandwidth estimator, per the paper's description.

    "While downloading a video track (the same applies to audio
    downloading), Shaka considers each interval (δ = 0.125 s),
    calculates the amount of data d downloaded in that interval, and
    only counts the resultant throughput as a valid sample if d ≥ 16 KB."
    Samples from audio and video downloads feed one estimator, but each
    download is sampled *separately* — so when both media share a
    bottleneck, each stream's samples see only its half of the link.

    The estimate is the minimum of a fast (2 s half-life) and a slow
    (5 s half-life) EWMA; until 128 KB of valid-sample bytes have been
    observed, the 500 kbps default is returned (both per Shaka's
    ``EwmaBandwidthEstimator``).
    """

    def __init__(
        self,
        default_estimate_kbps: float = 500.0,
        interval_s: float = 0.125,
        min_sample_bits: float = kilobytes_to_bits(16),
        min_total_bits: float = kilobytes_to_bits(128),
        fast_half_life_s: float = 2.0,
        slow_half_life_s: float = 5.0,
    ):
        if interval_s <= 0:
            raise PlayerError(f"interval must be positive, got {interval_s}")
        self.default_estimate_kbps = default_estimate_kbps
        self.interval_s = interval_s
        self.min_sample_bits = min_sample_bits
        self.min_total_bits = min_total_bits
        self._fast = Ewma(fast_half_life_s)
        self._slow = Ewma(slow_half_life_s)
        self._bits_sampled = 0.0
        self.valid_samples = 0
        self.discarded_samples = 0

    def _intervals_of(
        self, segments: Sequence[ProgressSegment], started_at: float
    ) -> List[Tuple[float, float]]:
        """(bits, duration) per δ-interval, aligned to the download start.

        Every interval is a full δ except possibly the trailing one,
        which ends when the download does. Scoring that partial interval
        over its *actual* duration (as Shaka's progress events do, each
        weighted by its elapsed time) keeps a near-empty tail from
        dragging the estimate below the true rate.
        """
        if not segments:
            return []
        interval_s = self.interval_s
        # Progress segments are appended in event order, so the last
        # one carries the maximal end time.
        end = segments[-1].end_s
        n_intervals = max(1, math.ceil((end - started_at) / interval_s - 1e-12))
        bits = [0.0] * n_intervals
        for segment in segments:
            seg_bits = segment.bits
            seg_start = segment.start_s
            seg_end = segment.end_s
            if seg_bits <= 0 or segment.duration_s <= 0:
                continue
            rate = seg_bits / segment.duration_s
            # Spread the segment's bits over the δ-grid it overlaps.
            first = int((seg_start - started_at) / interval_s)
            last = min(
                n_intervals - 1,
                int((seg_end - started_at - 1e-12) / interval_s),
            )
            for i in range(max(0, first), last + 1):
                lo = started_at + i * interval_s
                hi = lo + interval_s
                overlap = (hi if hi < seg_end else seg_end) - (
                    lo if lo > seg_start else seg_start
                )
                if overlap > 0:
                    bits[i] += rate * overlap
        durations = [interval_s] * n_intervals
        tail = end - started_at - (n_intervals - 1) * interval_s
        if 0 < tail < interval_s - 1e-12:
            durations[-1] = tail
        return list(zip(bits, durations))

    def observe_download(self, record: DownloadRecord) -> None:
        """Sample one finished download's progress timeline.

        The two EWMAs are updated inline (same arithmetic as
        :meth:`Ewma.sample`, in the same order): a chunk contributes
        dozens of identically-weighted δ-interval samples, so the
        method-call and pow overhead dominated the whole estimator.
        """
        fast = self._fast
        slow = self._slow
        min_sample_bits = self.min_sample_bits
        valid = 0
        discarded = 0
        for interval_bits, duration_s in self._intervals_of(
            record.segments, record.started_at
        ):
            if interval_bits >= min_sample_bits and duration_s > 1e-9:
                kbps = interval_bits / duration_s / 1000.0
                if duration_s == fast._alpha_weight:
                    alpha = fast._alpha
                else:
                    alpha = math.pow(0.5, duration_s / fast.half_life_s)
                    fast._alpha_weight = duration_s
                    fast._alpha = alpha
                fast._estimate = kbps * (1 - alpha) + alpha * fast._estimate
                fast._total_weight += duration_s
                if duration_s == slow._alpha_weight:
                    alpha = slow._alpha
                else:
                    alpha = math.pow(0.5, duration_s / slow.half_life_s)
                    slow._alpha_weight = duration_s
                    slow._alpha = alpha
                slow._estimate = kbps * (1 - alpha) + alpha * slow._estimate
                slow._total_weight += duration_s
                self._bits_sampled += interval_bits
                valid += 1
            else:
                discarded += 1
        self.valid_samples += valid
        self.discarded_samples += discarded

    def get_estimate_kbps(self) -> float:
        if self._bits_sampled < self.min_total_bits:
            return self.default_estimate_kbps
        return min(self._fast.get_estimate(), self._slow.get_estimate())

    @property
    def has_good_estimate(self) -> bool:
        return self._bits_sampled >= self.min_total_bits


class SlidingPercentile:
    """ExoPlayer's ``SlidingPercentile``: weighted percentile over a
    sliding window bounded by total weight."""

    def __init__(self, max_weight: float = 2000.0, percentile: float = 0.5):
        if max_weight <= 0:
            raise PlayerError(f"max weight must be positive, got {max_weight}")
        if not 0 < percentile < 1:
            raise PlayerError(f"percentile must be in (0,1), got {percentile}")
        self.max_weight = max_weight
        self.percentile = percentile
        self._samples: List[Tuple[float, float]] = []  # (weight, value) FIFO
        self._total_weight = 0.0
        self._ordered: Optional[List[Tuple[float, float]]] = None  # sort cache

    def add_sample(self, weight: float, value: float) -> None:
        if weight <= 0:
            raise PlayerError(f"sample weight must be positive, got {weight}")
        self._samples.append((weight, value))
        self._total_weight += weight
        self._ordered = None
        while self._total_weight > self.max_weight and len(self._samples) > 1:
            old_weight, _ = self._samples.pop(0)
            self._total_weight -= old_weight

    def get_percentile(self) -> Optional[float]:
        if not self._samples:
            return None
        # The sample window only changes in add_sample; re-sorting on
        # every read (players poll the estimate per decision) is wasted.
        ordered = self._ordered
        if ordered is None:
            ordered = self._ordered = sorted(self._samples, key=lambda s: s[1])
        threshold = self.percentile * self._total_weight
        acc = 0.0
        for weight, value in ordered:
            acc += weight
            if acc >= threshold:
                return value
        return ordered[-1][1]


class ExoBandwidthMeter:
    """ExoPlayer's ``DefaultBandwidthMeter`` over per-transfer samples.

    Each completed chunk transfer contributes one throughput sample
    weighted by ``sqrt(bytes)``; the estimate is the weighted median.
    ExoPlayer's meter aggregates audio and video transfers into the one
    meter ("estimates the available network bandwidth by considering
    both video and audio downloading", Section 3.2).
    """

    def __init__(self, initial_estimate_kbps: float = 1000.0):
        self._percentile = SlidingPercentile()
        self.initial_estimate_kbps = initial_estimate_kbps

    def observe_download(self, record: DownloadRecord) -> None:
        # Exclude request dead time the same way ExoPlayer only counts
        # time while data flows on the transfer.
        active = [s for s in record.segments if s.bits > 0]
        if active:
            elapsed = record.completed_at - min(s.start_s for s in active)
        else:
            elapsed = record.duration_s
        if elapsed <= 0:
            return
        kbps = record.size_bits / elapsed / 1000.0
        weight = math.sqrt(record.size_bits / 8.0 / 1024.0)  # sqrt(KB)
        self._percentile.add_sample(weight, kbps)

    def get_estimate_kbps(self) -> float:
        estimate = self._percentile.get_percentile()
        return self.initial_estimate_kbps if estimate is None else estimate


class HarmonicMeanEstimator:
    """Harmonic mean of the last N per-chunk throughput samples.

    This is the dash.js THROUGHPUT rule's estimator (Spiteri et al.,
    MMSys'18). The harmonic mean is robust to single fast outliers,
    which matters for VBR chunks.
    """

    def __init__(self, window: int = 3, initial_estimate_kbps: Optional[float] = None):
        if window <= 0:
            raise PlayerError(f"window must be positive, got {window}")
        self.window = window
        self.initial_estimate_kbps = initial_estimate_kbps
        self._samples: List[float] = []

    def add_sample_kbps(self, kbps: float) -> None:
        if kbps <= 0:
            raise PlayerError(f"throughput sample must be positive, got {kbps}")
        self._samples.append(kbps)
        if len(self._samples) > self.window:
            self._samples.pop(0)

    def observe_download(self, record: DownloadRecord) -> None:
        if record.duration_s > 0:
            self.add_sample_kbps(record.throughput_kbps)

    @property
    def n_samples(self) -> int:
        return len(self._samples)

    def get_estimate_kbps(self) -> Optional[float]:
        if not self._samples:
            return self.initial_estimate_kbps
        return len(self._samples) / sum(1.0 / s for s in self._samples)


class SharedThroughputEstimator:
    """Wall-clock pooled-link estimator for the best-practices player.

    Pools *all* bytes received across both media within a sliding
    wall-clock window and divides by the merged union of the busy
    intervals in that window. Overlapping audio/video downloads
    therefore contribute their summed bytes over shared time counted
    once, so concurrency does not halve the estimate — fixing the Shaka
    failure mode of Section 3.3. Idle gaps (buffers full) are excluded
    by the busy-interval union, so the estimate tracks link capacity,
    not demand.
    """

    def __init__(
        self, window_s: float = 20.0, initial_estimate_kbps: Optional[float] = None
    ):
        if window_s <= 0:
            raise PlayerError(f"window must be positive, got {window_s}")
        self.window_s = window_s
        self.initial_estimate_kbps = initial_estimate_kbps
        self._segments: List[Tuple[float, float, float]] = []  # (t0, t1, bits)
        self._now = 0.0
        #: Memoized estimate: the busy-interval merge is a function of
        #: (_segments, _now) only, both of which change solely in
        #: observe_download — so between downloads every read returns
        #: the same value and the merge can be done once.
        self._cached: Optional[Tuple[Optional[float]]] = None

    def observe_download(self, record: DownloadRecord) -> None:
        for segment in record.segments:
            if segment.bits > 0:
                self._segments.append(
                    (segment.start_s, segment.end_s, segment.bits)
                )
        self._now = max(self._now, record.completed_at)
        self._cached = None
        # Drop segments that can no longer enter the window.
        horizon = self._now - self.window_s
        self._segments = [s for s in self._segments if s[1] > horizon]

    def get_estimate_kbps(self) -> Optional[float]:
        if self._cached is not None:
            return self._cached[0]
        estimate = self._compute_estimate_kbps()
        self._cached = (estimate,)
        return estimate

    def _compute_estimate_kbps(self) -> Optional[float]:
        if not self._segments:
            return self.initial_estimate_kbps
        horizon = self._now - self.window_s
        bits = 0.0
        intervals: List[Tuple[float, float]] = []
        for t0, t1, segment_bits in self._segments:
            if t1 <= horizon:
                continue
            if t0 < horizon:
                # Count only the in-window fraction of a straddling segment.
                segment_bits *= (t1 - horizon) / (t1 - t0)
                t0 = horizon
            bits += segment_bits
            intervals.append((t0, t1))
        if not intervals:
            return self.initial_estimate_kbps
        intervals.sort()
        merged: List[Tuple[float, float]] = []
        for t0, t1 in intervals:
            if merged and t0 <= merged[-1][1] + 1e-9:
                merged[-1] = (merged[-1][0], max(merged[-1][1], t1))
            else:
                merged.append((t0, t1))
        busy_time = sum(t1 - t0 for t0, t1 in merged)
        if busy_time <= 0:
            return self.initial_estimate_kbps
        return bits / busy_time / 1000.0
