"""Command-line interface.

::

    repro-abr list                 # available experiments
    repro-abr run fig4a            # one experiment, full report
    repro-abr run --all            # everything, summary + reports
    repro-abr simulate --player shaka --bandwidth 1000
    repro-abr manifest --format hls --combinations hsub

Exit status is non-zero when any executed experiment fails its
shape-level checks, so CI can gate on reproduction.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from .core.combinations import all_combinations, hsub_combinations
from .core.player import RecommendedPlayer
from .experiments import experiment_names, run_experiment
from .analysis.findings import Severity
from .manifest.dash import write_mpd
from .manifest.packager import package_dash, package_hls
from .media.content import drama_show
from .net.link import shared
from .net.traces import constant
from .players.dashjs import DashJsPlayer
from .players.exoplayer import ExoPlayerDash, ExoPlayerHls
from .players.shaka import ShakaPlayer
from .qoe.metrics import compute_qoe
from .sim.session import simulate


def _build_player(name: str, content, combinations: str):
    combos = (
        hsub_combinations(content)
        if combinations == "hsub"
        else all_combinations(content)
    )
    if name == "exoplayer-dash":
        return ExoPlayerDash(package_dash(content))
    if name == "exoplayer-hls":
        return ExoPlayerHls(package_hls(content, combinations=combos).master)
    if name == "shaka":
        return ShakaPlayer.from_hls(package_hls(content, combinations=combos).master)
    if name == "dashjs":
        return DashJsPlayer(package_dash(content))
    if name == "recommended":
        return RecommendedPlayer(combos)
    raise SystemExit(f"unknown player {name!r}")


def cmd_list(_args) -> int:
    for name in experiment_names():
        print(name)
    return 0


def _runner_options_from(args):
    """The runner configuration implied by --jobs/--cache/--no-cache
    plus the robustness knobs (--job-timeout/--job-retries/--chaos)."""
    from .runner import runner_options

    cache_dir = args.cache_dir if args.cache and not args.no_cache else None
    chaos = None
    if args.chaos:
        from .chaos import ChaosSchedule

        chaos = ChaosSchedule.from_spec(args.chaos).with_log(args.chaos_log)
        if args.jobs <= 1:
            raise SystemExit(
                "--chaos needs --jobs >= 2: its faults kill real worker "
                "processes, which the in-process serial path cannot survive"
            )
    return runner_options(
        workers=args.jobs,
        cache_dir=cache_dir,
        job_timeout_s=args.job_timeout,
        job_retries=args.job_retries,
        chaos=chaos,
        record_dir=args.record,
    )


def cmd_run(args) -> int:
    from .experiments.plotting import render_report_charts

    names = experiment_names() if args.all else args.names
    if not names:
        print("nothing to run: give experiment names or --all", file=sys.stderr)
        return 2
    failures = 0
    with _runner_options_from(args):
        for name in names:
            report = run_experiment(name)
            print(report.render())
            if args.plot and report.series:
                print()
                print(render_report_charts(report))
            print()
            if not report.passed:
                failures += 1
    print(f"{len(names) - failures}/{len(names)} experiments reproduced")
    return 1 if failures else 0


def cmd_simulate(args) -> int:
    from .net.resilience import RetryPolicy
    from .qoe.diagnosis import diagnose
    from .runner.jobs import FailureSpec, PlayerSpec, SimulationJob, TraceSpec

    # Expressing the ad-hoc session as a SimulationJob means a recorded
    # log embeds the full job spec, so `replay --verify` can re-simulate
    # it later without this command line.
    failure = None
    retry_policy = None
    if args.failure_p > 0:
        failure = FailureSpec.with_mix(
            args.failure_p,
            args.failure_seed,
            mix=None,
            resume_probability=args.resume_p,
        )
        retry_policy = RetryPolicy(
            max_attempts=args.max_attempts,
            base_delay_s=args.retry_base_delay,
            retry_budget=args.retry_budget,
            request_timeout_s=args.request_timeout,
        )
    job = SimulationJob(
        player=PlayerSpec(args.player, combinations=args.combinations),
        trace=TraceSpec.constant(args.bandwidth),
        failure=failure,
        retry_policy=retry_policy,
        live_offset_s=args.live_offset,
    )
    observer = None
    if args.record:
        from .replay import EventRecorder

        observer = EventRecorder(
            args.record,
            extra_meta={
                "job": job.spec_dict(),
                "key": job.key(),
                "label": job.label(),
            },
        )
    content, player, network, config = job.build(observer=observer)
    result = simulate(content, player, network, config)
    if observer is not None:
        print(f"recorded {observer.events_written} events to {args.record}")
    summary = result.summary()
    qoe = compute_qoe(result, content)
    for key, value in summary.items():
        print(f"{key}: {value}")
    print("qoe:", qoe.as_dict())
    findings = diagnose(result, content)
    if findings:
        print("diagnosis:")
        for finding in findings:
            print(f"  {finding}")
    else:
        print("diagnosis: clean (no known pathologies)")
    return 0


def cmd_cohort(args) -> int:
    import json as _json

    from .chaos.invariants import check_cohort
    from .net.resilience import FailoverPolicy
    from .topology import CohortJob, FaultDomainSchedule, TopologySpec

    faults = None
    if args.faults:
        faults = FaultDomainSchedule.from_spec(args.faults)
    job = CohortJob(
        topology=TopologySpec.uniform(
            args.edges,
            capacity_kbps=args.capacity,
            cache_chunks=args.cache_chunks,
        ),
        faults=faults,
        n_sessions=args.sessions,
        arrival_burst_s=args.burst,
        failover=FailoverPolicy(failover_budget=args.failover_budget),
        seed=args.seed,
        keep_summaries=not args.no_summaries,
    )
    record_dir = None
    if args.fault_log:
        record_dir = os.path.dirname(os.path.abspath(args.fault_log)) or "."
    result = job.execute(record_dir=record_dir)
    if args.fault_log:
        from .replay.recorder import record_path

        written = record_path(record_dir, job.key())
        target = os.path.abspath(args.fault_log)
        if written != target:
            os.replace(written, target)
        print(f"fault-domain event log: {args.fault_log}")
    print(f"cohort {job.label()}")
    print(f"fingerprint: {result.fingerprint()}")
    print(
        f"sessions: {result.n_sessions}  completed: "
        f"{result.completed_sessions}  degraded: {result.degraded_sessions}"
    )
    print(f"verdicts: {result.verdict_counts}")
    print("aggregate:")
    print(_json.dumps(result.aggregate, indent=2, sort_keys=True))
    print("edges:")
    for edge_id, ledger in result.edges.items():
        print(f"  {edge_id}: " + ", ".join(
            f"{k}={v:.0f}" if isinstance(v, float) else f"{k}={v}"
            for k, v in ledger.items()
        ))
    violations = check_cohort(result)
    if violations:
        print("INVARIANT VIOLATIONS:", file=sys.stderr)
        for violation in violations:
            print(f"  {violation}", file=sys.stderr)
        return 1
    print("invariants: all hold")
    return 0


def cmd_manifest(args) -> int:
    content = drama_show()
    if args.format == "dash":
        print(write_mpd(package_dash(content, self_lint=args.self_lint)))
        return 0
    combos = (
        hsub_combinations(content)
        if args.combinations == "hsub"
        else all_combinations(content)
    )
    package = package_hls(content, combinations=combos, self_lint=args.self_lint)
    for filename, text in package.write_all().items():
        print(f"### {filename}")
        print(text)
    return 0


#: File suffixes the lint path-collector picks up from directories.
_LINTABLE_SUFFIXES = (".m3u8", ".m3u", ".mpd", ".xml", ".py")


def _collect_lint_files(paths):
    """{name: text} for explicit files plus lintable files under dirs."""
    import os

    files = {}
    for path in paths:
        if os.path.isdir(path):
            hits = []
            for root, dirs, names in os.walk(path):
                # Lint-fixture corpora are deliberately broken inputs;
                # skip them when recursing (explicit file arguments
                # still lint them).
                dirs[:] = [d for d in dirs if d != "fixtures"]
                for name in names:
                    if name.lower().endswith(_LINTABLE_SUFFIXES):
                        hits.append(os.path.join(root, name))
            for hit in sorted(hits):
                with open(hit, "r", encoding="utf-8") as fh:
                    files[hit] = fh.read()
        else:
            with open(path, "r", encoding="utf-8") as fh:
                files[path] = fh.read()
    return files


def _packaged_lint_files(args):
    """Synthesize the reference-title packaging the legacy CLI linted."""
    content = drama_show()
    manifest_format = (
        args.format if args.format in ("dash", "hls") else args.manifest
    )
    combos = hsub_combinations(content) if args.curated else None
    if manifest_format == "dash":
        manifest = package_dash(content, allowed_combinations=combos)
        return {"manifest.mpd": write_mpd(manifest)}
    package = package_hls(
        content,
        combinations=combos,
        single_file=not args.chunk_files,
        include_bitrate_tag=args.bitrate_tags,
    )
    return package.write_all()


def cmd_lint(args) -> int:
    """Lint manifests (or Python sources) with ``repro.analysis``.

    Exit codes: 0 clean or warnings only, 1 at least one ERROR,
    2 a document could not be parsed at all (or bad usage).
    """
    from . import analysis

    disabled = frozenset(
        rule_id for spec in args.disable for rule_id in spec.split(",") if rule_id
    )
    selected = frozenset(
        rule_id for spec in args.select for rule_id in spec.split(",") if rule_id
    )
    baseline = None
    if args.baseline:
        try:
            with open(args.baseline, "r", encoding="utf-8") as fh:
                baseline = analysis.Baseline.loads(fh.read())
        except (OSError, ValueError) as exc:
            print(f"cannot read baseline {args.baseline}: {exc}", file=sys.stderr)
            return 2
    import os

    surfaces_given = args.surfaces is not None
    if args.surfaces is None:
        args.surfaces = "surfaces"
    surfaces_dir = args.surfaces
    if not os.path.isdir(surfaces_dir) and not args.update_surfaces:
        # The default "surfaces" only arms the SURF comparisons when
        # the snapshot directory actually exists (linting an arbitrary
        # tree must not demand one); an explicit missing path is a
        # usage error.
        if surfaces_given:
            print(
                f"surfaces directory {surfaces_dir!r} does not exist "
                "(run `repro-abr lint --update-surfaces` to create it)",
                file=sys.stderr,
            )
            return 2
        surfaces_dir = None
    config = analysis.AnalyzerConfig(
        disabled=disabled,
        selected=selected or None,
        baseline=baseline,
        surfaces_dir=surfaces_dir,
    )

    from_disk = bool(args.paths)
    try:
        files = (
            _collect_lint_files(args.paths)
            if from_disk
            else _packaged_lint_files(args)
        )
    except OSError as exc:
        print(f"cannot read input: {exc}", file=sys.stderr)
        return 2

    if args.update_surfaces:
        if not from_disk:
            print(
                "--update-surfaces needs explicit path arguments (the "
                "surfaces are extracted from the source tree)",
                file=sys.stderr,
            )
            return 2
        from .analysis.code_surfaces import write_surfaces
        from .analysis.engine import prepare

        try:
            prepared, ctx = prepare(files, analysis.AnalyzerConfig())
        except analysis.AnalysisParseFailure as exc:
            print(f"parse failure: {exc}", file=sys.stderr)
            return 2
        sources = {a.name: a.python for a in prepared if a.python is not None}
        written = write_surfaces(args.surfaces, sources, ctx.program)
        print(
            f"wrote {len(written)} surface snapshot(s) to {args.surfaces}: "
            + ", ".join(written),
            file=sys.stderr,
        )

    if args.fix:
        if not from_disk:
            print(
                "--fix needs explicit file arguments (the built-in packaging "
                "is generated, not on disk)",
                file=sys.stderr,
            )
            return 2
        from .analysis.autofix import fix_files

        try:
            result = fix_files(files, config)
        except analysis.AnalysisParseFailure as exc:
            print(f"parse failure: {exc}", file=sys.stderr)
            return 2
        for name, text in result.files.items():
            if text != files[name]:
                with open(name, "w", encoding="utf-8") as fh:
                    fh.write(text)
        if result.n_fixed:
            print(
                f"fixed {result.n_fixed} finding(s) in {result.passes} pass(es)",
                file=sys.stderr,
            )
        files = result.files

    try:
        if args.jobs > 1:
            from .analysis.parallel import analyze_files_parallel

            findings = analyze_files_parallel(files, config, jobs=args.jobs)
        else:
            findings = analysis.analyze_files(files, config)
    except analysis.AnalysisParseFailure as exc:
        print(f"parse failure: {exc}", file=sys.stderr)
        return 2

    if args.write_baseline:
        with open(args.write_baseline, "w", encoding="utf-8") as fh:
            fh.write(analysis.Baseline.from_findings(findings).dumps())
        print(
            f"wrote baseline with {len(findings)} fingerprint(s) to "
            f"{args.write_baseline}",
            file=sys.stderr,
        )

    output_format = args.format if args.format in ("json", "sarif") else "text"
    renderer = {
        "text": analysis.render_text,
        "json": analysis.render_json,
        "sarif": analysis.render_sarif,
    }[output_format]
    sys.stdout.write(renderer(findings))
    return 1 if analysis.worst_severity(findings) is Severity.ERROR else 0


def cmd_compare(args) -> int:
    """All players on one link, one table."""
    from .media.tracks import MediaType
    from .qoe.metrics import compute_qoe

    content = drama_show()
    header = (
        f"{'player':<16} {'video':>6} {'audio':>6} {'stalls':>6} "
        f"{'rebuf s':>8} {'switches':>8} {'imbal s':>8} {'QoE':>8}"
    )
    print(f"link: constant {args.bandwidth:.0f} kbps")
    print(header)
    print("-" * len(header))
    for name in ("exoplayer-dash", "exoplayer-hls", "shaka", "dashjs", "recommended"):
        player = _build_player(name, content, args.combinations)
        result = simulate(content, player, shared(constant(args.bandwidth)))
        qoe = compute_qoe(result, content)
        print(
            f"{name:<16} "
            f"{result.time_weighted_bitrate_kbps(MediaType.VIDEO):>6.0f} "
            f"{result.time_weighted_bitrate_kbps(MediaType.AUDIO):>6.0f} "
            f"{result.n_stalls:>6d} {result.total_rebuffer_s:>8.1f} "
            f"{qoe.video_switches + qoe.audio_switches:>8d} "
            f"{result.max_buffer_imbalance_s():>8.1f} {qoe.score:>8.1f}"
        )
    return 0


def cmd_trace(args) -> int:
    """Generate or convert bandwidth traces."""
    from .net.mahimahi import load_mahimahi, save_mahimahi
    from .net.markov import hspa_preset, lte_preset
    from .net.traces import from_csv, load_trace, random_walk, save_trace

    if args.input:
        if args.input_format == "mahimahi":
            trace = load_mahimahi(args.input)
        elif args.input_format == "measured":
            trace = from_csv(args.input, unit=args.unit)
        else:
            trace = load_trace(args.input)
    elif args.preset == "lte":
        trace = lte_preset(duration_s=args.duration, seed=args.seed)
    elif args.preset == "hspa":
        trace = hspa_preset(duration_s=args.duration, seed=args.seed)
    else:  # random
        trace = random_walk(mean_kbps=args.mean, seed=args.seed)

    print(
        f"trace: {len(trace.segments)} segments, period {trace.period_s:.1f} s, "
        f"avg {trace.average_kbps():.0f} kbps "
        f"(min {trace.min_kbps():.0f}, max {trace.max_kbps():.0f})"
    )
    if args.output:
        if args.format == "mahimahi":
            save_mahimahi(trace, args.output, duration_s=args.duration)
        else:
            save_trace(trace, args.output)
        print(f"wrote {args.output} ({args.format})")
    return 0


def cmd_replay(args) -> int:
    """Re-derive session metrics from recorded event logs.

    Exit codes: 0 all logs replayed (and, with --verify, matched a
    fresh simulation byte-for-byte), 1 a verification mismatch,
    2 a log could not be replayed at all.
    """
    from .replay import ReplayError, replay_session

    status = 0
    for path in args.logs:
        try:
            replayed = replay_session(path, strict=args.strict)
        except (OSError, ReplayError) as exc:
            print(f"{path}: {exc}", file=sys.stderr)
            status = max(status, 2)
            continue
        print(f"== {path}")
        if replayed.damage:
            where = (
                f" at line {replayed.damage_line}"
                if replayed.damage_line is not None
                else ""
            )
            print(f"damage: {replayed.damage}{where} ({replayed.damage_detail})")
        print(
            f"events: {len(replayed.events)}, verdict: "
            f"{'recorded' if replayed.has_verdict else 'missing (torn prefix)'}"
        )
        for key, value in replayed.result.summary().items():
            print(f"{key}: {value}")
        print("qoe:", replayed.qoe().as_dict())
        if args.verify:
            status = max(status, _verify_replay(path, replayed))
    return status


def _verify_replay(path: str, replayed) -> int:
    """Re-simulate the log's embedded job; compare metrics exactly."""
    from .runner.jobs import SimulationJob

    spec = replayed.job_spec
    if spec is None:
        print(
            f"{path}: verify impossible: the log embeds no job spec "
            "(record it through the runner's --record to verify)",
            file=sys.stderr,
        )
        return 2
    job = SimulationJob.from_spec(spec)
    content, player, network, config = job.build()
    live = simulate(content, player, network, config)
    live_summary = live.summary()
    replay_summary = replayed.result.summary()
    live_qoe = compute_qoe(live, content).as_dict()
    replay_qoe = replayed.qoe().as_dict()
    mismatches = [
        f"  {key}: live {live_summary[key]!r} != replay {replay_summary.get(key)!r}"
        for key in live_summary
        if live_summary[key] != replay_summary.get(key)
    ] + [
        f"  qoe.{key}: live {live_qoe[key]!r} != replay {replay_qoe.get(key)!r}"
        for key in live_qoe
        if live_qoe[key] != replay_qoe.get(key)
    ]
    if not mismatches:
        print("verify: OK (re-simulated metrics byte-identical)")
        return 0
    print(f"verify: MISMATCH ({len(mismatches)} metric(s) differ)")
    for line in mismatches:
        print(line)
    return 1


def cmd_diff_events(args) -> int:
    """Diff two event logs (or two recording directories pairwise).

    Exit codes: 0 identical within tolerance, 1 any divergence or
    unpaired log, 2 nothing comparable.
    """
    import json
    import os

    from .replay import ReplayError
    from .replay.diff import diff_event_logs

    pairs = []
    problems = 0
    if os.path.isdir(args.a) and os.path.isdir(args.b):
        names_a = {n for n in os.listdir(args.a) if n.endswith(".events.jsonl")}
        names_b = {n for n in os.listdir(args.b) if n.endswith(".events.jsonl")}
        for name in sorted(names_a ^ names_b):
            side = args.a if name in names_a else args.b
            print(f"{name}: only in {side}", file=sys.stderr)
            problems += 1
        pairs = [
            (os.path.join(args.a, n), os.path.join(args.b, n), n)
            for n in sorted(names_a & names_b)
        ]
        if not pairs and not problems:
            print("no event logs found to compare", file=sys.stderr)
            return 2
    else:
        pairs = [(args.a, args.b, f"{args.a} vs {args.b}")]
    for path_a, path_b, label in pairs:
        try:
            report = diff_event_logs(
                path_a,
                path_b,
                rtol=args.rtol,
                atol=args.atol,
                context=args.context,
                canonical=args.canonical,
            )
        except (OSError, ReplayError) as exc:
            print(f"{label}: {exc}", file=sys.stderr)
            problems += 1
            continue
        for side, path, damage in (
            ("A", path_a, report.damage_a),
            ("B", path_b, report.damage_b),
        ):
            if damage:
                print(f"{label}: log {side} ({path}) is {damage}")
        if report.identical:
            print(f"{label}: identical ({report.events_compared} events)")
            continue
        problems += 1
        print(f"{label}: {report.divergence.describe()}")
        for event in report.context:
            print(f"  ...  {json.dumps(event, sort_keys=True)}")
        if report.divergence.a is not None:
            print(f"  A -> {json.dumps(report.divergence.a, sort_keys=True)}")
        if report.divergence.b is not None:
            print(f"  B -> {json.dumps(report.divergence.b, sort_keys=True)}")
    return 1 if problems else 0


def cmd_report(args) -> int:
    from .experiments.reporting import write_reports

    with _runner_options_from(args):
        outcomes = write_reports(
            args.output,
            names=args.names or None,
            include_charts=not args.no_charts,
        )
    for name, passed in sorted(outcomes.items()):
        print(f"{name}: {'REPRODUCED' if passed else 'MISMATCH'}")
    print(f"wrote {len(outcomes)} reports to {args.output}/")
    return 0 if all(outcomes.values()) else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-abr",
        description="Reproduction of 'ABR Streaming with Separate Audio and "
        "Video Tracks' (CoNEXT 2019)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list experiments").set_defaults(func=cmd_list)

    def add_runner_flags(parser: argparse.ArgumentParser) -> None:
        parser.add_argument(
            "--jobs",
            type=int,
            default=1,
            metavar="N",
            help="worker processes for grid experiments (1 = in-process serial)",
        )
        parser.add_argument(
            "--cache",
            action="store_true",
            help="replay previously simulated sessions from the result cache",
        )
        parser.add_argument(
            "--no-cache",
            action="store_true",
            help="force fresh simulation even when --cache is given",
        )
        parser.add_argument(
            "--cache-dir",
            default=".repro-cache",
            help="result-cache directory (default: .repro-cache)",
        )
        parser.add_argument(
            "--job-timeout",
            type=float,
            default=None,
            metavar="SECONDS",
            help="per-job wall-clock deadline; hung workers are killed and "
            "the job is requeued (pool mode only)",
        )
        parser.add_argument(
            "--job-retries",
            type=int,
            default=2,
            metavar="N",
            help="extra attempts granted to a crashed, hung or raising job "
            "before it is surfaced as failed (default: 2)",
        )
        parser.add_argument(
            "--chaos",
            metavar="SPEC",
            help="arm the fault injector: KINDS[:KEY=VALUE,...] with "
            "dash-separated kinds from kill/hang/raise/truncate or 'all' "
            "(e.g. 'kill-hang', 'raise:p=0.5,seed=3'); needs --jobs >= 2",
        )
        parser.add_argument(
            "--chaos-log",
            default="chaos-events.jsonl",
            metavar="FILE",
            help="JSON-lines chaos event log (faults injected, watchdog "
            "kills, requeues); only written when --chaos is armed",
        )
        parser.add_argument(
            "--record",
            default=None,
            metavar="DIR",
            help="record every simulated session's event log to "
            "DIR/<job key>.events.jsonl; intact logs double as a cache "
            "(replayed instead of re-simulated on the next run)",
        )

    run_parser = sub.add_parser("run", help="run experiments")
    run_parser.add_argument("names", nargs="*", help="experiment names")
    run_parser.add_argument("--all", action="store_true", help="run everything")
    run_parser.add_argument(
        "--plot", action="store_true", help="render time-series as ASCII charts"
    )
    add_runner_flags(run_parser)
    run_parser.set_defaults(func=cmd_run)

    sim_parser = sub.add_parser("simulate", help="one ad-hoc session")
    sim_parser.add_argument(
        "--player",
        default="recommended",
        choices=["exoplayer-dash", "exoplayer-hls", "shaka", "dashjs", "recommended"],
    )
    sim_parser.add_argument("--bandwidth", type=float, default=1000.0, help="kbps")
    sim_parser.add_argument(
        "--combinations", default="hsub", choices=["hsub", "all"]
    )
    sim_parser.add_argument(
        "--live-offset",
        type=float,
        default=None,
        help="live mode: packaging delay in seconds (omit for VOD)",
    )
    sim_parser.add_argument(
        "--failure-p",
        type=float,
        default=0.0,
        help="per-request failure probability (0 disables injection)",
    )
    sim_parser.add_argument(
        "--failure-seed", type=int, default=0, help="failure-model RNG seed"
    )
    sim_parser.add_argument(
        "--resume-p",
        type=float,
        default=0.6,
        help="fraction of byte-kind failures kept range-resumable",
    )
    sim_parser.add_argument(
        "--max-attempts", type=int, default=4, help="tries per chunk request"
    )
    sim_parser.add_argument(
        "--retry-base-delay",
        type=float,
        default=0.4,
        help="backoff base delay in seconds",
    )
    sim_parser.add_argument(
        "--retry-budget", type=int, default=64, help="retries per session"
    )
    sim_parser.add_argument(
        "--request-timeout",
        type=float,
        default=8.0,
        help="per-request watchdog in seconds",
    )
    sim_parser.add_argument(
        "--record",
        metavar="FILE",
        default=None,
        help="record the session's event log to FILE (replayable with "
        "'repro-abr replay')",
    )
    sim_parser.set_defaults(func=cmd_simulate)

    cohort_parser = sub.add_parser(
        "cohort",
        help="run a multi-session cohort over an edge topology with "
        "correlated fault domains",
    )
    cohort_parser.add_argument(
        "--sessions", type=int, default=100, help="cohort size"
    )
    cohort_parser.add_argument(
        "--edges", type=int, default=3, help="number of CDN edges"
    )
    cohort_parser.add_argument(
        "--capacity", type=float, default=20_000.0,
        help="per-edge uplink capacity in kbps (fair-shared)",
    )
    cohort_parser.add_argument(
        "--cache-chunks", type=int, default=512,
        help="per-edge LRU cache capacity in chunks (0 disables)",
    )
    cohort_parser.add_argument(
        "--burst", type=float, default=30.0,
        help="flash-crowd arrival window in seconds",
    )
    cohort_parser.add_argument(
        "--faults", default=None,
        help="fault-domain spec, e.g. 'all', 'edge_outage:seed=3', "
        "'none:pin=edge_outage@edge-1@60@90'",
    )
    cohort_parser.add_argument(
        "--failover-budget", type=int, default=8,
        help="endpoint switches each session may spend",
    )
    cohort_parser.add_argument("--seed", type=int, default=0)
    cohort_parser.add_argument(
        "--no-summaries", action="store_true",
        help="drop per-session summaries (O(1) memory for huge cohorts)",
    )
    cohort_parser.add_argument(
        "--fault-log", metavar="FILE", default=None,
        help="write the schema-2 fault-domain event log to FILE",
    )
    cohort_parser.set_defaults(func=cmd_cohort)

    replay_parser = sub.add_parser(
        "replay",
        help="re-derive session metrics from recorded event logs "
        "without re-simulating",
    )
    replay_parser.add_argument("logs", nargs="+", help="event-log files")
    replay_parser.add_argument(
        "--strict",
        action="store_true",
        help="refuse corrupt logs instead of replaying the intact prefix "
        "(truncation is always tolerated)",
    )
    replay_parser.add_argument(
        "--verify",
        action="store_true",
        help="re-simulate each log's embedded job spec and require "
        "byte-identical summary and QoE metrics",
    )
    replay_parser.set_defaults(func=cmd_replay)

    diff_parser = sub.add_parser(
        "diff-events",
        help="align two event logs (or recording directories) and report "
        "the first divergence",
    )
    diff_parser.add_argument("a", help="first log file or recording directory")
    diff_parser.add_argument("b", help="second log file or recording directory")
    diff_parser.add_argument(
        "--rtol",
        type=float,
        default=0.0,
        metavar="R",
        help="relative float tolerance (default 0: exact — recorded "
        "floats round-trip exactly)",
    )
    diff_parser.add_argument(
        "--atol",
        type=float,
        default=0.0,
        metavar="A",
        help="absolute float tolerance (default 0)",
    )
    diff_parser.add_argument(
        "--context",
        type=int,
        default=3,
        metavar="N",
        help="events of context to print before a divergence (default 3)",
    )
    diff_parser.add_argument(
        "--canonical",
        action="store_true",
        help="compare deduplicated canonical forms: collapse coincident "
        "duplicate buffer samples and ignore seq renumbering, accepting "
        "logs recorded before the kernel deduped them (default: exact)",
    )
    diff_parser.set_defaults(func=cmd_diff_events)

    man_parser = sub.add_parser("manifest", help="emit manifests for the title")
    man_parser.add_argument("--format", default="dash", choices=["dash", "hls"])
    man_parser.add_argument(
        "--combinations", default="all", choices=["hsub", "all"]
    )
    man_parser.add_argument(
        "--self-lint",
        action="store_true",
        help="fail if the emitted packaging has ERROR-level lint findings",
    )
    man_parser.set_defaults(func=cmd_manifest)

    lint_parser = sub.add_parser(
        "lint",
        help="static-analyze manifests (RFC 8216 / DASH-IF / Section 4.1) "
        "and Python sources (determinism DET-*, units/dimension flow "
        "UNIT-*, pickle/fork safety POOL-*, shared-state SHARE-*, "
        "hot-path discipline HOT-*, compatibility surfaces SURF-*, "
        "player contract POLICY-*)",
    )
    lint_parser.add_argument(
        "paths",
        nargs="*",
        help="manifest or Python files (or directories) to lint; "
        "omit to lint a generated packaging of the reference title",
    )
    lint_parser.add_argument(
        "--format",
        default="text",
        choices=["text", "json", "sarif", "dash", "hls"],
        help="output format; 'dash'/'hls' are legacy aliases selecting "
        "the generated packaging (text output)",
    )
    lint_parser.add_argument(
        "--manifest",
        default="hls",
        choices=["dash", "hls"],
        help="which packaging to generate when no paths are given",
    )
    lint_parser.add_argument(
        "--curated",
        action="store_true",
        help="package the curated H_sub subset instead of all combinations",
    )
    lint_parser.add_argument(
        "--chunk-files",
        action="store_true",
        help="package one file per chunk (no byte ranges)",
    )
    lint_parser.add_argument(
        "--bitrate-tags",
        action="store_true",
        help="emit EXT-X-BITRATE tags",
    )
    lint_parser.add_argument(
        "--fix",
        action="store_true",
        help="apply autofixes to the given files in place before reporting",
    )
    lint_parser.add_argument(
        "--disable",
        action="append",
        default=[],
        metavar="RULES",
        help="comma-separated rule IDs to skip (repeatable)",
    )
    lint_parser.add_argument(
        "--select",
        action="append",
        default=[],
        metavar="RULES",
        help="comma-separated rule IDs to run exclusively (repeatable)",
    )
    lint_parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="lint with N worker processes (two-phase: summarize, then "
        "lint against the merged whole-program index); findings are "
        "identical to a serial run",
    )
    lint_parser.add_argument(
        "--baseline",
        help="suppression file of known-finding fingerprints to ignore",
    )
    lint_parser.add_argument(
        "--write-baseline",
        metavar="FILE",
        help="record current findings as the new baseline",
    )
    lint_parser.add_argument(
        "--surfaces",
        default=None,
        metavar="DIR",
        help="directory of committed compatibility-surface snapshots "
        "the SURF-* rules compare against (default: surfaces/ when it "
        "exists)",
    )
    lint_parser.add_argument(
        "--update-surfaces",
        action="store_true",
        help="re-extract the compatibility surfaces from the given "
        "paths and rewrite the snapshot files before linting",
    )
    lint_parser.set_defaults(func=cmd_lint)

    report_parser = sub.add_parser(
        "report", help="write Markdown+JSON reports for experiments"
    )
    report_parser.add_argument("names", nargs="*", help="experiment names (default all)")
    report_parser.add_argument("--output", default="results", help="output directory")
    report_parser.add_argument(
        "--no-charts", action="store_true", help="omit ASCII charts"
    )
    add_runner_flags(report_parser)
    report_parser.set_defaults(func=cmd_report)

    trace_parser = sub.add_parser("trace", help="generate/convert bandwidth traces")
    trace_parser.add_argument(
        "--preset", default="hspa", choices=["lte", "hspa", "random"]
    )
    trace_parser.add_argument("--seed", type=int, default=1)
    trace_parser.add_argument("--duration", type=float, default=300.0)
    trace_parser.add_argument("--mean", type=float, default=600.0, help="random preset mean kbps")
    trace_parser.add_argument("--input", help="convert an existing trace file instead")
    trace_parser.add_argument(
        "--input-format",
        default="csv",
        choices=["csv", "mahimahi", "measured"],
        help="'csv' is the save_trace duration,kbps format; 'measured' "
        "imports FCC/3G-style timestamp,bandwidth logs",
    )
    trace_parser.add_argument(
        "--unit",
        default="kbps",
        choices=["kbps", "mbps", "bps"],
        help="bandwidth unit of a 'measured' input (default kbps)",
    )
    trace_parser.add_argument("--output", help="write the trace to this path")
    trace_parser.add_argument("--format", default="csv", choices=["csv", "mahimahi"])
    trace_parser.set_defaults(func=cmd_trace)

    compare_parser = sub.add_parser("compare", help="all players on one link")
    compare_parser.add_argument("--bandwidth", type=float, default=700.0, help="kbps")
    compare_parser.add_argument(
        "--combinations", default="hsub", choices=["hsub", "all"]
    )
    compare_parser.set_defaults(func=cmd_compare)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
