"""Origin server and CDN cache models.

These back the paper's Section-1 motivation for demuxed delivery:

* storage — "the server only needs to store M video and N audio tracks
  for the demuxed mode, while it has to store a much larger set of M x N
  muxed tracks";
* CDN efficiency — "the demuxed mode increases CDN cache hits" because a
  video chunk cached for one user serves any user regardless of the
  audio track they pair with it.

:class:`CdnCache` is an LRU byte-capacity cache; :class:`OriginServer`
serves chunk objects in either muxed or demuxed naming. The
``examples/cdn_cache_study.py`` script and the Fig.-1 benchmark quantify
the effect on the Table-1 title.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..errors import MediaError
from ..media.content import Content


@dataclass(frozen=True)
class ChunkKey:
    """Cache key for one stored chunk object.

    In demuxed mode the key names a single track; in muxed mode it names
    a (video, audio) pair, because each muxed object embeds both.
    """

    title: str
    track_ids: Tuple[str, ...]
    index: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.title}/{'+'.join(self.track_ids)}/{self.index}"


@dataclass
class TransferStats:
    """Byte accounting for one tier (origin or CDN)."""

    requests: int = 0
    hits: int = 0
    bits_served: float = 0.0

    @property
    def misses(self) -> int:
        return self.requests - self.hits

    @property
    def hit_ratio(self) -> float:
        return self.hits / self.requests if self.requests else 0.0


class OriginServer:
    """Holds a title's chunks, in demuxed or muxed packaging."""

    def __init__(self, content: Content, muxed: bool = False):
        self.content = content
        self.muxed = muxed
        self.stats = TransferStats()

    def storage_bits(self) -> float:
        if self.muxed:
            return self.content.storage_bits_muxed()
        return self.content.storage_bits_demuxed()

    def chunk_key(
        self, video_id: Optional[str], audio_id: Optional[str], index: int
    ) -> Tuple[ChunkKey, ...]:
        """The object keys a client must fetch for one playback position.

        Demuxed: two objects (one per track). Muxed: one combined object.
        """
        if self.muxed:
            if video_id is None or audio_id is None:
                raise MediaError("muxed fetch needs both a video and an audio track")
            return (ChunkKey(self.content.name, (video_id, audio_id), index),)
        keys = []
        if video_id is not None:
            keys.append(ChunkKey(self.content.name, (video_id,), index))
        if audio_id is not None:
            keys.append(ChunkKey(self.content.name, (audio_id,), index))
        if not keys:
            raise MediaError("fetch needs at least one track")
        return tuple(keys)

    def size_bits(self, key: ChunkKey) -> float:
        return sum(
            self.content.chunk(track_id, key.index).size_bits
            for track_id in key.track_ids
        )

    def serve(self, key: ChunkKey) -> float:
        """Serve one object from origin; returns its size in bits."""
        size = self.size_bits(key)
        self.stats.requests += 1
        self.stats.bits_served += size
        return size


class CdnCache:
    """A byte-capacity LRU cache in front of an origin server."""

    def __init__(self, origin: OriginServer, capacity_bits: float):
        if capacity_bits <= 0:
            raise MediaError(f"cache capacity must be positive, got {capacity_bits}")
        self.origin = origin
        self.capacity_bits = capacity_bits
        self.stats = TransferStats()
        self._entries: "OrderedDict[ChunkKey, float]" = OrderedDict()
        self._used_bits = 0.0

    @property
    def used_bits(self) -> float:
        return self._used_bits

    def _evict_for(self, size: float) -> None:
        while self._used_bits + size > self.capacity_bits and self._entries:
            _, evicted_size = self._entries.popitem(last=False)
            self._used_bits -= evicted_size

    def fetch(self, key: ChunkKey) -> Tuple[float, bool]:
        """Fetch one object through the cache.

        Returns ``(size_bits, was_hit)``. Misses are pulled from origin
        and inserted (objects larger than the whole cache bypass it).
        """
        self.stats.requests += 1
        if key in self._entries:
            self.stats.hits += 1
            size = self._entries[key]
            self._entries.move_to_end(key)
            self.stats.bits_served += size
            return size, True
        size = self.origin.serve(key)
        self.stats.bits_served += size
        if size <= self.capacity_bits:
            self._evict_for(size)
            self._entries[key] = size
            self._used_bits += size
        return size, False

    def fetch_position(
        self, video_id: Optional[str], audio_id: Optional[str], index: int
    ) -> Dict[str, float]:
        """Fetch all objects for one playback position.

        Returns ``{"bits": total, "hit_bits": from cache, "origin_bits":
        from origin}`` — the quantities the demuxed-vs-muxed comparison
        cares about.
        """
        total = hit_bits = origin_bits = 0.0
        for key in self.origin.chunk_key(video_id, audio_id, index):
            size, was_hit = self.fetch(key)
            total += size
            if was_hit:
                hit_bits += size
            else:
                origin_bits += size
        return {"bits": total, "hit_bits": hit_bits, "origin_bits": origin_bits}
