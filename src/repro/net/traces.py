"""Bandwidth traces.

A trace is a piecewise-constant bandwidth profile — the software
equivalent of the paper's ``tc``-shaped server-to-client link: "The
network bandwidths from the server to client are controlled by using tc
at the server" (Section 3.1). Piecewise-constant profiles let the
simulator compute download completions exactly instead of numerically.

Traces loop by default, so a session can outlast the profile (as a
``tc`` schedule would be replayed).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

from ..errors import TraceError


@dataclass(frozen=True)
class TraceSegment:
    """One constant-bandwidth interval."""

    duration_s: float
    kbps: float

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise TraceError(f"segment duration must be positive, got {self.duration_s}")
        if self.kbps < 0:
            raise TraceError(f"segment bandwidth must be non-negative, got {self.kbps}")


# shared — read-only after __init__; per-consumer lookup state lives in
# TraceCursor views handed out by cursor().
class BandwidthTrace:
    """A piecewise-constant bandwidth profile, looping by default.

    The trace itself is immutable once built, so any number of sessions
    (or link models) can share one trace object. Anything that queries
    it on a hot path should hold its own :class:`TraceCursor` from
    :meth:`cursor` — the cursor memoizes the last-hit segment for O(1)
    near-monotonic lookups, and keeping it *per consumer* means two
    interleaved sessions cannot thrash (or corrupt) each other's fast
    path. The trace's own query methods are stateless (pure bisect):
    always correct under sharing, just without the O(1) memoized hop.
    """

    def __init__(self, segments: Iterable[TraceSegment], loop: bool = True):
        self._segments: Tuple[TraceSegment, ...] = tuple(segments)
        if not self._segments:
            raise TraceError("trace must contain at least one segment")
        self._loop = loop
        self._period = sum(s.duration_s for s in self._segments)
        # Cumulative start offsets of each segment within one period.
        self._starts: List[float] = []
        offset = 0.0
        for segment in self._segments:
            self._starts.append(offset)
            offset += segment.duration_s
        self._n = len(self._segments)

    @property
    def segments(self) -> Tuple[TraceSegment, ...]:
        return self._segments

    @property
    def loops(self) -> bool:
        return self._loop

    @property
    def period_s(self) -> float:
        """Total duration of one pass through the segments."""
        return self._period

    def cursor(self) -> "TraceCursor":
        """A fresh per-consumer lookup view over this trace."""
        return TraceCursor(self)

    def _locate(self, t: float) -> Tuple[int, float]:
        """(segment index, time offset within that segment) at time ``t``.

        Stateless: answers "largest i with t >= starts[i] - 1e-12" by
        bisect alone, so concurrent callers on one shared trace can
        never disturb each other. :meth:`TraceCursor._locate` answers
        the same predicate with a memoized fast path.
        """
        if t < 0:
            raise TraceError(f"time must be non-negative, got {t}")
        if self._loop:
            t = math.fmod(t, self._period)
        elif t >= self._period:
            # Past the end of a non-looping trace the last rate holds.
            return self._n - 1, t - self._starts[-1]
        starts = self._starts
        lo = 0
        hi = self._n - 1
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if t >= starts[mid] - 1e-12:
                lo = mid
            else:
                hi = mid - 1
        return lo, t - starts[lo]

    def bandwidth_at(self, t: float) -> float:
        """Link bandwidth in kbps at absolute time ``t``."""
        index, _ = self._locate(t)
        return self._segments[index].kbps

    def next_change_after(self, t: float) -> float:
        """Absolute time of the next rate change strictly after ``t``.

        Returns ``inf`` when the rate never changes again (constant
        trace, or non-looping trace past its end).

        Consistency contract with :meth:`bandwidth_at`: the rate is
        constant on the open interval ``(t, next_change_after(t))``, so
        the two methods never disagree about when a boundary takes
        effect. Both therefore locate ``t`` through the same
        :meth:`_locate` arithmetic — the remaining time in the located
        segment *is* the next boundary.
        """
        if self._n == 1 and self._loop:
            return math.inf
        if not self._loop and t >= self._period:
            return math.inf
        index, offset = self._locate(t)
        boundary = t + (self._segments[index].duration_s - offset)
        if boundary <= t:
            # t sits within a few ulps of the segment end (fmod rounding
            # placed it in the expiring segment). The rate flips at the
            # very next representable instant; returning that keeps the
            # boundary strictly in the future without skipping a real
            # change the way jumping a whole period would.
            boundary = math.nextafter(t, math.inf)
        return boundary

    def rate_and_next_change(self, t: float) -> Tuple[float, float]:
        """``(bandwidth_at(t), next_change_after(t))`` in one lookup.

        The pair is bit-identical to calling the two methods separately
        (same located segment, same boundary arithmetic).
        """
        index, offset = self._locate(t)
        kbps = self._segments[index].kbps
        if self._loop:
            if self._n == 1:
                return kbps, math.inf
        elif t >= self._period:
            return kbps, math.inf
        boundary = t + (self._segments[index].duration_s - offset)
        if boundary <= t:
            boundary = math.nextafter(t, math.inf)
        return kbps, boundary

    def average_kbps(self, duration_s: float = 0.0) -> float:
        """Time-average bandwidth over ``duration_s`` (one period if 0)."""
        if duration_s <= 0:
            total_bits = sum(s.duration_s * s.kbps for s in self._segments)
            return total_bits / self._period
        t = 0.0
        acc = 0.0
        while t < duration_s - 1e-12:
            horizon = min(self.next_change_after(t), duration_s)
            acc += (horizon - t) * self.bandwidth_at(t)
            t = horizon
        return acc / duration_s

    def min_kbps(self) -> float:
        return min(s.kbps for s in self._segments)

    def max_kbps(self) -> float:
        return max(s.kbps for s in self._segments)

    def scaled(self, factor: float) -> "BandwidthTrace":
        """A copy with every rate multiplied by ``factor``."""
        if factor <= 0:
            raise TraceError(f"scale factor must be positive, got {factor}")
        return BandwidthTrace(
            (TraceSegment(s.duration_s, s.kbps * factor) for s in self._segments),
            loop=self._loop,
        )

    def to_pairs(self) -> List[Tuple[float, float]]:
        return [(s.duration_s, s.kbps) for s in self._segments]


class TraceCursor:
    """One consumer's memoized lookup view over a shared trace.

    The kernel's queries are near-monotonic, so the next lookup almost
    always lands in the last-hit segment or its successor; memoizing
    that index turns the per-event lookup into O(1) with a bisect
    fallback for arbitrary seeks. The cursor is a pure cache — it never
    affects results, only which path computes them — and it is the
    *only* mutable state in the trace machinery, owned by exactly one
    consumer. PR-7 memoized it on the trace itself, which silently
    serialized (and could have corrupted the fast path of) two sessions
    walking one trace object; SHARE-MUTATES-SHARED now guards that
    contract.

    Every query is bit-identical to the trace's own stateless methods:
    both answer the predicate "largest i with t >= starts[i] - 1e-12".
    """

    __slots__ = ("_trace", "_segments", "_starts", "_n", "_loop", "_period",
                 "_cursor")

    def __init__(self, trace: BandwidthTrace) -> None:
        self._trace = trace
        # Immutable views, re-referenced to keep the hot path free of
        # attribute chains through the trace.
        self._segments = trace._segments
        self._starts = trace._starts
        self._n = trace._n
        self._loop = trace._loop
        self._period = trace._period
        self._cursor = 0

    @property
    def trace(self) -> BandwidthTrace:
        return self._trace

    # hot
    def _locate(self, t: float) -> Tuple[int, float]:
        """(segment index, time offset within that segment) at time ``t``."""
        if t < 0:
            raise TraceError(f"time must be non-negative, got {t}")
        if self._loop:
            t = math.fmod(t, self._period)
        elif t >= self._period:
            # Past the end of a non-looping trace the last rate holds.
            return self._n - 1, t - self._starts[-1]
        # The target is the largest i with t >= starts[i] - 1e-12 (0 if
        # none). Every path below answers that exact predicate, so the
        # cursor/bisect fast paths are bit-identical to the stateless
        # bisect in BandwidthTrace._locate.
        starts = self._starts
        n = self._n
        i = self._cursor
        if t >= starts[i] - 1e-12:
            # Same segment as the last lookup?
            if i + 1 >= n or not t >= starts[i + 1] - 1e-12:
                return i, t - starts[i]
            # The immediate successor (the monotonic-advance case)?
            i += 1
            if i + 1 >= n or not t >= starts[i + 1] - 1e-12:
                self._cursor = i
                return i, t - starts[i]
            lo = i + 1
        else:
            lo = 0
        # Arbitrary seek: binary search on the same predicate. The
        # predicate is monotone in i (starts are increasing), pred(0) is
        # always true (starts[0] == 0 <= t + 1e-12 for t >= 0).
        hi = n - 1
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if t >= starts[mid] - 1e-12:
                lo = mid
            else:
                hi = mid - 1
        self._cursor = lo
        return lo, t - starts[lo]

    # hot
    def bandwidth_at(self, t: float) -> float:
        """Link bandwidth in kbps at absolute time ``t``."""
        index, _ = self._locate(t)
        return self._segments[index].kbps

    # hot
    def next_change_after(self, t: float) -> float:
        """Absolute time of the next rate change strictly after ``t``.

        Same contract as :meth:`BandwidthTrace.next_change_after`.
        """
        if self._n == 1 and self._loop:
            return math.inf
        if not self._loop and t >= self._period:
            return math.inf
        index, offset = self._locate(t)
        boundary = t + (self._segments[index].duration_s - offset)
        if boundary <= t:
            # Within a few ulps of the segment end: the rate flips at
            # the next representable instant (see BandwidthTrace).
            boundary = math.nextafter(t, math.inf)
        return boundary

    # hot
    def rate_and_next_change(self, t: float) -> Tuple[float, float]:
        """``(bandwidth_at(t), next_change_after(t))`` in one lookup.

        The kernel needs both values for every event; answering them
        from a single :meth:`_locate` halves the hot-path segment
        lookups. Bit-identical to calling the two methods separately.
        """
        index, offset = self._locate(t)
        kbps = self._segments[index].kbps
        if self._loop:
            if self._n == 1:
                return kbps, math.inf
        elif t >= self._period:
            return kbps, math.inf
        boundary = t + (self._segments[index].duration_s - offset)
        if boundary <= t:
            boundary = math.nextafter(t, math.inf)
        return kbps, boundary


def constant(kbps: float) -> BandwidthTrace:
    """A fixed-bandwidth link — the paper's preferred controlled setting."""
    return BandwidthTrace([TraceSegment(duration_s=1.0, kbps=kbps)])


def from_pairs(
    pairs: Sequence[Tuple[float, float]], loop: bool = True
) -> BandwidthTrace:
    """Build a trace from ``(duration_s, kbps)`` pairs."""
    return BandwidthTrace(
        (TraceSegment(duration_s=d, kbps=k) for d, k in pairs), loop=loop
    )


def square_wave(
    low_kbps: float, high_kbps: float, half_period_s: float = 20.0
) -> BandwidthTrace:
    """Alternate between two rates; average is their midpoint."""
    return from_pairs([(half_period_s, low_kbps), (half_period_s, high_kbps)])


def random_walk(
    mean_kbps: float,
    seed: int,
    n_segments: int = 30,
    segment_duration_s: float = 10.0,
    spread: float = 0.8,
    floor_kbps: float = 50.0,
) -> BandwidthTrace:
    """A seeded random time-varying profile with a given mean.

    Rates are drawn uniformly in ``mean*(1±spread)``, clipped at
    ``floor_kbps``, then rescaled so the time-average equals
    ``mean_kbps`` exactly (to float round-off). The contract requires
    ``mean_kbps >= floor_kbps``: with every segment clipped at the
    floor the target average would be unreachable, so that case raises
    :class:`~repro.errors.TraceError` instead of silently missing the
    mean. Used for the paper's "time-varying, with the average as 600
    Kbps" experiments (Figs. 3 and 4(b)).
    """
    if n_segments < 2:
        raise TraceError("random walk needs at least two segments")
    if mean_kbps < floor_kbps:
        raise TraceError(
            f"mean_kbps ({mean_kbps}) below floor_kbps ({floor_kbps}): "
            "the floor clip makes the target average unreachable"
        )
    rng = random.Random(seed)
    rates = [
        max(floor_kbps, mean_kbps * (1.0 + spread * (2.0 * rng.random() - 1.0)))
        for _ in range(n_segments)
    ]
    actual_mean = sum(rates) / n_segments
    rates = [max(floor_kbps, r * mean_kbps / actual_mean) for r in rates]
    # Rescaling can re-clip segments at the floor, leaving a residual
    # error. Fold it into the largest segment first (where it is
    # proportionally smallest), then close whatever the fold's own
    # floor clip leaves by spreading the remainder across segments
    # that still have headroom, until the average matches exactly.
    target_total = mean_kbps * n_segments
    residual = target_total - sum(rates)
    top = max(range(n_segments), key=rates.__getitem__)
    rates[top] = max(floor_kbps, rates[top] + residual)
    for _ in range(n_segments):
        residual = target_total - sum(rates)
        if abs(residual) <= 1e-9 * target_total:
            break
        if residual > 0:
            # Raising rates never violates the floor: spread evenly.
            bump = residual / n_segments
            rates = [r + bump for r in rates]
        else:
            free = [i for i in range(n_segments) if rates[i] > floor_kbps + 1e-12]
            if not free:  # pragma: no cover - unreachable given the guard
                break
            cut = residual / len(free)
            for i in free:
                rates[i] = max(floor_kbps, rates[i] + cut)
    return from_pairs([(segment_duration_s, r) for r in rates])


def save_trace(trace: BandwidthTrace, path: str) -> None:
    """Write a trace as ``duration_s,kbps`` CSV lines."""
    with open(path, "w", encoding="utf-8") as f:
        f.write("# duration_s,kbps\n")
        for segment in trace.segments:
            f.write(f"{segment.duration_s:.6f},{segment.kbps:.6f}\n")


def load_trace(path: str, loop: bool = True) -> BandwidthTrace:
    """Read a trace written by :func:`save_trace`.

    Every numeric pathology is rejected with a :class:`TraceError`
    (also a ``ValueError``) naming the file and line: NaN or infinite
    values, non-positive durations, negative bandwidths, unparseable
    rows. A half-broken measured trace must fail at load time, not as
    a mystery deep inside a simulation.
    """
    pairs: List[Tuple[float, float]] = []
    with open(path, "r", encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            try:
                duration_text, kbps_text = line.split(",")
                duration, kbps = float(duration_text), float(kbps_text)
            except ValueError as exc:
                raise TraceError(f"{path}:{lineno}: bad trace line {line!r}") from exc
            if not math.isfinite(duration) or not math.isfinite(kbps):
                raise TraceError(
                    f"{path}:{lineno}: non-finite value in trace line {line!r}"
                )
            if duration <= 0:
                raise TraceError(
                    f"{path}:{lineno}: segment duration must be positive, "
                    f"got {duration}"
                )
            if kbps < 0:
                raise TraceError(
                    f"{path}:{lineno}: bandwidth must be non-negative, got {kbps}"
                )
            pairs.append((duration, kbps))
    if not pairs:
        raise TraceError(f"{path}: no trace segments found")
    return from_pairs(pairs, loop=loop)


#: Bandwidth-unit multipliers to kbps accepted by :func:`from_csv`.
_CSV_UNITS = {"kbps": 1.0, "mbps": 1000.0, "bps": 1e-3}


def from_csv(
    path: str,
    unit: str = "kbps",
    loop: bool = True,
) -> BandwidthTrace:
    """Import a measured ``timestamp, bandwidth`` two-column trace.

    The format of the public FCC broadband, Norway 3G/HSDPA and
    similar measurement datasets: each row is an absolute timestamp in
    seconds paired with the bandwidth measured *from* that instant.
    Columns split on a comma or on whitespace; blank lines and ``#``
    comments are skipped; ``unit`` scales the bandwidth column
    (``kbps``/``mbps``/``bps``).

    Each measurement holds until the next timestamp, so row *i* becomes
    a segment of duration ``t[i+1] - t[i]``. The final row has no
    successor; it inherits the previous interval (matching how these
    datasets are replayed by tools like Mahimahi). Timestamps must be
    finite and strictly increasing, bandwidths finite and non-negative,
    and at least two rows are needed to define an interval — anything
    else raises :class:`TraceError` naming the file and line.
    """
    if unit not in _CSV_UNITS:
        raise TraceError(
            f"unknown bandwidth unit {unit!r}; expected one of "
            f"{sorted(_CSV_UNITS)}"
        )
    scale = _CSV_UNITS[unit]
    rows: List[Tuple[float, float]] = []  # (timestamp_s, kbps)
    last_lineno = 0
    with open(path, "r", encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            fields = line.split(",") if "," in line else line.split()
            if len(fields) != 2:
                raise TraceError(
                    f"{path}:{lineno}: expected two columns "
                    f"(timestamp, bandwidth), got {len(fields)}: {line!r}"
                )
            try:
                timestamp, bandwidth = float(fields[0]), float(fields[1])
            except ValueError as exc:
                raise TraceError(
                    f"{path}:{lineno}: non-numeric value in {line!r}"
                ) from exc
            if not math.isfinite(timestamp) or not math.isfinite(bandwidth):
                raise TraceError(
                    f"{path}:{lineno}: non-finite value in {line!r}"
                )
            if bandwidth < 0:
                raise TraceError(
                    f"{path}:{lineno}: bandwidth must be non-negative, "
                    f"got {bandwidth}"
                )
            if rows and timestamp <= rows[-1][0]:
                raise TraceError(
                    f"{path}:{lineno}: timestamps must be strictly "
                    f"increasing, got {timestamp} after {rows[-1][0]}"
                )
            rows.append((timestamp, bandwidth * scale))
            last_lineno = lineno
    if len(rows) < 2:
        raise TraceError(
            f"{path}:{last_lineno or 1}: need at least two rows to define "
            f"a measurement interval, got {len(rows)}"
        )
    pairs = [
        (rows[i + 1][0] - rows[i][0], rows[i][1]) for i in range(len(rows) - 1)
    ]
    # The last measurement holds for as long as the one before it.
    pairs.append((pairs[-1][0], rows[-1][1]))
    return from_pairs(pairs, loop=loop)
